//! CLI: structural analysis of hypergraphs, and batch CQ evaluation
//! through the serving engine.
//!
//! ```sh
//! # structural analysis of a HyperBench .hg file (or stdin)
//! cargo run --release --bin cqd2-analyze -- path/to/query.hg
//! echo 'e1(a,b), e2(b,c), e3(c,a)' | cargo run --release --bin cqd2-analyze
//!
//! # evaluate a workload file (queries + facts; see cqd2::engine::textio)
//! cargo run --release --bin cqd2-analyze -- eval workload.txt
//! cargo run --release --bin cqd2-analyze -- eval --count workload.txt
//! cargo run --release --bin cqd2-analyze -- eval --enumerate --limit 10 workload.txt
//!
//! # scripted round-trips against a running cqd2-serve (serde builds)
//! cargo run --release --bin cqd2-analyze -- client --addr 127.0.0.1:7878 \
//!     --db main --query 'R(?x, ?y), S(?y, ?z)' --count
//! cargo run --release --bin cqd2-analyze -- client --addr 127.0.0.1:7878 \
//!     --db main batch.txt   # Q:/directive lines, facts stay server-side
//!
//! # admin round-trips: hot-reload a served database (the server must
//! # run with --allow-reload) and inspect the catalog's epochs
//! cargo run --release --bin cqd2-analyze -- client reload --addr 127.0.0.1:7878 \
//!     --db main new-facts.txt
//! cargo run --release --bin cqd2-analyze -- client catalog --addr 127.0.0.1:7878
//!
//! # incremental update: apply an @insert/@delete delta script — only
//! # touched relations are rebuilt, warm prepared handles stay warm
//! cargo run --release --bin cqd2-analyze -- client delta --addr 127.0.0.1:7878 \
//!     --db main changes.delta
//!
//! # snapshot store: convert facts to the binary .cqds format and back
//! cargo run --release --bin cqd2-analyze -- snapshot save facts.txt db.cqds
//! cargo run --release --bin cqd2-analyze -- snapshot inspect db.cqds
//! cargo run --release --bin cqd2-analyze -- snapshot load db.cqds
//!
//! # reload a served database from a server-local snapshot file
//! cargo run --release --bin cqd2-analyze -- client reload --addr 127.0.0.1:7878 \
//!     --db main --snapshot /var/lib/cqd2/main.cqds
//! ```
//!
//! `eval` flags: `--count` counts answers instead of deciding
//! non-emptiness; `--enumerate` streams answer tuples (`--limit N` caps
//! them); `--explain` prints the full plan explanation; with the `serde`
//! feature, `--json` dumps each chosen plan as JSON. Per-query
//! `@boolean` / `@count` / `@enumerate [limit]` directives inside the
//! workload file override the flag-selected default. Workload parse
//! errors name their line and exit nonzero.

use cqd2::engine::{Answer, Engine, Request, Workload};
use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("eval") => run_eval(&args[1..]),
        Some("client") => run_client(&args[1..]),
        Some("verify") => run_verify(&args[1..]),
        Some("snapshot") => run_snapshot(&args[1..]),
        _ => run_analyze(args.first().map(String::as_str)),
    }
}

/// `snapshot`: convert between the text facts format and the binary
/// `.cqds` snapshot store (see `docs/SNAPSHOT.md`).
///
/// - `snapshot save FACTS.txt OUT.cqds` — parse a facts file and write
///   it as a checksummed snapshot with persisted statistics.
/// - `snapshot load FILE.cqds` — decode a snapshot end to end (checksum
///   and invariant verification included) and print what it holds.
/// - `snapshot inspect FILE.cqds` — validate and print the header and
///   table of contents without materializing any tuples.
fn run_snapshot(args: &[String]) {
    use cqd2::engine::store;
    match args.first().map(String::as_str) {
        Some("save") => {
            let [facts_path, out_path] = &args[1..] else {
                exit_with("snapshot save: usage — snapshot save FACTS.txt OUT.cqds");
            };
            let text = std::fs::read_to_string(facts_path)
                .unwrap_or_else(|e| exit_with(&format!("cannot read {facts_path}: {e}")));
            let db = cqd2::engine::textio::parse_database(&text)
                .unwrap_or_else(|e| exit_with(&format!("{facts_path}: {e}")));
            let bytes = store::write_snapshot(out_path, &db)
                .unwrap_or_else(|e| exit_with(&format!("snapshot save: {e}")));
            println!(
                "saved {out_path}: {} facts in {} relations, {bytes} bytes",
                db.size(),
                db.relations().count()
            );
        }
        Some("load") => {
            let [path] = &args[1..] else {
                exit_with("snapshot load: usage — snapshot load FILE.cqds");
            };
            let file = store::read_snapshot(path)
                .unwrap_or_else(|e| exit_with(&format!("snapshot load: {e}")));
            println!(
                "loaded {path}: {} facts in {} relations (flags {:#010x})",
                file.db.size(),
                file.db.relations().count(),
                file.flags
            );
            for (name, rs) in file.stats.relations() {
                let distinct: Vec<String> = rs.distinct.iter().map(usize::to_string).collect();
                println!(
                    "  {name}: {} rows, distinct per column [{}]",
                    rs.cardinality,
                    distinct.join(", ")
                );
            }
        }
        Some("inspect") => {
            let [path] = &args[1..] else {
                exit_with("snapshot inspect: usage — snapshot inspect FILE.cqds");
            };
            let summary = store::inspect_snapshot(path)
                .unwrap_or_else(|e| exit_with(&format!("snapshot inspect: {e}")));
            println!(
                "{path}: format v{}, flags {:#010x}, {} bytes, {} relations, {} tuples",
                summary.version,
                summary.flags,
                summary.file_len,
                summary.relations.len(),
                summary.total_tuples
            );
            for r in &summary.relations {
                println!(
                    "  {}: arity {}, {} rows, section at byte {}",
                    r.name, r.arity, r.rows, r.offset
                );
            }
        }
        _ => exit_with("snapshot: usage — snapshot save|load|inspect …"),
    }
}

/// `verify`: plan every query of the given workload files and check the
/// derived plans against the paper's structural invariants (valid GHD,
/// width claim, strategy/structure-class consistency) — the same audit
/// `CQD2_STRICT_VERIFY=1` runs inside `Session::prepare`, surfaced as a
/// standalone command. Exits nonzero on the first violated invariant.
fn run_verify(args: &[String]) {
    let files: Vec<&String> = args
        .iter()
        .filter(|a| {
            if a.starts_with("--") {
                exit_with(&format!(
                    "verify: unknown flag {a} (takes workload files only)"
                ));
            }
            true
        })
        .collect();
    if files.is_empty() {
        exit_with("verify: no workload files given");
    }
    let engine = Engine::shared();
    let mut checked = 0usize;
    for path in files {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| exit_with(&format!("cannot read {path}: {e}")));
        let parsed = cqd2::engine::textio::parse_workload(&text)
            .unwrap_or_else(|e| exit_with(&format!("{path}: {e}")));
        for (i, query) in parsed.queries.iter().enumerate() {
            let report = engine
                .verify_query(query)
                .unwrap_or_else(|e| exit_with(&format!("{path} q{i}: INVALID — {e}")));
            for plan in &report.plans {
                let ghd = match (plan.width, plan.bags) {
                    (Some(w), Some(b)) => format!(", ghd width {w} over {b} bags"),
                    _ => String::new(),
                };
                println!(
                    "{path} q{i}: {:?} plan ok — {}{ghd}{}",
                    plan.workload,
                    plan.strategy,
                    if report.cache_hit { " [cached]" } else { "" },
                );
            }
            checked += 1;
        }
    }
    println!(
        "verify: {checked} quer{} checked, all plans satisfy the paper's invariants",
        if checked == 1 { "y" } else { "ies" }
    );
}

fn run_analyze(path: Option<&str>) {
    let input = match path {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| exit_with(&format!("cannot read {path}: {e}"))),
        None => {
            let mut s = String::new();
            std::io::stdin()
                .read_to_string(&mut s)
                .unwrap_or_else(|e| exit_with(&format!("cannot read stdin: {e}")));
            s
        }
    };
    let h = cqd2::hyperbench::io::parse_hg(&input)
        .unwrap_or_else(|e| exit_with(&format!("parse error: {e}")));
    println!(
        "hypergraph: |V| = {}, |E| = {}, degree = {}, rank = {}",
        h.num_vertices(),
        h.num_edges(),
        h.max_degree(),
        h.rank()
    );
    let report = cqd2::analyze(&h);
    println!("ghw ∈ [{}, {}]", report.ghw_lower, report.ghw_upper);
    match report.jigsaw {
        Some((n, ops)) => {
            println!("degree-2: dilutes to the {n}×{n} jigsaw ({ops} operations; Theorem 4.7)")
        }
        None if report.degree <= 2 => {
            println!("degree-2: no jigsaw of dimension ≥ 2 found (low ghw)")
        }
        None => println!(
            "degree {} > 2: jigsaw extraction not applicable",
            report.degree
        ),
    }
}

fn run_eval(args: &[String]) {
    let mut count = false;
    let mut enumerate = false;
    let mut limit: Option<usize> = None;
    let mut explain = false;
    let mut json = false;
    let mut files: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--count" => count = true,
            "--enumerate" => enumerate = true,
            "--limit" => {
                let value = iter
                    .next()
                    .unwrap_or_else(|| exit_with("eval: --limit needs a number"));
                limit = Some(value.parse::<usize>().unwrap_or_else(|_| {
                    exit_with(&format!("eval: --limit `{value}` is not a number"))
                }));
            }
            "--explain" => explain = true,
            "--json" => json = true,
            flag if flag.starts_with("--") => exit_with(&format!(
                "unknown eval flag {flag} (try --count, --enumerate, --limit, --explain, --json)"
            )),
            path => files.push(path),
        }
    }
    if files.is_empty() {
        exit_with("eval: no workload files given");
    }
    if count && enumerate {
        exit_with("eval: --count and --enumerate are mutually exclusive");
    }
    if limit.is_some() && !enumerate {
        exit_with("eval: --limit only applies with --enumerate");
    }
    if json && cfg!(not(feature = "serde")) {
        exit_with("eval: --json requires building with the `serde` feature");
    }
    let default_workload = if count {
        Workload::Count
    } else if enumerate {
        Workload::Enumerate { limit }
    } else {
        Workload::Boolean
    };
    let engine = Engine::shared();
    for path in files {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| exit_with(&format!("cannot read {path}: {e}")));
        // Parse errors carry their 1-based line number and exit nonzero.
        let parsed = cqd2::engine::textio::parse_workload(&text)
            .unwrap_or_else(|e| exit_with(&format!("{path}: {e}")));
        let requests: Vec<Request<'_>> = parsed
            .queries
            .iter()
            .zip(&parsed.modes)
            .map(|(query, mode)| Request {
                query,
                db: &parsed.db,
                workload: mode.unwrap_or(default_workload),
            })
            .collect();
        let responses = engine.execute_batch(&requests);
        println!(
            "{path}: {} facts, {} queries",
            parsed.db.size(),
            parsed.queries.len()
        );
        for (i, resp) in responses.iter().enumerate() {
            println!(
                "  q{i}: {}  [{} | cache {} | plan {:?} | exec {:?}]",
                brief_answer(&resp.answer),
                resp.provenance.planned.plan.strategy(),
                if resp.provenance.cache_hit {
                    "hit"
                } else {
                    "miss"
                },
                resp.provenance.planning,
                resp.provenance.execution,
            );
            print_tuples(&resp.answer);
            if explain {
                for line in resp.provenance.planned.explain().lines() {
                    println!("      {line}");
                }
                if let Some(bags) = &resp.provenance.bags {
                    println!(
                        "      bag execution: {} ({}/{} bags rewritten)",
                        bags.mode.name(),
                        bags.bags_rewritten,
                        bags.bags_total,
                    );
                }
            }
            if json {
                print_plan_json(resp);
            }
        }
    }
    let stats = engine.cache_stats();
    println!(
        "plan cache: {} hits, {} misses, {} structures resident",
        stats.hits, stats.misses, stats.entries
    );
}

/// `client`: scripted round-trips against a running `cqd2-serve`.
/// Flags: `--addr host:port` (required), `--db name` (required),
/// `--query 'body'` and/or query-batch files (`Q:` + `@…` lines);
/// `--count` / `--enumerate [--limit N]` set the mode for `--query`.
/// `--trace` asks the server for per-phase span breakdowns.
/// Admin modes: `client reload --addr A --db NAME FACTS_FILE`
/// hot-reloads a served database (server must run `--allow-reload`);
/// `client delta --addr A --db NAME DELTA_FILE` applies an incremental
/// `@insert`/`@delete` batch (same gate, structural-sharing publish);
/// `client catalog --addr A` prints the served names and epochs;
/// `client stats --addr A` prints the server's metrics snapshot.
#[cfg(feature = "serde")]
fn run_client(args: &[String]) {
    use cqd2::engine::server::client::Client;
    use cqd2::engine::server::wire;

    match args.first().map(String::as_str) {
        Some("reload") => return run_client_reload(&args[1..]),
        Some("delta") => return run_client_delta(&args[1..]),
        Some("catalog") => return run_client_catalog(&args[1..]),
        Some("stats") => return run_client_stats(&args[1..]),
        _ => {}
    }
    let mut addr: Option<String> = None;
    let mut db: Option<String> = None;
    let mut inline_query: Option<String> = None;
    let mut count = false;
    let mut enumerate = false;
    let mut trace = false;
    let mut limit: Option<usize> = None;
    let mut files: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| -> String {
            iter.next()
                .unwrap_or_else(|| exit_with(&format!("client: {flag} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--addr" => addr = Some(value_of("--addr")),
            "--db" => db = Some(value_of("--db")),
            "--query" => inline_query = Some(value_of("--query")),
            "--count" => count = true,
            "--enumerate" => enumerate = true,
            "--trace" => trace = true,
            "--limit" => {
                let value = value_of("--limit");
                limit = Some(value.parse::<usize>().unwrap_or_else(|_| {
                    exit_with(&format!("client: --limit `{value}` is not a number"))
                }));
            }
            flag if flag.starts_with("--") => exit_with(&format!(
                "client: unknown flag {flag} (try --addr, --db, --query, --count, --enumerate, \
                 --limit, --trace)"
            )),
            path => files.push(path),
        }
    }
    let addr = addr.unwrap_or_else(|| exit_with("client: --addr host:port is required"));
    let db = db.unwrap_or_else(|| exit_with("client: --db name is required"));
    if inline_query.is_none() && files.is_empty() {
        exit_with("client: nothing to send — give --query or a batch file");
    }
    if count && enumerate {
        exit_with("client: --count and --enumerate are mutually exclusive");
    }
    if limit.is_some() && !enumerate {
        exit_with("client: --limit only applies with --enumerate");
    }

    let mut client = Client::connect(&addr)
        .unwrap_or_else(|e| exit_with(&format!("client: cannot connect to {addr}: {e}")));
    let bound = client
        .bind_db(&db)
        .unwrap_or_else(|e| exit_with(&format!("client: bind `{db}`: {e}")));
    println!(
        "bound to `{}`: {} facts in {} relations",
        bound.db, bound.facts, bound.relations
    );
    let mut batches: Vec<(String, String)> = Vec::new();
    if let Some(q) = inline_query {
        let workload = if count {
            cqd2::engine::Workload::Count
        } else if enumerate {
            cqd2::engine::Workload::Enumerate { limit }
        } else {
            cqd2::engine::Workload::Boolean
        };
        let text = format!("{}\nQ: {q}\n", wire::directive_for(workload));
        batches.push(("--query".to_string(), text));
    }
    for path in files {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| exit_with(&format!("client: cannot read {path}: {e}")));
        batches.push((path.to_string(), text));
    }
    for (tag, text) in batches {
        let text = if trace {
            format!("@trace\n{text}")
        } else {
            text
        };
        let reply = client
            .request(&text)
            .unwrap_or_else(|e| exit_with(&format!("client: {tag}: {e}")));
        println!("{tag}: {} result(s)", reply.results.len());
        for r in &reply.results {
            println!(
                "  q{}: {}  [{} | cache {} | prepared {} | plan {}ns | exec {}ns | server {}µs]",
                r.index,
                brief_answer(&r.answer),
                r.strategy,
                if r.cache_hit { "hit" } else { "miss" },
                if r.prepared_hit { "hit" } else { "miss" },
                r.planning_ns,
                r.execution_ns,
                r.server_micros,
            );
            if let Some(t) = &r.trace {
                println!("      trace ({}µs in spans):", t.total_micros);
                for span in &t.spans {
                    match &span.detail {
                        Some(d) => println!("        {:<12} {:>8}µs  {d}", span.phase, span.micros),
                        None => println!("        {:<12} {:>8}µs", span.phase, span.micros),
                    }
                }
            }
            print_tuples(&r.answer);
        }
    }
}

/// `client reload`: publish a new snapshot for a served database over
/// the wire. In-flight work keeps its pinned epoch; new queries see
/// the new facts. With `--snapshot`, the positional argument is a
/// **server-local** `.cqds` file path instead of a client-side facts
/// file — the server loads it from its own filesystem, nothing is
/// uploaded.
#[cfg(feature = "serde")]
fn run_client_reload(args: &[String]) {
    use cqd2::engine::server::client::Client;

    let mut addr: Option<String> = None;
    let mut db: Option<String> = None;
    let mut snapshot = false;
    let mut file: Option<&str> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| -> String {
            iter.next()
                .unwrap_or_else(|| exit_with(&format!("client reload: {flag} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--addr" => addr = Some(value_of("--addr")),
            "--db" => db = Some(value_of("--db")),
            "--snapshot" => snapshot = true,
            flag if flag.starts_with("--") => {
                exit_with(&format!("client reload: unknown flag {flag}"))
            }
            path if file.is_none() => file = Some(path),
            extra => exit_with(&format!("client reload: unexpected argument `{extra}`")),
        }
    }
    let addr = addr.unwrap_or_else(|| exit_with("client reload: --addr host:port is required"));
    let db = db.unwrap_or_else(|| exit_with("client reload: --db name is required"));
    let file = file.unwrap_or_else(|| {
        exit_with(if snapshot {
            "client reload: a server-local snapshot path is required"
        } else {
            "client reload: a facts file is required"
        })
    });
    let mut client = Client::connect(&addr)
        .unwrap_or_else(|e| exit_with(&format!("client reload: cannot connect to {addr}: {e}")));
    let reloaded = if snapshot {
        client
            .reload_snapshot(&db, file)
            .unwrap_or_else(|e| exit_with(&format!("client reload: `{db}`: {e}")))
    } else {
        let facts = std::fs::read_to_string(file)
            .unwrap_or_else(|e| exit_with(&format!("client reload: cannot read {file}: {e}")));
        client
            .reload(&db, &facts)
            .unwrap_or_else(|e| exit_with(&format!("client reload: `{db}`: {e}")))
    };
    println!(
        "reloaded `{}` to epoch {}: {} facts in {} relations",
        reloaded.db, reloaded.epoch, reloaded.facts, reloaded.relations
    );
}

/// `client delta`: apply an incremental update batch to a served
/// database over the wire. The positional argument is a delta-script
/// file — `@insert` / `@delete` section directives followed by fact
/// lines. Unlike `client reload`, the server only rebuilds the touched
/// relations (everything else is structurally shared into the new
/// epoch) and migrates warm prepared handles instead of purging them.
#[cfg(feature = "serde")]
fn run_client_delta(args: &[String]) {
    use cqd2::engine::server::client::Client;

    let mut addr: Option<String> = None;
    let mut db: Option<String> = None;
    let mut file: Option<&str> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| -> String {
            iter.next()
                .unwrap_or_else(|| exit_with(&format!("client delta: {flag} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--addr" => addr = Some(value_of("--addr")),
            "--db" => db = Some(value_of("--db")),
            flag if flag.starts_with("--") => {
                exit_with(&format!("client delta: unknown flag {flag}"))
            }
            path if file.is_none() => file = Some(path),
            extra => exit_with(&format!("client delta: unexpected argument `{extra}`")),
        }
    }
    let addr = addr.unwrap_or_else(|| exit_with("client delta: --addr host:port is required"));
    let db = db.unwrap_or_else(|| exit_with("client delta: --db name is required"));
    let file = file.unwrap_or_else(|| {
        exit_with("client delta: a delta-script file (@insert/@delete sections) is required")
    });
    let script = std::fs::read_to_string(file)
        .unwrap_or_else(|e| exit_with(&format!("client delta: cannot read {file}: {e}")));
    let mut client = Client::connect(&addr)
        .unwrap_or_else(|e| exit_with(&format!("client delta: cannot connect to {addr}: {e}")));
    let applied = client
        .delta(&db, &script)
        .unwrap_or_else(|e| exit_with(&format!("client delta: `{db}`: {e}")));
    println!(
        "delta applied to `{}`: epoch {}, +{} −{} facts (now {}), touched [{}]",
        applied.db,
        applied.epoch,
        applied.inserted,
        applied.deleted,
        applied.facts,
        applied.relations_touched.join(", "),
    );
    println!(
        "  prepared handles: {} migrated warm, {} re-prepared, {} bag(s) re-materialized in {}µs",
        applied.prepared_warm, applied.prepared_reprepared, applied.bags_remat, applied.server_micros,
    );
}

/// `client catalog`: print the served databases, their epochs and
/// sizes, and whether the server accepts reloads.
#[cfg(feature = "serde")]
fn run_client_catalog(args: &[String]) {
    use cqd2::engine::server::client::Client;

    let mut addr: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                addr = Some(
                    iter.next()
                        .unwrap_or_else(|| exit_with("client catalog: --addr needs a value"))
                        .clone(),
                )
            }
            other => exit_with(&format!("client catalog: unexpected argument `{other}`")),
        }
    }
    let addr = addr.unwrap_or_else(|| exit_with("client catalog: --addr host:port is required"));
    let mut client = Client::connect(&addr)
        .unwrap_or_else(|e| exit_with(&format!("client catalog: cannot connect to {addr}: {e}")));
    let info = client
        .catalog_info()
        .unwrap_or_else(|e| exit_with(&format!("client catalog: {e}")));
    println!(
        "{} database(s), reloads {}",
        info.databases.len(),
        if info.reload_enabled {
            "enabled"
        } else {
            "disabled"
        }
    );
    for d in &info.databases {
        println!(
            "  {}: epoch {}, {} facts in {} relations",
            d.name, d.epoch, d.facts, d.relations
        );
    }
}

/// `client stats`: print the server's metrics snapshot — lifetime
/// counters, live queue/connection gauges, and per-database latency
/// quantiles. The output is line-oriented and stable so harnesses can
/// grep it (`batches N`, `p99 Nµs`).
#[cfg(feature = "serde")]
fn run_client_stats(args: &[String]) {
    use cqd2::engine::server::client::Client;

    let mut addr: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                addr = Some(
                    iter.next()
                        .unwrap_or_else(|| exit_with("client stats: --addr needs a value"))
                        .clone(),
                )
            }
            other => exit_with(&format!("client stats: unexpected argument `{other}`")),
        }
    }
    let addr = addr.unwrap_or_else(|| exit_with("client stats: --addr host:port is required"));
    let mut client = Client::connect(&addr)
        .unwrap_or_else(|e| exit_with(&format!("client stats: cannot connect to {addr}: {e}")));
    let stats = client
        .stats()
        .unwrap_or_else(|e| exit_with(&format!("client stats: {e}")));
    println!("uptime {}s", stats.uptime_micros / 1_000_000);
    println!(
        "connections {} ({} active)",
        stats.connections, stats.active_connections
    );
    println!(
        "frames {}, batches {}, queries {} ({} answered)",
        stats.frames, stats.batches, stats.queries, stats.answered
    );
    println!(
        "errors: {} overloaded, {} unauthorized, {} parse, {} protocol, {} internal",
        stats.rejected_overload,
        stats.rejected_unauthorized,
        stats.parse_errors,
        stats.protocol_errors,
        stats.internal_errors
    );
    println!(
        "prepared cache: {} hits / {} misses",
        stats.prepared_hits, stats.prepared_misses
    );
    println!(
        "bag overlay: {} / {} bags rewritten",
        stats.bags_rewritten, stats.bags_total
    );
    println!("reloads {}", stats.reloads);
    println!(
        "deltas: {} applied (+{} −{} facts), {} rejected, {} bags re-materialized warm",
        stats.delta_batches,
        stats.facts_inserted,
        stats.facts_deleted,
        stats.delta_errors,
        stats.bags_remat
    );
    println!(
        "queue: depth {}, high-water {}, capacity {}",
        stats.queue_depth, stats.queue_high_water, stats.queue_capacity
    );
    for d in &stats.databases {
        println!(
            "db {}: epoch {}, batches {}, queries {}, errors {}, overloads {}, \
             prepared {}/{} hit/miss",
            d.name,
            d.epoch,
            d.batches,
            d.queries,
            d.errors,
            d.overloads,
            d.prepared_hits,
            d.prepared_misses
        );
        println!(
            "db {}: bag overlay {} / {} bags rewritten",
            d.name, d.bags_rewritten, d.bags_total
        );
        if d.delta_batches > 0 {
            println!(
                "db {}: deltas {} (+{} −{} facts), {} bags re-materialized warm",
                d.name, d.delta_batches, d.facts_inserted, d.facts_deleted, d.bags_remat
            );
        }
        let h = &d.latency;
        println!(
            "db {}: latency over {} queries — p50 {}µs p90 {}µs p99 {}µs max {}µs mean {}µs",
            d.name, h.count, h.p50_micros, h.p90_micros, h.p99_micros, h.max_micros, h.mean_micros
        );
    }
}

#[cfg(not(feature = "serde"))]
fn run_client(_args: &[String]) {
    exit_with("the client subcommand requires building with the `serde` feature");
}

#[cfg(feature = "serde")]
fn print_plan_json(resp: &cqd2::engine::Response) {
    println!(
        "{}",
        serde::json::to_string_pretty(&resp.provenance.planned)
    );
}

#[cfg(not(feature = "serde"))]
fn print_plan_json(_resp: &cqd2::engine::Response) {
    // Unreachable: run_eval rejects --json on serde-less builds.
}

/// One-line answer summary shared by `eval` and `client` output.
fn brief_answer(answer: &Answer) -> String {
    match answer {
        Answer::Bool(b) => b.to_string(),
        Answer::Count(n) => n.to_string(),
        Answer::Tuples(t) => format!("{} tuples", t.len()),
    }
}

/// Print an enumerate answer's tuples, one per indented line.
fn print_tuples(answer: &Answer) {
    if let Answer::Tuples(tuples) = answer {
        for t in tuples {
            let cells: Vec<String> = t.iter().map(u64::to_string).collect();
            println!("      ({})", cells.join(", "));
        }
    }
}

fn exit_with(msg: &str) -> ! {
    eprintln!("cqd2-analyze: {msg}");
    std::process::exit(1)
}
