//! CLI: structural analysis of a hypergraph in HyperBench `.hg` format.
//!
//! ```sh
//! cargo run --release --bin cqd2-analyze -- path/to/query.hg
//! echo 'e1(a,b), e2(b,c), e3(c,a)' | cargo run --release --bin cqd2-analyze
//! ```

use std::io::Read;

fn main() {
    let input = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path)
            .unwrap_or_else(|e| exit_with(&format!("cannot read {path}: {e}"))),
        None => {
            let mut s = String::new();
            std::io::stdin()
                .read_to_string(&mut s)
                .unwrap_or_else(|e| exit_with(&format!("cannot read stdin: {e}")));
            s
        }
    };
    let h = cqd2::hyperbench::io::parse_hg(&input)
        .unwrap_or_else(|e| exit_with(&format!("parse error: {e}")));
    println!(
        "hypergraph: |V| = {}, |E| = {}, degree = {}, rank = {}",
        h.num_vertices(),
        h.num_edges(),
        h.max_degree(),
        h.rank()
    );
    let report = cqd2::analyze(&h);
    println!("ghw ∈ [{}, {}]", report.ghw_lower, report.ghw_upper);
    match report.jigsaw {
        Some((n, ops)) => println!(
            "degree-2: dilutes to the {n}×{n} jigsaw ({ops} operations; Theorem 4.7)"
        ),
        None if report.degree <= 2 => {
            println!("degree-2: no jigsaw of dimension ≥ 2 found (low ghw)")
        }
        None => println!("degree {} > 2: jigsaw extraction not applicable", report.degree),
    }
}

fn exit_with(msg: &str) -> ! {
    eprintln!("cqd2-analyze: {msg}");
    std::process::exit(1)
}
