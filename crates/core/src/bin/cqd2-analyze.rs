//! CLI: structural analysis of hypergraphs, and batch CQ evaluation
//! through the serving engine.
//!
//! ```sh
//! # structural analysis of a HyperBench .hg file (or stdin)
//! cargo run --release --bin cqd2-analyze -- path/to/query.hg
//! echo 'e1(a,b), e2(b,c), e3(c,a)' | cargo run --release --bin cqd2-analyze
//!
//! # evaluate a workload file (queries + facts; see cqd2::engine::textio)
//! cargo run --release --bin cqd2-analyze -- eval workload.txt
//! cargo run --release --bin cqd2-analyze -- eval --count workload.txt
//! cargo run --release --bin cqd2-analyze -- eval --enumerate --limit 10 workload.txt
//! ```
//!
//! `eval` flags: `--count` counts answers instead of deciding
//! non-emptiness; `--enumerate` streams answer tuples (`--limit N` caps
//! them); `--explain` prints the full plan explanation; with the `serde`
//! feature, `--json` dumps each chosen plan as JSON. Per-query
//! `@boolean` / `@count` / `@enumerate [limit]` directives inside the
//! workload file override the flag-selected default. Workload parse
//! errors name their line and exit nonzero.

use cqd2::engine::{Answer, Engine, Request, Workload};
use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("eval") => run_eval(&args[1..]),
        _ => run_analyze(args.first().map(String::as_str)),
    }
}

fn run_analyze(path: Option<&str>) {
    let input = match path {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| exit_with(&format!("cannot read {path}: {e}"))),
        None => {
            let mut s = String::new();
            std::io::stdin()
                .read_to_string(&mut s)
                .unwrap_or_else(|e| exit_with(&format!("cannot read stdin: {e}")));
            s
        }
    };
    let h = cqd2::hyperbench::io::parse_hg(&input)
        .unwrap_or_else(|e| exit_with(&format!("parse error: {e}")));
    println!(
        "hypergraph: |V| = {}, |E| = {}, degree = {}, rank = {}",
        h.num_vertices(),
        h.num_edges(),
        h.max_degree(),
        h.rank()
    );
    let report = cqd2::analyze(&h);
    println!("ghw ∈ [{}, {}]", report.ghw_lower, report.ghw_upper);
    match report.jigsaw {
        Some((n, ops)) => {
            println!("degree-2: dilutes to the {n}×{n} jigsaw ({ops} operations; Theorem 4.7)")
        }
        None if report.degree <= 2 => {
            println!("degree-2: no jigsaw of dimension ≥ 2 found (low ghw)")
        }
        None => println!(
            "degree {} > 2: jigsaw extraction not applicable",
            report.degree
        ),
    }
}

fn run_eval(args: &[String]) {
    let mut count = false;
    let mut enumerate = false;
    let mut limit: Option<usize> = None;
    let mut explain = false;
    let mut json = false;
    let mut files: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--count" => count = true,
            "--enumerate" => enumerate = true,
            "--limit" => {
                let value = iter
                    .next()
                    .unwrap_or_else(|| exit_with("eval: --limit needs a number"));
                limit = Some(value.parse::<usize>().unwrap_or_else(|_| {
                    exit_with(&format!("eval: --limit `{value}` is not a number"))
                }));
            }
            "--explain" => explain = true,
            "--json" => json = true,
            flag if flag.starts_with("--") => exit_with(&format!(
                "unknown eval flag {flag} (try --count, --enumerate, --limit, --explain, --json)"
            )),
            path => files.push(path),
        }
    }
    if files.is_empty() {
        exit_with("eval: no workload files given");
    }
    if count && enumerate {
        exit_with("eval: --count and --enumerate are mutually exclusive");
    }
    if limit.is_some() && !enumerate {
        exit_with("eval: --limit only applies with --enumerate");
    }
    if json && cfg!(not(feature = "serde")) {
        exit_with("eval: --json requires building with the `serde` feature");
    }
    let default_workload = if count {
        Workload::Count
    } else if enumerate {
        Workload::Enumerate { limit }
    } else {
        Workload::Boolean
    };
    let engine = Engine::shared();
    for path in files {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| exit_with(&format!("cannot read {path}: {e}")));
        // Parse errors carry their 1-based line number and exit nonzero.
        let parsed = cqd2::engine::textio::parse_workload(&text)
            .unwrap_or_else(|e| exit_with(&format!("{path}: {e}")));
        let requests: Vec<Request<'_>> = parsed
            .queries
            .iter()
            .zip(&parsed.modes)
            .map(|(query, mode)| Request {
                query,
                db: &parsed.db,
                workload: mode.unwrap_or(default_workload),
            })
            .collect();
        let responses = engine.execute_batch(&requests);
        println!(
            "{path}: {} facts, {} queries",
            parsed.db.size(),
            parsed.queries.len()
        );
        for (i, resp) in responses.iter().enumerate() {
            let answer = match &resp.answer {
                Answer::Bool(b) => format!("{b}"),
                Answer::Count(n) => format!("{n}"),
                Answer::Tuples(t) => format!("{} tuples", t.len()),
            };
            println!(
                "  q{i}: {answer}  [{} | cache {} | plan {:?} | exec {:?}]",
                resp.provenance.planned.plan.strategy(),
                if resp.provenance.cache_hit {
                    "hit"
                } else {
                    "miss"
                },
                resp.provenance.planning,
                resp.provenance.execution,
            );
            if let Answer::Tuples(tuples) = &resp.answer {
                for t in tuples {
                    let cells: Vec<String> = t.iter().map(u64::to_string).collect();
                    println!("      ({})", cells.join(", "));
                }
            }
            if explain {
                for line in resp.provenance.planned.explain().lines() {
                    println!("      {line}");
                }
            }
            if json {
                print_plan_json(resp);
            }
        }
    }
    let stats = engine.cache_stats();
    println!(
        "plan cache: {} hits, {} misses, {} structures resident",
        stats.hits, stats.misses, stats.entries
    );
}

#[cfg(feature = "serde")]
fn print_plan_json(resp: &cqd2::engine::Response) {
    println!(
        "{}",
        serde::json::to_string_pretty(&resp.provenance.planned)
    );
}

#[cfg(not(feature = "serde"))]
fn print_plan_json(_resp: &cqd2::engine::Response) {
    // Unreachable: run_eval rejects --json on serde-less builds.
}

fn exit_with(msg: &str) -> ! {
    eprintln!("cqd2-analyze: {msg}");
    std::process::exit(1)
}
