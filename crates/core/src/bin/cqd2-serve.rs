//! `cqd2-serve` — the standalone serving daemon.
//!
//! Publishes one or more named databases into a versioned
//! [`cqd2::engine::Catalog`] at startup, binds a TCP listener,
//! and serves the `docs/PROTOCOL.md` wire protocol until SIGTERM /
//! ctrl-c (or stdin EOF with `--shutdown-on-stdin-close`, for harnesses
//! without signals):
//!
//! ```sh
//! printf 'R(1, 2)\nS(2, 3)\nS(2, 4)\n' > facts.txt
//! cargo run --release --bin cqd2-serve -- --listen 127.0.0.1:7878 \
//!     --db main=facts.txt --allow-reload
//!
//! # then, from another shell:
//! cargo run --release --bin cqd2-analyze -- client --addr 127.0.0.1:7878 \
//!     --db main --query 'R(?x, ?y), S(?y, ?z)' --count
//! # hot-reload `main` without restarting (requires --allow-reload):
//! cargo run --release --bin cqd2-analyze -- client reload \
//!     --addr 127.0.0.1:7878 --db main new-facts.txt
//! # or apply an incremental @insert/@delete delta — only touched
//! # relations are rebuilt, warm prepared handles stay warm:
//! cargo run --release --bin cqd2-analyze -- client delta \
//!     --addr 127.0.0.1:7878 --db main changes.delta
//! ```
//!
//! Flags: `--listen addr:port` (default `127.0.0.1:7878`; port 0 lets
//! the OS pick and prints the bound address), repeated `--db name=path`
//! (the file format is sniffed: binary `.cqds` snapshots — see
//! `docs/SNAPSHOT.md` and `cqd2-analyze snapshot save` — load with
//! their persisted statistics and skip the publish-time stats pass;
//! anything else parses as a facts-only text file, see
//! `cqd2::engine::textio::parse_database`; repeating a name is a
//! startup error, never silent last-wins),
//! `--allow-reload` (accept protocol-v2 `Reload` *and* incremental
//! `Delta` admin frames — both mutate served data, so they share the
//! gate),
//! `--plans path` (plan-store spill: preload the engine's plan cache
//! from `path` at startup when the file exists and the catalog epochs
//! still match, and spill the cache back at shutdown),
//! `--workers N` (0 = available parallelism), `--queue N` (bounded
//! request queue = the backpressure point), `--prepared N` (per-db
//! prepared-query cache), `--cache N` (engine plan-cache capacity),
//! `--stats-interval SECS` (print a one-line metrics summary to stderr
//! every SECS seconds; the same numbers the protocol `Stats` admin
//! frame reports).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cqd2::engine::server::{signal, Server, ServerConfig};
use cqd2::engine::{store, Catalog, Engine, EngineConfig};

struct Args {
    listen: String,
    dbs: Vec<(String, String)>,
    config: ServerConfig,
    cache_capacity: usize,
    shutdown_on_stdin_close: bool,
    stats_interval: Option<u64>,
    plans: Option<String>,
}

fn parse_args(argv: &[String]) -> Args {
    let mut args = Args {
        listen: "127.0.0.1:7878".to_string(),
        dbs: Vec::new(),
        config: ServerConfig::default(),
        cache_capacity: EngineConfig::default().cache_capacity,
        shutdown_on_stdin_close: false,
        stats_interval: None,
        plans: None,
    };
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| -> String {
            iter.next()
                .unwrap_or_else(|| exit_with(&format!("{flag} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--listen" => args.listen = value_of("--listen"),
            "--db" => {
                let spec = value_of("--db");
                let Some((name, path)) = spec.split_once('=') else {
                    exit_with(&format!("--db expects name=path, got `{spec}`"));
                };
                // Repeated names are a configuration bug; refuse to
                // start rather than silently serving whichever file
                // came last under the shared name.
                if args.dbs.iter().any(|(n, _)| n == name) {
                    exit_with(&format!(
                        "duplicate --db name `{name}` — each database needs a unique name \
                         (use `cqd2-analyze client reload` to replace a running database)"
                    ));
                }
                args.dbs.push((name.to_string(), path.to_string()));
            }
            "--allow-reload" => args.config.allow_reload = true,
            "--plans" => args.plans = Some(value_of("--plans")),
            "--workers" => args.config.workers = parse_num(&value_of("--workers"), "--workers"),
            "--queue" => {
                args.config.queue_capacity = parse_num(&value_of("--queue"), "--queue").max(1)
            }
            "--prepared" => {
                args.config.prepared_capacity = parse_num(&value_of("--prepared"), "--prepared")
            }
            "--cache" => args.cache_capacity = parse_num(&value_of("--cache"), "--cache"),
            "--stats-interval" => {
                let secs = parse_num(&value_of("--stats-interval"), "--stats-interval");
                if secs == 0 {
                    exit_with("--stats-interval must be at least 1 second");
                }
                args.stats_interval = Some(secs as u64);
            }
            "--shutdown-on-stdin-close" => args.shutdown_on_stdin_close = true,
            "--help" | "-h" => {
                println!(
                    "cqd2-serve --listen ADDR:PORT --db NAME=PATH [--db NAME=PATH …]\n\
                     \x20          [--allow-reload] [--plans PATH] [--workers N] [--queue N]\n\
                     \x20          [--prepared N] [--cache N] [--stats-interval SECS]\n\
                     \x20          [--shutdown-on-stdin-close]\n\
                     \x20 --db paths may be text facts files or binary .cqds snapshots\n\
                     \x20 (sniffed by magic; see docs/SNAPSHOT.md)\n\
                     \x20 --allow-reload gates both Reload and incremental Delta admin frames"
                );
                std::process::exit(0);
            }
            other => exit_with(&format!("unknown flag `{other}` (try --help)")),
        }
    }
    if args.dbs.is_empty() {
        exit_with("no databases given — at least one --db name=path is required");
    }
    args
}

fn parse_num(text: &str, flag: &str) -> usize {
    text.parse::<usize>()
        .unwrap_or_else(|_| exit_with(&format!("{flag} `{text}` is not a number")))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv);

    let catalog = Catalog::new();
    for (name, path) in &args.dbs {
        let bytes = std::fs::read(path)
            .unwrap_or_else(|e| exit_with(&format!("loading --db {name}={path}: {e}")));
        // Format sniff: `.cqds` snapshots carry a magic prefix; anything
        // else is treated as a facts-only text file.
        if store::is_snapshot(&bytes) {
            let file = store::decode_snapshot(&bytes)
                .unwrap_or_else(|e| exit_with(&format!("loading --db {name}={path}: {e}")));
            let snapshot = catalog
                .publish_with_stats(name, file.db, file.stats)
                .unwrap_or_else(|e| exit_with(&format!("loading --db {name}={path}: {e}")));
            eprintln!(
                "cqd2-serve: published `{name}` from snapshot {path}: {} facts in {} relations \
                 (epoch 0, stats persisted)",
                snapshot.db().size(),
                snapshot.db().relations().count()
            );
        } else {
            let text = String::from_utf8(bytes).unwrap_or_else(|_| {
                exit_with(&format!(
                    "loading --db {name}={path}: not a .cqds snapshot and not UTF-8 text"
                ))
            });
            let snapshot = catalog
                .publish_str(name, &text)
                .unwrap_or_else(|e| exit_with(&format!("loading --db {name}={path}: {e}")));
            eprintln!(
                "cqd2-serve: published `{name}` from {path}: {} facts in {} relations (epoch 0)",
                snapshot.db().size(),
                snapshot.db().relations().count()
            );
        }
    }

    let engine = Engine::new(EngineConfig {
        cache_capacity: args.cache_capacity,
        ..EngineConfig::default()
    });
    if let Some(plans_path) = &args.plans {
        if std::path::Path::new(plans_path).exists() {
            match store::load_plans(plans_path, &engine, &catalog) {
                Ok(load) if load.stale > 0 => eprintln!(
                    "cqd2-serve: preloaded {} plan(s) from {plans_path}, \
                     skipped {} stale record(s) (catalog epochs moved)",
                    load.loaded, load.stale
                ),
                Ok(load) => {
                    eprintln!(
                        "cqd2-serve: preloaded {} plan(s) from {plans_path}",
                        load.loaded
                    )
                }
                Err(e) => eprintln!("cqd2-serve: ignoring plan store {plans_path}: {e}"),
            }
        }
    }
    let server = Server::bind(&args.listen, args.config.clone())
        .unwrap_or_else(|e| exit_with(&format!("cannot bind {}: {e}", args.listen)));
    let addr = server.local_addr().expect("bound listener has an address");
    let handle = server.handle();
    if !signal::install_shutdown_signals(&handle) {
        eprintln!(
            "cqd2-serve: signal handlers unavailable; stop via --shutdown-on-stdin-close or kill"
        );
    }
    if args.shutdown_on_stdin_close {
        spawn_stdin_watch(handle.shutdown_flag());
    }
    if args.config.allow_reload {
        eprintln!("cqd2-serve: reloads and deltas enabled (--allow-reload)");
    }
    if let Some(secs) = args.stats_interval {
        spawn_stats_dump(handle.clone(), secs);
    }
    // The line harnesses wait for before connecting.
    println!(
        "cqd2-serve: listening on {addr} (dbs: {})",
        catalog.names().join(", ")
    );

    let stats = server
        .run(&engine, &catalog)
        .unwrap_or_else(|e| exit_with(&format!("server failed: {e}")));
    if let Some(plans_path) = &args.plans {
        match store::save_plans(plans_path, &engine, &catalog) {
            Ok(count) => eprintln!("cqd2-serve: spilled {count} plan(s) to {plans_path}"),
            Err(e) => eprintln!("cqd2-serve: could not spill plans to {plans_path}: {e}"),
        }
    }
    println!(
        "cqd2-serve: shutdown complete — {} connections, {} batches ({} queries, {} answered), \
         {} overload-rejected, {} parse errors, {} reloads, prepared cache {} hits / {} misses",
        stats.connections,
        stats.batches,
        stats.queries,
        stats.answered,
        stats.rejected_overload,
        stats.parse_errors,
        stats.reloads,
        stats.prepared_hits,
        stats.prepared_misses,
    );
}

/// Print the server's one-line metrics summary to stderr every
/// `secs` seconds until shutdown. The line is produced by the running
/// server's own metrics registry, so it matches what a `Stats` admin
/// frame would report at the same instant.
fn spawn_stats_dump(handle: cqd2::engine::server::ServerHandle, secs: u64) {
    let flag = handle.shutdown_flag();
    // cqd2-lint: allow(unscoped-spawn, reason = "daemon-lifetime stats dumper; exits with the process, nothing to join")
    std::thread::spawn(move || {
        let interval = std::time::Duration::from_secs(secs);
        while !flag.load(Ordering::SeqCst) {
            std::thread::sleep(interval);
            if let Some(line) = handle.stats_line() {
                eprintln!("cqd2-serve: {line}");
            }
        }
    });
}

/// Flip the shutdown flag when stdin reaches EOF (the parent process
/// closed the pipe) — a portable stand-in for signals under test
/// harnesses and CI runners that cannot deliver them.
fn spawn_stdin_watch(flag: Arc<AtomicBool>) {
    // cqd2-lint: allow(unscoped-spawn, reason = "blocks in stdin read until the parent closes the pipe; cannot be scoped")
    std::thread::spawn(move || {
        use std::io::Read;
        let mut sink = [0u8; 256];
        let mut stdin = std::io::stdin();
        loop {
            match stdin.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        flag.store(true, Ordering::SeqCst);
    });
}

fn exit_with(msg: &str) -> ! {
    eprintln!("cqd2-serve: {msg}");
    std::process::exit(1)
}
