//! # cqd2 — The Complexity of Conjunctive Queries with Degree 2
//!
//! A from-scratch Rust reproduction of Matthias Lanzinger's PODS 2022
//! paper. The facade re-exports all subsystem crates and provides a small
//! high-level API for the most common workflows:
//!
//! - [`analyze`]: structural analysis of a hypergraph — degree, rank,
//!   certified ghw interval, and (for degree-2 inputs) the jigsaw dilution
//!   extracted by the Theorem 4.7 pipeline.
//! - [`solve_bcq`] / [`count_answers`] / [`enumerate_answers`]: Boolean
//!   CQ evaluation, full-CQ answer counting, and answer enumeration,
//!   served through the process-wide [`engine::Engine`]: the query's
//!   structure is classified once per isomorphism class (Props. 2.2 and
//!   4.14, Theorem 4.7), the decomposition is cached, and evaluation
//!   dispatches to the cheapest correct strategy.
//! - [`reduce_instance`]: the Theorem 3.4 fpt-reduction along a dilution
//!   sequence.
//!
//! Serving workloads should use the handle-based API: open an
//! [`engine::Session`] per database (statistics snapshotted once),
//! [`engine::Session::prepare`] each query (structure analysis + plan
//! resolved once, via the cache), then re-run the
//! [`engine::PreparedQuery`] — including streaming enumeration through
//! [`engine::PreparedQuery::cursor`]. Batch serving (many `(query, db)`
//! requests, worker parallelism, plan provenance) lives on
//! [`engine::Engine::execute_batch`].
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`hypergraph`] | hypergraph/graph ADTs, duals, reduced form, isomorphism, generators |
//! | [`decomp`] | tree decompositions, exact tw/ghw/fhw, GHDs, Lemma 4.6 dual bound |
//! | [`minors`] | minor maps, exact minor search, grid minors, expressive minors |
//! | [`dilution`] | Definition 3.1 operations, Lemma 3.6, Theorem 3.5 decision, Lemmas 4.4/B.1 |
//! | [`jigsaw`] | jigsaws, pre-jigsaws (Def. 5.1, Lemma D.4), Theorem 4.7 extraction |
//! | [`cq`] | conjunctive queries, databases, BCQ / #CQ evaluation, cores, semantic ghw |
//! | [`reduction`] | Theorem 3.4 / 4.15 instance reduction with parsimony verification |
//! | [`hyperbench`] | Table 1 corpus, census, recognizers, `.hg` parser |
//! | [`engine`] | serving layer: structure-aware planner, isomorphism-keyed plan cache, sessions / prepared queries, parallel batch executor, and (with the `serde` feature) the `cqd2-serve` socket front-end |

pub use cqd2_cq as cq;
pub use cqd2_decomp as decomp;
pub use cqd2_dilution as dilution;
pub use cqd2_engine as engine;
pub use cqd2_hyperbench as hyperbench;
pub use cqd2_hypergraph as hypergraph;
pub use cqd2_jigsaw as jigsaw;
pub use cqd2_minors as minors;
pub use cqd2_reduction as reduction;

use cqd2_cq::{ConjunctiveQuery, Database};
use cqd2_hypergraph::Hypergraph;

/// Structural analysis of a hypergraph (the "what does the paper say about
/// this query structure?" entry point).
#[derive(Debug, Clone)]
pub struct StructureReport {
    /// Maximum vertex degree.
    pub degree: usize,
    /// Maximum edge size.
    pub rank: usize,
    /// Certified ghw interval `[lower, upper]`.
    pub ghw_lower: usize,
    /// Certified ghw interval `[lower, upper]`.
    pub ghw_upper: usize,
    /// For degree-2 inputs: the largest square jigsaw the Theorem 4.7
    /// pipeline extracted, with the verified dilution sequence length.
    pub jigsaw: Option<(usize, usize)>,
}

/// Analyze a hypergraph: certified ghw interval plus, for degree-2 inputs
/// of non-trivial width, a verified jigsaw dilution (Theorem 4.7).
///
/// Routed through the shared [`engine::Engine`], so the structural
/// analysis is cached and later evaluations of isomorphic query
/// structures reuse it.
pub fn analyze(h: &Hypergraph) -> StructureReport {
    let stats = cqd2_hyperbench::census::analyze(h);
    let (structure, _cache_hit) = cqd2_engine::Engine::shared().structure_for(h);
    StructureReport {
        degree: stats.degree,
        rank: stats.rank,
        ghw_lower: stats.ghw_lower,
        ghw_upper: stats.ghw_upper,
        jigsaw: structure
            .jigsaw
            .as_ref()
            .map(|(seq, n)| (*n, seq.ops.len())),
    }
}

/// Decide `q(D) ≠ ∅` through the shared serving engine: the structure is
/// classified once per isomorphism class (Prop. 2.2 GHD route when one
/// exists), then evaluation dispatches to the planned strategy.
pub fn solve_bcq(q: &ConjunctiveQuery, db: &Database) -> bool {
    cqd2_engine::Engine::shared().solve_bcq(q, db)
}

/// Count `|q(D)|` for a full CQ through the shared serving engine
/// (Prop. 4.14 counting DP when a GHD exists).
pub fn count_answers(q: &ConjunctiveQuery, db: &Database) -> u128 {
    cqd2_engine::Engine::shared().count_answers(q, db)
}

/// Enumerate up to `limit` answer tuples of `q(D)` (`None` = all)
/// through the shared serving engine: on bounded-width structures the
/// bag tree is semijoin-reduced and answers stream with constant delay.
/// Tuples are full assignments in `Var` id order, in unspecified order.
/// Serving loops should prefer [`engine::PreparedQuery::cursor`], which
/// exposes the stream itself.
pub fn enumerate_answers(
    q: &ConjunctiveQuery,
    db: &Database,
    limit: Option<usize>,
) -> Vec<Vec<u64>> {
    cqd2_engine::Engine::shared().enumerate_answers(q, db, limit)
}

/// Run the Theorem 3.4 reduction of an instance bound to the result of a
/// dilution sequence back to the sequence's start hypergraph.
pub fn reduce_instance(
    h: &Hypergraph,
    seq: &cqd2_dilution::DilutionSequence,
    instance: &cqd2_reduction::Instance,
) -> Result<cqd2_reduction::ReductionReport, cqd2_reduction::ReductionError> {
    cqd2_reduction::reduce_along(h, seq, instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_hypergraph::generators::{hyperchain, hypercycle};

    #[test]
    fn analyze_chain() {
        let r = analyze(&hyperchain(4, 3));
        assert_eq!(r.degree, 2);
        assert_eq!((r.ghw_lower, r.ghw_upper), (1, 1));
        assert!(r.jigsaw.is_none());
    }

    #[test]
    fn analyze_jigsaw() {
        let j = cqd2_jigsaw::jigsaw(3, 3);
        let r = analyze(&j);
        assert_eq!(r.degree, 2);
        assert!(r.ghw_lower >= 3);
        let (n, len) = r.jigsaw.expect("pipeline finds the jigsaw");
        assert_eq!(n, 3);
        let _ = len;
    }

    #[test]
    fn bcq_and_count_roundtrip() {
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])]);
        let mut db = Database::new();
        db.insert_all("R", &[vec![1, 2]]);
        db.insert_all("S", &[vec![2, 3], vec![2, 4]]);
        assert!(solve_bcq(&q, &db));
        assert_eq!(count_answers(&q, &db), 2);
        let mut tuples = enumerate_answers(&q, &db, None);
        tuples.sort_unstable();
        assert_eq!(tuples, vec![vec![1, 2, 3], vec![1, 2, 4]]);
        assert_eq!(enumerate_answers(&q, &db, Some(1)).len(), 1);
        let _ = analyze(&hypercycle(4, 2));
    }
}
