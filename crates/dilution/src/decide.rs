//! Deciding hypergraph dilution (NP-complete, Theorem 3.5).
//!
//! Two procedures are provided:
//!
//! - [`decide_dilution`]: budgeted exhaustive DFS over operation sequences
//!   with Lemma 3.2 monotonicity pruning and concrete-state deduplication.
//!   Exact within its budget.
//! - [`decide_dilution_to_graph_dual`]: for degree-2 hosts and targets of
//!   the form `G^d`, the Lemma 4.4 / B.1 duality reduces the question to a
//!   graph-minor search in `H^d` — the route the paper's Theorem 3.5 proof
//!   formalizes, and dramatically faster in practice (benchmarked as
//!   experiment V4).

use crate::duality::{dilution_from_minor_map, dual_as_graph};
use crate::error::DilutionError;
use crate::ops::{DilutionOp, DilutionSequence};
use crate::reduce_seq::reduction_sequence;
use cqd2_hypergraph::{are_isomorphic, reduce, Graph, Hypergraph, VertexId};
use cqd2_minors::finder::MinorSearch;
use std::collections::BTreeSet;

/// Outcome of a budgeted dilution search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DilutionSearch {
    /// A dilution sequence from the host to (an isomorphic copy of) the
    /// target.
    Found(DilutionSequence),
    /// Exhaustive search proved no dilution exists.
    No,
    /// Budget exhausted.
    BudgetExceeded,
}

impl DilutionSearch {
    /// The sequence, if found.
    pub fn sequence(self) -> Option<DilutionSequence> {
        match self {
            DilutionSearch::Found(s) => Some(s),
            _ => None,
        }
    }
}

/// Decide whether `target` is a hypergraph dilution of `from`, spending at
/// most `budget` search nodes.
pub fn decide_dilution(from: &Hypergraph, target: &Hypergraph, budget: u64) -> DilutionSearch {
    if are_isomorphic(from, target) {
        return DilutionSearch::Found(DilutionSequence::empty());
    }
    let mut st = Search {
        target,
        budget,
        exhausted: false,
        seen: std::collections::HashSet::new(),
        ops: Vec::new(),
    };
    if st.dfs(from) {
        return DilutionSearch::Found(DilutionSequence { ops: st.ops });
    }
    if st.exhausted {
        DilutionSearch::BudgetExceeded
    } else {
        DilutionSearch::No
    }
}

struct Search<'a> {
    target: &'a Hypergraph,
    budget: u64,
    exhausted: bool,
    seen: std::collections::HashSet<(usize, Vec<Vec<u32>>)>,
    ops: Vec<DilutionOp>,
}

impl Search<'_> {
    fn key(h: &Hypergraph) -> (usize, Vec<Vec<u32>>) {
        let mut edges: Vec<Vec<u32>> = h
            .edge_ids()
            .map(|e| h.edge(e).iter().map(|v| v.0).collect())
            .collect();
        edges.sort();
        (h.num_vertices(), edges)
    }

    fn prune(&self, h: &Hypergraph) -> bool {
        // Lemma 3.2 monotonicity: |V|, |E| and degree never increase.
        h.num_vertices() < self.target.num_vertices()
            || h.num_edges() < self.target.num_edges()
            || h.max_degree() < self.target.max_degree()
    }

    fn dfs(&mut self, h: &Hypergraph) -> bool {
        if self.budget == 0 {
            self.exhausted = true;
            return false;
        }
        self.budget -= 1;
        if self.prune(h) {
            return false;
        }
        if h.num_vertices() == self.target.num_vertices()
            && h.num_edges() == self.target.num_edges()
            && are_isomorphic(h, self.target)
        {
            return true;
        }
        if !self.seen.insert(Self::key(h)) {
            return false;
        }
        // Enumerate applicable operations.
        let mut candidates: Vec<DilutionOp> = Vec::new();
        for v in h.vertices() {
            candidates.push(DilutionOp::DeleteVertex(v));
            if h.degree(v) >= 1 {
                candidates.push(DilutionOp::MergeOnVertex(v));
            }
        }
        for e in h.edge_ids() {
            if DilutionOp::DeleteSubedge(e).is_applicable(h) {
                candidates.push(DilutionOp::DeleteSubedge(e));
            }
        }
        for op in candidates {
            let Ok((next, _)) = op.apply(h) else { continue };
            self.ops.push(op);
            if self.dfs(&next) {
                return true;
            }
            self.ops.pop();
            if self.exhausted {
                return false;
            }
        }
        false
    }
}

/// Decide whether `g^d` is a dilution of the degree-2 hypergraph `h` via
/// the minor-duality route: reduce `h` (Lemma 3.6), search for `g` as a
/// minor of `H^d` (Lemma B.1 direction), and construct the dilution
/// sequence with Lemma 4.4.
///
/// The returned sequence starts at `h` (reduction prefix included).
pub fn decide_dilution_to_graph_dual(
    h: &Hypergraph,
    g: &Graph,
    minor_budget: u64,
) -> Result<DilutionSearch, DilutionError> {
    if h.max_degree() > 2 {
        return Err(DilutionError::Unsupported(
            "duality route requires a degree-2 host",
        ));
    }
    if !g.is_connected() || g.num_edges() == 0 {
        return Err(DilutionError::Unsupported(
            "pattern must be connected with ≥ 1 edge",
        ));
    }
    let prefix = reduction_sequence(h)?;
    let reduced = prefix.apply(h)?;
    if !reduce::is_reduced(&reduced) {
        return Err(DilutionError::Construction(
            "reduction did not produce a reduced hypergraph".to_string(),
        ));
    }
    let hd = dual_as_graph(&reduced);
    // Iterative deepening on the branch-set cap: small models are found
    // orders of magnitude faster; the final uncapped run is authoritative
    // for a NO answer.
    let mut last = MinorSearch::NotMinor;
    for cap in [1usize, 2, 4, usize::MAX] {
        let budget = if cap == usize::MAX {
            minor_budget
        } else {
            (minor_budget / 8).max(10_000)
        };
        last = cqd2_minors::finder::find_minor_capped(g, &hd, budget, cap);
        if matches!(last, MinorSearch::Found(_)) {
            break;
        }
    }
    match last {
        MinorSearch::Found(model) => {
            let (suffix, _) = dilution_from_minor_map(&reduced, g, &model)?;
            let mut ops = prefix.ops;
            ops.extend(suffix.ops);
            Ok(DilutionSearch::Found(DilutionSequence { ops }))
        }
        MinorSearch::NotMinor => Ok(DilutionSearch::No),
        MinorSearch::BudgetExceeded => Ok(DilutionSearch::BudgetExceeded),
    }
}

/// Check a claimed dilution sequence: apply it to `from` and verify the
/// result is isomorphic to `target`. Also verifies Lemma 3.2 invariants at
/// every step.
pub fn verify_dilution(
    from: &Hypergraph,
    target: &Hypergraph,
    seq: &DilutionSequence,
) -> Result<(), DilutionError> {
    let run = seq.run(from)?;
    for w in run.hypergraphs.windows(2) {
        crate::ops::check_step_invariants(&w[0], &w[1])?;
    }
    if !are_isomorphic(run.result(), target) {
        return Err(DilutionError::Construction(
            "sequence result is not isomorphic to the target".to_string(),
        ));
    }
    Ok(())
}

/// All dilutions of `h` reachable within `max_ops` operations, up to
/// concrete-state identity (used by tests and the finiteness demonstration
/// of Lemma 3.2).
pub fn enumerate_dilutions(h: &Hypergraph, max_ops: usize) -> Vec<Hypergraph> {
    let mut seen: std::collections::HashSet<(usize, Vec<Vec<u32>>)> =
        std::collections::HashSet::new();
    let mut out = Vec::new();
    let mut stack = vec![(h.clone(), 0usize)];
    seen.insert(Search::key(h));
    out.push(h.clone());
    while let Some((cur, depth)) = stack.pop() {
        if depth == max_ops {
            continue;
        }
        let mut candidates: Vec<DilutionOp> = Vec::new();
        for v in cur.vertices() {
            candidates.push(DilutionOp::DeleteVertex(v));
            if cur.degree(v) >= 1 {
                candidates.push(DilutionOp::MergeOnVertex(v));
            }
        }
        for e in cur.edge_ids() {
            if DilutionOp::DeleteSubedge(e).is_applicable(&cur) {
                candidates.push(DilutionOp::DeleteSubedge(e));
            }
        }
        for op in candidates {
            let Ok((next, _)) = op.apply(&cur) else {
                continue;
            };
            if seen.insert(Search::key(&next)) {
                out.push(next.clone());
                stack.push((next, depth + 1));
            }
        }
    }
    out
}

/// The vertices of `h` as a `BTreeSet` (test helper exported for
/// integration tests).
pub fn vertex_set(h: &Hypergraph) -> BTreeSet<VertexId> {
    h.vertices().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_hypergraph::generators::{cycle_graph, grid_graph, hyperchain};

    fn graph_dual(g: &Graph) -> Hypergraph {
        let (d, _) = cqd2_hypergraph::dual(&g.to_hypergraph());
        d
    }

    #[test]
    fn trivial_self_dilution() {
        let h = hyperchain(3, 3);
        assert_eq!(
            decide_dilution(&h, &h, 10),
            DilutionSearch::Found(DilutionSequence::empty())
        );
    }

    #[test]
    fn chain_dilutes_to_shorter_chain() {
        let h4 = hyperchain(4, 2);
        let h3 = hyperchain(3, 2);
        match decide_dilution(&h4, &h3, 500_000) {
            DilutionSearch::Found(seq) => verify_dilution(&h4, &h3, &seq).unwrap(),
            other => panic!("expected dilution, got {other:?}"),
        }
    }

    #[test]
    fn no_dilution_to_larger() {
        let h3 = hyperchain(3, 2);
        let h4 = hyperchain(4, 2);
        assert_eq!(decide_dilution(&h3, &h4, 100_000), DilutionSearch::No);
    }

    #[test]
    fn jigsaw_dilutes_to_smaller_jigsaw_via_duality() {
        // J_3 dilutes to J_2 (the paper: the n×m jigsaw dilutes to the
        // n×(m−1) jigsaw); check via the duality route.
        let j3 = graph_dual(&grid_graph(3, 3));
        let g22 = grid_graph(2, 2);
        let result = decide_dilution_to_graph_dual(&j3, &g22, 5_000_000).unwrap();
        let seq = result.sequence().expect("J_2 is a dilution of J_3");
        verify_dilution(&j3, &graph_dual(&g22), &seq).unwrap();
    }

    #[test]
    fn duality_route_rejects_non_minors() {
        // K4^d is not a dilution of a hyperchain (dual is a path; K4 not a
        // path minor).
        let chain = hyperchain(6, 2);
        let k4 = cqd2_hypergraph::generators::complete_graph(4);
        let r = decide_dilution_to_graph_dual(&chain, &k4, 1_000_000).unwrap();
        assert_eq!(r, DilutionSearch::No);
    }

    #[test]
    fn direct_and_duality_agree_on_small_cases() {
        // C3^d is a dilution of C5^d? C3 ≼ C5, so yes.
        let c5d = graph_dual(&cycle_graph(5));
        let c3 = cycle_graph(3);
        let c3d = graph_dual(&c3);
        let via_dual = decide_dilution_to_graph_dual(&c5d, &c3, 1_000_000).unwrap();
        let seq = via_dual.sequence().expect("dilution exists");
        verify_dilution(&c5d, &c3d, &seq).unwrap();
        let direct = decide_dilution(&c5d, &c3d, 2_000_000);
        match direct {
            DilutionSearch::Found(s) => verify_dilution(&c5d, &c3d, &s).unwrap(),
            other => panic!("direct search should agree: {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_reported() {
        let j3 = graph_dual(&grid_graph(3, 3));
        let j2 = graph_dual(&grid_graph(2, 2));
        assert_eq!(decide_dilution(&j3, &j2, 3), DilutionSearch::BudgetExceeded);
    }

    #[test]
    fn enumeration_is_finite_and_contains_reductions() {
        // Lemma 3.2(2) ⇒ finitely many dilutions; enumerate a small case.
        let h = hyperchain(2, 2); // path of two rank-2 edges
        let all = enumerate_dilutions(&h, 6);
        assert!(all.len() > 1);
        // Every enumerated hypergraph has |V|+|E| ≤ the original's.
        let bound = h.num_vertices() + h.num_edges();
        for d in &all {
            assert!(d.num_vertices() + d.num_edges() <= bound);
        }
    }

    #[test]
    fn verify_rejects_wrong_target() {
        let h4 = hyperchain(4, 2);
        let h3 = hyperchain(3, 2);
        let seq = decide_dilution(&h4, &h3, 500_000).sequence().unwrap();
        let wrong = hyperchain(2, 2);
        assert!(verify_dilution(&h4, &wrong, &seq).is_err());
    }
}
