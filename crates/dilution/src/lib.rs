//! Hypergraph dilutions — the paper's central structural notion
//! (Definition 3.1).
//!
//! `H` is a *dilution* of `H'` when `H` is isomorphic to a hypergraph
//! reachable from `H'` by (1) vertex deletions, (2) deletions of edges that
//! are proper subsets of other edges, and (3) *mergings*: replacing the
//! incident edges `I_v` of a vertex `v` by the single edge `(⋃ I_v) \ {v}`.
//!
//! This crate implements:
//!
//! - [`ops`]: the three operations, dilution sequences with provenance
//!   traces, and the Lemma 3.2 invariants (degree non-increasing,
//!   `|V| + |E|` strictly decreasing, `ghw` non-increasing).
//! - [`reduce_seq`]: Lemma 3.6 — the polynomial-time dilution sequence from
//!   any hypergraph to its reduced hypergraph.
//! - [`adler`]: the *hypergraph minors* of Adler et al. (Definition 3.3),
//!   implemented for the Figure 1 comparison of contraction vs merging.
//! - [`decide`]: the dilution decision problem (NP-complete, Theorem 3.5):
//!   direct budgeted search, plus the degree-2 duality shortcut.
//! - [`duality`]: the constructive degree-2 duality — Lemma 4.4 (a minor
//!   map of `G` into `H^d` yields a dilution sequence from `H` to `G^d`)
//!   and Lemma B.1 (the converse, via edge-label tracking).
//!
//! One representational choice, documented once here: our merging operation
//! also deletes the merged-on vertex `v` (which Definition 3.1 leaves
//! behind as an isolated vertex). This is required for Lemma 3.2(2)'s
//! strict decrease of `|V| + |E|` to hold for mergings with `|I_v| = 1`,
//! and is equivalent for all reduced targets — the leftover vertex is
//! isolated and removable by operation (1).

pub mod adler;
pub mod decide;
pub mod duality;
pub mod error;
pub mod ops;
pub mod reduce_seq;

pub use decide::{decide_dilution, DilutionSearch};
pub use duality::{dilution_from_minor_map, minor_map_from_dilution};
pub use error::DilutionError;
pub use ops::{DilutionOp, DilutionSequence};
pub use reduce_seq::reduction_sequence;
