//! Hypergraph minors of Adler et al. (Definition 3.3), for comparison with
//! dilutions.
//!
//! Operations: vertex deletion, subedge deletion, *contraction* of two
//! vertices sharing a hyperedge, and addition of a hyperedge over an
//! existing primal clique. Figure 1 of the paper contrasts contraction
//! (which can raise the degree) with merging (which can raise the rank);
//! [`figure1_example`] reconstructs that example and the accompanying
//! tests verify both observations.

use cqd2_hypergraph::{HgError, Hypergraph, OpTrace, VertexId};

/// One hypergraph-minor operation (Definition 3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdlerOp {
    /// Delete a vertex.
    DeleteVertex(VertexId),
    /// Delete an edge that is a proper subset of another edge.
    DeleteSubedge(cqd2_hypergraph::EdgeId),
    /// Contract two vertices contained in a common hyperedge: replace both
    /// by a fresh vertex adjacent to the union of their incidences.
    Contract(VertexId, VertexId),
    /// Add a hyperedge whose vertices already form a clique in the primal
    /// graph.
    AddCliqueEdge(Vec<VertexId>),
}

impl AdlerOp {
    /// Apply the operation.
    pub fn apply(&self, h: &Hypergraph) -> Result<(Hypergraph, OpTrace), HgError> {
        match self {
            AdlerOp::DeleteVertex(v) => h.delete_vertex(*v),
            AdlerOp::DeleteSubedge(e) => h.delete_edge(*e, true),
            AdlerOp::Contract(x, y) => contract(h, *x, *y),
            AdlerOp::AddCliqueEdge(vs) => add_clique_edge(h, vs),
        }
    }
}

/// Contract vertices `x` and `y` (must share a hyperedge): `y` is merged
/// into `x`, i.e. `x` replaces `y` in all edges.
fn contract(h: &Hypergraph, x: VertexId, y: VertexId) -> Result<(Hypergraph, OpTrace), HgError> {
    if x.idx() >= h.num_vertices() {
        return Err(HgError::VertexOutOfRange(x.0));
    }
    if y.idx() >= h.num_vertices() {
        return Err(HgError::VertexOutOfRange(y.0));
    }
    let share = h.incident_edges(x).iter().any(|&e| h.edge_contains(e, y));
    if !share || x == y {
        return Err(HgError::Precondition(format!(
            "v{} and v{} do not share a hyperedge",
            x.0, y.0
        )));
    }
    // Build edge list with y replaced by x, then drop y from the vertex set.
    let edges: Vec<Vec<u32>> = h
        .edge_ids()
        .map(|e| {
            let mut vs: Vec<u32> = h
                .edge(e)
                .iter()
                .map(|&v| if v == y { x.0 } else { v.0 })
                .collect();
            vs.sort_unstable();
            vs.dedup();
            vs
        })
        .collect();
    // Deduplicate edges that became equal; build via intermediate
    // hypergraph that keeps y as an isolated vertex, then delete it.
    let mut seen = std::collections::BTreeMap::new();
    let mut dedup_edges: Vec<Vec<u32>> = Vec::new();
    let mut edge_map: Vec<Option<cqd2_hypergraph::EdgeId>> = Vec::new();
    for e in edges {
        match seen.get(&e) {
            Some(&id) => edge_map.push(Some(id)),
            None => {
                let id = cqd2_hypergraph::EdgeId(dedup_edges.len() as u32);
                seen.insert(e.clone(), id);
                dedup_edges.push(e);
                edge_map.push(Some(id));
            }
        }
    }
    let with_isolated =
        Hypergraph::new(h.num_vertices(), &dedup_edges).expect("dedup keeps edges distinct");
    let (result, del_trace) = with_isolated.delete_vertex(y)?;
    let vertex_map: Vec<Option<VertexId>> = (0..h.num_vertices() as u32)
        .map(|v| {
            let v = if v == y.0 { x.0 } else { v };
            del_trace.vertex_map[v as usize]
        })
        .collect();
    let edge_map = edge_map
        .into_iter()
        .map(|e| e.and_then(|e| del_trace.edge_map[e.idx()]))
        .collect();
    Ok((
        result,
        OpTrace {
            vertex_map,
            edge_map,
        },
    ))
}

fn add_clique_edge(h: &Hypergraph, vs: &[VertexId]) -> Result<(Hypergraph, OpTrace), HgError> {
    // Verify the clique condition in the primal graph.
    for i in 0..vs.len() {
        if vs[i].idx() >= h.num_vertices() {
            return Err(HgError::VertexOutOfRange(vs[i].0));
        }
        for j in (i + 1)..vs.len() {
            let adjacent = h
                .incident_edges(vs[i])
                .iter()
                .any(|&e| h.edge_contains(e, vs[j]));
            if !adjacent {
                return Err(HgError::Precondition(format!(
                    "v{} and v{} are not adjacent in the primal graph",
                    vs[i].0, vs[j].0
                )));
            }
        }
    }
    let mut edges: Vec<Vec<u32>> = h
        .edge_ids()
        .map(|e| h.edge(e).iter().map(|v| v.0).collect())
        .collect();
    let mut new_edge: Vec<u32> = vs.iter().map(|v| v.0).collect();
    new_edge.sort_unstable();
    new_edge.dedup();
    if edges.iter().any(|e| {
        let mut s = e.clone();
        s.sort_unstable();
        s == new_edge
    }) {
        return Err(HgError::Precondition("edge already present".into()));
    }
    edges.push(new_edge);
    let hg = Hypergraph::new(h.num_vertices(), &edges)?;
    let mut trace = OpTrace::identity(h.num_vertices(), h.num_edges());
    trace.edge_map = (0..h.num_edges() as u32)
        .map(|i| Some(cqd2_hypergraph::EdgeId(i)))
        .collect();
    Ok((hg, trace))
}

/// The hypergraph `H` of Figure 1: a degree-2 hypergraph where contraction
/// and merging diverge.
///
/// `x` and `y` share the edge `{x, y, c}`; each has one further incident
/// edge. Contracting `x, y` yields a vertex of degree 3 (> 2, so the
/// result cannot be a dilution); merging on `y` yields the rank-4 edge
/// `{x, c, d, e}` (so the result cannot be reached by hypergraph-minor
/// operations, which can only add edges over existing primal cliques).
pub fn figure1_example() -> Hypergraph {
    // x=0, y=1, a=2, b=3, c=4, d=5, e=6.
    Hypergraph::new(
        7,
        &[
            vec![0, 1, 4], // {x, y, c}
            vec![0, 2, 3], // {x, a, b}
            vec![1, 5, 6], // {y, d, e}
        ],
    )
    .expect("distinct edges")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_hypergraph::EdgeId;

    #[test]
    fn contraction_can_increase_degree() {
        // Figure 1, left: contracting x,y puts the merged vertex in all
        // three edges — degree 3 > degree(H) = 2.
        let h = figure1_example();
        assert_eq!(h.max_degree(), 2);
        let (c, _) = AdlerOp::Contract(VertexId(0), VertexId(1))
            .apply(&h)
            .unwrap();
        let vxy = VertexId(0);
        assert!(c.degree(vxy) > 2, "contraction must raise the degree here");
        assert_eq!(c.rank(), 3);
    }

    #[test]
    fn merging_can_increase_rank() {
        use crate::ops::DilutionOp;
        // Figure 1, right: merging on y creates (⋃ I_y) \ {y} =
        // {x, c, d, e} of rank 4 > rank(H) = 3. Degree stays ≤ 2.
        let h = figure1_example();
        let (m, _) = DilutionOp::MergeOnVertex(VertexId(1)).apply(&h).unwrap();
        assert!(m.max_degree() <= 2, "merging never raises the degree");
        assert_eq!(m.rank(), 4, "merging created a rank-4 edge");
    }

    #[test]
    fn contraction_requires_common_edge() {
        let h = figure1_example();
        // a (2) and d (5) share no edge.
        assert!(AdlerOp::Contract(VertexId(2), VertexId(5))
            .apply(&h)
            .is_err());
    }

    #[test]
    fn clique_edge_addition_checks_primal() {
        let h = Hypergraph::new(3, &[vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap();
        // {0,1,2} is a primal clique: addition allowed.
        let (h2, _) = AdlerOp::AddCliqueEdge(vec![VertexId(0), VertexId(1), VertexId(2)])
            .apply(&h)
            .unwrap();
        assert_eq!(h2.num_edges(), 4);
        assert_eq!(h2.rank(), 3);
        // Non-clique rejected.
        let h3 = Hypergraph::new(3, &[vec![0, 1], vec![1, 2]]).unwrap();
        assert!(
            AdlerOp::AddCliqueEdge(vec![VertexId(0), VertexId(1), VertexId(2)])
                .apply(&h3)
                .is_err()
        );
    }

    #[test]
    fn contraction_traces_are_consistent() {
        let h = figure1_example();
        let (c, t) = AdlerOp::Contract(VertexId(0), VertexId(1))
            .apply(&h)
            .unwrap();
        assert_eq!(t.vertex_map[0], t.vertex_map[1]);
        assert_eq!(t.vertex_map.len(), 7);
        assert!(c.num_vertices() == 6);
        let _ = EdgeId(0);
    }
}
