//! Dilution operations and sequences (Definition 3.1).

use cqd2_hypergraph::{EdgeId, HgError, Hypergraph, OpTrace, VertexId};

/// One dilution operation, referring to vertex/edge ids of the hypergraph
/// it is applied to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DilutionOp {
    /// Delete a vertex from the vertex set and all edges.
    DeleteVertex(VertexId),
    /// Delete an edge that is a proper subset of another edge.
    DeleteSubedge(EdgeId),
    /// Merge on a vertex: replace `I_v` by `(⋃ I_v) \ {v}` and drop `v`
    /// (see the crate docs for why `v` is consumed).
    MergeOnVertex(VertexId),
}

impl DilutionOp {
    /// Apply the operation, returning the successor hypergraph and the id
    /// trace.
    pub fn apply(&self, h: &Hypergraph) -> Result<(Hypergraph, OpTrace), HgError> {
        match *self {
            DilutionOp::DeleteVertex(v) => h.delete_vertex(v),
            DilutionOp::DeleteSubedge(e) => h.delete_edge(e, true),
            DilutionOp::MergeOnVertex(v) => {
                let (h1, t1) = h.merge_on_vertex(v)?;
                let (h2, t2) = h1.delete_vertex(v)?;
                Ok((h2, t1.then(&t2)))
            }
        }
    }

    /// Would this operation be legal on `h`?
    pub fn is_applicable(&self, h: &Hypergraph) -> bool {
        match *self {
            DilutionOp::DeleteVertex(v) => v.idx() < h.num_vertices(),
            DilutionOp::DeleteSubedge(e) => {
                e.idx() < h.num_edges()
                    && h.edge_ids().any(|f| f != e && h.edge_proper_subset(e, f))
            }
            DilutionOp::MergeOnVertex(v) => v.idx() < h.num_vertices() && h.degree(v) >= 1,
        }
    }
}

/// A sequence of dilution operations, each expressed in the ids of the
/// hypergraph produced by the previous step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DilutionSequence {
    /// The operations in application order.
    pub ops: Vec<DilutionOp>,
}

/// The full unfolding of a dilution sequence: every intermediate
/// hypergraph plus the step traces.
#[derive(Debug, Clone)]
pub struct DilutionRun {
    /// `hypergraphs[0]` is the start; `hypergraphs[i+1]` results from
    /// `ops[i]`.
    pub hypergraphs: Vec<Hypergraph>,
    /// `traces[i]` maps ids of `hypergraphs[i]` to ids of
    /// `hypergraphs[i+1]`.
    pub traces: Vec<OpTrace>,
}

impl DilutionRun {
    /// The final hypergraph.
    pub fn result(&self) -> &Hypergraph {
        self.hypergraphs.last().expect("at least the start")
    }

    /// Composite trace from the start hypergraph to the result.
    pub fn total_trace(&self) -> OpTrace {
        let start = &self.hypergraphs[0];
        let mut acc = OpTrace::identity(start.num_vertices(), start.num_edges());
        for t in &self.traces {
            acc = acc.then(t);
        }
        acc
    }
}

impl DilutionSequence {
    /// The empty sequence.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Is the sequence empty?
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Apply all operations to `h`, returning the full run.
    pub fn run(&self, h: &Hypergraph) -> Result<DilutionRun, HgError> {
        let mut hypergraphs = vec![h.clone()];
        let mut traces = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            let cur = hypergraphs.last().expect("nonempty");
            let (next, trace) = op.apply(cur)?;
            hypergraphs.push(next);
            traces.push(trace);
        }
        Ok(DilutionRun {
            hypergraphs,
            traces,
        })
    }

    /// Apply all operations, returning just the final hypergraph.
    pub fn apply(&self, h: &Hypergraph) -> Result<Hypergraph, HgError> {
        Ok(self.run(h)?.hypergraphs.pop().expect("nonempty"))
    }
}

/// Check the Lemma 3.2 invariants across one operation:
/// degree non-increasing and `|V| + |E|` strictly decreasing.
/// (The third invariant, `ghw` non-increasing, is exercised in tests via
/// the exact solver — it is too expensive for a runtime check.)
pub fn check_step_invariants(
    before: &Hypergraph,
    after: &Hypergraph,
) -> Result<(), crate::error::DilutionError> {
    use crate::error::DilutionError;
    if after.max_degree() > before.max_degree() {
        return Err(DilutionError::Invariant(format!(
            "degree increased: {} -> {}",
            before.max_degree(),
            after.max_degree()
        )));
    }
    let (b, a) = (
        before.num_vertices() + before.num_edges(),
        after.num_vertices() + after.num_edges(),
    );
    if a >= b {
        return Err(DilutionError::Invariant(format!(
            "|V|+|E| did not strictly decrease: {b} -> {a}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_hypergraph::generators::{hyperchain, hypercycle, random_degree_bounded};

    #[test]
    fn delete_vertex_op() {
        let h = hyperchain(3, 3);
        let op = DilutionOp::DeleteVertex(VertexId(0));
        assert!(op.is_applicable(&h));
        let (h2, _) = op.apply(&h).unwrap();
        check_step_invariants(&h, &h2).unwrap();
        assert_eq!(h2.num_vertices(), h.num_vertices() - 1);
    }

    #[test]
    fn subedge_deletion_requires_superset() {
        let h = Hypergraph::new(3, &[vec![0, 1], vec![0, 1, 2]]).unwrap();
        let ok = DilutionOp::DeleteSubedge(EdgeId(0));
        let bad = DilutionOp::DeleteSubedge(EdgeId(1));
        assert!(ok.is_applicable(&h));
        assert!(!bad.is_applicable(&h));
        let (h2, _) = ok.apply(&h).unwrap();
        check_step_invariants(&h, &h2).unwrap();
        assert!(bad.apply(&h).is_err());
    }

    #[test]
    fn merge_consumes_vertex() {
        let h = Hypergraph::new(4, &[vec![0, 1], vec![1, 2], vec![1, 3]]).unwrap();
        let op = DilutionOp::MergeOnVertex(VertexId(1));
        let (h2, trace) = op.apply(&h).unwrap();
        check_step_invariants(&h, &h2).unwrap();
        assert_eq!(h2.num_vertices(), 3);
        assert_eq!(h2.num_edges(), 1);
        assert_eq!(h2.edge(EdgeId(0)).len(), 3);
        assert_eq!(trace.vertex_map[1], None);
    }

    #[test]
    fn merge_on_degree_one_vertex_shrinks_edge() {
        // |I_v| = 1: merging replaces e by e \ {v} and consumes v —
        // |V|+|E| still strictly decreases (the Lemma 3.2(2) edge case).
        let h = Hypergraph::new(3, &[vec![0, 1, 2]]).unwrap();
        let op = DilutionOp::MergeOnVertex(VertexId(2));
        let (h2, _) = op.apply(&h).unwrap();
        check_step_invariants(&h, &h2).unwrap();
        assert_eq!(h2.num_vertices(), 2);
        assert_eq!(h2.num_edges(), 1);
        assert_eq!(h2.edge(EdgeId(0)).len(), 2);
    }

    #[test]
    fn sequence_run_records_intermediates() {
        let h = hypercycle(4, 3);
        let seq = DilutionSequence {
            ops: vec![
                DilutionOp::MergeOnVertex(VertexId(0)),
                DilutionOp::DeleteVertex(VertexId(0)),
            ],
        };
        let run = seq.run(&h).unwrap();
        assert_eq!(run.hypergraphs.len(), 3);
        for w in run.hypergraphs.windows(2) {
            check_step_invariants(&w[0], &w[1]).unwrap();
        }
        let total = run.total_trace();
        assert_eq!(total.vertex_map.len(), h.num_vertices());
    }

    #[test]
    fn invariants_hold_for_random_ops() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for seed in 0..10 {
            let mut h = random_degree_bounded(8, 4, 3, 0.6, seed);
            for _ in 0..6 {
                if h.num_vertices() == 0 {
                    break;
                }
                // Pick a random applicable op.
                let v = VertexId(rng.gen_range(0..h.num_vertices() as u32));
                let op = match rng.gen_range(0..3) {
                    0 => DilutionOp::DeleteVertex(v),
                    1 => DilutionOp::MergeOnVertex(v),
                    _ => {
                        let candidates: Vec<EdgeId> = h
                            .edge_ids()
                            .filter(|&e| DilutionOp::DeleteSubedge(e).is_applicable(&h))
                            .collect();
                        match candidates.first() {
                            Some(&e) => DilutionOp::DeleteSubedge(e),
                            None => DilutionOp::DeleteVertex(v),
                        }
                    }
                };
                if !op.is_applicable(&h) {
                    continue;
                }
                let (h2, _) = op.apply(&h).unwrap();
                check_step_invariants(&h, &h2).unwrap();
                h = h2;
            }
        }
    }

    #[test]
    fn ghw_never_increases_along_dilutions() {
        // Lemma 3.2 (3), checked with the exact solver on small instances.
        use cqd2_decomp::widths::ghw_exact;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for seed in 0..6 {
            let mut h = random_degree_bounded(6, 3, 2, 0.6, seed);
            let mut prev = ghw_exact(&h).expect("small");
            for _ in 0..4 {
                if h.num_vertices() == 0 {
                    break;
                }
                let v = VertexId(rng.gen_range(0..h.num_vertices() as u32));
                let op = if rng.gen_bool(0.5) {
                    DilutionOp::DeleteVertex(v)
                } else {
                    DilutionOp::MergeOnVertex(v)
                };
                if !op.is_applicable(&h) {
                    continue;
                }
                let (h2, _) = op.apply(&h).unwrap();
                let cur = ghw_exact(&h2).expect("small");
                assert!(
                    cur <= prev,
                    "ghw increased {prev} -> {cur} by {op:?} on {h:?}"
                );
                h = h2;
                prev = cur;
            }
        }
    }
}
