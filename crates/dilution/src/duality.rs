//! The degree-2 duality between graph minors and dilutions.
//!
//! **Lemma 4.4** (constructive): if `G` is a connected graph and `H` a
//! reduced degree-2 hypergraph such that `G` is a minor of `H^d`, then
//! `G^d` is a hypergraph dilution of `H`. [`dilution_from_minor_map`]
//! executes the proof: it merges on the *internal* vertices `τ_u` of every
//! branch set (fusing `δ(u)` into one edge `e_u`), fixes one *connector*
//! vertex `c_{u,v}` per pattern edge, deletes everything outside the
//! connector set `C`, and verifies the result is isomorphic to `G^d`.
//!
//! **Lemma B.1** (constructive converse): from a dilution sequence
//! `H ⤳ G^d` one recovers a minor map of `G` into `H^d` by tracking, for
//! every surviving edge, the set of original edges that were folded into
//! it (*edge labels*). [`minor_map_from_dilution`] implements the label
//! bookkeeping and validates the resulting model.
//!
//! Together these give the degree-2 case of Theorem 3.5's NP-hardness
//! (dilution checking ⟷ minor checking) and the structural half of
//! Theorem 4.7.

use crate::error::DilutionError;
use crate::ops::{DilutionOp, DilutionRun, DilutionSequence};
use cqd2_hypergraph::{
    dual, find_isomorphism, reduce::is_reduced, EdgeId, Graph, Hypergraph, VertexId,
};
use cqd2_minors::MinorMap;
use std::collections::BTreeSet;

/// View the dual of a degree-2 hypergraph as a simple graph.
///
/// For degree-2 `H` every dual edge `I_v` has at most two elements; rank-1
/// dual edges (degree-1 vertices of `H`) carry no adjacency and are
/// dropped.
pub fn dual_as_graph(h: &Hypergraph) -> Graph {
    assert!(h.max_degree() <= 2, "dual_as_graph requires degree ≤ 2");
    let (hd, _) = dual(h);
    let mut g = Graph::empty(hd.num_vertices());
    for e in hd.edge_ids() {
        let vs = hd.edge(e);
        if vs.len() == 2 {
            g.add_edge(vs[0].0, vs[1].0);
        }
    }
    g
}

/// **Lemma 4.4**: turn an onto minor map of connected `g` into `H^d` into
/// a dilution sequence from `h` to `g^d`. Returns the sequence and the
/// full run; the final hypergraph is verified isomorphic to `g^d`.
///
/// Requirements: `h` reduced with degree ≤ 2; `g` connected with at least
/// one edge; `mu` a valid minor map of `g` into [`dual_as_graph`]`(h)`
/// (it is made onto internally if it is not).
pub fn dilution_from_minor_map(
    h: &Hypergraph,
    g: &Graph,
    mu: &MinorMap,
) -> Result<(DilutionSequence, DilutionRun), DilutionError> {
    if h.max_degree() > 2 {
        return Err(DilutionError::Unsupported(
            "host hypergraph must have degree ≤ 2",
        ));
    }
    if !is_reduced(h) {
        return Err(DilutionError::Unsupported(
            "host hypergraph must be reduced (apply Lemma 3.6 first)",
        ));
    }
    if !g.is_connected() || g.num_edges() == 0 {
        return Err(DilutionError::Unsupported(
            "pattern graph must be connected with ≥ 1 edge",
        ));
    }
    let hd_graph = dual_as_graph(h);
    let mut mu = mu.clone();
    mu.validate(g, &hd_graph)?;
    if !mu.is_onto(&hd_graph) {
        mu.make_onto(&hd_graph);
        mu.validate(g, &hd_graph)?;
    }

    // δ(u): the branch set of u, as edges of h.
    let delta: Vec<BTreeSet<EdgeId>> = mu
        .branch_sets
        .iter()
        .map(|bs| bs.iter().map(|&e| EdgeId(e)).collect())
        .collect();
    // Owner of each edge of h.
    let mut owner: Vec<Option<usize>> = vec![None; h.num_edges()];
    for (u, d) in delta.iter().enumerate() {
        for &e in d {
            owner[e.idx()] = Some(u);
        }
    }
    debug_assert!(owner.iter().all(Option::is_some), "map is onto");

    // Connectors: for each pattern edge pick a degree-2 vertex of h whose
    // two incident edges lie in the two branch sets.
    let mut connectors: Vec<VertexId> = Vec::new();
    let mut in_c: Vec<bool> = vec![false; h.num_vertices()];
    for (u, v) in g.edges() {
        let c = h
            .vertices()
            .find(|&w| {
                if in_c[w.idx()] || h.degree(w) != 2 {
                    return false;
                }
                let iw = h.incident_edges(w);
                let (a, b) = (owner[iw[0].idx()], owner[iw[1].idx()]);
                (a == Some(u as usize) && b == Some(v as usize))
                    || (a == Some(v as usize) && b == Some(u as usize))
            })
            .ok_or_else(|| {
                DilutionError::Construction(format!(
                    "no free connector vertex for pattern edge ({u},{v})"
                ))
            })?;
        in_c[c.idx()] = true;
        connectors.push(c);
    }

    // τ_u: vertices incident only to edges of δ(u) (degree 1 or 2).
    let mut tau: Vec<bool> = vec![false; h.num_vertices()];
    for w in h.vertices() {
        let iw = h.incident_edges(w);
        if iw.is_empty() || in_c[w.idx()] {
            continue;
        }
        let owners: BTreeSet<usize> = iw.iter().map(|e| owner[e.idx()].expect("onto")).collect();
        if owners.len() == 1 {
            tau[w.idx()] = true;
        }
    }

    // Build the sequence, tracking ids through cumulative traces.
    let mut seq = DilutionSequence::empty();
    let mut hypergraphs = vec![h.clone()];
    let mut traces = Vec::new();
    let mut cum = cqd2_hypergraph::OpTrace::identity(h.num_vertices(), h.num_edges());

    // Phase 1: merge on every τ vertex.
    for w in h.vertices() {
        if !tau[w.idx()] {
            continue;
        }
        let Some(cur_w) = cum.vertex_map[w.idx()] else {
            continue; // already consumed by an earlier merge
        };
        let cur = hypergraphs.last().expect("nonempty").clone();
        if cur.degree(cur_w) == 0 {
            continue;
        }
        let op = DilutionOp::MergeOnVertex(cur_w);
        let (next, t) = op.apply(&cur)?;
        seq.ops.push(op);
        cum = cum.then(&t);
        hypergraphs.push(next);
        traces.push(t);
    }

    // Phase 2: delete every surviving vertex outside C.
    for w in h.vertices() {
        if in_c[w.idx()] {
            continue;
        }
        let Some(cur_w) = cum.vertex_map[w.idx()] else {
            continue;
        };
        let cur = hypergraphs.last().expect("nonempty").clone();
        let op = DilutionOp::DeleteVertex(cur_w);
        let (next, t) = op.apply(&cur)?;
        seq.ops.push(op);
        cum = cum.then(&t);
        hypergraphs.push(next);
        traces.push(t);
    }

    // Verify the result against g^d.
    let result = hypergraphs.last().expect("nonempty");
    let (gd, _) = dual(&g.to_hypergraph());
    if !cqd2_hypergraph::are_isomorphic(result, &gd) {
        return Err(DilutionError::Construction(format!(
            "construction did not reach g^d: got {result:?}, expected {gd:?}"
        )));
    }
    Ok((
        seq,
        DilutionRun {
            hypergraphs,
            traces,
        },
    ))
}

/// **Lemma B.1**: recover a minor map of `g` into `H^d` from a dilution
/// run `h ⤳ g^d`, by edge-label tracking. The returned model is validated
/// against [`dual_as_graph`]`(h)`.
///
/// `g` must have no two vertices with identical edge incidences (true for
/// every connected simple graph except `K₂`), so that edges of `g^d`
/// correspond one-to-one to vertices of `g`.
pub fn minor_map_from_dilution(
    h: &Hypergraph,
    g: &Graph,
    seq: &DilutionSequence,
) -> Result<MinorMap, DilutionError> {
    if h.max_degree() > 2 {
        return Err(DilutionError::Unsupported(
            "host hypergraph must have degree ≤ 2",
        ));
    }
    if g.num_vertices() == 2 && g.num_edges() == 1 {
        return Err(DilutionError::Unsupported(
            "K2 has duplicate vertex types in the dual; unsupported",
        ));
    }
    // Replay the sequence, maintaining labels: for each current edge, the
    // set of original edges folded into it.
    let mut cur = h.clone();
    let mut labels: Vec<BTreeSet<EdgeId>> = h.edge_ids().map(|e| BTreeSet::from([e])).collect();
    for op in &seq.ops {
        // For subedge deletion, remember the absorbing superset up front.
        let absorb: Option<(EdgeId, EdgeId)> = match *op {
            DilutionOp::DeleteSubedge(f) => {
                let sup = {
                    let found = cur
                        .edge_ids()
                        .find(|&e| e != f && cur.edge_proper_subset(f, e));
                    found.ok_or_else(|| {
                        DilutionError::Construction("subedge deletion without superset".to_string())
                    })?
                };
                Some((f, sup))
            }
            _ => None,
        };
        let (next, trace) = op.apply(&cur)?;
        let mut new_labels: Vec<BTreeSet<EdgeId>> = vec![BTreeSet::new(); next.num_edges()];
        for (old, lbl) in labels.iter().enumerate() {
            if let Some(new) = trace.edge_map[old] {
                new_labels[new.idx()].extend(lbl.iter().copied());
            }
        }
        if let Some((f, sup)) = absorb {
            let target = trace.edge_map[sup.idx()]
                .ok_or_else(|| DilutionError::Construction("superset vanished".to_string()))?;
            let lbl = labels[f.idx()].clone();
            new_labels[target.idx()].extend(lbl);
        }
        labels = new_labels;
        cur = next;
    }
    // Align the final hypergraph with g^d.
    let (gd, dm) = dual(&g.to_hypergraph());
    let iso = find_isomorphism(&cur, &gd).ok_or_else(|| {
        DilutionError::Construction("dilution result is not isomorphic to g^d".to_string())
    })?;
    // For every vertex v of g, find the result edge mapping to v's dual
    // edge, and take its label as the branch set.
    let mut branch_sets: Vec<Vec<u32>> = vec![Vec::new(); g.num_vertices()];
    for (v, branch) in branch_sets.iter_mut().enumerate() {
        let dual_edge = dm.vertex_to_edge[v].ok_or_else(|| {
            DilutionError::Construction("pattern has an isolated vertex".to_string())
        })?;
        let result_edge = iso
            .edge_map
            .iter()
            .position(|&e| e == dual_edge)
            .ok_or_else(|| {
                DilutionError::Construction("isomorphism misses a dual edge".to_string())
            })?;
        *branch = labels[result_edge].iter().map(|e| e.0).collect();
    }
    let mm = MinorMap { branch_sets };
    let hd_graph = dual_as_graph(h);
    mm.validate(g, &hd_graph)?;
    Ok(mm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_hypergraph::generators::{cycle_graph, grid_graph};
    use cqd2_minors::finder::{find_minor, MinorSearch};

    /// The dual of a graph, as a hypergraph (used to build degree-2 hosts).
    fn graph_dual(g: &Graph) -> Hypergraph {
        let (d, _) = dual(&g.to_hypergraph());
        d
    }

    #[test]
    fn dual_as_graph_of_jigsaw_is_grid() {
        // J_n = dual(grid); dual_as_graph(J_n) must be the grid again.
        let grid = grid_graph(3, 3);
        let jig = graph_dual(&grid);
        assert!(jig.max_degree() <= 2);
        let back = dual_as_graph(&jig);
        // Same counts; isomorphism via hypergraph check.
        assert_eq!(back.num_vertices(), grid.num_vertices());
        assert_eq!(back.num_edges(), grid.num_edges());
        assert!(cqd2_hypergraph::are_isomorphic(
            &back.to_hypergraph(),
            &grid.to_hypergraph()
        ));
    }

    #[test]
    fn identity_model_yields_trivial_dilution() {
        // H = J_3 (dual of 3x3 grid); G = 3x3 grid with identity model in
        // H^d = grid. Then G^d = J_3 and the dilution sequence should only
        // delete nothing essential — result ≅ J_3 itself.
        let grid = grid_graph(3, 3);
        let jig = graph_dual(&grid);
        let mu = MinorMap::identity(grid.num_vertices());
        let (seq, run) = dilution_from_minor_map(&jig, &grid, &mu).unwrap();
        assert!(cqd2_hypergraph::are_isomorphic(
            run.result(),
            &graph_dual(&grid)
        ));
        // Identity model: no merges needed (every δ(u) is a singleton);
        // nothing outside C except nothing... all vertices are connectors.
        assert!(seq.len() <= jig.num_vertices());
    }

    #[test]
    fn smaller_grid_extracted_from_larger_jigsaw() {
        // H = J_4; find a 3x3 grid minor in H^d (the 4x4 grid), dilute to
        // J_3.
        let host_grid = grid_graph(4, 4);
        let jig4 = graph_dual(&host_grid);
        let pattern = grid_graph(3, 3);
        // Small branch sets suffice (merge one row/column of the 4x4 grid);
        // capped search keeps this fast.
        let model = match cqd2_minors::finder::find_minor_capped(
            &pattern,
            &dual_as_graph(&jig4),
            5_000_000,
            2,
        ) {
            MinorSearch::Found(m) => m,
            other => panic!("3x3 grid must be a minor of the 4x4 grid: {other:?}"),
        };
        let (_, run) = dilution_from_minor_map(&jig4, &pattern, &model).unwrap();
        let expected = graph_dual(&pattern);
        assert!(cqd2_hypergraph::are_isomorphic(run.result(), &expected));
    }

    #[test]
    fn cycle_pattern_in_jigsaw() {
        // C4^d is a dilution of J_3: C4 ≼ grid(3,3).
        let grid = grid_graph(3, 3);
        let jig = graph_dual(&grid);
        let c4 = cycle_graph(4);
        let model = find_minor(&c4, &dual_as_graph(&jig), 5_000_000)
            .model()
            .expect("C4 is a minor of the grid");
        let (seq, run) = dilution_from_minor_map(&jig, &c4, &model).unwrap();
        assert!(cqd2_hypergraph::are_isomorphic(
            run.result(),
            &graph_dual(&c4)
        ));
        assert!(!seq.is_empty());
    }

    #[test]
    fn lemma_b1_roundtrip() {
        // Lemma 4.4 produces a sequence; Lemma B.1 recovers a valid model.
        let grid = grid_graph(3, 3);
        let jig = graph_dual(&grid);
        let c4 = cycle_graph(4);
        let model = find_minor(&c4, &dual_as_graph(&jig), 5_000_000)
            .model()
            .expect("model");
        let (seq, _) = dilution_from_minor_map(&jig, &c4, &model).unwrap();
        let recovered = minor_map_from_dilution(&jig, &c4, &seq).unwrap();
        recovered.validate(&c4, &dual_as_graph(&jig)).unwrap();
    }

    #[test]
    fn rejects_bad_hosts() {
        // Degree-3 host rejected.
        let h3 = Hypergraph::new(4, &[vec![0, 1], vec![0, 2], vec![0, 3]]).unwrap();
        let g = cycle_graph(3);
        let mu = MinorMap::identity(3);
        assert!(dilution_from_minor_map(&h3, &g, &mu).is_err());
        // Non-reduced host rejected.
        let h_iso = Hypergraph::new(4, &[vec![0, 1], vec![1, 2]]).unwrap();
        assert!(dilution_from_minor_map(&h_iso, &g, &mu).is_err());
    }
}
