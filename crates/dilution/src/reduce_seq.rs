//! **Lemma 3.6**: every hypergraph dilutes to its reduced hypergraph, and
//! the dilution sequence is computable in polynomial time.
//!
//! The sequence deletes (a) all but one vertex of every duplicate vertex
//! type, (b) isolated vertices, and (c) empty edges (each empty edge is a
//! proper subset of any nonempty edge, so operation (2) applies).
//!
//! Degenerate corner: a hypergraph whose *only* edge is the empty edge
//! cannot lose it by dilution (there is no proper superset); its reduced
//! hypergraph is therefore not a dilution. [`reduction_sequence`] reports
//! this explicitly.

use crate::error::DilutionError;
use crate::ops::{DilutionOp, DilutionSequence};
use cqd2_hypergraph::{reduce, EdgeId, Hypergraph, VertexId};

/// Build a dilution sequence from `h` to (an isomorphic copy of) its
/// reduced hypergraph. Returns an error description in the degenerate
/// empty-edge-only corner case.
pub fn reduction_sequence(h: &Hypergraph) -> Result<DilutionSequence, DilutionError> {
    let has_nonempty = h.edge_ids().any(|e| !h.edge(e).is_empty());
    let has_empty = h.edge_ids().any(|e| h.edge(e).is_empty());
    if has_empty && !has_nonempty {
        return Err(DilutionError::Unsupported(
            "hypergraph's only edge(s) are empty: the reduced hypergraph is not a dilution",
        ));
    }
    let mut ops = Vec::new();
    let mut cur = h.clone();

    // (a) duplicate vertex types + (b) isolated vertices, one deletion at a
    // time (ids refer to the current hypergraph, so recompute each round).
    loop {
        let victim = find_redundant_vertex(&cur);
        match victim {
            Some(v) => {
                let op = DilutionOp::DeleteVertex(v);
                let (next, _) = op.apply(&cur)?;
                ops.push(op);
                cur = next;
            }
            None => break,
        }
    }
    // (c) empty edges (at most one, since edges are a set).
    let empty_edge = cur.edge_ids().find(|&e| cur.edge(e).is_empty());
    if let Some(e) = empty_edge {
        let op = DilutionOp::DeleteSubedge(e);
        // Safe: a nonempty edge exists (deleting vertices of a duplicate
        // type never empties every edge: the representative remains).
        let (next, _) = op.apply(&cur)?;
        ops.push(op);
        cur = next;
    }
    debug_assert!(cqd2_hypergraph::reduce::is_reduced(&cur) || cur.num_edges() == 0);
    Ok(DilutionSequence { ops })
}

/// A vertex that is isolated or shares its type with an earlier vertex.
fn find_redundant_vertex(h: &Hypergraph) -> Option<VertexId> {
    let mut seen: std::collections::BTreeMap<Vec<EdgeId>, VertexId> =
        std::collections::BTreeMap::new();
    for v in h.vertices() {
        let t = h.vertex_type(v).to_vec();
        if t.is_empty() {
            return Some(v);
        }
        if seen.contains_key(&t) {
            return Some(v);
        }
        seen.insert(t, v);
    }
    None
}

/// Convenience: apply [`reduction_sequence`] and return the final
/// hypergraph, checking it is isomorphic to [`reduce::reduce`]'s output.
pub fn reduce_via_dilution(h: &Hypergraph) -> Result<Hypergraph, DilutionError> {
    let seq = reduction_sequence(h)?;
    let result = seq.apply(h)?;
    let (expected, _) = reduce::reduce(h);
    if !cqd2_hypergraph::are_isomorphic(&result, &expected) {
        return Err(DilutionError::Construction(
            "dilution-reduction disagrees with direct reduction".to_string(),
        ));
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_hypergraph::generators::random_degree_bounded;
    use cqd2_hypergraph::reduce::is_reduced;

    #[test]
    fn already_reduced_needs_no_ops() {
        let h = Hypergraph::new(3, &[vec![0, 1], vec![1, 2]]).unwrap();
        let seq = reduction_sequence(&h).unwrap();
        assert!(seq.is_empty());
    }

    #[test]
    fn isolated_and_duplicates_removed() {
        // Vertices 1,2 share a type; vertex 4 is isolated.
        let h = Hypergraph::new(5, &[vec![0, 1, 2], vec![1, 2, 3]]).unwrap();
        let seq = reduction_sequence(&h).unwrap();
        let out = seq.apply(&h).unwrap();
        assert!(is_reduced(&out));
        assert_eq!(out.num_vertices(), 3);
    }

    #[test]
    fn empty_edge_removed_via_subedge_deletion() {
        let h = Hypergraph::new(2, &[vec![], vec![0, 1]]).unwrap();
        let seq = reduction_sequence(&h).unwrap();
        let out = seq.apply(&h).unwrap();
        assert!(is_reduced(&out));
        assert_eq!(out.num_edges(), 1);
    }

    #[test]
    fn degenerate_empty_only_rejected() {
        let h = Hypergraph::new(0, &[vec![]]).unwrap();
        assert!(reduction_sequence(&h).is_err());
    }

    #[test]
    fn agrees_with_direct_reduction_on_random_inputs() {
        for seed in 0..10 {
            let h = random_degree_bounded(8, 4, 3, 0.7, seed);
            reduce_via_dilution(&h).unwrap();
        }
    }

    #[test]
    fn vertex_deletion_can_cascade_duplicates() {
        // Deleting duplicates may create empty edges? No: duplicates keep
        // their representative. But deleting a duplicate can make two
        // edges equal — handled by set semantics; the result must still
        // reduce correctly.
        let h = Hypergraph::new(4, &[vec![0, 1, 2, 3], vec![2, 3]]).unwrap();
        // 0,1 share type {e0}; 2,3 share type {e0,e1}.
        let out = reduce_via_dilution(&h).unwrap();
        assert!(is_reduced(&out));
        assert_eq!(out.num_vertices(), 2);
        assert_eq!(out.num_edges(), 2);
    }
}
