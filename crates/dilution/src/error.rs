//! Typed errors for the dilution machinery.
//!
//! These used to be `Result<_, String>` surfaces; the `cqd2-lint`
//! `stringly-error` rule now bans that shape in public signatures, so
//! every fallible public function in this crate reports a
//! [`DilutionError`] — matchable, chainable, and still carrying the
//! human-readable detail the strings used to.

use cqd2_hypergraph::HgError;
use cqd2_minors::minor_map::MinorMapError;

/// What can go wrong constructing, replaying, or verifying dilutions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DilutionError {
    /// An input violated a stated precondition (wrong degree, reducible
    /// host, disconnected pattern, the `K₂` dual corner case, …).
    Unsupported(&'static str),
    /// A dilution operation failed to apply to the current hypergraph.
    Op(HgError),
    /// The supplied minor map does not model the pattern in the host.
    MinorMap(MinorMapError),
    /// A Lemma 3.2 invariant broke across a step (degree increased, or
    /// `|V| + |E|` failed to strictly decrease).
    Invariant(String),
    /// A construction or its final cross-check failed (no connector
    /// vertex for a pattern edge, sequence result not isomorphic to the
    /// target, dilution-reduction disagreeing with direct reduction, …).
    Construction(String),
}

impl std::fmt::Display for DilutionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DilutionError::Unsupported(what) => write!(f, "unsupported input: {what}"),
            DilutionError::Op(e) => write!(f, "dilution operation failed: {e}"),
            DilutionError::MinorMap(e) => write!(f, "minor map invalid: {e}"),
            DilutionError::Invariant(what) => write!(f, "Lemma 3.2 invariant violated: {what}"),
            DilutionError::Construction(what) => write!(f, "construction failed: {what}"),
        }
    }
}

impl std::error::Error for DilutionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DilutionError::Op(e) => Some(e),
            DilutionError::MinorMap(e) => Some(e),
            DilutionError::Unsupported(_)
            | DilutionError::Invariant(_)
            | DilutionError::Construction(_) => None,
        }
    }
}

impl From<HgError> for DilutionError {
    fn from(e: HgError) -> DilutionError {
        DilutionError::Op(e)
    }
}

impl From<MinorMapError> for DilutionError {
    fn from(e: MinorMapError) -> DilutionError {
        DilutionError::MinorMap(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let err = DilutionError::from(HgError::VertexOutOfRange(7));
        assert!(err.to_string().contains("v7"), "{err}");
        let dyn_err: &dyn std::error::Error = &err;
        assert!(dyn_err.source().is_some());
        assert!(DilutionError::Unsupported("degree > 2").source().is_none());
    }
}
