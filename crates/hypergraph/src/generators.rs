//! Deterministic and seeded generators for graphs and hypergraphs.
//!
//! These produce the structured families used throughout the paper's
//! examples (grids and their duals, degree-2 chains and cycles) and the
//! randomized families used by the synthetic HyperBench corpus.

use crate::graph::Graph;
use crate::hypergraph::Hypergraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The `n × m` grid graph: vertices `(i, j)` with `0 ≤ i < n`, `0 ≤ j < m`,
/// row-major ids `i * m + j`, edges between horizontal and vertical
/// neighbours.
pub fn grid_graph(n: usize, m: usize) -> Graph {
    let mut g = Graph::empty(n * m);
    let id = |i: usize, j: usize| (i * m + j) as u32;
    for i in 0..n {
        for j in 0..m {
            if i + 1 < n {
                g.add_edge(id(i, j), id(i + 1, j));
            }
            if j + 1 < m {
                g.add_edge(id(i, j), id(i, j + 1));
            }
        }
    }
    g
}

/// Path graph on `n` vertices.
pub fn path_graph(n: usize) -> Graph {
    let mut g = Graph::empty(n);
    for i in 1..n {
        g.add_edge((i - 1) as u32, i as u32);
    }
    g
}

/// Cycle graph on `n ≥ 3` vertices.
pub fn cycle_graph(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut g = path_graph(n);
    g.add_edge((n - 1) as u32, 0);
    g
}

/// Complete graph on `n` vertices.
pub fn complete_graph(n: usize) -> Graph {
    let mut g = Graph::empty(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            g.add_edge(u, v);
        }
    }
    g
}

/// A chain of `k` hyperedges of size `rank`, consecutive edges sharing one
/// vertex. Degree 2, α-acyclic (ghw = 1).
pub fn hyperchain(k: usize, rank: usize) -> Hypergraph {
    assert!(rank >= 2 && k >= 1);
    let mut edges: Vec<Vec<u32>> = Vec::with_capacity(k);
    let mut next = 0u32;
    let mut last_shared = 0u32;
    for i in 0..k {
        let mut e = Vec::with_capacity(rank);
        if i > 0 {
            e.push(last_shared);
        }
        while e.len() < rank {
            e.push(next);
            next += 1;
        }
        last_shared = *e.last().unwrap();
        edges.push(e);
    }
    Hypergraph::new(next as usize, &edges).expect("chain edges are distinct")
}

/// A cycle of `k ≥ 3` hyperedges of size `rank`, consecutive edges sharing
/// one vertex (also first/last). Degree 2, ghw = 2 for rank ≥ 2.
pub fn hypercycle(k: usize, rank: usize) -> Hypergraph {
    assert!(rank >= 2 && k >= 3);
    let mut edges: Vec<Vec<u32>> = Vec::with_capacity(k);
    let mut next = 0u32;
    let first_shared = 0u32;
    let mut last_shared = 0u32;
    for i in 0..k {
        let mut e = Vec::with_capacity(rank);
        if i == 0 {
            e.push(first_shared);
            next = 1;
        } else {
            e.push(last_shared);
        }
        if i == k - 1 {
            e.push(first_shared);
        }
        while e.len() < rank {
            e.push(next);
            next += 1;
        }
        last_shared = *e.last().unwrap();
        edges.push(e);
    }
    Hypergraph::new(next as usize, &edges).expect("cycle edges are distinct")
}

/// A star: `k` edges of size `rank` all sharing one central vertex.
/// Degree `k` at the centre; α-acyclic.
pub fn hyperstar(k: usize, rank: usize) -> Hypergraph {
    assert!(rank >= 2 && k >= 1);
    let mut edges: Vec<Vec<u32>> = Vec::with_capacity(k);
    let mut next = 1u32;
    for _ in 0..k {
        let mut e = vec![0u32];
        while e.len() < rank {
            e.push(next);
            next += 1;
        }
        edges.push(e);
    }
    Hypergraph::new(next as usize, &edges).expect("star edges are distinct")
}

/// Seeded random hypergraph with `m` edges of size up to `rank`, where no
/// vertex exceeds `max_degree`. Vertices are allocated greedily: each edge
/// picks `rank` slots; with probability `reuse` a slot reuses an existing
/// vertex that still has spare degree, otherwise a fresh vertex is created.
///
/// The result is connected-ish but not guaranteed connected; callers that
/// need connectivity should check. Duplicate edges are avoided by retry.
pub fn random_degree_bounded(
    m: usize,
    rank: usize,
    max_degree: usize,
    reuse: f64,
    seed: u64,
) -> Hypergraph {
    assert!(rank >= 2 && max_degree >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut degree: Vec<usize> = Vec::new();
    let mut edges: Vec<Vec<u32>> = Vec::new();
    let mut edge_set: std::collections::BTreeSet<Vec<u32>> = std::collections::BTreeSet::new();
    for _ in 0..m {
        let mut attempt = 0;
        loop {
            attempt += 1;
            let size = rng.gen_range(2..=rank);
            let mut e: Vec<u32> = Vec::with_capacity(size);
            for _ in 0..size {
                let candidates: Vec<u32> = (0..degree.len() as u32)
                    .filter(|&v| degree[v as usize] < max_degree && !e.contains(&v))
                    .collect();
                if !candidates.is_empty() && rng.gen_bool(reuse) {
                    e.push(*candidates.choose(&mut rng).unwrap());
                } else {
                    e.push(degree.len() as u32);
                    degree.push(0);
                }
            }
            e.sort_unstable();
            e.dedup();
            if e.len() >= 2 && !edge_set.contains(&e) {
                for &v in &e {
                    degree[v as usize] += 1;
                }
                edge_set.insert(e.clone());
                edges.push(e);
                break;
            }
            // Roll back fresh vertices created during a failed attempt is
            // unnecessary: they stay as spare capacity; but avoid unbounded
            // growth of isolated vertices by capping retries.
            if attempt > 50 {
                break;
            }
        }
    }
    // Drop any vertices that ended up unused (degree 0) to keep instances
    // tidy; renumber densely.
    let mut remap: Vec<Option<u32>> = vec![None; degree.len()];
    let mut next = 0u32;
    for (v, &d) in degree.iter().enumerate() {
        if d > 0 {
            remap[v] = Some(next);
            next += 1;
        }
    }
    let edges: Vec<Vec<u32>> = edges
        .iter()
        .map(|e| e.iter().map(|&v| remap[v as usize].unwrap()).collect())
        .collect();
    Hypergraph::new(next as usize, &edges).expect("deduped edges")
}

/// Seeded Erdős–Rényi-style graph `G(n, p)`.
pub fn random_graph(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::empty(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_counts() {
        let g = grid_graph(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // n(m-1) + (n-1)m
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 4);
        let g1 = grid_graph(1, 5);
        assert_eq!(g1.num_edges(), 4);
    }

    #[test]
    fn small_graphs() {
        assert_eq!(path_graph(5).num_edges(), 4);
        assert_eq!(cycle_graph(5).num_edges(), 5);
        assert_eq!(complete_graph(5).num_edges(), 10);
        assert!(cycle_graph(3).is_connected());
    }

    #[test]
    fn chain_properties() {
        let h = hyperchain(4, 3);
        assert_eq!(h.num_edges(), 4);
        assert_eq!(h.max_degree(), 2);
        assert_eq!(h.rank(), 3);
        assert!(h.is_connected());
        // 4 edges of size 3, 3 shared vertices: 12 - 3 = 9 vertices.
        assert_eq!(h.num_vertices(), 9);
    }

    #[test]
    fn cycle_properties() {
        let h = hypercycle(5, 3);
        assert_eq!(h.num_edges(), 5);
        assert_eq!(h.max_degree(), 2);
        assert!(h.is_connected());
        // Every edge shares exactly one vertex with the next.
        assert_eq!(h.num_vertices(), 5 * 3 - 5);
    }

    #[test]
    fn star_properties() {
        let h = hyperstar(4, 3);
        assert_eq!(h.max_degree(), 4);
        assert_eq!(h.num_vertices(), 1 + 4 * 2);
    }

    #[test]
    fn random_hypergraph_respects_bounds() {
        for seed in 0..5 {
            let h = random_degree_bounded(12, 4, 2, 0.6, seed);
            assert!(h.max_degree() <= 2, "degree bound violated");
            assert!(h.rank() <= 4);
            assert!(h.num_edges() <= 12);
            // Generators must be deterministic per seed.
            let h2 = random_degree_bounded(12, 4, 2, 0.6, seed);
            assert_eq!(h.signature(), h2.signature());
        }
    }

    #[test]
    fn random_graph_deterministic() {
        let a = random_graph(10, 0.3, 7);
        let b = random_graph(10, 0.3, 7);
        assert_eq!(a, b);
    }
}
