//! A convenience builder for hypergraphs with named vertices and edges.

use crate::hypergraph::{EdgeId, HgError, Hypergraph, VertexId};
use std::collections::BTreeMap;

/// Incremental construction of a [`Hypergraph`] with string-named vertices.
///
/// Unlike [`Hypergraph::new`], adding an edge whose vertex set duplicates an
/// existing edge is *silently collapsed* (set semantics), which is the right
/// behaviour when deriving hypergraphs from conjunctive queries where two
/// atoms may share a variable set.
#[derive(Debug, Default, Clone)]
pub struct HypergraphBuilder {
    vertex_ids: BTreeMap<String, VertexId>,
    vertex_names: Vec<String>,
    edges: Vec<(String, Vec<VertexId>)>,
}

impl HypergraphBuilder {
    /// Fresh empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a vertex by name, returning its id.
    pub fn vertex(&mut self, name: &str) -> VertexId {
        if let Some(&v) = self.vertex_ids.get(name) {
            return v;
        }
        let v = VertexId(self.vertex_names.len() as u32);
        self.vertex_ids.insert(name.to_string(), v);
        self.vertex_names.push(name.to_string());
        v
    }

    /// Add an edge over the named vertices (interning them), with an edge
    /// name. Returns the builder for chaining.
    pub fn edge(mut self, name: &str, vertices: &[&str]) -> Self {
        let vs: Vec<VertexId> = vertices.iter().map(|v| self.vertex(v)).collect();
        self.edges.push((name.to_string(), vs));
        self
    }

    /// Add an isolated named vertex.
    pub fn isolated(mut self, name: &str) -> Self {
        self.vertex(name);
        self
    }

    /// Finish building. Duplicate edge *contents* collapse to the first
    /// occurrence; duplicate edge *names* are an error.
    pub fn build(self) -> Result<Hypergraph, HgError> {
        let mut names_seen = BTreeMap::new();
        for (i, (name, _)) in self.edges.iter().enumerate() {
            if let Some(prev) = names_seen.insert(name.clone(), i) {
                return Err(HgError::Precondition(format!(
                    "duplicate edge name {name:?} (edges #{prev} and #{i})"
                )));
            }
        }
        let mut contents_seen: BTreeMap<Vec<VertexId>, EdgeId> = BTreeMap::new();
        let mut edge_names = Vec::new();
        let mut edge_sets = Vec::new();
        for (name, mut vs) in self.edges {
            vs.sort_unstable();
            vs.dedup();
            if contents_seen.contains_key(&vs) {
                continue;
            }
            contents_seen.insert(vs.clone(), EdgeId(edge_sets.len() as u32));
            edge_names.push(name);
            edge_sets.push(vs);
        }
        Ok(Hypergraph::from_parts(
            self.vertex_names,
            edge_names,
            edge_sets,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_construction() {
        let h = HypergraphBuilder::new()
            .edge("R", &["x", "y", "z"])
            .edge("S", &["z", "w"])
            .isolated("lonely")
            .build()
            .unwrap();
        assert_eq!(h.num_vertices(), 5);
        assert_eq!(h.num_edges(), 2);
        let z = h.vertex_by_name("z").unwrap();
        assert_eq!(h.degree(z), 2);
        assert_eq!(h.edge_by_name("S"), Some(EdgeId(1)));
        assert_eq!(h.degree(h.vertex_by_name("lonely").unwrap()), 0);
    }

    #[test]
    fn duplicate_contents_collapse() {
        let h = HypergraphBuilder::new()
            .edge("R", &["x", "y"])
            .edge("S", &["y", "x"])
            .build()
            .unwrap();
        assert_eq!(h.num_edges(), 1);
        assert_eq!(h.edge_name(EdgeId(0)), "R");
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = HypergraphBuilder::new()
            .edge("R", &["x", "y"])
            .edge("R", &["y", "z"])
            .build();
        assert!(r.is_err());
    }
}
