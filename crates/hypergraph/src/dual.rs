//! The dual hypergraph `H^d`.
//!
//! `V(H^d) = E(H)` and `E(H^d) = { I_v | v ∈ V(H) }`. Because `E(H^d)` is a
//! *set*, two vertices of `H` with the same vertex type contribute a single
//! dual edge — this is why `(H^d)^d = H` holds exactly for *reduced*
//! hypergraphs (Section 2 of the paper).

use crate::hypergraph::{EdgeId, Hypergraph, VertexId};
use std::collections::BTreeMap;

/// Correspondence between a hypergraph and its dual.
#[derive(Debug, Clone)]
pub struct DualMap {
    /// `edge_to_vertex[e]` = the dual vertex representing edge `e` of `H`.
    /// This is always the identity on indices (edge `e` becomes vertex `e`),
    /// kept explicit for readability at call sites.
    pub edge_to_vertex: Vec<VertexId>,
    /// `vertex_to_edge[v]` = the dual edge representing `I_v`. Vertices with
    /// equal types share a dual edge; isolated vertices map to `None`
    /// (an empty `I_v` would be the empty dual edge, which we do not emit —
    /// it carries no incidence information and `reduce` removes such
    /// vertices anyway).
    pub vertex_to_edge: Vec<Option<EdgeId>>,
}

/// Construct the dual hypergraph `H^d` together with the index
/// correspondence.
pub fn dual(h: &Hypergraph) -> (Hypergraph, DualMap) {
    let n_dual_vertices = h.num_edges();
    let mut dual_edges: Vec<Vec<VertexId>> = Vec::new();
    let mut dual_edge_names: Vec<String> = Vec::new();
    let mut seen: BTreeMap<Vec<VertexId>, EdgeId> = BTreeMap::new();
    let mut vertex_to_edge: Vec<Option<EdgeId>> = Vec::with_capacity(h.num_vertices());

    for v in h.vertices() {
        let iv = h.incident_edges(v);
        if iv.is_empty() {
            vertex_to_edge.push(None);
            continue;
        }
        let content: Vec<VertexId> = iv.iter().map(|e| VertexId(e.0)).collect();
        match seen.get(&content) {
            Some(&id) => vertex_to_edge.push(Some(id)),
            None => {
                let id = EdgeId(dual_edges.len() as u32);
                seen.insert(content.clone(), id);
                dual_edge_names.push(format!("I({})", h.vertex_name(v)));
                dual_edges.push(content);
                vertex_to_edge.push(Some(id));
            }
        }
    }

    let dual_vertex_names: Vec<String> = h.edge_ids().map(|e| h.edge_name(e).to_string()).collect();
    debug_assert_eq!(dual_vertex_names.len(), n_dual_vertices);
    let hd = Hypergraph::from_parts(dual_vertex_names, dual_edge_names, dual_edges);
    let map = DualMap {
        edge_to_vertex: (0..n_dual_vertices as u32).map(VertexId).collect(),
        vertex_to_edge,
    };
    (hd, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iso::are_isomorphic;
    use crate::reduce::reduce;

    #[test]
    fn dual_of_triangle_graph() {
        // Triangle as a 2-uniform hypergraph: dual is again a triangle
        // (3 edges -> 3 vertices, 3 degree-2 vertices -> 3 rank-2 edges).
        let h = Hypergraph::new(3, &[vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap();
        let (hd, map) = dual(&h);
        assert_eq!(hd.num_vertices(), 3);
        assert_eq!(hd.num_edges(), 3);
        assert_eq!(hd.rank(), 2);
        assert_eq!(hd.max_degree(), 2);
        assert!(map.vertex_to_edge.iter().all(Option::is_some));
        assert!(are_isomorphic(&h, &hd));
    }

    #[test]
    fn dual_degree_rank_swap() {
        // For a reduced hypergraph (no duplicate vertex types):
        // degree(H^d) = rank(H) and rank(H^d) = degree(H).
        let h = Hypergraph::new(
            5,
            &[
                vec![0, 1, 2],
                vec![2, 3],
                vec![2, 4],
                vec![3, 4],
                vec![0, 3],
            ],
        )
        .unwrap();
        assert!(crate::reduce::is_reduced(&h));
        let (hd, _) = dual(&h);
        assert_eq!(hd.max_degree(), h.rank());
        assert_eq!(hd.rank(), h.max_degree());
    }

    #[test]
    fn isolated_vertex_has_no_dual_edge() {
        let h = Hypergraph::new(3, &[vec![0, 1], vec![1]]).unwrap();
        let (hd, map) = dual(&h);
        assert_eq!(map.vertex_to_edge[2], None);
        assert_eq!(hd.num_edges(), 2);
    }

    #[test]
    fn duplicate_vertex_types_collapse_in_dual() {
        // Vertices 0 and 1 both belong to exactly edges {e0}: same type.
        let h = Hypergraph::new(3, &[vec![0, 1, 2], vec![2]]).unwrap();
        let (hd, map) = dual(&h);
        assert_eq!(map.vertex_to_edge[0], map.vertex_to_edge[1]);
        assert_eq!(hd.num_edges(), 2); // {e0} (shared) and {e0,e1} for vertex 2
    }

    #[test]
    fn double_dual_of_reduced_is_identity() {
        // (H^d)^d = H for reduced H (paper, Section 2).
        let h =
            Hypergraph::new(6, &[vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![0, 5]]).unwrap();
        let (hr, _) = reduce(&h);
        let (hd, _) = dual(&hr);
        let (hdd, _) = dual(&hd);
        assert!(are_isomorphic(&hr, &hdd));
    }
}
