//! Hypergraph isomorphism testing.
//!
//! Dilutions are defined up to isomorphism ("isomorphic to a hypergraph that
//! can be reached…", Definition 3.1), so the dilution decision procedure and
//! many tests need an isomorphism check.
//!
//! Strategy: search for a bijection `σ` between the *edge* sets (edges are
//! usually far fewer than vertices in our instances), pruning with edge
//! cardinalities and pairwise intersection cardinalities, and at each
//! complete assignment verify that the multiset of *vertex types* (`I_v`)
//! maps correctly under `σ`. That final check is sound and complete: a
//! vertex is determined by its type up to type-duplicates, and
//! `e = { v | e ∈ I_v }`, so a type-multiset-preserving edge bijection
//! induces a full isomorphism.

use crate::hypergraph::{EdgeId, Hypergraph, VertexId};
use std::collections::BTreeMap;

/// A witness isomorphism from `H1` to `H2`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Isomorphism {
    /// `vertex_map[v]` = image of vertex `v` of `H1` in `H2`.
    pub vertex_map: Vec<VertexId>,
    /// `edge_map[e]` = image of edge `e` of `H1` in `H2`.
    pub edge_map: Vec<EdgeId>,
}

impl Isomorphism {
    /// Verify that this map really is an isomorphism from `h1` to `h2`.
    pub fn verify(&self, h1: &Hypergraph, h2: &Hypergraph) -> bool {
        if self.vertex_map.len() != h1.num_vertices()
            || self.edge_map.len() != h1.num_edges()
            || h1.num_vertices() != h2.num_vertices()
            || h1.num_edges() != h2.num_edges()
        {
            return false;
        }
        // Bijectivity.
        let mut seen_v = vec![false; h2.num_vertices()];
        for &v in &self.vertex_map {
            if v.idx() >= seen_v.len() || seen_v[v.idx()] {
                return false;
            }
            seen_v[v.idx()] = true;
        }
        let mut seen_e = vec![false; h2.num_edges()];
        for &e in &self.edge_map {
            if e.idx() >= seen_e.len() || seen_e[e.idx()] {
                return false;
            }
            seen_e[e.idx()] = true;
        }
        // Edge preservation.
        for e in h1.edge_ids() {
            let mut image: Vec<VertexId> = h1
                .edge(e)
                .iter()
                .map(|v| self.vertex_map[v.idx()])
                .collect();
            image.sort_unstable();
            if image != h2.edge(self.edge_map[e.idx()]) {
                return false;
            }
        }
        true
    }
}

/// Cheap isomorphism-invariant fingerprint; equal for isomorphic
/// hypergraphs, frequently distinct otherwise. Used for pruning.
fn invariant(h: &Hypergraph) -> (Vec<usize>, Vec<usize>, Vec<Vec<usize>>) {
    let mut degrees: Vec<usize> = (0..h.num_vertices())
        .map(|v| h.degree(VertexId(v as u32)))
        .collect();
    degrees.sort_unstable();
    let mut sizes: Vec<usize> = h.edge_ids().map(|e| h.edge(e).len()).collect();
    sizes.sort_unstable();
    // Per-edge profile: sorted multiset of intersection sizes with all edges.
    let mut profiles: Vec<Vec<usize>> = h
        .edge_ids()
        .map(|e| {
            let mut p: Vec<usize> = h
                .edge_ids()
                .filter(|&f| f != e)
                .map(|f| h.edge_intersection_size(e, f))
                .collect();
            p.sort_unstable();
            p.push(h.edge(e).len());
            p
        })
        .collect();
    profiles.sort_unstable();
    (degrees, sizes, profiles)
}

/// A 64-bit isomorphism-invariant fingerprint: equal for isomorphic
/// hypergraphs, usually distinct otherwise. Useful as a hash-table key
/// for structures defined up to isomorphism (candidates with equal
/// fingerprints still need [`find_isomorphism`] to confirm).
pub fn fingerprint(h: &Hypergraph) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    h.num_vertices().hash(&mut hasher);
    invariant(h).hash(&mut hasher);
    hasher.finish()
}

/// Decide whether `h1 ≅ h2`.
pub fn are_isomorphic(h1: &Hypergraph, h2: &Hypergraph) -> bool {
    find_isomorphism(h1, h2).is_some()
}

/// Find an isomorphism from `h1` to `h2`, if one exists.
pub fn find_isomorphism(h1: &Hypergraph, h2: &Hypergraph) -> Option<Isomorphism> {
    if h1.num_vertices() != h2.num_vertices() || h1.num_edges() != h2.num_edges() {
        return None;
    }
    if invariant(h1) != invariant(h2) {
        return None;
    }
    let m = h1.num_edges();
    if m == 0 {
        // Pure vertex sets: any bijection works (all vertices isolated).
        return Some(Isomorphism {
            vertex_map: h2.vertices().collect(),
            edge_map: vec![],
        });
    }

    // Order h1's edges so each new edge (after the first) intersects a
    // previously placed one when possible — keeps pruning effective.
    let order = connectivity_order(h1);

    let mut sigma: Vec<Option<EdgeId>> = vec![None; m];
    let mut used: Vec<bool> = vec![false; m];
    let mut result = None;
    search(h1, h2, &order, 0, &mut sigma, &mut used, &mut result);
    result
}

fn connectivity_order(h: &Hypergraph) -> Vec<EdgeId> {
    let m = h.num_edges();
    let mut order: Vec<EdgeId> = Vec::with_capacity(m);
    let mut placed = vec![false; m];
    while order.len() < m {
        // Next: an unplaced edge maximizing intersections with placed ones
        // (ties: larger edge first).
        let mut best: Option<(usize, usize, EdgeId)> = None;
        for e in h.edge_ids() {
            if placed[e.idx()] {
                continue;
            }
            let overlap = order
                .iter()
                .filter(|&&f| h.edge_intersection_size(e, f) > 0)
                .count();
            let key = (overlap, h.edge(e).len(), e);
            if best.is_none_or(|b| (key.0, key.1) > (b.0, b.1)) {
                best = Some(key);
            }
        }
        let (_, _, e) = best.unwrap();
        placed[e.idx()] = true;
        order.push(e);
    }
    order
}

fn search(
    h1: &Hypergraph,
    h2: &Hypergraph,
    order: &[EdgeId],
    depth: usize,
    sigma: &mut Vec<Option<EdgeId>>,
    used: &mut Vec<bool>,
    result: &mut Option<Isomorphism>,
) -> bool {
    if result.is_some() {
        return true;
    }
    if depth == order.len() {
        if let Some(iso) = complete_vertex_map(h1, h2, sigma) {
            *result = Some(iso);
            return true;
        }
        return false;
    }
    let e = order[depth];
    let esize = h1.edge(e).len();
    for f in h2.edge_ids() {
        if used[f.idx()] || h2.edge(f).len() != esize {
            continue;
        }
        // Pairwise intersection consistency with already-mapped edges.
        let ok = order[..depth].iter().all(|&g| {
            let fg = sigma[g.idx()].expect("mapped");
            h1.edge_intersection_size(e, g) == h2.edge_intersection_size(f, fg)
        });
        if !ok {
            continue;
        }
        sigma[e.idx()] = Some(f);
        used[f.idx()] = true;
        if search(h1, h2, order, depth + 1, sigma, used, result) {
            return true;
        }
        sigma[e.idx()] = None;
        used[f.idx()] = false;
    }
    false
}

/// Given a complete edge bijection, verify the vertex-type multisets match
/// and build the induced vertex bijection.
fn complete_vertex_map(
    h1: &Hypergraph,
    h2: &Hypergraph,
    sigma: &[Option<EdgeId>],
) -> Option<Isomorphism> {
    // Group H2's vertices by type.
    let mut h2_by_type: BTreeMap<Vec<EdgeId>, Vec<VertexId>> = BTreeMap::new();
    for w in h2.vertices() {
        h2_by_type
            .entry(h2.vertex_type(w).to_vec())
            .or_default()
            .push(w);
    }
    let mut vertex_map: Vec<Option<VertexId>> = vec![None; h1.num_vertices()];
    for v in h1.vertices() {
        let mut mapped_type: Vec<EdgeId> = h1
            .vertex_type(v)
            .iter()
            .map(|e| sigma[e.idx()].expect("complete"))
            .collect();
        mapped_type.sort_unstable();
        let bucket = h2_by_type.get_mut(&mapped_type)?;
        let w = bucket.pop()?;
        vertex_map[v.idx()] = Some(w);
    }
    let iso = Isomorphism {
        vertex_map: vertex_map.into_iter().map(Option::unwrap).collect(),
        edge_map: sigma.iter().map(|e| e.expect("complete")).collect(),
    };
    debug_assert!(iso.verify(h1, h2));
    Some(iso)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_hypergraphs() {
        let h = Hypergraph::new(4, &[vec![0, 1, 2], vec![2, 3]]).unwrap();
        let iso = find_isomorphism(&h, &h).unwrap();
        assert!(iso.verify(&h, &h));
    }

    #[test]
    fn relabeled_hypergraphs() {
        let h1 = Hypergraph::new(4, &[vec![0, 1, 2], vec![2, 3]]).unwrap();
        let h2 = Hypergraph::new(4, &[vec![0, 3], vec![1, 2, 3]]).unwrap();
        let iso = find_isomorphism(&h1, &h2).unwrap();
        assert!(iso.verify(&h1, &h2));
    }

    #[test]
    fn different_sizes_rejected() {
        let h1 = Hypergraph::new(3, &[vec![0, 1]]).unwrap();
        let h2 = Hypergraph::new(3, &[vec![0, 1], vec![1, 2]]).unwrap();
        assert!(!are_isomorphic(&h1, &h2));
    }

    #[test]
    fn same_counts_different_structure() {
        // Path of 3 edges vs star of 3 edges: same sizes, different types.
        let path = Hypergraph::new(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]).unwrap();
        let star = Hypergraph::new(4, &[vec![0, 1], vec![0, 2], vec![0, 3]]).unwrap();
        assert!(!are_isomorphic(&path, &star));
    }

    #[test]
    fn intersection_profile_matters() {
        // Two rank-3 edges sharing 2 vertices vs sharing 1 vertex.
        let a = Hypergraph::new(4, &[vec![0, 1, 2], vec![1, 2, 3]]).unwrap();
        let b = Hypergraph::new(5, &[vec![0, 1, 2], vec![2, 3, 4]]).unwrap();
        assert!(!are_isomorphic(&a, &b)); // different |V|
        let b2 = Hypergraph::new(4, &[vec![0, 1, 2], vec![2, 3, 0]]).unwrap();
        // b2 shares 2 vertices as well -> isomorphic to a.
        assert!(are_isomorphic(&a, &b2));
    }

    #[test]
    fn cycles_of_different_length_rejected() {
        let c4 = Hypergraph::new(4, &[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]]).unwrap();
        let two_paths =
            Hypergraph::new(4, &[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 1]]).unwrap();
        assert!(!are_isomorphic(&c4, &two_paths));
    }

    #[test]
    fn isolated_vertices_counted() {
        let h1 = Hypergraph::new(3, &[vec![0, 1]]).unwrap();
        let h2 = Hypergraph::new(3, &[vec![1, 2]]).unwrap();
        assert!(are_isomorphic(&h1, &h2));
        let h3 = Hypergraph::new(2, &[vec![0, 1]]).unwrap();
        assert!(!are_isomorphic(&h1, &h3));
    }

    #[test]
    fn duplicate_vertex_types_handled() {
        // Both hypergraphs: one rank-3 edge with a pendant rank-2 edge; the
        // two "private" vertices of the big edge have the same type.
        let h1 = Hypergraph::new(4, &[vec![0, 1, 2], vec![2, 3]]).unwrap();
        let h2 = Hypergraph::new(4, &[vec![1, 2, 3], vec![0, 1]]).unwrap();
        let iso = find_isomorphism(&h1, &h2).unwrap();
        assert!(iso.verify(&h1, &h2));
    }
}
