//! Hypergraph and graph data structures.
//!
//! This crate is the foundational substrate for the reproduction of
//! *The Complexity of Conjunctive Queries with Degree 2* (Lanzinger, PODS 2022).
//! It provides:
//!
//! - [`Hypergraph`]: a hypergraph `H = (V(H), E(H))` with `E(H) ⊆ 2^{V(H)}`
//!   (edges are *sets*; duplicates collapse), incidence structure, and the
//!   mutation primitives (vertex deletion, edge deletion, edge merging,
//!   induced subhypergraphs) that hypergraph dilutions are built from.
//! - [`Graph`]: simple undirected graphs, treated as 2-uniform hypergraphs
//!   throughout the paper, with the traversal utilities needed by the minor
//!   and treewidth machinery.
//! - [`mod@dual`]: the dual hypergraph `H^d` with `V(H^d) = E(H)` and
//!   `E(H^d) = { I_v | v ∈ V(H) }`.
//! - [`mod@reduce`]: *reduced* hypergraphs (no isolated vertices, no empty edges,
//!   no duplicate vertex types) and the reduction record mapping back.
//! - [`iso`]: hypergraph isomorphism testing via edge-bijection backtracking
//!   with vertex-type verification.
//! - [`generators`]: deterministic and seeded generators for the structured
//!   families used in the paper's examples and our experiments.
//!
//! All indices are dense `u32` newtypes ([`VertexId`], [`EdgeId`]); mutations
//! return fresh hypergraphs together with an [`OpTrace`] recording how old
//! indices map to new ones, which the dilution machinery uses for provenance.

pub mod builder;
pub mod dual;
pub mod generators;
pub mod graph;
pub mod hypergraph;
pub mod iso;
pub mod reduce;

pub use builder::HypergraphBuilder;
pub use dual::{dual, DualMap};
pub use graph::Graph;
pub use hypergraph::{EdgeId, HgError, Hypergraph, OpTrace, VertexId};
pub use iso::{are_isomorphic, find_isomorphism, fingerprint, Isomorphism};
pub use reduce::{reduce, ReductionRecord};
