//! Reduced hypergraphs.
//!
//! A hypergraph is *reduced* (paper, Section 2) when
//! (1) every vertex has degree ≥ 1 (no isolated vertices),
//! (2) there is no empty edge, and
//! (3) no two distinct vertices have the same vertex type
//!     (`I_v ≠ I_w` for `v ≠ w`).
//!
//! Reduction deletes isolated vertices, empty edges, and all but one vertex
//! of every type class. Lemma 3.6 observes that every hypergraph *dilutes*
//! to its reduced hypergraph — the corresponding dilution sequence is built
//! in the `cqd2-dilution` crate; this module performs the reduction directly
//! and records the mapping.

use crate::hypergraph::{EdgeId, Hypergraph, OpTrace, VertexId};
use std::collections::BTreeMap;

/// Record of a reduction: which representative each original vertex was
/// collapsed into, and the usual id remapping.
#[derive(Debug, Clone)]
pub struct ReductionRecord {
    /// Composite old→new trace (deleted vertices/edges map to `None`).
    pub trace: OpTrace,
    /// For every original vertex, the original id of the representative of
    /// its type class (itself if it survived; `None` if isolated).
    pub representative: Vec<Option<VertexId>>,
}

/// Is `h` reduced?
pub fn is_reduced(h: &Hypergraph) -> bool {
    if (0..h.num_vertices()).any(|v| h.degree(VertexId(v as u32)) == 0) {
        return false;
    }
    if h.edge_ids().any(|e| h.edge(e).is_empty()) {
        return false;
    }
    let mut types: Vec<&[EdgeId]> = h.vertices().map(|v| h.vertex_type(v)).collect();
    types.sort_unstable();
    types.windows(2).all(|w| w[0] != w[1])
}

/// Compute the reduced hypergraph for `h` (paper, Section 2) together with a
/// [`ReductionRecord`].
///
/// Note that deleting duplicate-type vertices cannot create new empty edges
/// or new isolated vertices (a surviving representative keeps every incident
/// edge nonempty), and deleting empty edges touches no vertex, so one pass
/// suffices.
pub fn reduce(h: &Hypergraph) -> (Hypergraph, ReductionRecord) {
    // Pick one representative per vertex type; drop isolated vertices.
    let mut rep_of_type: BTreeMap<Vec<EdgeId>, VertexId> = BTreeMap::new();
    let mut representative: Vec<Option<VertexId>> = Vec::with_capacity(h.num_vertices());
    let mut keep: Vec<VertexId> = Vec::new();
    for v in h.vertices() {
        let t = h.vertex_type(v).to_vec();
        if t.is_empty() {
            representative.push(None);
            continue;
        }
        match rep_of_type.get(&t) {
            Some(&r) => representative.push(Some(r)),
            None => {
                rep_of_type.insert(t, v);
                representative.push(Some(v));
                keep.push(v);
            }
        }
    }
    let (h1, t1) = h.induced(&keep).expect("keep list is valid");
    // Drop empty edges (unchecked deletion: an empty edge may be the only
    // edge, in which case it is not a proper subedge of anything; reduction
    // is not required to be a dilution sequence here).
    let mut cur = h1;
    let mut trace = t1;
    loop {
        let empty = cur.edge_ids().find(|&e| cur.edge(e).is_empty());
        match empty {
            Some(e) => {
                let (next, t) = cur.delete_edge(e, false).expect("edge exists");
                trace = trace.then(&t);
                cur = next;
            }
            None => break,
        }
    }
    (
        cur,
        ReductionRecord {
            trace,
            representative,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn already_reduced_is_untouched() {
        let h = Hypergraph::new(3, &[vec![0, 1], vec![1, 2]]).unwrap();
        assert!(is_reduced(&h));
        let (r, rec) = reduce(&h);
        assert_eq!(r.num_vertices(), 3);
        assert_eq!(r.num_edges(), 2);
        assert!(rec.trace.vertex_map.iter().all(Option::is_some));
    }

    #[test]
    fn isolated_vertices_removed() {
        let h = Hypergraph::new(4, &[vec![0, 1], vec![1, 2]]).unwrap();
        assert!(!is_reduced(&h));
        let (r, rec) = reduce(&h);
        assert_eq!(r.num_vertices(), 3);
        assert_eq!(rec.representative[3], None);
        assert!(is_reduced(&r));
    }

    #[test]
    fn duplicate_types_collapse() {
        // Vertices 1 and 2 both occur exactly in edges {e0, e1}.
        let h = Hypergraph::new(4, &[vec![0, 1, 2], vec![1, 2, 3]]).unwrap();
        assert!(!is_reduced(&h));
        let (r, rec) = reduce(&h);
        assert_eq!(r.num_vertices(), 3);
        assert_eq!(rec.representative[2], Some(VertexId(1)));
        assert!(is_reduced(&r));
        // The edges shrink accordingly but stay distinct.
        assert_eq!(r.num_edges(), 2);
        assert_eq!(r.rank(), 2);
    }

    #[test]
    fn empty_edges_removed() {
        let h = Hypergraph::new(2, &[vec![], vec![0, 1]]).unwrap();
        assert!(!is_reduced(&h));
        let (r, _) = reduce(&h);
        assert_eq!(r.num_edges(), 1);
        assert!(is_reduced(&r));
    }

    #[test]
    fn collapse_can_cascade_into_edge_dedup() {
        // Edges {0,1,2} and {0,1,3} with 2,3 degree-1... wait, 2 and 3 have
        // distinct types ({e0} vs {e1}) but the SAME type as nothing else;
        // they survive. Instead make 2 and 3 share type: impossible in
        // distinct edges. Use duplicate types inside one edge:
        let h = Hypergraph::new(5, &[vec![0, 1, 2, 3], vec![3, 4]]).unwrap();
        // 0,1,2 all have type {e0} -> collapse to one.
        let (r, _) = reduce(&h);
        assert_eq!(r.num_vertices(), 3);
        assert_eq!(r.num_edges(), 2);
        assert!(is_reduced(&r));
    }

    #[test]
    fn reduction_is_idempotent() {
        let h = Hypergraph::new(6, &[vec![0, 1, 2, 3], vec![3, 4], vec![]]).unwrap();
        let (r1, _) = reduce(&h);
        let (r2, _) = reduce(&r1);
        assert_eq!(r1, r2);
    }
}
