//! Simple undirected graphs (2-uniform hypergraphs).
//!
//! The paper treats graphs as hypergraphs where every edge has size 2. The
//! minor machinery and treewidth solvers work on this lighter representation;
//! conversions to/from [`Hypergraph`] are provided.

use crate::hypergraph::{Hypergraph, VertexId};
use std::collections::BTreeSet;
use std::fmt;

/// A simple undirected graph with dense `u32` vertex ids.
///
/// Self-loops and parallel edges are not representable: edges are stored as
/// ordered pairs `(u, v)` with `u < v` in a sorted set, with a redundant
/// adjacency list for traversal.
#[derive(Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Graph {
    n: usize,
    edges: BTreeSet<(u32, u32)>,
    adj: Vec<Vec<u32>>,
}

/// Graphs compare by vertex count and edge set; adjacency-list order is an
/// implementation detail.
impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.edges == other.edges
    }
}

impl Eq for Graph {}

impl Graph {
    /// An edgeless graph on `n` vertices.
    pub fn empty(n: usize) -> Graph {
        Graph {
            n,
            edges: BTreeSet::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Build from an edge list; duplicate edges and self-loops are ignored.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Graph {
        let mut g = Graph::empty(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add edge `{u, v}` (no-op for self-loops and duplicates).
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "vertex out of range"
        );
        if u == v {
            return;
        }
        let key = (u.min(v), u.max(v));
        if self.edges.insert(key) {
            self.adj[u as usize].push(v);
            self.adj[v as usize].push(u);
        }
    }

    /// Are `u` and `v` adjacent?
    #[inline]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.edges.contains(&(u.min(v), u.max(v)))
    }

    /// Neighbours of `v` (unsorted).
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterator over edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.edges.iter().copied()
    }

    /// Is the graph connected (true for the empty graph)?
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }

    /// Connected components as sorted vertex lists.
    pub fn connected_components(&self) -> Vec<Vec<u32>> {
        let mut seen = vec![false; self.n];
        let mut comps = Vec::new();
        for s in 0..self.n as u32 {
            if seen[s as usize] {
                continue;
            }
            let mut comp = vec![];
            let mut stack = vec![s];
            seen[s as usize] = true;
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &w in self.neighbors(v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// Is the vertex set `s` connected in the graph (true for |s| ≤ 1)?
    pub fn is_vertex_set_connected(&self, s: &[u32]) -> bool {
        if s.len() <= 1 {
            return true;
        }
        let inset: BTreeSet<u32> = s.iter().copied().collect();
        let mut seen = BTreeSet::new();
        let mut stack = vec![s[0]];
        seen.insert(s[0]);
        while let Some(v) = stack.pop() {
            for &w in self.neighbors(v) {
                if inset.contains(&w) && seen.insert(w) {
                    stack.push(w);
                }
            }
        }
        seen.len() == inset.len()
    }

    /// BFS shortest path from `from` to `to` restricted to vertices in
    /// `allowed` (both endpoints must be allowed). Returns the vertex
    /// sequence, or `None` if unreachable.
    pub fn path_within(&self, from: u32, to: u32, allowed: &BTreeSet<u32>) -> Option<Vec<u32>> {
        if !allowed.contains(&from) || !allowed.contains(&to) {
            return None;
        }
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: Vec<Option<u32>> = vec![None; self.n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(from);
        prev[from as usize] = Some(from);
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                if allowed.contains(&w) && prev[w as usize].is_none() {
                    prev[w as usize] = Some(v);
                    if w == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while cur != from {
                            cur = prev[cur as usize].unwrap();
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(w);
                }
            }
        }
        None
    }

    /// Contract edge `{u, v}`: merge `v` into `u`, then compact vertex ids.
    /// Returns the new graph and the mapping old-id → new-id.
    pub fn contract_edge(&self, u: u32, v: u32) -> (Graph, Vec<u32>) {
        assert!(self.has_edge(u, v), "cannot contract a non-edge");
        let mut map = vec![0u32; self.n];
        let mut next = 0u32;
        for i in 0..self.n as u32 {
            if i == v {
                continue;
            }
            map[i as usize] = next;
            next += 1;
        }
        map[v as usize] = map[u as usize];
        let mut g = Graph::empty(self.n - 1);
        for (a, b) in self.edges() {
            let (na, nb) = (map[a as usize], map[b as usize]);
            g.add_edge(na, nb);
        }
        (g, map)
    }

    /// Delete a vertex, compacting ids. Returns the new graph and the map
    /// old-id → Some(new-id) (None for the deleted vertex).
    pub fn delete_vertex(&self, v: u32) -> (Graph, Vec<Option<u32>>) {
        let mut map: Vec<Option<u32>> = vec![None; self.n];
        let mut next = 0u32;
        for i in 0..self.n as u32 {
            if i == v {
                continue;
            }
            map[i as usize] = Some(next);
            next += 1;
        }
        let mut g = Graph::empty(self.n - 1);
        for (a, b) in self.edges() {
            if let (Some(na), Some(nb)) = (map[a as usize], map[b as usize]) {
                g.add_edge(na, nb);
            }
        }
        (g, map)
    }

    /// The subgraph induced by `keep` (ids compacted in `keep` order must be
    /// sorted ascending). Returns the graph and the old→new map.
    pub fn induced(&self, keep: &[u32]) -> (Graph, Vec<Option<u32>>) {
        let mut map: Vec<Option<u32>> = vec![None; self.n];
        let mut sorted = keep.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for (new, &old) in sorted.iter().enumerate() {
            map[old as usize] = Some(new as u32);
        }
        let mut g = Graph::empty(sorted.len());
        for (a, b) in self.edges() {
            if let (Some(na), Some(nb)) = (map[a as usize], map[b as usize]) {
                g.add_edge(na, nb);
            }
        }
        (g, map)
    }

    /// View this graph as a 2-uniform [`Hypergraph`]. Isolated vertices are
    /// kept; each graph edge becomes a rank-2 hyperedge.
    pub fn to_hypergraph(&self) -> Hypergraph {
        let edges: Vec<Vec<u32>> = self.edges().map(|(u, v)| vec![u, v]).collect();
        Hypergraph::new(self.n, &edges).expect("graph edges are valid hypergraph edges")
    }

    /// Interpret a hypergraph's *primal* structure as a graph; requires the
    /// hypergraph to have rank ≤ 2 (edges of size 0/1 are dropped).
    pub fn from_two_uniform(h: &Hypergraph) -> Graph {
        let mut g = Graph::empty(h.num_vertices());
        for e in h.edge_ids() {
            let vs = h.edge(e);
            match vs.len() {
                2 => g.add_edge(vs[0].0, vs[1].0),
                0 | 1 => {}
                _ => panic!("hypergraph has rank > 2"),
            }
        }
        g
    }
}

/// Convenience conversion matching the paper's convention that graphs *are*
/// 2-uniform hypergraphs.
impl From<&Graph> for Hypergraph {
    fn from(g: &Graph) -> Hypergraph {
        g.to_hypergraph()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}) {:?}",
            self.n,
            self.edges.len(),
            self.edges
        )
    }
}

/// Helper for hypergraph code: convert a `VertexId` slice to raw u32s.
pub fn raw_ids(vs: &[VertexId]) -> Vec<u32> {
    vs.iter().map(|v| v.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (1, 0)]);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn self_loops_ignored() {
        let g = Graph::from_edges(2, &[(0, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn connectivity_and_components() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        let comps = g.connected_components();
        assert_eq!(comps.len(), 3);
        assert!(comps.contains(&vec![4]));
    }

    #[test]
    fn vertex_set_connected() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(g.is_vertex_set_connected(&[0, 1, 2]));
        assert!(!g.is_vertex_set_connected(&[0, 2]));
        assert!(g.is_vertex_set_connected(&[3]));
    }

    #[test]
    fn path_within_allowed() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)]);
        let all: BTreeSet<u32> = (0..5).collect();
        let p = g.path_within(0, 3, &all).unwrap();
        assert_eq!(p.len(), 3); // 0-4-3 is shortest
        let no4: BTreeSet<u32> = [0, 1, 2, 3].into_iter().collect();
        let p2 = g.path_within(0, 3, &no4).unwrap();
        assert_eq!(p2, vec![0, 1, 2, 3]);
        let tiny: BTreeSet<u32> = [0, 3].into_iter().collect();
        assert!(g.path_within(0, 3, &tiny).is_none());
    }

    #[test]
    fn contraction() {
        // Path 0-1-2; contracting {0,1} gives a single edge.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let (c, map) = g.contract_edge(0, 1);
        assert_eq!(c.num_vertices(), 2);
        assert_eq!(c.num_edges(), 1);
        assert_eq!(map[0], map[1]);
    }

    #[test]
    fn contraction_merges_neighborhoods() {
        // Star + edge: contracting the middle creates a triangle-free merge.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (1, 3), (2, 3)]);
        let (c, _) = g.contract_edge(1, 0);
        assert_eq!(c.num_vertices(), 3);
        assert_eq!(c.num_edges(), 3);
    }

    #[test]
    fn delete_and_induce() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let (d, map) = g.delete_vertex(1);
        assert_eq!(d.num_vertices(), 3);
        assert_eq!(d.num_edges(), 1);
        assert_eq!(map[1], None);
        let (i, _) = g.induced(&[1, 2, 3]);
        assert_eq!(i.num_edges(), 2);
    }

    #[test]
    fn hypergraph_roundtrip() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3), (1, 2)]);
        let h = g.to_hypergraph();
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.rank(), 2);
        let g2 = Graph::from_two_uniform(&h);
        assert_eq!(g, g2);
    }
}
