//! The core [`Hypergraph`] type and its mutation primitives.

use std::collections::BTreeMap;
use std::fmt;

/// Dense identifier of a vertex in a [`Hypergraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VertexId(pub u32);

/// Dense identifier of an edge in a [`Hypergraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeId(pub u32);

impl VertexId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Errors produced by hypergraph construction and mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HgError {
    /// A vertex id was out of range.
    VertexOutOfRange(u32),
    /// An edge id was out of range.
    EdgeOutOfRange(u32),
    /// Two edges with identical vertex sets were supplied where a set of
    /// edges was required.
    DuplicateEdge(usize, usize),
    /// An operation's precondition was violated (with a description).
    Precondition(String),
}

impl fmt::Display for HgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HgError::VertexOutOfRange(v) => write!(f, "vertex id v{v} out of range"),
            HgError::EdgeOutOfRange(e) => write!(f, "edge id e{e} out of range"),
            HgError::DuplicateEdge(a, b) => {
                write!(f, "edges #{a} and #{b} have identical vertex sets")
            }
            HgError::Precondition(msg) => write!(f, "precondition violated: {msg}"),
        }
    }
}

impl std::error::Error for HgError {}

/// Records how vertex and edge ids of a hypergraph map to ids of the
/// hypergraph produced by a mutation.
///
/// `None` means the vertex/edge was deleted. Several old edges may map to the
/// same new edge when a mutation makes their vertex sets equal (set semantics
/// of `E(H)`), or when edges are merged.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OpTrace {
    /// For each old vertex id, the corresponding new vertex id, if any.
    pub vertex_map: Vec<Option<VertexId>>,
    /// For each old edge id, the corresponding new edge id, if any.
    pub edge_map: Vec<Option<EdgeId>>,
}

impl OpTrace {
    /// Compose two traces: `self` applied first, then `next`.
    pub fn then(&self, next: &OpTrace) -> OpTrace {
        let vertex_map = self
            .vertex_map
            .iter()
            .map(|v| v.and_then(|v| next.vertex_map[v.idx()]))
            .collect();
        let edge_map = self
            .edge_map
            .iter()
            .map(|e| e.and_then(|e| next.edge_map[e.idx()]))
            .collect();
        OpTrace {
            vertex_map,
            edge_map,
        }
    }

    /// The identity trace for a hypergraph with `n` vertices and `m` edges.
    pub fn identity(n: usize, m: usize) -> OpTrace {
        OpTrace {
            vertex_map: (0..n as u32).map(|i| Some(VertexId(i))).collect(),
            edge_map: (0..m as u32).map(|i| Some(EdgeId(i))).collect(),
        }
    }
}

/// A hypergraph `H = (V(H), E(H))` with `E(H) ⊆ 2^{V(H)}`.
///
/// Edges are stored as sorted, deduplicated vertex lists; the edge *set*
/// invariant (no two edges with the same vertex set) is maintained by all
/// constructors and mutations. The empty edge is permitted (the paper uses it
/// when discussing deletion of connected components); *reduced* hypergraphs
/// (see [`crate::reduce()`]) exclude it.
///
/// Vertices and edges carry human-readable names used by pretty-printing and
/// by the conjunctive-query layer (variable and relation names).
#[derive(Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Hypergraph {
    vertex_names: Vec<String>,
    edge_names: Vec<String>,
    /// `edges[e]` is the sorted list of vertices of edge `e`.
    edges: Vec<Vec<VertexId>>,
    /// `incidence[v]` is the sorted list of edges incident to vertex `v`
    /// (`I_v` in the paper).
    incidence: Vec<Vec<EdgeId>>,
}

impl Hypergraph {
    /// Build a hypergraph with `n` anonymous vertices and the given edges.
    ///
    /// Edges are sorted and deduplicated internally; supplying two edges with
    /// the same vertex set is an error (use [`HypergraphBuilder`] to collapse
    /// duplicates silently).
    ///
    /// [`HypergraphBuilder`]: crate::builder::HypergraphBuilder
    pub fn new(n: usize, edge_sets: &[Vec<u32>]) -> Result<Hypergraph, HgError> {
        let vertex_names = (0..n).map(|i| format!("v{i}")).collect();
        let edge_names = (0..edge_sets.len()).map(|i| format!("e{i}")).collect();
        let mut edges = Vec::with_capacity(edge_sets.len());
        for raw in edge_sets {
            let mut e: Vec<VertexId> = raw.iter().map(|&v| VertexId(v)).collect();
            e.sort_unstable();
            e.dedup();
            if let Some(v) = e.iter().find(|v| v.idx() >= n) {
                return Err(HgError::VertexOutOfRange(v.0));
            }
            edges.push(e);
        }
        for i in 0..edges.len() {
            for j in (i + 1)..edges.len() {
                if edges[i] == edges[j] {
                    return Err(HgError::DuplicateEdge(i, j));
                }
            }
        }
        Ok(Self::from_parts(vertex_names, edge_names, edges))
    }

    pub(crate) fn from_parts(
        vertex_names: Vec<String>,
        edge_names: Vec<String>,
        edges: Vec<Vec<VertexId>>,
    ) -> Hypergraph {
        let mut incidence = vec![Vec::new(); vertex_names.len()];
        for (ei, e) in edges.iter().enumerate() {
            for v in e {
                incidence[v.idx()].push(EdgeId(ei as u32));
            }
        }
        Hypergraph {
            vertex_names,
            edge_names,
            edges,
            incidence,
        }
    }

    /// Number of vertices `|V(H)|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertex_names.len()
    }

    /// Number of edges `|E(H)|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as u32).map(VertexId)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.num_edges() as u32).map(EdgeId)
    }

    /// The sorted vertex list of edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &[VertexId] {
        &self.edges[e.idx()]
    }

    /// The sorted list `I_v` of edges incident to vertex `v`.
    #[inline]
    pub fn incident_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.incidence[v.idx()]
    }

    /// `degree(v) = |I_v|`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.incidence[v.idx()].len()
    }

    /// The degree of the hypergraph: the maximum vertex degree (0 if there
    /// are no vertices).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.incidence[v].len())
            .max()
            .unwrap_or(0)
    }

    /// The rank: the maximum edge cardinality (0 if there are no edges).
    pub fn rank(&self) -> usize {
        self.edges.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Does edge `e` contain vertex `v`?
    #[inline]
    pub fn edge_contains(&self, e: EdgeId, v: VertexId) -> bool {
        self.edges[e.idx()].binary_search(&v).is_ok()
    }

    /// Name of vertex `v`.
    pub fn vertex_name(&self, v: VertexId) -> &str {
        &self.vertex_names[v.idx()]
    }

    /// Name of edge `e`.
    pub fn edge_name(&self, e: EdgeId) -> &str {
        &self.edge_names[e.idx()]
    }

    /// Rename a vertex (used by builders and pretty-printing helpers).
    pub fn set_vertex_name(&mut self, v: VertexId, name: impl Into<String>) {
        self.vertex_names[v.idx()] = name.into();
    }

    /// Rename an edge.
    pub fn set_edge_name(&mut self, e: EdgeId, name: impl Into<String>) {
        self.edge_names[e.idx()] = name.into();
    }

    /// Look up a vertex by name.
    pub fn vertex_by_name(&self, name: &str) -> Option<VertexId> {
        self.vertex_names
            .iter()
            .position(|n| n == name)
            .map(|i| VertexId(i as u32))
    }

    /// Look up an edge by name.
    pub fn edge_by_name(&self, name: &str) -> Option<EdgeId> {
        self.edge_names
            .iter()
            .position(|n| n == name)
            .map(|i| EdgeId(i as u32))
    }

    /// The *vertex type* of `v`: its incidence set `I_v`. Two vertices with
    /// equal types are interchangeable (reduced hypergraphs keep only one).
    pub fn vertex_type(&self, v: VertexId) -> &[EdgeId] {
        self.incident_edges(v)
    }

    /// `|e ∩ f|` for two edges.
    pub fn edge_intersection_size(&self, e: EdgeId, f: EdgeId) -> usize {
        let (a, b) = (&self.edges[e.idx()], &self.edges[f.idx()]);
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Is `f ⊆ e`?
    pub fn edge_subset(&self, f: EdgeId, e: EdgeId) -> bool {
        self.edge_intersection_size(e, f) == self.edges[f.idx()].len()
    }

    /// Is `f ⊊ e`?
    pub fn edge_proper_subset(&self, f: EdgeId, e: EdgeId) -> bool {
        self.edge_subset(f, e) && self.edges[f.idx()].len() < self.edges[e.idx()].len()
    }

    /// Is the hypergraph connected? Vertices are connected when they share an
    /// edge; a hypergraph with no vertices is connected by convention. Edges
    /// (including empty ones) do not affect vertex connectivity, but an empty
    /// edge makes a hypergraph with ≥1 vertex *disconnected components*-wise
    /// irrelevant, so only vertices are considered.
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }

    /// Connected components as sorted vertex lists.
    pub fn connected_components(&self) -> Vec<Vec<VertexId>> {
        let n = self.num_vertices();
        let mut seen = vec![false; n];
        let mut comps = Vec::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![VertexId(s as u32)];
            seen[s] = true;
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &e in self.incident_edges(v) {
                    for &w in self.edge(e) {
                        if !seen[w.idx()] {
                            seen[w.idx()] = true;
                            stack.push(w);
                        }
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// Are the edges in `set` connected (in the sense that their union is
    /// connected via shared vertices, considering only these edges)?
    pub fn edges_connected(&self, set: &[EdgeId]) -> bool {
        if set.len() <= 1 {
            return true;
        }
        let mut seen = vec![false; set.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut reached = 1;
        while let Some(i) = stack.pop() {
            for (j, done) in seen.iter_mut().enumerate() {
                if !*done && self.edge_intersection_size(set[i], set[j]) > 0 {
                    *done = true;
                    reached += 1;
                    stack.push(j);
                }
            }
        }
        reached == set.len()
    }

    // ------------------------------------------------------------------
    // Mutation primitives. Each returns a fresh hypergraph plus an OpTrace.
    // ------------------------------------------------------------------

    /// Delete vertex `v` from the vertex set and from all edges
    /// (dilution operation (1) of Definition 3.1).
    ///
    /// Edges whose vertex sets become equal collapse into a single edge
    /// (set semantics); an edge may become empty.
    pub fn delete_vertex(&self, v: VertexId) -> Result<(Hypergraph, OpTrace), HgError> {
        if v.idx() >= self.num_vertices() {
            return Err(HgError::VertexOutOfRange(v.0));
        }
        // New vertex ids: shift everything after v down by one.
        let mut vertex_map: Vec<Option<VertexId>> = Vec::with_capacity(self.num_vertices());
        let mut new_vertex_names = Vec::with_capacity(self.num_vertices() - 1);
        for u in 0..self.num_vertices() {
            if u == v.idx() {
                vertex_map.push(None);
            } else {
                vertex_map.push(Some(VertexId(new_vertex_names.len() as u32)));
                new_vertex_names.push(self.vertex_names[u].clone());
            }
        }
        self.rebuild_with_vertex_map(vertex_map, new_vertex_names)
    }

    /// Delete every vertex *not* in `keep`, yielding the induced
    /// subhypergraph `H[keep]` (edges become `e ∩ keep`, collapsing
    /// duplicates; empty edges collapse to at most one).
    pub fn induced(&self, keep: &[VertexId]) -> Result<(Hypergraph, OpTrace), HgError> {
        let mut in_keep = vec![false; self.num_vertices()];
        for &v in keep {
            if v.idx() >= self.num_vertices() {
                return Err(HgError::VertexOutOfRange(v.0));
            }
            in_keep[v.idx()] = true;
        }
        let mut vertex_map: Vec<Option<VertexId>> = Vec::with_capacity(self.num_vertices());
        let mut new_vertex_names = Vec::new();
        for (u, kept) in in_keep.iter().enumerate() {
            if *kept {
                vertex_map.push(Some(VertexId(new_vertex_names.len() as u32)));
                new_vertex_names.push(self.vertex_names[u].clone());
            } else {
                vertex_map.push(None);
            }
        }
        self.rebuild_with_vertex_map(vertex_map, new_vertex_names)
    }

    fn rebuild_with_vertex_map(
        &self,
        vertex_map: Vec<Option<VertexId>>,
        new_vertex_names: Vec<String>,
    ) -> Result<(Hypergraph, OpTrace), HgError> {
        let mut new_edges: Vec<Vec<VertexId>> = Vec::new();
        let mut new_edge_names: Vec<String> = Vec::new();
        let mut seen: BTreeMap<Vec<VertexId>, EdgeId> = BTreeMap::new();
        let mut edge_map: Vec<Option<EdgeId>> = Vec::with_capacity(self.num_edges());
        for (_ei, e) in self.edges.iter().enumerate() {
            let mut ne: Vec<VertexId> = e.iter().filter_map(|v| vertex_map[v.idx()]).collect();
            ne.sort_unstable();
            match seen.get(&ne) {
                Some(&id) => edge_map.push(Some(id)),
                None => {
                    let id = EdgeId(new_edges.len() as u32);
                    seen.insert(ne.clone(), id);
                    new_edge_names.push(self.edge_names[_ei].clone());
                    new_edges.push(ne);
                    edge_map.push(Some(id));
                }
            }
        }
        let hg = Hypergraph::from_parts(new_vertex_names, new_edge_names, new_edges);
        Ok((
            hg,
            OpTrace {
                vertex_map,
                edge_map,
            },
        ))
    }

    /// Delete edge `f`, which must be a proper subset of some other edge
    /// (dilution operation (2) of Definition 3.1). Pass `check = false` to
    /// delete an arbitrary edge (used by non-dilution callers).
    pub fn delete_edge(&self, f: EdgeId, check: bool) -> Result<(Hypergraph, OpTrace), HgError> {
        if f.idx() >= self.num_edges() {
            return Err(HgError::EdgeOutOfRange(f.0));
        }
        if check {
            let has_proper_superset = self
                .edge_ids()
                .any(|e| e != f && self.edge_proper_subset(f, e));
            if !has_proper_superset {
                return Err(HgError::Precondition(format!(
                    "edge e{} is not a proper subset of another edge",
                    f.0
                )));
            }
        }
        let mut new_edges = Vec::with_capacity(self.num_edges() - 1);
        let mut new_edge_names = Vec::with_capacity(self.num_edges() - 1);
        let mut edge_map = Vec::with_capacity(self.num_edges());
        for ei in 0..self.num_edges() {
            if ei == f.idx() {
                edge_map.push(None);
            } else {
                edge_map.push(Some(EdgeId(new_edges.len() as u32)));
                new_edge_names.push(self.edge_names[ei].clone());
                new_edges.push(self.edges[ei].clone());
            }
        }
        let hg = Hypergraph::from_parts(self.vertex_names.clone(), new_edge_names, new_edges);
        let vertex_map = (0..self.num_vertices() as u32)
            .map(|i| Some(VertexId(i)))
            .collect();
        Ok((
            hg,
            OpTrace {
                vertex_map,
                edge_map,
            },
        ))
    }

    /// *Merging on `v`* (dilution operation (3) of Definition 3.1): replace
    /// all edges of `I_v` by the single new edge `(⋃ I_v) \ {v}`.
    ///
    /// The merged edge keeps the position of the first edge of `I_v`; the
    /// vertex `v` itself becomes isolated (degree 0) and *remains in the
    /// vertex set* — Definition 3.1 removes it from the edges only. (A
    /// subsequent vertex deletion removes it; [`crate::reduce()`] does this.)
    /// If the merged edge coincides with an existing edge the two collapse.
    pub fn merge_on_vertex(&self, v: VertexId) -> Result<(Hypergraph, OpTrace), HgError> {
        if v.idx() >= self.num_vertices() {
            return Err(HgError::VertexOutOfRange(v.0));
        }
        let iv: Vec<EdgeId> = self.incident_edges(v).to_vec();
        if iv.is_empty() {
            return Err(HgError::Precondition(format!(
                "cannot merge on isolated vertex v{}",
                v.0
            )));
        }
        let mut merged: Vec<VertexId> = Vec::new();
        for &e in &iv {
            merged.extend(self.edge(e).iter().copied());
        }
        merged.sort_unstable();
        merged.dedup();
        merged.retain(|&u| u != v);

        let mut new_edges: Vec<Vec<VertexId>> = Vec::new();
        let mut new_edge_names: Vec<String> = Vec::new();
        let mut seen: BTreeMap<Vec<VertexId>, EdgeId> = BTreeMap::new();
        let mut edge_map: Vec<Option<EdgeId>> = vec![None; self.num_edges()];
        let mut merged_id: Option<EdgeId> = None;
        for (ei, slot) in edge_map.iter_mut().enumerate() {
            let e = EdgeId(ei as u32);
            let in_iv = iv.contains(&e);
            let content = if in_iv {
                if let Some(id) = merged_id {
                    *slot = Some(id);
                    continue;
                }
                merged.clone()
            } else {
                self.edges[ei].clone()
            };
            match seen.get(&content) {
                Some(&id) => {
                    *slot = Some(id);
                    if in_iv {
                        merged_id = Some(id);
                    }
                }
                None => {
                    let id = EdgeId(new_edges.len() as u32);
                    seen.insert(content.clone(), id);
                    new_edge_names.push(if in_iv {
                        format!("m({})", self.vertex_names[v.idx()])
                    } else {
                        self.edge_names[ei].clone()
                    });
                    new_edges.push(content);
                    *slot = Some(id);
                    if in_iv {
                        merged_id = Some(id);
                    }
                }
            }
        }
        let hg = Hypergraph::from_parts(self.vertex_names.clone(), new_edge_names, new_edges);
        let vertex_map = (0..self.num_vertices() as u32)
            .map(|i| Some(VertexId(i)))
            .collect();
        Ok((
            hg,
            OpTrace {
                vertex_map,
                edge_map,
            },
        ))
    }

    /// A compact structural summary used for quick inequality checks and
    /// debugging: `(|V|, |E|, degree, rank, sorted edge sizes)`.
    pub fn signature(&self) -> (usize, usize, usize, usize, Vec<usize>) {
        let mut sizes: Vec<usize> = self.edges.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        (
            self.num_vertices(),
            self.num_edges(),
            self.max_degree(),
            self.rank(),
            sizes,
        )
    }
}

impl fmt::Debug for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Hypergraph(|V|={}, |E|={}, degree={}, rank={})",
            self.num_vertices(),
            self.num_edges(),
            self.max_degree(),
            self.rank()
        )?;
        for e in self.edge_ids() {
            let names: Vec<&str> = self.edge(e).iter().map(|&v| self.vertex_name(v)).collect();
            writeln!(f, "  {} = {{{}}}", self.edge_name(e), names.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Hypergraph {
        // Three rank-2 edges forming a triangle.
        Hypergraph::new(3, &[vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let h = triangle();
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.max_degree(), 2);
        assert_eq!(h.rank(), 2);
        assert_eq!(h.degree(VertexId(1)), 2);
        assert_eq!(h.incident_edges(VertexId(0)), &[EdgeId(0), EdgeId(2)]);
        assert!(h.edge_contains(EdgeId(0), VertexId(1)));
        assert!(!h.edge_contains(EdgeId(0), VertexId(2)));
    }

    #[test]
    fn duplicate_edges_rejected() {
        let err = Hypergraph::new(3, &[vec![0, 1], vec![1, 0]]).unwrap_err();
        assert_eq!(err, HgError::DuplicateEdge(0, 1));
    }

    #[test]
    fn out_of_range_rejected() {
        let err = Hypergraph::new(2, &[vec![0, 5]]).unwrap_err();
        assert_eq!(err, HgError::VertexOutOfRange(5));
    }

    #[test]
    fn edge_within_edge_dedup() {
        // Repeated vertex inside one edge literal is deduplicated.
        let h = Hypergraph::new(2, &[vec![0, 1, 0]]).unwrap();
        assert_eq!(h.edge(EdgeId(0)), &[VertexId(0), VertexId(1)]);
    }

    #[test]
    fn delete_vertex_collapses_edges() {
        // Edges {0,1,2} and {0,1,3}: deleting 2 then 3 makes them equal.
        let h = Hypergraph::new(4, &[vec![0, 1, 2], vec![0, 1, 3]]).unwrap();
        let (h2, t2) = h.delete_vertex(VertexId(2)).unwrap();
        assert_eq!(h2.num_edges(), 2);
        let v3_new = t2.vertex_map[3].unwrap();
        let (h3, t3) = h2.delete_vertex(v3_new).unwrap();
        assert_eq!(h3.num_edges(), 1);
        assert_eq!(t3.edge_map[0], t3.edge_map[1]);
        assert_eq!(h3.edge(EdgeId(0)).len(), 2);
    }

    #[test]
    fn delete_vertex_can_create_empty_edge() {
        let h = Hypergraph::new(2, &[vec![0], vec![0, 1]]).unwrap();
        let (h2, _) = h.delete_vertex(VertexId(0)).unwrap();
        assert_eq!(h2.num_edges(), 2);
        assert!(h2.edge(EdgeId(0)).is_empty());
    }

    #[test]
    fn delete_subedge_requires_proper_superset() {
        let h = Hypergraph::new(3, &[vec![0, 1], vec![0, 1, 2]]).unwrap();
        assert!(h.delete_edge(EdgeId(0), true).is_ok());
        assert!(h.delete_edge(EdgeId(1), true).is_err());
        // Unchecked deletion is allowed for non-dilution callers.
        assert!(h.delete_edge(EdgeId(1), false).is_ok());
    }

    #[test]
    fn merge_on_vertex_matches_definition() {
        // Figure 1-style: merging on y with I_y = {{x,y},{y,a},{y,b}}
        // produces the single edge {x,a,b}.
        let h = Hypergraph::new(
            4, // x=0, y=1, a=2, b=3
            &[vec![0, 1], vec![1, 2], vec![1, 3]],
        )
        .unwrap();
        let (m, trace) = h.merge_on_vertex(VertexId(1)).unwrap();
        assert_eq!(m.num_edges(), 1);
        assert_eq!(m.edge(EdgeId(0)), &[VertexId(0), VertexId(2), VertexId(3)]);
        // All three old edges map to the merged edge.
        assert!(trace.edge_map.iter().all(|&e| e == Some(EdgeId(0))));
        // y is now isolated but still present.
        assert_eq!(m.num_vertices(), 4);
        assert_eq!(m.degree(VertexId(1)), 0);
    }

    #[test]
    fn merge_collapses_with_existing_edge() {
        // Edges {0,1} and {1,2} merged on 1 give {0,2}, which already exists.
        let h = Hypergraph::new(3, &[vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap();
        let (m, trace) = h.merge_on_vertex(VertexId(1)).unwrap();
        assert_eq!(m.num_edges(), 1);
        assert_eq!(trace.edge_map[0], trace.edge_map[2]);
    }

    #[test]
    fn merge_on_isolated_vertex_fails() {
        let h = Hypergraph::new(2, &[vec![0]]).unwrap();
        assert!(h.merge_on_vertex(VertexId(1)).is_err());
    }

    #[test]
    fn connectivity() {
        let h = Hypergraph::new(4, &[vec![0, 1], vec![2, 3]]).unwrap();
        assert!(!h.is_connected());
        assert_eq!(h.connected_components().len(), 2);
        let h2 = triangle();
        assert!(h2.is_connected());
    }

    #[test]
    fn edges_connected_checks_overlap() {
        let h = Hypergraph::new(5, &[vec![0, 1], vec![1, 2], vec![3, 4]]).unwrap();
        assert!(h.edges_connected(&[EdgeId(0), EdgeId(1)]));
        assert!(!h.edges_connected(&[EdgeId(0), EdgeId(2)]));
        assert!(h.edges_connected(&[EdgeId(2)]));
    }

    #[test]
    fn induced_subhypergraph() {
        let h = Hypergraph::new(4, &[vec![0, 1, 2], vec![2, 3]]).unwrap();
        let (h2, t) = h.induced(&[VertexId(0), VertexId(1)]).unwrap();
        assert_eq!(h2.num_vertices(), 2);
        assert_eq!(h2.num_edges(), 2); // {0,1} and the empty edge from {2,3}
        assert_eq!(t.vertex_map[2], None);
    }

    #[test]
    fn trace_composition() {
        let h = Hypergraph::new(3, &[vec![0, 1], vec![1, 2]]).unwrap();
        let (h2, t1) = h.delete_vertex(VertexId(0)).unwrap();
        let (_h3, t2) = h2.delete_vertex(t1.vertex_map[1].unwrap()).unwrap();
        let c = t1.then(&t2);
        assert_eq!(c.vertex_map[0], None);
        assert_eq!(c.vertex_map[1], None);
        assert!(c.vertex_map[2].is_some());
    }

    #[test]
    fn intersection_and_subset() {
        let h = Hypergraph::new(4, &[vec![0, 1, 2], vec![1, 2], vec![2, 3]]).unwrap();
        assert_eq!(h.edge_intersection_size(EdgeId(0), EdgeId(1)), 2);
        assert_eq!(h.edge_intersection_size(EdgeId(1), EdgeId(2)), 1);
        assert!(h.edge_subset(EdgeId(1), EdgeId(0)));
        assert!(h.edge_proper_subset(EdgeId(1), EdgeId(0)));
        assert!(!h.edge_subset(EdgeId(2), EdgeId(0)));
    }
}
