//! Property-based tests for the GHD structural verifier.
//!
//! Two directions, per the verifier's contract:
//!
//! 1. **Soundness on valid inputs**: every GHD the library constructs
//!    for a random degree-bounded hypergraph passes [`verify_ghd`] and
//!    [`verify_ghd_width`] at its true width.
//! 2. **Mutation rejection**: five classes of targeted corruption —
//!    dropping a bag variable, disconnecting the tree, breaking the
//!    running-intersection property, shrinking a `λ`-cover, and lying
//!    about the width — are each rejected with the matching
//!    [`VerifyError`] variant. A verifier that accepts any of these
//!    would let a planner bug produce silently wrong answers.
//!
//! The vendored `proptest!` macro expands recursively over body tokens,
//! so each property's logic lives in a plain helper returning
//! `Result<(), String>` (an error describes the violated expectation)
//! and the macro bodies stay one-liners.

use cqd2_decomp::verify::{verify_ghd, verify_ghd_width, VerifyError};
use cqd2_decomp::widths::ghw_decomposition;
use cqd2_decomp::Ghd;
use cqd2_hypergraph::generators::random_degree_bounded;
use cqd2_hypergraph::{EdgeId, Hypergraph, VertexId};
use proptest::prelude::*;

/// A random small degree-≤-`max_degree` hypergraph and its GHD.
fn decomposed(m: usize, max_degree: usize, seed: u64) -> Option<(Hypergraph, Ghd)> {
    let h = random_degree_bounded(m, 3, max_degree, 0.6, seed);
    if h.num_vertices() == 0 {
        return None;
    }
    let ghd = ghw_decomposition(&h)?;
    Some((h, ghd))
}

/// Bags of `ghd` that fully contain hypergraph edge `e` (by index).
fn bags_containing_edge(h: &Hypergraph, ghd: &Ghd, e: usize) -> Vec<usize> {
    let edge = h.edge(EdgeId(e as u32));
    ghd.td
        .bags
        .iter()
        .enumerate()
        .filter(|(_, bag)| edge.iter().all(|v| bag.contains(v)))
        .map(|(u, _)| u)
        .collect()
}

/// Bags of `ghd` containing vertex `v`.
fn bags_containing_vertex(ghd: &Ghd, v: VertexId) -> Vec<usize> {
    ghd.td
        .bags
        .iter()
        .enumerate()
        .filter(|(_, bag)| bag.contains(&v))
        .map(|(u, _)| u)
        .collect()
}

/// Direction 1: library-built GHDs verify clean, at their width (and at
/// any slacker claimed width — the claim is an upper bound).
fn check_constructed_verifies(seed: u64, m: usize, deg: usize) -> Result<(), String> {
    let Some((h, ghd)) = decomposed(m, deg, seed) else {
        return Ok(());
    };
    verify_ghd(&h, &ghd).map_err(|e| format!("valid GHD rejected: {e}"))?;
    verify_ghd_width(&h, &ghd, ghd.width()).map_err(|e| format!("true width rejected: {e}"))?;
    verify_ghd_width(&h, &ghd, ghd.width() + 1).map_err(|e| format!("slack width rejected: {e}"))
}

/// Mutation class 1: drop a variable from the only bag containing one
/// of its edges — the edge (or a sibling) loses its home bag.
fn check_dropped_bag_variable(seed: u64, m: usize) -> Result<(), String> {
    let Some((h, ghd)) = decomposed(m, 2, seed) else {
        return Ok(());
    };
    for e in 0..h.num_edges() {
        let [only] = bags_containing_edge(&h, &ghd, e).as_slice()[..] else {
            continue;
        };
        let victim = h.edge(EdgeId(e as u32))[0];
        let mut bad = ghd.clone();
        bad.td.bags[only].retain(|v| *v != victim);
        return match verify_ghd(&h, &bad) {
            Err(VerifyError::EdgeNotCovered { .. }) => Ok(()),
            other => Err(format!(
                "dropping v{} from bag {only} gave {other:?}",
                victim.0
            )),
        };
    }
    Ok(()) // no uniquely-placed edge in this draw
}

/// Mutation class 2: delete a tree edge — the bag graph stops being a
/// connected tree.
fn check_disconnected_tree(seed: u64, m: usize) -> Result<(), String> {
    let Some((h, ghd)) = decomposed(m, 2, seed) else {
        return Ok(());
    };
    if ghd.td.tree.is_empty() {
        return Ok(());
    }
    let mut bad = ghd.clone();
    bad.td.tree.pop();
    let n = bad.td.bags.len();
    let expect = VerifyError::NotATree {
        bags: n,
        edges: n - 2,
    };
    match verify_ghd(&h, &bad) {
        Err(e) if e == expect => Ok(()),
        other => Err(format!("expected {expect:?}, got {other:?}")),
    }
}

/// Mutation class 3: copy a vertex into a bag that neither holds it nor
/// touches its subtree — running intersection breaks for that vertex.
fn check_broken_running_intersection(seed: u64, m: usize) -> Result<(), String> {
    let Some((h, ghd)) = decomposed(m, 2, seed) else {
        return Ok(());
    };
    let n = ghd.td.bags.len();
    if n < 3 {
        return Ok(());
    }
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in &ghd.td.tree {
        adj[a].push(b);
        adj[b].push(a);
    }
    for v in (0..h.num_vertices() as u32).map(VertexId) {
        let home = bags_containing_vertex(&ghd, v);
        if home.is_empty() {
            continue;
        }
        let stranded =
            (0..n).find(|u| !home.contains(u) && !adj[*u].iter().any(|w| home.contains(w)));
        let Some(u) = stranded else { continue };
        let mut bad = ghd.clone();
        bad.td.bags[u].push(v);
        bad.td.bags[u].sort_unstable();
        let expect = VerifyError::RunningIntersection { vertex: v.0 };
        return match verify_ghd(&h, &bad) {
            Err(e) if e == expect => Ok(()),
            other => Err(format!("expected {expect:?}, got {other:?}")),
        };
    }
    Ok(()) // tree too tight to strand anything in this draw
}

/// Mutation class 4: empty a bag's λ-cover — the bag's variables go
/// uncovered.
fn check_shrunk_lambda_cover(seed: u64, m: usize) -> Result<(), String> {
    let Some((h, ghd)) = decomposed(m, 2, seed) else {
        return Ok(());
    };
    for u in 0..ghd.td.bags.len() {
        if ghd.td.bags[u].is_empty() || ghd.covers[u].is_empty() {
            continue;
        }
        let mut bad = ghd.clone();
        bad.covers[u].clear();
        return match verify_ghd(&h, &bad) {
            Err(VerifyError::BagNotCovered { bag, .. }) if bag == u => Ok(()),
            other => Err(format!("emptying λ of bag {u} gave {other:?}")),
        };
    }
    Ok(())
}

/// Mutation class 5: claim width - 1 — rejected with both numbers.
fn check_width_lie(seed: u64, m: usize, deg: usize) -> Result<(), String> {
    let Some((h, ghd)) = decomposed(m, deg, seed) else {
        return Ok(());
    };
    let w = ghd.width();
    if w == 0 {
        return Ok(());
    }
    let expect = VerifyError::WidthExceeded {
        claimed: w - 1,
        actual: w,
    };
    match verify_ghd_width(&h, &ghd, w - 1) {
        Err(e) if e == expect => Ok(()),
        other => Err(format!("expected {expect:?}, got {other:?}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn constructed_ghds_verify(seed in 0u64..300, m in 1usize..8, deg in 1usize..4) {
        prop_assert_eq!(check_constructed_verifies(seed, m, deg), Ok(()));
    }

    #[test]
    fn mutation_dropped_bag_variable_rejected(seed in 0u64..300, m in 1usize..8) {
        prop_assert_eq!(check_dropped_bag_variable(seed, m), Ok(()));
    }

    #[test]
    fn mutation_disconnected_tree_rejected(seed in 0u64..300, m in 2usize..8) {
        prop_assert_eq!(check_disconnected_tree(seed, m), Ok(()));
    }

    #[test]
    fn mutation_broken_running_intersection_rejected(seed in 0u64..300, m in 2usize..8) {
        prop_assert_eq!(check_broken_running_intersection(seed, m), Ok(()));
    }

    #[test]
    fn mutation_shrunk_lambda_cover_rejected(seed in 0u64..300, m in 1usize..8) {
        prop_assert_eq!(check_shrunk_lambda_cover(seed, m), Ok(()));
    }

    #[test]
    fn mutation_width_lie_rejected(seed in 0u64..300, m in 1usize..8, deg in 1usize..4) {
        prop_assert_eq!(check_width_lie(seed, m, deg), Ok(()));
    }
}

/// Deterministic spot checks so each mutation class is exercised even
/// if a proptest draw happens to skip its precondition.
#[test]
fn mutation_classes_on_fixed_chain() {
    use cqd2_hypergraph::generators::hyperchain;
    let h = hyperchain(4, 3);
    let ghd = ghw_decomposition(&h).expect("chain decomposes");
    assert_eq!(verify_ghd(&h, &ghd), Ok(()));
    let n = ghd.td.bags.len();
    assert!(n >= 2, "chain of 4 edges has multiple bags");

    // Disconnect.
    let mut bad = ghd.clone();
    bad.td.tree.pop();
    assert!(matches!(
        verify_ghd(&h, &bad),
        Err(VerifyError::NotATree { .. })
    ));

    // Drop a variable used by a uniquely-placed edge.
    for e in 0..h.num_edges() {
        let containing = bags_containing_edge(&h, &ghd, e);
        if let [only] = containing.as_slice() {
            let victim = h.edge(EdgeId(e as u32))[0];
            let mut bad = ghd.clone();
            bad.td.bags[*only].retain(|v| *v != victim);
            assert!(matches!(
                verify_ghd(&h, &bad),
                Err(VerifyError::EdgeNotCovered { .. })
            ));
            break;
        }
    }

    // Shrink a cover.
    let u = (0..n)
        .find(|&u| !ghd.td.bags[u].is_empty() && !ghd.covers[u].is_empty())
        .expect("some covered bag");
    let mut bad = ghd.clone();
    bad.covers[u].clear();
    assert!(matches!(
        verify_ghd(&h, &bad),
        Err(VerifyError::BagNotCovered { bag, .. }) if bag == u
    ));

    // Lie about width.
    let w = ghd.width();
    assert!(w >= 1);
    assert_eq!(
        verify_ghd_width(&h, &ghd, w - 1),
        Err(VerifyError::WidthExceeded {
            claimed: w - 1,
            actual: w
        })
    );

    // Referential breakage is caught before anything walks ids.
    let mut bad = ghd.clone();
    bad.covers.pop();
    assert!(matches!(
        verify_ghd(&h, &bad),
        Err(VerifyError::CoverCountMismatch { .. })
    ));
}
