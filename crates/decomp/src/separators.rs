//! Balanced edge separators and the §4.2 ghw lower bound.
//!
//! The paper's lower bound for jigsaws: a hypergraph of ghw `k` can always
//! be *balanced-separated* by at most `k` edges (Adler, Gottlob & Grohe
//! \[3\]) — removing the vertices of some ≤ k edges splits it into
//! components of at most half the vertices. Contrapositive: if **no** set
//! of `k` edges balanced-separates `H`, then `ghw(H) > k`. This module
//! implements the check by exhaustive search over edge subsets
//! (exponential in `k`; used for small `k` as a certified lower bound).

use cqd2_hypergraph::{EdgeId, Hypergraph, VertexId};

/// Does deleting the vertices of `edges` split `h` into components that
/// each touch at most half of `H`'s edges? (Component size is measured in
/// *edges* — "components at most half the size of the original
/// hypergraph", §4.2; the separator edges themselves belong to no
/// component.)
pub fn is_balanced_edge_separator(h: &Hypergraph, edges: &[EdgeId]) -> bool {
    let mut removed = vec![false; h.num_vertices()];
    let mut in_sep = vec![false; h.num_edges()];
    for &e in edges {
        in_sep[e.idx()] = true;
        for &v in h.edge(e) {
            removed[v.idx()] = true;
        }
    }
    let m = h.num_edges();
    let mut seen = removed.clone();
    for s in h.vertices() {
        if seen[s.idx()] {
            continue;
        }
        // BFS the component of s in H minus the separator vertices,
        // counting the distinct non-separator edges it touches.
        let mut touched: std::collections::BTreeSet<EdgeId> = std::collections::BTreeSet::new();
        let mut stack = vec![s];
        seen[s.idx()] = true;
        while let Some(v) = stack.pop() {
            for &e in h.incident_edges(v) {
                if in_sep[e.idx()] {
                    continue;
                }
                touched.insert(e);
                for &w in h.edge(e) {
                    if !seen[w.idx()] {
                        seen[w.idx()] = true;
                        stack.push(w);
                    }
                }
            }
        }
        if 2 * touched.len() > m {
            return false;
        }
    }
    true
}

/// Search for a balanced separator of at most `k` edges. Returns a witness
/// or `None` if none exists (exhaustive; exponential in `k`).
pub fn find_balanced_edge_separator(h: &Hypergraph, k: usize) -> Option<Vec<EdgeId>> {
    let edges: Vec<EdgeId> = h.edge_ids().collect();
    let mut chosen: Vec<EdgeId> = Vec::new();
    fn rec(
        h: &Hypergraph,
        edges: &[EdgeId],
        start: usize,
        k: usize,
        chosen: &mut Vec<EdgeId>,
    ) -> bool {
        if is_balanced_edge_separator(h, chosen) {
            return true;
        }
        if chosen.len() == k {
            return false;
        }
        for i in start..edges.len() {
            chosen.push(edges[i]);
            if rec(h, edges, i + 1, k, chosen) {
                return true;
            }
            chosen.pop();
        }
        false
    }
    if rec(h, &edges, 0, k, &mut chosen) {
        Some(chosen)
    } else {
        None
    }
}

/// A certified ghw lower bound via balanced separation: the largest
/// `k + 1 ≤ limit` such that no `k` edges balanced-separate `H`
/// (`ghw(H) ≥ k + 1` then). Exponential in `limit`; keep it small.
pub fn separator_ghw_lower_bound(h: &Hypergraph, limit: usize) -> usize {
    if h.num_edges() == 0 {
        return 0;
    }
    for k in 0..limit {
        if find_balanced_edge_separator(h, k).is_some() {
            return k.max(1);
        }
    }
    limit
}

/// Convenience: the witness that a separator of `k` edges exists, exposed
/// for the GHD construction literature cross-checks in tests.
pub fn separator_witness(h: &Hypergraph, k: usize) -> Option<Vec<VertexId>> {
    let sep = find_balanced_edge_separator(h, k)?;
    let mut vs: Vec<VertexId> = sep.iter().flat_map(|&e| h.edge(e).to_vec()).collect();
    vs.sort_unstable();
    vs.dedup();
    Some(vs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::widths::ghw_exact;
    use cqd2_hypergraph::generators::{grid_graph, hyperchain, hypercycle};
    use cqd2_hypergraph::{dual, reduce};

    fn jigsaw(n: usize, m: usize) -> Hypergraph {
        let (d, _) = dual(&grid_graph(n, m).to_hypergraph());
        let (r, _) = reduce::reduce(&d);
        r
    }

    #[test]
    fn chains_separate_with_one_edge() {
        let h = hyperchain(6, 3);
        assert!(find_balanced_edge_separator(&h, 1).is_some());
        assert_eq!(separator_ghw_lower_bound(&h, 3), 1);
    }

    #[test]
    fn cycles_need_two_edges() {
        let h = hypercycle(8, 3);
        // One edge cannot balance-split a long cycle...
        assert!(find_balanced_edge_separator(&h, 1).is_none());
        assert!(find_balanced_edge_separator(&h, 2).is_some());
        assert_eq!(separator_ghw_lower_bound(&h, 4), 2);
    }

    #[test]
    fn jigsaw_separator_bound_matches_paper() {
        // §4.2: the n×n jigsaw cannot be balanced-separated by < n edges,
        // so ghw(J_n) ≥ n.
        for n in 2..=3 {
            let j = jigsaw(n, n);
            let lb = separator_ghw_lower_bound(&j, n + 1);
            assert!(lb >= n, "separator lower bound {lb} < {n} on J_{n}");
            // Consistent with the exact solver.
            let exact = ghw_exact(&j).unwrap();
            assert!(lb <= exact);
        }
    }

    #[test]
    fn lower_bound_never_exceeds_ghw() {
        // Soundness of the contrapositive on assorted instances.
        use cqd2_hypergraph::generators::random_degree_bounded;
        for seed in 0..6 {
            let h = random_degree_bounded(6, 3, 2, 0.6, seed);
            if h.num_edges() == 0 {
                continue;
            }
            let lb = separator_ghw_lower_bound(&h, 3);
            let exact = ghw_exact(&h).unwrap();
            assert!(
                lb <= exact,
                "separator bound {lb} exceeds ghw {exact} (seed {seed})"
            );
        }
    }

    #[test]
    fn empty_separator_for_tiny_inputs() {
        let h = Hypergraph::new(2, &[vec![0, 1]]).unwrap();
        // Removing the single edge's vertices leaves nothing: balanced.
        assert!(is_balanced_edge_separator(&h, &[EdgeId(0)]));
        assert!(find_balanced_edge_separator(&h, 1).is_some());
        assert!(separator_witness(&h, 1).is_some());
    }
}
