//! Public width API: treewidth, ghw, fhw — exact on small instances,
//! bounded intervals on larger ones.

use cqd2_hypergraph::{Graph, Hypergraph, VertexId};

use crate::cover::CoverCache;
use crate::elimination::{min_degree_order, min_fill_order, order_to_td, order_width};
use crate::exact::{f_width_exact, ExactWidth};
use crate::ghd::Ghd;
use crate::lower_bounds::mmd_lower_bound;
use crate::lp::fractional_cover_number;
use crate::tree_decomposition::TreeDecomposition;

/// The primal (Gaifman) graph of a hypergraph: vertices of `H`, an edge
/// between any two vertices sharing a hyperedge.
pub fn primal_graph(h: &Hypergraph) -> Graph {
    let mut g = Graph::empty(h.num_vertices());
    for e in h.edge_ids() {
        let vs = h.edge(e);
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                g.add_edge(vs[i].0, vs[j].0);
            }
        }
    }
    g
}

/// An interval estimate for a width parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WidthEstimate {
    /// Certified lower bound.
    pub lower: f64,
    /// Certified upper bound (achieved by a real decomposition).
    pub upper: f64,
}

impl WidthEstimate {
    /// Is the interval a point (the width is known exactly)?
    pub fn is_exact(&self) -> bool {
        (self.upper - self.lower).abs() < 1e-9
    }
}

/// Exact treewidth (`None` when the graph exceeds the exact-DP size cap).
pub fn treewidth_exact(g: &Graph) -> Option<usize> {
    let ub = treewidth_upper_bound(g);
    f_width_exact(g, &mut |b: &[u32]| b.len().saturating_sub(1), Some(ub)).map(|r| r.width)
}

/// Heuristic treewidth upper bound: best of min-fill and min-degree.
pub fn treewidth_upper_bound(g: &Graph) -> usize {
    let mf = order_width(g, &min_fill_order(g));
    let md = order_width(g, &min_degree_order(g));
    mf.min(md)
}

/// A valid tree decomposition: exact-width when feasible, heuristic
/// otherwise.
pub fn treewidth_decomposition(g: &Graph) -> TreeDecomposition {
    match f_width_exact(g, &mut |b: &[u32]| b.len().saturating_sub(1), None) {
        Some(ExactWidth { order, .. }) => order_to_td(g, &order),
        None => order_to_td(g, &min_fill_order(g)),
    }
}

/// Treewidth interval for graphs of any size.
pub fn treewidth_estimate(g: &Graph) -> WidthEstimate {
    if let Some(w) = treewidth_exact(g) {
        return WidthEstimate {
            lower: w as f64,
            upper: w as f64,
        };
    }
    WidthEstimate {
        lower: mmd_lower_bound(g) as f64,
        upper: treewidth_upper_bound(g) as f64,
    }
}

/// Exact generalized hypertree width (`None` when the primal graph exceeds
/// the exact-DP cap). Hypergraphs with no edges have ghw 0.
pub fn ghw_exact(h: &Hypergraph) -> Option<usize> {
    if h.num_edges() == 0 || h.edge_ids().all(|e| h.edge(e).is_empty()) {
        return Some(0);
    }
    let g = primal_graph(h);
    // Warm-start upper bound: ρ-width of a heuristic TD, and the Lemma 4.6
    // dual route — whichever is smaller.
    let ub = ghw_upper_bound(h);
    let mut cache = CoverCache::new(h);
    let mut cost = |bag: &[u32]| {
        let vids: Vec<VertexId> = bag.iter().map(|&v| VertexId(v)).collect();
        cache.cover_number(&vids)
    };
    f_width_exact(&g, &mut cost, Some(ub)).map(|r| r.width)
}

/// An optimal-width GHD (`None` beyond the exact cap).
pub fn ghw_decomposition(h: &Hypergraph) -> Option<Ghd> {
    if h.num_edges() == 0 {
        let td = TreeDecomposition::trivial(h);
        return Some(Ghd {
            covers: vec![vec![]; td.bags.len()],
            td,
        });
    }
    let g = primal_graph(h);
    let ub = ghw_upper_bound(h);
    let mut cache = CoverCache::new(h);
    let mut cost = |bag: &[u32]| {
        let vids: Vec<VertexId> = bag.iter().map(|&v| VertexId(v)).collect();
        cache.cover_number(&vids)
    };
    let r = f_width_exact(&g, &mut cost, Some(ub))?;
    let td = order_to_td(&g, &r.order);
    let ghd = Ghd::from_td_exact(h, td);
    debug_assert!(ghd.validate(h).is_ok());
    Some(ghd)
}

/// Heuristic ghw upper bound: minimum of (a) exact covers over a min-fill
/// tree decomposition of the primal graph and (b) the Lemma 4.6 dual-route
/// GHD. Both produce *valid* GHDs, so the bound is certified.
pub fn ghw_upper_bound(h: &Hypergraph) -> usize {
    if h.num_edges() == 0 {
        return 0;
    }
    let g = primal_graph(h);
    let td = order_to_td(&g, &min_fill_order(&g));
    let direct = Ghd::from_td_exact(h, td).width();
    let via_dual = crate::dual_bound::ghd_via_dual(h).width();
    direct.min(via_dual)
}

/// A certified ghw lower bound for any size: the ceiling of the fhw lower
/// bound `ρ*(bag)` is unavailable without a decomposition, so we use
/// `max(1 [if an edge exists], ceil((tw_lb(primal) + 1) / rank))` — every
/// bag of any decomposition of the primal graph has some bag of size
/// ≥ tw+1, which needs at least `(tw+1)/rank` edges to cover.
pub fn ghw_lower_bound(h: &Hypergraph) -> usize {
    if h.num_edges() == 0 || h.rank() == 0 {
        return 0;
    }
    let g = primal_graph(h);
    let tw_lb = mmd_lower_bound(&g);
    let by_rank = (tw_lb + 1).div_ceil(h.rank());
    by_rank.max(1)
}

/// ghw interval for hypergraphs of any size.
pub fn ghw_estimate(h: &Hypergraph) -> WidthEstimate {
    if let Some(w) = ghw_exact(h) {
        return WidthEstimate {
            lower: w as f64,
            upper: w as f64,
        };
    }
    WidthEstimate {
        lower: ghw_lower_bound(h) as f64,
        upper: ghw_upper_bound(h) as f64,
    }
}

/// Total order wrapper for f64 widths (our LP values never produce NaN).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
struct F64Width(f64);

/// Exact fractional hypertree width (`None` beyond the exact cap).
pub fn fhw_exact(h: &Hypergraph) -> Option<f64> {
    if h.num_edges() == 0 || h.edge_ids().all(|e| h.edge(e).is_empty()) {
        return Some(0.0);
    }
    let g = primal_graph(h);
    let mut cache: std::collections::HashMap<Vec<u32>, f64> = std::collections::HashMap::new();
    let mut cost = |bag: &[u32]| {
        let key = bag.to_vec();
        if let Some(&v) = cache.get(&key) {
            return F64Width(v);
        }
        let vids: Vec<VertexId> = bag.iter().map(|&v| VertexId(v)).collect();
        let v = fractional_cover_number(h, &vids);
        cache.insert(key, v);
        F64Width(v)
    };
    f_width_exact(&g, &mut cost, None).map(|r| r.width.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_hypergraph::generators::{
        grid_graph, hyperchain, hypercycle, hyperstar, random_degree_bounded,
    };
    use cqd2_hypergraph::{dual, reduce};

    #[test]
    fn acyclic_hypergraphs_have_ghw_one() {
        assert_eq!(ghw_exact(&hyperchain(5, 3)), Some(1));
        assert_eq!(ghw_exact(&hyperstar(4, 3)), Some(1));
    }

    #[test]
    fn hypercycle_has_ghw_two() {
        assert_eq!(ghw_exact(&hypercycle(5, 3)), Some(2));
        assert_eq!(ghw_exact(&hypercycle(7, 2)), Some(2));
    }

    #[test]
    fn jigsaw_ghw_bracket() {
        // ghw(J_n) ∈ [n, n+1]: the paper's anchor family.
        for n in 2..=3 {
            let grid = grid_graph(n, n);
            let (jig, _) = dual(&grid.to_hypergraph());
            let (jig, _) = reduce(&jig);
            let w = ghw_exact(&jig).expect("small jigsaw");
            assert!(w >= n, "ghw(J_{n}) = {w} < {n}");
            assert!(w <= n + 1, "ghw(J_{n}) = {w} > {}", n + 1);
        }
    }

    #[test]
    fn ghw_decomposition_is_valid_and_optimal() {
        let h = hypercycle(5, 3);
        let ghd = ghw_decomposition(&h).unwrap();
        ghd.validate(&h).unwrap();
        assert_eq!(ghd.width(), 2);
    }

    #[test]
    fn fhw_le_ghw_and_triangle_case() {
        // Triangle hypergraph: ghw = 2, fhw = 3/2.
        let h = Hypergraph::new(3, &[vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap();
        assert_eq!(ghw_exact(&h), Some(2));
        let f = fhw_exact(&h).unwrap();
        assert!((f - 1.5).abs() < 1e-6, "fhw(triangle) = {f}");
    }

    #[test]
    fn fhw_never_exceeds_ghw_on_random_instances() {
        for seed in 0..6 {
            let h = random_degree_bounded(7, 3, 2, 0.6, seed);
            if h.num_vertices() == 0 {
                continue;
            }
            let g = ghw_exact(&h).unwrap() as f64;
            let f = fhw_exact(&h).unwrap();
            assert!(f <= g + 1e-6, "seed {seed}: fhw {f} > ghw {g}");
        }
    }

    #[test]
    fn estimates_are_consistent_intervals() {
        for seed in 0..6 {
            let h = random_degree_bounded(10, 3, 2, 0.6, seed);
            let est = ghw_estimate(&h);
            assert!(est.lower <= est.upper + 1e-9);
            if let Some(w) = ghw_exact(&h) {
                assert!(est.lower <= w as f64 + 1e-9);
                assert!(est.upper + 1e-9 >= w as f64);
            }
        }
    }

    #[test]
    fn upper_bound_is_certified() {
        for seed in 0..4 {
            let h = random_degree_bounded(9, 4, 2, 0.5, seed);
            let ub = ghw_upper_bound(&h);
            if let Some(w) = ghw_exact(&h) {
                assert!(ub >= w);
            }
        }
    }

    #[test]
    fn treewidth_estimate_exact_on_small() {
        let est = treewidth_estimate(&grid_graph(3, 3));
        assert!(est.is_exact());
        assert_eq!(est.lower, 3.0);
    }

    #[test]
    fn edgeless_hypergraph_widths() {
        let h = Hypergraph::new(3, &[]).unwrap();
        assert_eq!(ghw_exact(&h), Some(0));
        assert_eq!(fhw_exact(&h), Some(0.0));
    }
}
