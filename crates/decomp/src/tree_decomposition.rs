//! Tree decompositions of hypergraphs, with validation.
//!
//! Following Adler (paper, Section 2): `⟨T, (B_u)_{u∈T}⟩` is a tree
//! decomposition of hypergraph `H` when (1) every edge of `H` is contained
//! in some bag, and (2) for every vertex `v` the set of nodes whose bag
//! contains `v` induces a connected subtree of `T`.

use cqd2_hypergraph::{Hypergraph, VertexId};
use std::collections::BTreeSet;

/// A tree decomposition: bags indexed by node id, plus tree edges.
///
/// The tree must be connected and acyclic over `bags.len()` nodes. A
/// decomposition with a single (possibly empty) bag has no tree edges.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TreeDecomposition {
    /// `bags[u]` is the sorted vertex set of node `u`.
    pub bags: Vec<Vec<VertexId>>,
    /// Undirected tree edges between node indices.
    pub tree: Vec<(usize, usize)>,
}

/// Reasons a tree decomposition can be invalid for a hypergraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdError {
    /// The node graph is not a tree (wrong edge count, cycle, disconnected).
    NotATree,
    /// Hypergraph edge `e` is contained in no bag.
    EdgeNotCovered(usize),
    /// Vertex `v`'s bag set is not connected in the tree.
    VertexNotConnected(u32),
    /// A bag mentions a vertex outside the hypergraph.
    UnknownVertex(u32),
}

impl std::fmt::Display for TdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TdError::NotATree => write!(f, "node graph is not a tree"),
            TdError::EdgeNotCovered(e) => write!(f, "edge e{e} not covered by any bag"),
            TdError::VertexNotConnected(v) => {
                write!(f, "bags containing v{v} are not connected in the tree")
            }
            TdError::UnknownVertex(v) => write!(f, "bag mentions unknown vertex v{v}"),
        }
    }
}

impl std::error::Error for TdError {}

impl TreeDecomposition {
    /// The trivial decomposition: one bag holding all vertices.
    pub fn trivial(h: &Hypergraph) -> TreeDecomposition {
        TreeDecomposition {
            bags: vec![h.vertices().collect()],
            tree: vec![],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.bags.len()
    }

    /// `max |B_u| - 1` — the classical treewidth-style width of this
    /// decomposition (for the `f`-width with other `f`, apply `f` to
    /// [`Self::bags`] directly).
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// Adjacency lists of the node tree.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.num_nodes()];
        for &(a, b) in &self.tree {
            adj[a].push(b);
            adj[b].push(a);
        }
        adj
    }

    /// Validate against hypergraph `h`.
    pub fn validate(&self, h: &Hypergraph) -> Result<(), TdError> {
        let n_nodes = self.num_nodes();
        if n_nodes == 0 {
            return Err(TdError::NotATree);
        }
        // Tree check: n-1 edges, connected.
        if self.tree.len() != n_nodes - 1 {
            return Err(TdError::NotATree);
        }
        let adj = self.adjacency();
        let mut seen = vec![false; n_nodes];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &w in &adj[u] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        if count != n_nodes {
            return Err(TdError::NotATree);
        }
        // Bags mention only real vertices.
        for b in &self.bags {
            for v in b {
                if v.idx() >= h.num_vertices() {
                    return Err(TdError::UnknownVertex(v.0));
                }
            }
        }
        // Every edge covered.
        for e in h.edge_ids() {
            let ev = h.edge(e);
            let covered = self.bags.iter().any(|b| {
                let bs: BTreeSet<VertexId> = b.iter().copied().collect();
                ev.iter().all(|v| bs.contains(v))
            });
            if !covered {
                return Err(TdError::EdgeNotCovered(e.idx()));
            }
        }
        // Connectedness per vertex.
        for v in h.vertices() {
            let nodes: Vec<usize> = (0..n_nodes)
                .filter(|&u| self.bags[u].binary_search(&v).is_ok())
                .collect();
            if nodes.len() <= 1 {
                continue;
            }
            let node_set: BTreeSet<usize> = nodes.iter().copied().collect();
            let mut seen: BTreeSet<usize> = BTreeSet::new();
            let mut stack = vec![nodes[0]];
            seen.insert(nodes[0]);
            while let Some(u) = stack.pop() {
                for &w in &adj[u] {
                    if node_set.contains(&w) && seen.insert(w) {
                        stack.push(w);
                    }
                }
            }
            if seen.len() != nodes.len() {
                return Err(TdError::VertexNotConnected(v.0));
            }
        }
        Ok(())
    }

    /// Apply a bag-cost function and return the maximum over bags
    /// (the `f`-width of this decomposition).
    pub fn f_width<W: PartialOrd + Copy>(&self, mut f: impl FnMut(&[VertexId]) -> W) -> Option<W> {
        let mut best: Option<W> = None;
        for b in &self.bags {
            let w = f(b);
            if best.is_none_or(|cur| w > cur) {
                best = Some(w);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_hypergraph::Hypergraph;

    fn vid(v: u32) -> VertexId {
        VertexId(v)
    }

    #[test]
    fn trivial_is_valid() {
        let h = Hypergraph::new(4, &[vec![0, 1, 2], vec![2, 3]]).unwrap();
        let td = TreeDecomposition::trivial(&h);
        td.validate(&h).unwrap();
        assert_eq!(td.width(), 3);
    }

    #[test]
    fn path_decomposition_of_path() {
        // Path hypergraph {0,1},{1,2},{2,3} with the natural width-1 TD.
        let h = Hypergraph::new(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]).unwrap();
        let td = TreeDecomposition {
            bags: vec![
                vec![vid(0), vid(1)],
                vec![vid(1), vid(2)],
                vec![vid(2), vid(3)],
            ],
            tree: vec![(0, 1), (1, 2)],
        };
        td.validate(&h).unwrap();
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn uncovered_edge_detected() {
        let h = Hypergraph::new(3, &[vec![0, 1], vec![1, 2]]).unwrap();
        let td = TreeDecomposition {
            bags: vec![vec![vid(0), vid(1)], vec![vid(2)]],
            tree: vec![(0, 1)],
        };
        assert_eq!(td.validate(&h), Err(TdError::EdgeNotCovered(1)));
    }

    #[test]
    fn disconnected_vertex_detected() {
        let h = Hypergraph::new(3, &[vec![0, 1], vec![1, 2]]).unwrap();
        let td = TreeDecomposition {
            bags: vec![
                vec![vid(0), vid(1)],
                vec![vid(2)], // breaks v1's subtree? no — v1 missing here
                vec![vid(1), vid(2)],
            ],
            tree: vec![(0, 1), (1, 2)],
        };
        assert_eq!(td.validate(&h), Err(TdError::VertexNotConnected(1)));
    }

    #[test]
    fn non_tree_detected() {
        let h = Hypergraph::new(2, &[vec![0, 1]]).unwrap();
        let td = TreeDecomposition {
            bags: vec![vec![vid(0), vid(1)], vec![vid(0)], vec![vid(1)]],
            tree: vec![(0, 1)], // 3 nodes, 2 edges needed
        };
        assert_eq!(td.validate(&h), Err(TdError::NotATree));
        let td2 = TreeDecomposition {
            bags: vec![vec![vid(0), vid(1)], vec![vid(0)], vec![vid(1)]],
            tree: vec![(0, 1), (0, 1)], // duplicate edge = cycle-ish
        };
        assert!(td2.validate(&h).is_err());
    }

    #[test]
    fn unknown_vertex_detected() {
        let h = Hypergraph::new(2, &[vec![0, 1]]).unwrap();
        let td = TreeDecomposition {
            bags: vec![vec![vid(0), vid(1), vid(9)]],
            tree: vec![],
        };
        assert_eq!(td.validate(&h), Err(TdError::UnknownVertex(9)));
    }

    #[test]
    fn f_width_generic() {
        let h = Hypergraph::new(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]).unwrap();
        let td = TreeDecomposition::trivial(&h);
        assert_eq!(td.f_width(|b| b.len()), Some(4));
    }
}
