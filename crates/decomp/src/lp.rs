//! A small dense two-phase simplex solver, used for fractional edge covers
//! (the `ρ*` cost of fractional hypertree width).
//!
//! The LPs solved here are tiny (variables = edges touching a bag,
//! constraints = bag vertices), so a textbook tableau implementation with
//! Bland's anti-cycling rule is entirely adequate and keeps the repository
//! dependency-free.

use cqd2_hypergraph::{EdgeId, Hypergraph, VertexId};

const EPS: f64 = 1e-9;

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// Optimal value and primal solution.
    Optimal { value: f64, solution: Vec<f64> },
    /// No feasible point.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
}

/// Minimize `c·x` subject to `A x ≥ b`, `x ≥ 0`, with `b ≥ 0`.
///
/// `a` is row-major (`a[i]` is constraint row `i`). Uses the two-phase
/// method: phase 1 minimizes the sum of artificial variables, phase 2 the
/// real objective. Bland's rule guarantees termination on degenerate
/// instances.
pub fn simplex_min_ge(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> LpOutcome {
    let m = a.len();
    let n = c.len();
    assert!(b.iter().all(|&x| x >= 0.0), "requires b >= 0");
    assert!(a.iter().all(|row| row.len() == n));
    assert_eq!(b.len(), m);
    if m == 0 {
        return LpOutcome::Optimal {
            value: 0.0,
            solution: vec![0.0; n],
        };
    }

    // Columns: [x (n)] [surplus s (m)] [artificial t (m)] | rhs.
    let total = n + 2 * m;
    let mut tab: Vec<Vec<f64>> = vec![vec![0.0; total + 1]; m];
    for i in 0..m {
        for j in 0..n {
            tab[i][j] = a[i][j];
        }
        tab[i][n + i] = -1.0; // surplus: Ax - s = b
        tab[i][n + m + i] = 1.0; // artificial
        tab[i][total] = b[i];
    }
    let mut basis: Vec<usize> = (0..m).map(|i| n + m + i).collect();

    // Phase 1: minimize sum of artificials.
    let mut phase1_cost = vec![0.0; total];
    for cost in phase1_cost.iter_mut().skip(n + m) {
        *cost = 1.0;
    }
    if !run_simplex(&mut tab, &mut basis, &phase1_cost, total, usize::MAX) {
        return LpOutcome::Unbounded; // cannot happen in phase 1, defensive
    }
    let phase1_value: f64 = basis
        .iter()
        .enumerate()
        .map(|(i, &bv)| phase1_cost[bv] * tab[i][total])
        .sum();
    if phase1_value > 1e-7 {
        return LpOutcome::Infeasible;
    }
    // Drive any zero-level artificials out of the basis where possible.
    for i in 0..m {
        if basis[i] >= n + m {
            if let Some(j) = (0..n + m).find(|&j| tab[i][j].abs() > EPS) {
                pivot(&mut tab, &mut basis, i, j);
            }
            // If no pivot column exists the row is all-zero: harmless.
        }
    }

    // Phase 2: real objective, artificials forbidden from entering.
    let mut phase2_cost = vec![0.0; total];
    phase2_cost[..n].copy_from_slice(c);
    if !run_simplex(&mut tab, &mut basis, &phase2_cost, n + m, usize::MAX) {
        return LpOutcome::Unbounded;
    }
    let mut solution = vec![0.0; n];
    for (i, &bv) in basis.iter().enumerate() {
        if bv < n {
            solution[bv] = tab[i][total];
        }
    }
    let value = solution.iter().zip(c).map(|(x, c)| x * c).sum();
    LpOutcome::Optimal { value, solution }
}

/// Run primal simplex with Bland's rule on the tableau. Only columns
/// `< allowed_cols` may enter the basis. Returns `false` on unboundedness.
fn run_simplex(
    tab: &mut [Vec<f64>],
    basis: &mut [usize],
    cost: &[f64],
    allowed_cols: usize,
    max_iters: usize,
) -> bool {
    let m = tab.len();
    let total = tab[0].len() - 1;
    let allowed = allowed_cols.min(total);
    for _ in 0..max_iters {
        // Reduced costs r_j = c_j - c_B^T T_j.
        let mut entering = None;
        for j in 0..allowed {
            if basis.contains(&j) {
                continue;
            }
            let mut r = cost[j];
            for i in 0..m {
                r -= cost[basis[i]] * tab[i][j];
            }
            if r < -EPS {
                entering = Some(j); // Bland: first (smallest) index
                break;
            }
        }
        let Some(j) = entering else {
            return true; // optimal
        };
        // Ratio test (Bland tie-break on smallest basis index).
        let mut leave: Option<(usize, f64)> = None;
        for i in 0..m {
            if tab[i][j] > EPS {
                let ratio = tab[i][total] / tab[i][j];
                match leave {
                    None => leave = Some((i, ratio)),
                    Some((li, lr)) => {
                        if ratio < lr - EPS || (ratio < lr + EPS && basis[i] < basis[li]) {
                            leave = Some((i, ratio));
                        }
                    }
                }
            }
        }
        let Some((i, _)) = leave else {
            return false; // unbounded
        };
        pivot(tab, basis, i, j);
    }
    true
}

fn pivot(tab: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize) {
    let p = tab[row][col];
    debug_assert!(p.abs() > EPS);
    for x in tab[row].iter_mut() {
        *x /= p;
    }
    let pivot_row = tab[row].clone();
    for (i, other) in tab.iter_mut().enumerate() {
        if i == row {
            continue;
        }
        let factor = other[col];
        if factor.abs() > EPS {
            for (x, &pv) in other.iter_mut().zip(&pivot_row) {
                *x -= factor * pv;
            }
        }
    }
    basis[row] = col;
}

/// The fractional edge cover number `ρ*(bag)` together with the optimal
/// weights. Vertices with no incident edge are ignored (cannot be covered).
pub fn fractional_cover(h: &Hypergraph, bag: &[VertexId]) -> (f64, Vec<(EdgeId, f64)>) {
    let mut targets: Vec<VertexId> = bag.iter().copied().filter(|&v| h.degree(v) > 0).collect();
    targets.sort_unstable();
    targets.dedup();
    if targets.is_empty() {
        return (0.0, vec![]);
    }
    // Restrict to edges that touch the bag (others are never useful).
    let cols: Vec<EdgeId> = h
        .edge_ids()
        .filter(|&e| targets.iter().any(|&v| h.edge_contains(e, v)))
        .collect();
    let n = cols.len();
    let m = targets.len();
    let c = vec![1.0; n];
    let mut a = vec![vec![0.0; n]; m];
    for (i, &v) in targets.iter().enumerate() {
        for (j, &e) in cols.iter().enumerate() {
            if h.edge_contains(e, v) {
                a[i][j] = 1.0;
            }
        }
    }
    let b = vec![1.0; m];
    match simplex_min_ge(&c, &a, &b) {
        LpOutcome::Optimal { value, solution } => {
            let weights = cols
                .into_iter()
                .zip(solution)
                .filter(|(_, w)| *w > EPS)
                .collect();
            (value, weights)
        }
        // Every target has an incident edge, so the LP is feasible
        // (weight 1 on each incident edge) and bounded below by 0.
        other => unreachable!("cover LP must be solvable: {other:?}"),
    }
}

/// Just the value `ρ*(bag)`.
pub fn fractional_cover_number(h: &Hypergraph, bag: &[VertexId]) -> f64 {
    fractional_cover(h, bag).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vids(vs: &[u32]) -> Vec<VertexId> {
        vs.iter().map(|&v| VertexId(v)).collect()
    }

    #[test]
    fn generic_lp() {
        // min x + y s.t. x + 2y >= 4, 3x + y >= 3  => optimum at (0.4, 1.8): 2.2
        let out = simplex_min_ge(&[1.0, 1.0], &[vec![1.0, 2.0], vec![3.0, 1.0]], &[4.0, 3.0]);
        match out {
            LpOutcome::Optimal { value, .. } => assert!((value - 2.2).abs() < 1e-6),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        // x >= 1 and -x >= 0 (i.e. x <= 0) cannot both hold...
        // encode -x >= 0 as row [-1] with b 0: but b must be >= 0: fine.
        let out = simplex_min_ge(&[1.0], &[vec![1.0], vec![-1.0]], &[1.0, 0.0]);
        assert_eq!(out, LpOutcome::Infeasible);
    }

    #[test]
    fn triangle_fractional_cover_is_three_halves() {
        // The triangle: ρ*({0,1,2}) = 3/2 with weight 1/2 on each edge.
        let h = Hypergraph::new(3, &[vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap();
        let (v, w) = fractional_cover(&h, &vids(&[0, 1, 2]));
        assert!((v - 1.5).abs() < 1e-6, "got {v}");
        assert_eq!(w.len(), 3);
        for (_, x) in w {
            assert!((x - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn integral_instance_matches_integer_cover() {
        let h = Hypergraph::new(4, &[vec![0, 1], vec![2, 3]]).unwrap();
        let v = fractional_cover_number(&h, &vids(&[0, 1, 2, 3]));
        assert!((v - 2.0).abs() < 1e-6);
    }

    #[test]
    fn single_big_edge() {
        let h = Hypergraph::new(4, &[vec![0, 1, 2, 3], vec![0, 1]]).unwrap();
        let v = fractional_cover_number(&h, &vids(&[0, 1, 2, 3]));
        assert!((v - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_bag() {
        let h = Hypergraph::new(2, &[vec![0, 1]]).unwrap();
        assert_eq!(fractional_cover_number(&h, &[]), 0.0);
    }

    #[test]
    fn fractional_at_most_integral() {
        use crate::cover::cover_number;
        use cqd2_hypergraph::generators::random_degree_bounded;
        for seed in 0..8 {
            let h = random_degree_bounded(8, 3, 3, 0.5, seed);
            let bag: Vec<VertexId> = h.vertices().collect();
            let f = fractional_cover_number(&h, &bag);
            let i = cover_number(&h, &bag) as f64;
            assert!(
                f <= i + 1e-6,
                "fractional {f} exceeds integral {i} (seed {seed})"
            );
        }
    }
}
