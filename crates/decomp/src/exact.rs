//! Exact *f-width* via a memoized DP over elimination orderings.
//!
//! For a monotone bag-cost `f` (meaning `A ⊆ B ⇒ f(A) ≤ f(B)`), the
//! `f`-width of a hypergraph equals
//!
//! ```text
//!   min over elimination orders π of primal(H) of  max_v f(B_π(v))
//! ```
//!
//! where `B_π(v)` is the fill bag of `v`. Soundness: each ordering yields a
//! valid tree decomposition with exactly those bags
//! ([`crate::elimination::order_to_td`]). Completeness: every tree
//! decomposition induces an elimination ordering whose fill bags are each
//! contained in one of its bags, so by monotonicity no optimum is missed.
//!
//! The DP state is the *set of already-eliminated vertices* (as a bitmask):
//! the fill bag of eliminating `v` after set `S` depends only on `(S, v)` —
//! it is `{v}` plus every vertex outside `S` reachable from `v` through
//! `S`. An optional static upper bound prunes branches whose bag already
//! costs more; the memo stays consistent because the bound is fixed for the
//! whole run.

use cqd2_hypergraph::Graph;
use std::collections::HashMap;

/// Hard cap on vertex count for the exact DP (bitmask width and memory).
pub const MAX_EXACT_VERTICES: usize = 26;

/// Result of an exact f-width computation: the optimal width and a witness
/// elimination order achieving it.
#[derive(Debug, Clone)]
pub struct ExactWidth<W> {
    /// The optimal `f`-width.
    pub width: W,
    /// An elimination order whose fill bags achieve it.
    pub order: Vec<u32>,
}

/// Compute the exact f-width of `g` under monotone bag-cost `cost`.
///
/// * `cost` receives a sorted bag (vertex ids of `g`) including the
///   eliminated vertex itself, and must be monotone.
/// * `prune_above`: branches whose bag cost exceeds this are discarded.
///   Pass the cost of a heuristic decomposition to accelerate the search
///   (the result is still exact because the heuristic witness survives).
///
/// Returns `None` when `g` has more than [`MAX_EXACT_VERTICES`] vertices or
/// when `prune_above` removed every solution (which cannot happen if the
/// bound comes from a real decomposition of `g`).
pub fn f_width_exact<W: PartialOrd + Copy>(
    g: &Graph,
    cost: &mut dyn FnMut(&[u32]) -> W,
    prune_above: Option<W>,
) -> Option<ExactWidth<W>> {
    let n = g.num_vertices();
    if n > MAX_EXACT_VERTICES {
        return None;
    }
    if n == 0 {
        // Width of the empty graph: cost of the empty bag.
        return Some(ExactWidth {
            width: cost(&[]),
            order: vec![],
        });
    }
    let adj: Vec<u64> = (0..n)
        .map(|v| {
            g.neighbors(v as u32)
                .iter()
                .fold(0u64, |acc, &u| acc | (1u64 << u))
        })
        .collect();
    let full: u64 = if n == 64 { !0 } else { (1u64 << n) - 1 };
    let mut memo: HashMap<u64, Option<(W, u32)>> = HashMap::new();
    let result = {
        let mut solver = Solver {
            n,
            adj,
            full,
            memo: &mut memo,
            cost,
            prune_above,
        };
        solver.best(0)?
    };
    // Reconstruct the order from the memo.
    let mut order = Vec::with_capacity(n);
    let mut s = 0u64;
    while s != full {
        let (_, v) = memo.get(&s).copied().flatten().expect("memoized path");
        order.push(v);
        s |= 1u64 << v;
    }
    Some(ExactWidth {
        width: result.0,
        order,
    })
}

struct Solver<'a, W> {
    n: usize,
    adj: Vec<u64>,
    full: u64,
    memo: &'a mut HashMap<u64, Option<(W, u32)>>,
    cost: &'a mut dyn FnMut(&[u32]) -> W,
    prune_above: Option<W>,
}

impl<W: PartialOrd + Copy> Solver<'_, W> {
    /// Fill bag of eliminating `v` after eliminating set `s`, as a bitmask
    /// over the *remaining* vertices (including `v`).
    fn bag_mask(&self, s: u64, v: u32) -> u64 {
        // Vertices of s reachable from v through s.
        let vbit = 1u64 << v;
        let mut region = vbit;
        loop {
            let mut frontier = 0u64;
            let mut rest = region;
            while rest != 0 {
                let u = rest.trailing_zeros();
                rest &= rest - 1;
                frontier |= self.adj[u as usize];
            }
            let grow = (frontier & s) & !region;
            if grow == 0 {
                // Bag = v plus neighbours of the region outside s.
                return vbit | (frontier & !s & !vbit);
            }
            region |= grow;
        }
    }

    fn best(&mut self, s: u64) -> Option<(W, u32)> {
        if s == self.full {
            return None; // handled by caller: max over empty = skip
        }
        if let Some(&r) = self.memo.get(&s) {
            return r;
        }
        let mut best: Option<(W, u32)> = None;
        for v in 0..self.n as u32 {
            if s & (1u64 << v) != 0 {
                continue;
            }
            let bag_mask = self.bag_mask(s, v);
            let bag = mask_to_vec(bag_mask);
            let w = (self.cost)(&bag);
            if let Some(limit) = self.prune_above {
                if w > limit {
                    continue;
                }
            }
            // Prune against incumbent for this state.
            if let Some((bw, _)) = best {
                if w >= bw {
                    // This branch's width is at least max(w, subtree) >= bw.
                    continue;
                }
            }
            let s2 = s | (1u64 << v);
            let sub = if s2 == self.full {
                Some(w)
            } else {
                self.best(s2).map(|(sw, _)| if sw > w { sw } else { w })
            };
            if let Some(total) = sub {
                if best.is_none_or(|(bw, _)| total < bw) {
                    best = Some((total, v));
                }
            }
        }
        self.memo.insert(s, best);
        best
    }
}

fn mask_to_vec(mut mask: u64) -> Vec<u32> {
    let mut out = Vec::with_capacity(mask.count_ones() as usize);
    while mask != 0 {
        out.push(mask.trailing_zeros());
        mask &= mask - 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_hypergraph::generators::{
        complete_graph, cycle_graph, grid_graph, path_graph, random_graph,
    };

    fn tw(g: &Graph) -> usize {
        f_width_exact(g, &mut |bag: &[u32]| bag.len().saturating_sub(1), None)
            .expect("small graph")
            .width
    }

    #[test]
    fn treewidth_of_standard_graphs() {
        assert_eq!(tw(&path_graph(7)), 1);
        assert_eq!(tw(&cycle_graph(6)), 2);
        assert_eq!(tw(&complete_graph(5)), 4);
        assert_eq!(tw(&grid_graph(2, 4)), 2);
        assert_eq!(tw(&grid_graph(3, 3)), 3);
        assert_eq!(tw(&grid_graph(4, 4)), 4);
    }

    #[test]
    fn empty_and_tiny() {
        assert_eq!(tw(&Graph::empty(0)), 0);
        assert_eq!(tw(&Graph::empty(3)), 0);
        assert_eq!(tw(&path_graph(1)), 0);
        assert_eq!(tw(&path_graph(2)), 1);
    }

    #[test]
    fn witness_order_achieves_width() {
        let g = grid_graph(3, 4);
        let r = f_width_exact(&g, &mut |b: &[u32]| b.len().saturating_sub(1), None).unwrap();
        assert_eq!(r.width, 3);
        let achieved = crate::elimination::order_width(&g, &r.order);
        assert_eq!(achieved, 3);
    }

    #[test]
    fn pruning_preserves_exactness() {
        let g = grid_graph(3, 3);
        let ub = crate::elimination::order_width(&g, &crate::elimination::min_fill_order(&g));
        let pruned = f_width_exact(&g, &mut |b: &[u32]| b.len().saturating_sub(1), Some(ub))
            .unwrap()
            .width;
        assert_eq!(pruned, 3);
    }

    #[test]
    fn random_graphs_heuristic_never_beats_exact() {
        for seed in 0..6 {
            let g = random_graph(9, 0.35, seed);
            let exact = tw(&g);
            let heur = crate::elimination::order_width(&g, &crate::elimination::min_fill_order(&g));
            assert!(heur >= exact, "heuristic {heur} < exact {exact}");
        }
    }

    #[test]
    fn too_large_returns_none() {
        let g = Graph::empty(MAX_EXACT_VERTICES + 1);
        assert!(f_width_exact(&g, &mut |b: &[u32]| b.len(), None).is_none());
    }

    #[test]
    fn disconnected_graph_width_is_max_of_components() {
        // K4 plus a disjoint path: width 3.
        let mut edges: Vec<(u32, u32)> = complete_graph(4).edges().collect();
        edges.push((4, 5));
        edges.push((5, 6));
        let g = Graph::from_edges(7, &edges);
        assert_eq!(tw(&g), 3);
    }
}
