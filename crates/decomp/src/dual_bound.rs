//! **Lemma 4.6** (constructive): for a reduced hypergraph `H`,
//! `ghw(H) ≤ tw(H^d) + 1`.
//!
//! Given a tree decomposition `⟨T, (D_u)⟩` of the dual `H^d` of width `k`,
//! the proof constructs a GHD `⟨T, (B_u), (λ_u)⟩` of `H` with `λ_u = D_u`
//! (dual vertices *are* edges of `H`) and `B_u = ⋃ λ_u`, which has width
//! `k + 1`. This module implements that construction and validates the
//! result, giving both the upper bound and a usable decomposition.

use cqd2_hypergraph::{dual, EdgeId, Hypergraph, VertexId};

use crate::elimination::{min_fill_order, order_to_td};
use crate::exact::f_width_exact;
use crate::ghd::Ghd;
use crate::tree_decomposition::TreeDecomposition;

/// Translate a tree decomposition of `H^d` into a GHD of `H`
/// (the Lemma 4.6 construction). The caller must ensure `td_dual` is a
/// valid tree decomposition of `dual(h).0`; vertices of the dual are the
/// edges of `h` in index order.
pub fn td_of_dual_to_ghd(h: &Hypergraph, td_dual: &TreeDecomposition) -> Ghd {
    let mut bags = Vec::with_capacity(td_dual.bags.len());
    let mut covers = Vec::with_capacity(td_dual.bags.len());
    for dual_bag in &td_dual.bags {
        // Dual vertex i corresponds to edge i of h.
        let lambda: Vec<EdgeId> = dual_bag.iter().map(|dv| EdgeId(dv.0)).collect();
        let mut bag: Vec<VertexId> = lambda
            .iter()
            .flat_map(|&e| h.edge(e).iter().copied())
            .collect();
        bag.sort_unstable();
        bag.dedup();
        bags.push(bag);
        covers.push(lambda);
    }
    Ghd {
        td: TreeDecomposition {
            bags,
            tree: td_dual.tree.clone(),
        },
        covers,
    }
}

/// Compute a GHD of `h` via the dual route: build `H^d`, find a tree
/// decomposition of it (exact when the dual is small, min-fill heuristic
/// otherwise), and translate. Returns the GHD; its width certifies
/// `ghw(H) ≤ tw-found(H^d) + 1`.
///
/// `h` should be reduced (isolated vertices never appear in any bag, which
/// is harmless for TD validity; duplicate vertex types are also harmless —
/// the collapsed dual edge still forces all incident hypergraph edges
/// together, and each duplicate vertex inherits the connectivity of its
/// representative's type, so the construction remains valid for arbitrary
/// hypergraphs without empty edges).
pub fn ghd_via_dual(h: &Hypergraph) -> Ghd {
    let (hd, _) = dual(h);
    let primal_dual = crate::widths::primal_graph(&hd);
    let td_dual = match f_width_exact(
        &primal_dual,
        &mut |bag: &[u32]| bag.len().saturating_sub(1),
        None,
    ) {
        Some(r) => order_to_td(&primal_dual, &r.order),
        None => {
            let order = min_fill_order(&primal_dual);
            order_to_td(&primal_dual, &order)
        }
    };
    debug_assert!(td_dual.validate(&hd).is_ok());
    td_of_dual_to_ghd(h, &td_dual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_hypergraph::generators::{grid_graph, hyperchain, hypercycle};
    use cqd2_hypergraph::reduce;

    #[test]
    fn chain_dual_bound() {
        let h = hyperchain(5, 3);
        let ghd = ghd_via_dual(&h);
        ghd.validate(&h).unwrap();
        // Dual of a chain is a path: tw 1 -> ghw bound 2 (true ghw is 1;
        // the lemma only promises tw(H^d) + 1).
        assert!(ghd.width() <= 2);
    }

    #[test]
    fn cycle_dual_bound() {
        let h = hypercycle(6, 3);
        let ghd = ghd_via_dual(&h);
        ghd.validate(&h).unwrap();
        // Dual of a hypercycle is a cycle: tw 2 -> width ≤ 3.
        assert!(ghd.width() <= 3);
    }

    #[test]
    fn jigsaw_dual_bound_is_n_plus_one() {
        // The dual of the n×n jigsaw is the n×n grid (tw = n), so the
        // construction yields a GHD of width ≤ n + 1.
        for n in 2..=3 {
            let grid = grid_graph(n, n);
            let (jig, _) = dual(&grid.to_hypergraph());
            let (jig, _) = reduce(&jig);
            let ghd = ghd_via_dual(&jig);
            ghd.validate(&jig).unwrap();
            assert!(
                ghd.width() <= n + 1,
                "jigsaw {n}: width {} > {}",
                ghd.width(),
                n + 1
            );
        }
    }

    #[test]
    fn construction_matches_lemma_width() {
        // Width of the produced GHD = width of the dual TD + 1 exactly,
        // since |λ_u| = |D_u|.
        let h = hyperchain(4, 2);
        let (hd, _) = dual(&h);
        let primal_dual = crate::widths::primal_graph(&hd);
        let r = f_width_exact(
            &primal_dual,
            &mut |b: &[u32]| b.len().saturating_sub(1),
            None,
        )
        .unwrap();
        let td_dual = order_to_td(&primal_dual, &r.order);
        let ghd = td_of_dual_to_ghd(&h, &td_dual);
        ghd.validate(&h).unwrap();
        assert_eq!(ghd.width(), r.width + 1);
    }
}
