//! Cheap lower bounds for treewidth (and, derived, for ghw).

use cqd2_hypergraph::Graph;

/// The *maximum minimum degree* (MMD) lower bound for treewidth, equal to
/// the degeneracy of the graph: repeatedly delete a minimum-degree vertex
/// and record the largest minimum degree observed. `tw(G) ≥ MMD(G)`.
pub fn mmd_lower_bound(g: &Graph) -> usize {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v as u32)).collect();
    let mut alive = vec![true; n];
    let mut best = 0usize;
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| alive[v])
            .min_by_key(|&v| deg[v])
            .expect("some vertex alive");
        best = best.max(deg[v]);
        alive[v] = false;
        for &u in g.neighbors(v as u32) {
            if alive[u as usize] {
                deg[u as usize] -= 1;
            }
        }
    }
    best
}

/// A treewidth lower bound specialised to nothing: the maximum clique
/// found greedily minus one. Useful on dense graphs where MMD is weak.
pub fn greedy_clique_lower_bound(g: &Graph) -> usize {
    let n = g.num_vertices();
    let mut best = 0usize;
    for s in 0..n as u32 {
        let mut clique = vec![s];
        let mut candidates: Vec<u32> = g.neighbors(s).to_vec();
        candidates.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
        for v in candidates {
            if clique.iter().all(|&c| g.has_edge(c, v)) {
                clique.push(v);
            }
        }
        best = best.max(clique.len());
    }
    best.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_hypergraph::generators::{complete_graph, cycle_graph, grid_graph, path_graph};

    #[test]
    fn mmd_on_standard_graphs() {
        assert_eq!(mmd_lower_bound(&path_graph(6)), 1);
        assert_eq!(mmd_lower_bound(&cycle_graph(6)), 2);
        assert_eq!(mmd_lower_bound(&complete_graph(5)), 4);
        assert_eq!(mmd_lower_bound(&grid_graph(4, 4)), 2); // weak on grids
        assert_eq!(mmd_lower_bound(&Graph::empty(0)), 0);
        assert_eq!(mmd_lower_bound(&Graph::empty(4)), 0);
    }

    #[test]
    fn clique_bound_on_cliques() {
        assert_eq!(greedy_clique_lower_bound(&complete_graph(6)), 5);
        assert_eq!(greedy_clique_lower_bound(&path_graph(4)), 1);
    }
}
