//! Integral edge covers: the `ρ` cost function of generalized hypertree
//! width.
//!
//! `ρ(V')` is the minimum number of hyperedges whose union contains `V'`
//! (paper, Section 2). Computed exactly by branch-and-bound set cover with a
//! greedy warm start; bags in our workloads are small (≲ 20 vertices), so
//! this is fast.

use cqd2_hypergraph::{EdgeId, Hypergraph, VertexId};
use std::collections::HashMap;

/// Greedy edge cover of `bag`: repeatedly take the edge covering the most
/// uncovered bag vertices. Vertices of `bag` incident to no edge are
/// ignored (they cannot be covered; see crate docs for the convention).
pub fn greedy_cover(h: &Hypergraph, bag: &[VertexId]) -> Vec<EdgeId> {
    let mut uncovered: Vec<VertexId> = bag.iter().copied().filter(|&v| h.degree(v) > 0).collect();
    uncovered.sort_unstable();
    uncovered.dedup();
    let mut cover = Vec::new();
    while !uncovered.is_empty() {
        // Candidate edges: those covering at least one uncovered vertex.
        let best = h
            .edge_ids()
            .map(|e| {
                let cnt = uncovered.iter().filter(|&&v| h.edge_contains(e, v)).count();
                (cnt, e)
            })
            .max_by_key(|&(cnt, e)| (cnt, std::cmp::Reverse(e)))
            .expect("bag vertices have incident edges");
        debug_assert!(best.0 > 0);
        cover.push(best.1);
        uncovered.retain(|&v| !h.edge_contains(best.1, v));
    }
    cover
}

/// Exact minimum edge cover of `bag` via branch and bound.
///
/// Returns a witness cover of minimum size. Vertices with no incident edge
/// are ignored.
pub fn exact_cover(h: &Hypergraph, bag: &[VertexId]) -> Vec<EdgeId> {
    let mut targets: Vec<VertexId> = bag.iter().copied().filter(|&v| h.degree(v) > 0).collect();
    targets.sort_unstable();
    targets.dedup();
    if targets.is_empty() {
        return vec![];
    }
    let mut best = greedy_cover(h, &targets);
    let mut current: Vec<EdgeId> = Vec::new();
    branch(h, &targets, &mut current, &mut best);
    best
}

fn branch(
    h: &Hypergraph,
    uncovered: &[VertexId],
    current: &mut Vec<EdgeId>,
    best: &mut Vec<EdgeId>,
) {
    if uncovered.is_empty() {
        if current.len() < best.len() {
            *best = current.clone();
        }
        return;
    }
    if current.len() + 1 >= best.len() {
        return; // even one more edge cannot beat the incumbent
    }
    // Branch on the uncovered vertex with the fewest covering edges.
    let v = *uncovered
        .iter()
        .min_by_key(|&&v| h.degree(v))
        .expect("nonempty");
    for &e in h.incident_edges(v) {
        if current.contains(&e) {
            continue; // already chosen yet v uncovered: cannot happen, guard anyway
        }
        current.push(e);
        let rest: Vec<VertexId> = uncovered
            .iter()
            .copied()
            .filter(|&u| !h.edge_contains(e, u))
            .collect();
        branch(h, &rest, current, best);
        current.pop();
    }
}

/// `ρ(bag)`: the integral edge cover number.
pub fn cover_number(h: &Hypergraph, bag: &[VertexId]) -> usize {
    exact_cover(h, bag).len()
}

/// A memoizing wrapper around [`cover_number`] keyed by the bag contents;
/// the exact-width DP evaluates many repeated bags.
pub struct CoverCache<'a> {
    h: &'a Hypergraph,
    cache: HashMap<Vec<VertexId>, usize>,
}

impl<'a> CoverCache<'a> {
    /// New cache for hypergraph `h`.
    pub fn new(h: &'a Hypergraph) -> Self {
        CoverCache {
            h,
            cache: HashMap::new(),
        }
    }

    /// `ρ(bag)`, memoized.
    pub fn cover_number(&mut self, bag: &[VertexId]) -> usize {
        let mut key = bag.to_vec();
        key.sort_unstable();
        key.dedup();
        if let Some(&n) = self.cache.get(&key) {
            return n;
        }
        let n = cover_number(self.h, &key);
        self.cache.insert(key, n);
        n
    }
}

/// Verify that `cover` covers every coverable vertex of `bag`.
pub fn is_cover(h: &Hypergraph, bag: &[VertexId], cover: &[EdgeId]) -> bool {
    bag.iter()
        .filter(|&&v| h.degree(v) > 0)
        .all(|&v| cover.iter().any(|&e| h.edge_contains(e, v)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vids(vs: &[u32]) -> Vec<VertexId> {
        vs.iter().map(|&v| VertexId(v)).collect()
    }

    #[test]
    fn single_edge_covers_itself() {
        let h = Hypergraph::new(3, &[vec![0, 1, 2]]).unwrap();
        assert_eq!(cover_number(&h, &vids(&[0, 1, 2])), 1);
    }

    #[test]
    fn greedy_vs_exact_on_classic_gap() {
        // Classic greedy-suboptimal instance: universe {0..5},
        // edges {0,1,2,3} is NOT there; instead:
        // rows {0,1,2} {3,4,5} cover in 2; greedy may pick the big
        // "diagonal" {0,1,3,4} first and need 3.
        let h = Hypergraph::new(
            6,
            &[vec![0, 1, 3, 4], vec![0, 1, 2], vec![3, 4, 5], vec![2, 5]],
        )
        .unwrap();
        let bag = vids(&[0, 1, 2, 3, 4, 5]);
        let exact = exact_cover(&h, &bag);
        assert!(is_cover(&h, &bag, &exact));
        assert_eq!(exact.len(), 2);
        let greedy = greedy_cover(&h, &bag);
        assert!(is_cover(&h, &bag, &greedy));
        assert!(greedy.len() >= exact.len());
    }

    #[test]
    fn empty_bag_needs_nothing() {
        let h = Hypergraph::new(3, &[vec![0, 1]]).unwrap();
        assert_eq!(cover_number(&h, &[]), 0);
    }

    #[test]
    fn isolated_vertices_ignored() {
        let h = Hypergraph::new(3, &[vec![0, 1]]).unwrap();
        // vertex 2 is isolated: by convention it is skipped.
        assert_eq!(cover_number(&h, &vids(&[0, 1, 2])), 1);
    }

    #[test]
    fn disjoint_vertices_need_many_edges() {
        let h = Hypergraph::new(6, &[vec![0, 1], vec![2, 3], vec![4, 5]]).unwrap();
        assert_eq!(cover_number(&h, &vids(&[0, 2, 4])), 3);
        assert_eq!(cover_number(&h, &vids(&[0, 2])), 2);
    }

    #[test]
    fn cache_consistency() {
        let h = Hypergraph::new(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]).unwrap();
        let mut cache = CoverCache::new(&h);
        let bag = vids(&[0, 1, 2, 3]);
        assert_eq!(cache.cover_number(&bag), 2);
        assert_eq!(cache.cover_number(&bag), 2);
        // Unsorted input hits the same entry.
        assert_eq!(cache.cover_number(&vids(&[3, 2, 1, 0])), 2);
    }
}
