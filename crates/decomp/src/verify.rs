//! Structural verification of GHDs and the plans built on them.
//!
//! The engine's correctness rests on the paper's structural invariants:
//! a GHD's bag graph must be a connected tree, every query edge must be
//! contained in some bag, every variable's bag set must induce a
//! connected subtree (the running-intersection property), and every
//! bag must actually be covered by its claimed `λ`-cover of at most
//! the claimed width. A planner bug that breaks any of these silently
//! produces *wrong answers* — the Yannakakis semijoin pass and the
//! counting DP are only sound on valid decompositions.
//!
//! [`verify_ghd`] checks all of them and returns a typed
//! [`VerifyError`] naming the violated invariant (and the witness bag
//! / edge / variable), so a bad plan becomes a loud, matchable error
//! instead of a wrong answer. The serving layer runs it once per
//! prepared plan when strict verification is enabled
//! (`CQD2_STRICT_VERIFY=1`; see `cqd2-engine`), and the
//! `cqd2-analyze verify` subcommand exposes it on the command line.
//!
//! This module intentionally re-derives the checks instead of
//! delegating to [`crate::TreeDecomposition::validate`]: the verifier
//! is the *independent* auditor of what the planner built, so sharing
//! code with the construction path would let one bug hide the other.

use cqd2_hypergraph::Hypergraph;

use crate::ghd::Ghd;

/// A violated decomposition invariant, with the witness that violates
/// it. Each variant corresponds to one clause of the GHD definition
/// (paper, Section 2 and Appendix C) or to a claim the plan made about
/// the decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The bag graph is not a connected tree over `bags` nodes: it has
    /// `edges` edges where a tree needs `bags - 1`, or it is
    /// disconnected / cyclic (the two are equivalent at the right edge
    /// count). A decomposition with zero bags is also reported here.
    NotATree {
        /// Number of bag nodes.
        bags: usize,
        /// Number of tree edges found.
        edges: usize,
    },
    /// Hypergraph edge `edge` is contained in no bag, so the semijoin
    /// pass would never constrain the corresponding atom.
    EdgeNotCovered {
        /// Index of the uncovered hypergraph edge.
        edge: usize,
    },
    /// The bags containing vertex `vertex` do not induce a connected
    /// subtree — the running-intersection property fails, so joins
    /// through the tree can invent tuples for this variable.
    RunningIntersection {
        /// The vertex whose bag set is disconnected.
        vertex: u32,
    },
    /// Bag `bag` contains vertices outside the union of its `λ`-cover:
    /// the cover does not cover `χ(bag)`, so the bag's materialized
    /// relation would be unconstrained in `vertex`.
    BagNotCovered {
        /// Index of the under-covered bag.
        bag: usize,
        /// A vertex of the bag missed by every cover edge.
        vertex: u32,
    },
    /// `covers` and `bags` disagree in length — some bag has no `λ` at
    /// all.
    CoverCountMismatch {
        /// Number of bags.
        bags: usize,
        /// Number of covers.
        covers: usize,
    },
    /// A cover references an edge id outside the hypergraph.
    UnknownEdge {
        /// Index of the bag whose cover is broken.
        bag: usize,
        /// The out-of-range edge id.
        edge: u32,
    },
    /// A bag mentions a vertex id outside the hypergraph.
    UnknownVertex {
        /// Index of the offending bag.
        bag: usize,
        /// The out-of-range vertex id.
        vertex: u32,
    },
    /// The decomposition's actual width exceeds what the plan claimed:
    /// some `|λ_u| = actual > claimed`. Cost models and admission
    /// decisions keyed to the claimed width would be lies.
    WidthExceeded {
        /// Width the plan claimed.
        claimed: usize,
        /// Largest `|λ_u|` actually present.
        actual: usize,
    },
    /// The chosen strategy is inconsistent with the detected structure
    /// class (e.g. a jigsaw-reduce certificate on a structure of degree
    /// greater than 2, where Theorem 4.7 does not apply).
    StrategyMismatch {
        /// The strategy tag the plan carries.
        strategy: String,
        /// Why it does not fit the structure.
        reason: String,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::NotATree { bags, edges } => write!(
                f,
                "bag graph is not a tree: {bags} bag(s) with {edges} edge(s) \
                 (a tree needs exactly bags-1, connected)"
            ),
            VerifyError::EdgeNotCovered { edge } => {
                write!(f, "query edge e{edge} is contained in no bag")
            }
            VerifyError::RunningIntersection { vertex } => write!(
                f,
                "running intersection violated: bags containing v{vertex} \
                 are not connected in the tree"
            ),
            VerifyError::BagNotCovered { bag, vertex } => write!(
                f,
                "bag {bag} is not covered by its λ: vertex v{vertex} is in \
                 χ(bag) but in no cover edge"
            ),
            VerifyError::CoverCountMismatch { bags, covers } => {
                write!(f, "{bags} bag(s) but {covers} λ-cover(s)")
            }
            VerifyError::UnknownEdge { bag, edge } => {
                write!(f, "bag {bag}'s cover references unknown edge e{edge}")
            }
            VerifyError::UnknownVertex { bag, vertex } => {
                write!(f, "bag {bag} mentions unknown vertex v{vertex}")
            }
            VerifyError::WidthExceeded { claimed, actual } => write!(
                f,
                "plan claims width {claimed} but the decomposition has a \
                 λ-cover of size {actual}"
            ),
            VerifyError::StrategyMismatch { strategy, reason } => {
                write!(
                    f,
                    "strategy `{strategy}` does not fit the structure: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify every structural invariant of `ghd` against `h`:
///
/// 1. every bag has a `λ`-cover ([`VerifyError::CoverCountMismatch`]);
/// 2. bags and covers reference only real vertices / edges
///    ([`VerifyError::UnknownVertex`], [`VerifyError::UnknownEdge`]);
/// 3. the bag graph is a connected tree ([`VerifyError::NotATree`]);
/// 4. every hypergraph edge is contained in some bag
///    ([`VerifyError::EdgeNotCovered`]);
/// 5. every vertex's bag set induces a connected subtree
///    ([`VerifyError::RunningIntersection`]);
/// 6. every bag is covered by the union of its `λ` edges
///    ([`VerifyError::BagNotCovered`]).
///
/// Runs in `O(bags · (vertices + edges))` — negligible next to the
/// `O(‖D‖^width)` bag materialization it guards.
pub fn verify_ghd(h: &Hypergraph, ghd: &Ghd) -> Result<(), VerifyError> {
    let bags = &ghd.td.bags;
    let tree = &ghd.td.tree;
    let n = bags.len();
    if ghd.covers.len() != n {
        return Err(VerifyError::CoverCountMismatch {
            bags: n,
            covers: ghd.covers.len(),
        });
    }
    if n == 0 || tree.len() != n - 1 {
        return Err(VerifyError::NotATree {
            bags: n,
            edges: tree.len(),
        });
    }
    // Referential integrity before anything walks ids.
    for (u, bag) in bags.iter().enumerate() {
        for v in bag {
            if v.idx() >= h.num_vertices() {
                return Err(VerifyError::UnknownVertex {
                    bag: u,
                    vertex: v.0,
                });
            }
        }
    }
    for (u, cover) in ghd.covers.iter().enumerate() {
        for e in cover {
            if e.idx() >= h.num_edges() {
                return Err(VerifyError::UnknownEdge { bag: u, edge: e.0 });
            }
        }
    }
    for &(a, b) in tree {
        if a >= n || b >= n {
            return Err(VerifyError::NotATree {
                bags: n,
                edges: tree.len(),
            });
        }
    }
    // Connectivity: with exactly n-1 edges, connected ⇔ tree.
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in tree {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut reached = 1usize;
    while let Some(u) = stack.pop() {
        for &w in &adj[u] {
            if !seen[w] {
                seen[w] = true;
                reached += 1;
                stack.push(w);
            }
        }
    }
    if reached != n {
        return Err(VerifyError::NotATree {
            bags: n,
            edges: tree.len(),
        });
    }
    // Edge cover: every hypergraph edge inside some bag.
    for e in h.edge_ids() {
        let ev = h.edge(e);
        // `contains` rather than binary search: the verifier must not
        // assume the bags are sorted — that is a claim to check, not
        // an invariant to lean on.
        let covered = bags.iter().any(|bag| ev.iter().all(|v| bag.contains(v)));
        if !covered {
            return Err(VerifyError::EdgeNotCovered { edge: e.idx() });
        }
    }
    // Running intersection: per vertex, its bag set is connected.
    for v in h.vertices() {
        let nodes: Vec<usize> = (0..n).filter(|&u| bags[u].contains(&v)).collect();
        if nodes.len() <= 1 {
            continue;
        }
        let in_set: Vec<bool> = {
            let mut m = vec![false; n];
            for &u in &nodes {
                m[u] = true;
            }
            m
        };
        let mut seen = vec![false; n];
        let mut stack = vec![nodes[0]];
        seen[nodes[0]] = true;
        let mut reached = 1usize;
        while let Some(u) = stack.pop() {
            for &w in &adj[u] {
                if in_set[w] && !seen[w] {
                    seen[w] = true;
                    reached += 1;
                    stack.push(w);
                }
            }
        }
        if reached != nodes.len() {
            return Err(VerifyError::RunningIntersection { vertex: v.0 });
        }
    }
    // λ-covers actually cover their bags.
    for (u, (bag, cover)) in bags.iter().zip(&ghd.covers).enumerate() {
        for v in bag {
            let covered = cover.iter().any(|&e| h.edge(e).contains(v));
            if !covered {
                return Err(VerifyError::BagNotCovered {
                    bag: u,
                    vertex: v.0,
                });
            }
        }
    }
    Ok(())
}

/// [`verify_ghd`] plus the width claim: every `|λ_u|` must be at most
/// `claimed_width` ([`VerifyError::WidthExceeded`] otherwise). This is
/// the check a plan's cost model rests on — `O(‖D‖^width)` is only a
/// bound if `width` is real.
pub fn verify_ghd_width(
    h: &Hypergraph,
    ghd: &Ghd,
    claimed_width: usize,
) -> Result<(), VerifyError> {
    verify_ghd(h, ghd)?;
    let actual = ghd.width();
    if actual > claimed_width {
        return Err(VerifyError::WidthExceeded {
            claimed: claimed_width,
            actual,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree_decomposition::TreeDecomposition;
    use cqd2_hypergraph::generators::{hyperchain, hypercycle};
    use cqd2_hypergraph::{EdgeId, VertexId};

    fn chain_ghd(n: usize) -> (Hypergraph, Ghd) {
        let h = hyperchain(n, 2);
        let bags: Vec<Vec<VertexId>> = h.edge_ids().map(|e| h.edge(e).to_vec()).collect();
        let tree = (0..bags.len() - 1).map(|i| (i, i + 1)).collect();
        let covers = (0..bags.len()).map(|i| vec![EdgeId(i as u32)]).collect();
        let ghd = Ghd {
            td: TreeDecomposition { bags, tree },
            covers,
        };
        (h, ghd)
    }

    #[test]
    fn valid_ghds_verify() {
        let (h, ghd) = chain_ghd(5);
        verify_ghd(&h, &ghd).unwrap();
        verify_ghd_width(&h, &ghd, 1).unwrap();
        // Claiming more width than needed is fine — claiming less is not.
        verify_ghd_width(&h, &ghd, 3).unwrap();
    }

    #[test]
    fn mutation_drop_bag_variable_is_bag_or_edge_error() {
        let (h, mut ghd) = chain_ghd(4);
        // Removing a vertex from an interior bag breaks either the edge
        // cover or the running intersection, depending on which endpoint.
        ghd.td.bags[1].pop();
        let err = verify_ghd(&h, &ghd).unwrap_err();
        assert!(
            matches!(
                err,
                VerifyError::EdgeNotCovered { .. } | VerifyError::RunningIntersection { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn mutation_disconnect_tree_detected() {
        let (h, mut ghd) = chain_ghd(5);
        // Re-point an edge to create a cycle + an orphan: still n-1
        // edges, but disconnected.
        ghd.td.tree[0] = (1, 2);
        assert!(matches!(
            verify_ghd(&h, &ghd).unwrap_err(),
            VerifyError::NotATree { .. }
        ));
        // Dropping an edge outright is also not a tree.
        let (h, mut ghd) = chain_ghd(5);
        ghd.td.tree.pop();
        assert!(matches!(
            verify_ghd(&h, &ghd).unwrap_err(),
            VerifyError::NotATree { .. }
        ));
    }

    #[test]
    fn mutation_break_running_intersection_detected() {
        // Path bags {0,1},{1,2},{2,3}: re-adding v0 to the last bag
        // makes v0's bag set {0, 2}, which is disconnected.
        let (h, mut ghd) = chain_ghd(3);
        let v0 = ghd.td.bags[0][0];
        ghd.td.bags[2].push(v0);
        ghd.td.bags[2].sort_unstable();
        // Keep the λ-cover covering the enlarged bag so the *first*
        // failing invariant is running intersection.
        ghd.covers[2] = vec![EdgeId(0), EdgeId(2)];
        assert_eq!(
            verify_ghd(&h, &ghd).unwrap_err(),
            VerifyError::RunningIntersection { vertex: v0.0 }
        );
    }

    #[test]
    fn mutation_shrink_cover_detected() {
        let h = hypercycle(4, 2);
        let td = TreeDecomposition::trivial(&h);
        let ghd = Ghd::from_td_exact(&h, td);
        verify_ghd(&h, &ghd).unwrap();
        let mut broken = ghd.clone();
        broken.covers[0].pop();
        assert!(matches!(
            verify_ghd(&h, &broken).unwrap_err(),
            VerifyError::BagNotCovered { bag: 0, .. }
        ));
    }

    #[test]
    fn mutation_lie_about_width_detected() {
        let h = hypercycle(4, 2);
        let ghd = Ghd::from_td_exact(&h, TreeDecomposition::trivial(&h));
        let actual = ghd.width();
        assert!(actual >= 2);
        assert_eq!(
            verify_ghd_width(&h, &ghd, actual - 1).unwrap_err(),
            VerifyError::WidthExceeded {
                claimed: actual - 1,
                actual
            }
        );
    }

    #[test]
    fn referential_breakage_detected() {
        let (h, ghd) = chain_ghd(3);
        let mut unknown_vertex = ghd.clone();
        unknown_vertex.td.bags[0].push(VertexId(99));
        assert!(matches!(
            verify_ghd(&h, &unknown_vertex).unwrap_err(),
            VerifyError::UnknownVertex { bag: 0, vertex: 99 }
        ));
        let mut unknown_edge = ghd.clone();
        unknown_edge.covers[1] = vec![EdgeId(77)];
        assert!(matches!(
            verify_ghd(&h, &unknown_edge).unwrap_err(),
            VerifyError::UnknownEdge { bag: 1, edge: 77 }
        ));
        let mut missing_cover = ghd;
        missing_cover.covers.pop();
        assert!(matches!(
            verify_ghd(&h, &missing_cover).unwrap_err(),
            VerifyError::CoverCountMismatch { bags: 3, covers: 2 }
        ));
    }

    #[test]
    fn display_is_informative() {
        let e = VerifyError::WidthExceeded {
            claimed: 2,
            actual: 3,
        };
        assert!(e.to_string().contains("claims width 2"), "{e}");
        let e = VerifyError::StrategyMismatch {
            strategy: "jigsaw-reduce".into(),
            reason: "degree 3 > 2".into(),
        };
        assert!(e.to_string().contains("jigsaw-reduce"), "{e}");
    }
}
