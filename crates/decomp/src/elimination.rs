//! Elimination orderings: fill bags, heuristics, and conversion to tree
//! decompositions.
//!
//! Every elimination ordering `π` of (the primal graph of) a hypergraph
//! yields a tree decomposition whose bags are the *fill bags*
//! `B_v = {v} ∪ N⁺(v)` (the neighbours of `v` at the moment it is
//! eliminated); conversely every tree decomposition induces an ordering
//! whose fill bags are subsets of its bags. For any *monotone* bag-cost
//! function this makes the minimum over orderings equal to the minimum over
//! all tree decompositions — the fact the exact solver in [`crate::exact`]
//! relies on.

use cqd2_hypergraph::{Graph, VertexId};

use crate::tree_decomposition::TreeDecomposition;

/// Compute the fill bags of eliminating `order` in `g`.
///
/// Returns `bags[i]` = sorted bag of the vertex `order[i]` (containing the
/// vertex itself). `order` must be a permutation of `0..n`.
pub fn fill_bags(g: &Graph, order: &[u32]) -> Vec<Vec<u32>> {
    let n = g.num_vertices();
    assert_eq!(order.len(), n, "order must cover all vertices");
    // Working adjacency as sets for fill-in.
    let mut adj: Vec<std::collections::BTreeSet<u32>> = (0..n)
        .map(|v| g.neighbors(v as u32).iter().copied().collect())
        .collect();
    let mut eliminated = vec![false; n];
    let mut bags = Vec::with_capacity(n);
    for &v in order {
        let nb: Vec<u32> = adj[v as usize]
            .iter()
            .copied()
            .filter(|&u| !eliminated[u as usize])
            .collect();
        let mut bag = nb.clone();
        bag.push(v);
        bag.sort_unstable();
        bags.push(bag);
        // Make the remaining neighbourhood a clique.
        for i in 0..nb.len() {
            for j in (i + 1)..nb.len() {
                adj[nb[i] as usize].insert(nb[j]);
                adj[nb[j] as usize].insert(nb[i]);
            }
        }
        eliminated[v as usize] = true;
    }
    bags
}

/// Build a valid tree decomposition from an elimination ordering.
///
/// Node `i` carries the fill bag of `order[i]`; its parent is the node of
/// the earliest-eliminated later vertex in its bag. Roots (vertices whose
/// bag is a singleton) are chained together so the result is a single tree.
pub fn order_to_td(g: &Graph, order: &[u32]) -> TreeDecomposition {
    let n = g.num_vertices();
    if n == 0 {
        // A single empty bag: valid for vertex-less hypergraphs (covers
        // the empty edge, trivially connected).
        return TreeDecomposition {
            bags: vec![vec![]],
            tree: vec![],
        };
    }
    let bags_raw = fill_bags(g, order);
    let mut pos = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = i;
    }
    let mut tree = Vec::new();
    let mut roots = Vec::new();
    for (i, bag) in bags_raw.iter().enumerate() {
        let parent = bag
            .iter()
            .filter(|&&u| pos[u as usize] > i)
            .min_by_key(|&&u| pos[u as usize]);
        match parent {
            Some(&u) => tree.push((i, pos[u as usize])),
            None => roots.push(i),
        }
    }
    for w in roots.windows(2) {
        tree.push((w[0], w[1]));
    }
    let bags = bags_raw
        .into_iter()
        .map(|b| b.into_iter().map(VertexId).collect())
        .collect();
    TreeDecomposition { bags, tree }
}

/// Min-fill elimination ordering: repeatedly eliminate the vertex whose
/// elimination adds the fewest fill edges (ties: smaller degree, then id).
pub fn min_fill_order(g: &Graph) -> Vec<u32> {
    greedy_order(g, |adj, eliminated, v| {
        let nb: Vec<u32> = adj[v as usize]
            .iter()
            .copied()
            .filter(|&u| !eliminated[u as usize])
            .collect();
        let mut fill = 0usize;
        for i in 0..nb.len() {
            for j in (i + 1)..nb.len() {
                if !adj[nb[i] as usize].contains(&nb[j]) {
                    fill += 1;
                }
            }
        }
        (fill, nb.len())
    })
}

/// Min-degree elimination ordering.
pub fn min_degree_order(g: &Graph) -> Vec<u32> {
    greedy_order(g, |adj, eliminated, v| {
        let d = adj[v as usize]
            .iter()
            .filter(|&&u| !eliminated[u as usize])
            .count();
        (d, 0)
    })
}

fn greedy_order(
    g: &Graph,
    mut score: impl FnMut(&[std::collections::BTreeSet<u32>], &[bool], u32) -> (usize, usize),
) -> Vec<u32> {
    let n = g.num_vertices();
    let mut adj: Vec<std::collections::BTreeSet<u32>> = (0..n)
        .map(|v| g.neighbors(v as u32).iter().copied().collect())
        .collect();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n as u32)
            .filter(|&v| !eliminated[v as usize])
            .min_by_key(|&v| {
                let (a, b) = score(&adj, &eliminated, v);
                (a, b, v)
            })
            .expect("some vertex remains");
        let nb: Vec<u32> = adj[v as usize]
            .iter()
            .copied()
            .filter(|&u| !eliminated[u as usize])
            .collect();
        for i in 0..nb.len() {
            for j in (i + 1)..nb.len() {
                adj[nb[i] as usize].insert(nb[j]);
                adj[nb[j] as usize].insert(nb[i]);
            }
        }
        eliminated[v as usize] = true;
        order.push(v);
    }
    order
}

/// Treewidth upper bound from an ordering: `max |fill bag| - 1`.
pub fn order_width(g: &Graph, order: &[u32]) -> usize {
    fill_bags(g, order)
        .iter()
        .map(|b| b.len())
        .max()
        .unwrap_or(1)
        .saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_hypergraph::generators::{complete_graph, cycle_graph, grid_graph, path_graph};

    #[test]
    fn path_has_width_one() {
        let g = path_graph(6);
        let order = min_fill_order(&g);
        assert_eq!(order_width(&g, &order), 1);
        let td = order_to_td(&g, &order);
        td.validate(&g.to_hypergraph()).unwrap();
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn cycle_has_width_two() {
        let g = cycle_graph(7);
        let order = min_fill_order(&g);
        assert_eq!(order_width(&g, &order), 2);
        let td = order_to_td(&g, &order);
        td.validate(&g.to_hypergraph()).unwrap();
    }

    #[test]
    fn clique_has_width_n_minus_one() {
        let g = complete_graph(5);
        let order = min_degree_order(&g);
        assert_eq!(order_width(&g, &order), 4);
    }

    #[test]
    fn grid_heuristic_reasonable() {
        // tw(grid 3xm) = 3; min-fill typically finds it.
        let g = grid_graph(3, 5);
        let order = min_fill_order(&g);
        let w = order_width(&g, &order);
        assert!(w >= 3, "cannot beat true treewidth");
        assert!(w <= 5, "heuristic should be close, got {w}");
        let td = order_to_td(&g, &order);
        td.validate(&g.to_hypergraph()).unwrap();
    }

    #[test]
    fn disconnected_graph_yields_tree() {
        let mut g = path_graph(3);
        // add isolated vertices
        g = Graph::from_edges(6, &g.edges().collect::<Vec<_>>());
        let order = min_degree_order(&g);
        let td = order_to_td(&g, &order);
        td.validate(&g.to_hypergraph()).unwrap();
    }

    #[test]
    fn fill_bags_contain_self() {
        let g = grid_graph(2, 3);
        let order = min_fill_order(&g);
        let bags = fill_bags(&g, &order);
        for (i, bag) in bags.iter().enumerate() {
            assert!(bag.contains(&order[i]));
        }
    }

    #[test]
    fn arbitrary_order_still_valid_td() {
        let g = grid_graph(3, 3);
        let order: Vec<u32> = (0..9).collect();
        let td = order_to_td(&g, &order);
        td.validate(&g.to_hypergraph()).unwrap();
    }
}
