//! Generalized hypertree decompositions (GHDs).
//!
//! A GHD `⟨T, (B_u), (λ_u)⟩` is a tree decomposition together with, for
//! every node `u`, an explicit edge cover `λ_u ⊆ E(H)` of the bag `B_u`
//! (paper, Appendix C). Its width is `max_u |λ_u|`; the minimum width over
//! all GHDs of `H` is `ghw(H)`.

use cqd2_hypergraph::{EdgeId, Hypergraph, VertexId};

use crate::cover::{exact_cover, greedy_cover, is_cover};
use crate::tree_decomposition::{TdError, TreeDecomposition};

/// A generalized hypertree decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ghd {
    /// The underlying tree decomposition.
    pub td: TreeDecomposition,
    /// `covers[u]` is the edge cover `λ_u` of bag `u`.
    pub covers: Vec<Vec<EdgeId>>,
}

/// Reasons a GHD can be invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GhdError {
    /// The underlying tree decomposition is invalid.
    Td(TdError),
    /// `covers` has the wrong length.
    CoverCountMismatch,
    /// Bag `u` is not covered by `λ_u`.
    BagNotCovered(usize),
    /// A cover references an edge outside the hypergraph.
    UnknownEdge(u32),
}

impl std::fmt::Display for GhdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GhdError::Td(e) => write!(f, "invalid tree decomposition: {e}"),
            GhdError::CoverCountMismatch => write!(f, "covers.len() != bags.len()"),
            GhdError::BagNotCovered(u) => write!(f, "bag {u} not covered by its λ"),
            GhdError::UnknownEdge(e) => write!(f, "cover references unknown edge e{e}"),
        }
    }
}

impl std::error::Error for GhdError {}

impl Ghd {
    /// The width `max_u |λ_u|` (0 for a single empty bag).
    pub fn width(&self) -> usize {
        self.covers.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Validate against `h`: the tree decomposition must be valid and every
    /// bag covered by its `λ`.
    pub fn validate(&self, h: &Hypergraph) -> Result<(), GhdError> {
        self.td.validate(h).map_err(GhdError::Td)?;
        if self.covers.len() != self.td.bags.len() {
            return Err(GhdError::CoverCountMismatch);
        }
        for (u, cover) in self.covers.iter().enumerate() {
            for e in cover {
                if e.idx() >= h.num_edges() {
                    return Err(GhdError::UnknownEdge(e.0));
                }
            }
            if !is_cover(h, &self.td.bags[u], cover) {
                return Err(GhdError::BagNotCovered(u));
            }
        }
        Ok(())
    }

    /// Equip a tree decomposition with minimum-cardinality covers
    /// (exact per-bag set cover). The GHD's width is then the `ρ`-width of
    /// the given decomposition.
    pub fn from_td_exact(h: &Hypergraph, td: TreeDecomposition) -> Ghd {
        let covers = td.bags.iter().map(|b| exact_cover(h, b)).collect();
        Ghd { td, covers }
    }

    /// Equip a tree decomposition with greedy covers (fast, possibly
    /// suboptimal width).
    pub fn from_td_greedy(h: &Hypergraph, td: TreeDecomposition) -> Ghd {
        let covers = td.bags.iter().map(|b| greedy_cover(h, b)).collect();
        Ghd { td, covers }
    }

    /// The bag of node `u`.
    pub fn bag(&self, u: usize) -> &[VertexId] {
        &self.td.bags[u]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(v: u32) -> VertexId {
        VertexId(v)
    }

    #[test]
    fn chain_ghd_width_one() {
        use cqd2_hypergraph::generators::hyperchain;
        let h = hyperchain(4, 3);
        // One node per edge, chained: bags = edges.
        let bags: Vec<Vec<VertexId>> = h.edge_ids().map(|e| h.edge(e).to_vec()).collect();
        let tree = (0..bags.len() - 1).map(|i| (i, i + 1)).collect();
        let td = TreeDecomposition { bags, tree };
        let ghd = Ghd::from_td_exact(&h, td);
        ghd.validate(&h).unwrap();
        assert_eq!(ghd.width(), 1);
    }

    #[test]
    fn invalid_cover_detected() {
        let h = Hypergraph::new(3, &[vec![0, 1], vec![1, 2]]).unwrap();
        let td = TreeDecomposition::trivial(&h);
        let ghd = Ghd {
            td,
            covers: vec![vec![EdgeId(0)]], // does not cover vertex 2
        };
        assert_eq!(ghd.validate(&h), Err(GhdError::BagNotCovered(0)));
    }

    #[test]
    fn unknown_edge_detected() {
        let h = Hypergraph::new(2, &[vec![0, 1]]).unwrap();
        let ghd = Ghd {
            td: TreeDecomposition::trivial(&h),
            covers: vec![vec![EdgeId(7)]],
        };
        assert_eq!(ghd.validate(&h), Err(GhdError::UnknownEdge(7)));
    }

    #[test]
    fn cover_count_mismatch_detected() {
        let h = Hypergraph::new(2, &[vec![0, 1]]).unwrap();
        let ghd = Ghd {
            td: TreeDecomposition::trivial(&h),
            covers: vec![],
        };
        assert_eq!(ghd.validate(&h), Err(GhdError::CoverCountMismatch));
    }

    #[test]
    fn trivial_td_cover_width_is_rho_of_everything() {
        let h = Hypergraph::new(4, &[vec![0, 1], vec![2, 3], vec![1, 2]]).unwrap();
        let ghd = Ghd::from_td_exact(&h, TreeDecomposition::trivial(&h));
        ghd.validate(&h).unwrap();
        assert_eq!(ghd.width(), 2); // {0,1} and {2,3} cover all four vertices
        let _ = vid(0);
    }
}
