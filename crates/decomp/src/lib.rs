//! Width parameters and decompositions for hypergraphs.
//!
//! This crate implements the width machinery of Section 2 of the paper:
//!
//! - [`TreeDecomposition`]s of hypergraphs (equivalently of their primal
//!   graphs) with full validation.
//! - Exact *f-width* computation for any monotone bag-cost function via a
//!   memoized elimination-order DP ([`exact`]), instantiated for
//!   **treewidth** (`w(B) = |B| - 1`), **generalized hypertree width**
//!   (`ρ(B)` = integral edge cover number, [`cover`]) and **fractional
//!   hypertree width** (`ρ*(B)` = fractional edge cover via the simplex
//!   solver in [`lp`]).
//! - Heuristic upper bounds (min-fill / min-degree elimination) and cheap
//!   lower bounds for larger instances ([`elimination`], [`lower_bounds`]).
//! - [`Ghd`]: generalized hypertree decompositions `⟨T, (B_u), (λ_u)⟩` with
//!   validation, and construction from tree decompositions by covering bags.
//! - [`dual_bound`]: the constructive proof of **Lemma 4.6** — a tree
//!   decomposition of `H^d` of width `k` yields a GHD of `H` of width
//!   `k + 1`.
//!
//! The correctness anchor used throughout the tests: the `n × n` jigsaw has
//! `ghw ∈ [n, n+1]` (paper, Section 4.2 and Lemma 4.6 with `tw(grid_n) = n`).

pub mod cover;
pub mod dual_bound;
pub mod elimination;
pub mod exact;
pub mod ghd;
pub mod lower_bounds;
pub mod lp;
pub mod separators;
pub mod tree_decomposition;
pub mod verify;
pub mod widths;

pub use dual_bound::ghd_via_dual;
pub use ghd::Ghd;
pub use tree_decomposition::TreeDecomposition;
pub use verify::{verify_ghd, verify_ghd_width, VerifyError};
pub use widths::{fhw_exact, ghw_exact, treewidth_exact, WidthEstimate};
