//! Engine-level differential tests for copy-free prepared re-execution:
//! warm [`PreparedQuery`] runs (overlay passes over the shared bag tree)
//! must answer exactly like the one-shot [`Engine::serve`] path (cloned
//! consuming passes), report their execution mode in provenance, and
//! support concurrent cursors streaming from ONE shared materialization.

use cqd2_cq::generate::planted_database;
use cqd2_cq::ConjunctiveQuery;
use cqd2_engine::{BagMode, Engine, Request, Workload};

/// A 7-atom acyclic degree-2 query with enough data that the planner's
/// data estimate keeps the GHD plan (so runs actually exercise the bag
/// tree, not the naive join).
fn fixture() -> (ConjunctiveQuery, cqd2_cq::Database) {
    let q = ConjunctiveQuery::parse(&[
        ("A", &["?a", "?b"]),
        ("B0", &["?a", "?c", "?d"]),
        ("B1", &["?b", "?e", "?f"]),
        ("C0", &["?c", "?g"]),
        ("C1", &["?d", "?h"]),
        ("C2", &["?e", "?i"]),
        ("C3", &["?f", "?j"]),
    ]);
    // Sparse (domain ≫ matches per value) so the full answer set stays
    // small enough to materialize, planted so it is never empty; big
    // enough that the data estimate keeps the GHD plan.
    let db = planted_database(&q, 500, 300, 3);
    (q, db)
}

#[test]
fn prepared_overlay_matches_one_shot_serve() {
    let (q, db) = fixture();
    let engine = Engine::default();
    let session = engine.session(&db);
    let prepared = session.prepare(&q).expect("planning cannot fail");

    for workload in [Workload::Boolean, Workload::Count] {
        let served = engine.serve(&Request {
            query: &q,
            db: &db,
            workload,
        });
        let served_exec = served.provenance.bags.expect("GHD plan expected");
        assert_eq!(
            served_exec.mode,
            BagMode::Cloned,
            "one-shot runs consume a clone"
        );
        // Repeated warm runs: same answer every time, overlay mode, and
        // rewrite sparsity within the tree.
        for _ in 0..3 {
            let run = prepared.run(workload);
            assert_eq!(run.answer, served.answer, "{workload:?} diverged");
            let exec = run.provenance.bags.expect("GHD plan expected");
            assert_eq!(exec.mode, BagMode::Overlay, "prepared runs use overlays");
            assert!(
                exec.bags_rewritten <= exec.bags_total,
                "sparsity out of range: {}/{}",
                exec.bags_rewritten,
                exec.bags_total
            );
            assert_eq!(exec.bags_total, served_exec.bags_total, "same tree");
        }
    }

    // Enumerate: the prepared cursor streams exactly the one-shot
    // answer set (order is unspecified — compare as sorted sets).
    let served = engine.serve(&Request {
        query: &q,
        db: &db,
        workload: Workload::Enumerate { limit: None },
    });
    let mut reference = served.answer.as_tuples().expect("tuples").to_vec();
    reference.sort_unstable();
    for _ in 0..2 {
        let mut streamed: Vec<Vec<u64>> = prepared.cursor(None).collect();
        streamed.sort_unstable();
        assert_eq!(streamed, reference, "cursor stream diverged");
    }
}

#[test]
fn concurrent_cursors_share_one_materialization() {
    let (q, db) = fixture();
    let engine = Engine::default();
    let session = engine.session(&db);
    let prepared = session.prepare(&q).expect("planning cannot fail");
    let mut reference: Vec<Vec<u64>> = prepared.cursor(None).collect();
    reference.sort_unstable();
    assert!(!reference.is_empty(), "fixture should have answers");

    // Two threads each open a cursor against the SAME prepared handle
    // (one shared bag tree underneath) and stream concurrently.
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                s.spawn(|| {
                    let mut out: Vec<Vec<u64>> = prepared.cursor(None).collect();
                    out.sort_unstable();
                    out
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("no panic"), reference);
        }
    });

    // Interleaved cursors on one thread must not disturb each other,
    // and a limited cursor caps without affecting a full one.
    let mut c1 = prepared.cursor(None);
    let mut c2 = prepared.cursor(None);
    let mut out = Vec::new();
    loop {
        let a = c1.next();
        assert_eq!(a, c2.next(), "interleaved cursors diverged");
        match a {
            Some(t) => out.push(t),
            None => break,
        }
    }
    out.sort_unstable();
    assert_eq!(out, reference);
    let capped = prepared.cursor(Some(3)).count();
    assert_eq!(capped, reference.len().min(3));
}
