//! The serving engine: plan-once, execute-many.
//!
//! [`Engine`] ties the planner and plan cache together behind the three
//! operations a workload needs — solve a Boolean CQ, count answers of a
//! full CQ, enumerate answer tuples — and adds [`Engine::execute_batch`],
//! which fans a slice of requests out over scoped worker threads. Every
//! response carries [`PlanProvenance`] so callers can see which regime of
//! the paper their query landed in and whether planning was amortized.
//!
//! The primary serving surface is the handle-based API in
//! [`crate::session`]: [`Engine::session`] snapshots a database's
//! statistics once, `Session::prepare` resolves a query's plan once, and
//! `PreparedQuery::run` re-executes at zero planning cost.
//! [`Engine::serve`] / [`Engine::serve_with_stats`] /
//! [`Engine::execute_batch`] are thin compatibility shims over those
//! handles (one session + one prepared query per call).

use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use cqd2_cq::eval::with_sequential_bags;
use cqd2_cq::stats::DatabaseStats;
use cqd2_cq::{ConjunctiveQuery, Database};

use crate::cache::{CacheStats, PlanCache};
use crate::error::EngineError;
use crate::plan::{DataEstimate, PlannedQuery};
use crate::planner::{Planner, PlannerConfig};
use crate::session::PreparedCore;

/// The process-wide shared engine (see [`Engine::shared`] and
/// [`Engine::shared_with_config`]).
static SHARED: OnceLock<Engine> = OnceLock::new();

/// Engine-level configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Planner knobs (see [`PlannerConfig`]).
    pub planner: PlannerConfig,
    /// Maximum structures the plan cache holds (0 = unbounded).
    pub cache_capacity: usize,
    /// Worker threads for [`Engine::execute_batch`]; 0 means "use
    /// available parallelism".
    pub workers: usize,
    /// Verify every derived plan against the paper's structural
    /// invariants at prepare time (see [`crate::verify`]): a planner
    /// bug then surfaces as a typed [`crate::EngineError::Verify`]
    /// instead of a silently wrong answer. The check runs once per
    /// prepared plan — never per run — so warm serving cost is
    /// unchanged. Defaults to the `CQD2_STRICT_VERIFY` environment
    /// variable (`1` / `true` enables).
    pub strict_verify: bool,
}

impl EngineConfig {
    /// Whether `CQD2_STRICT_VERIFY` asks for strict plan verification.
    pub fn strict_verify_from_env() -> bool {
        std::env::var("CQD2_STRICT_VERIFY")
            .map(|v| {
                let v = v.trim();
                v == "1" || v.eq_ignore_ascii_case("true")
            })
            .unwrap_or(false)
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            planner: PlannerConfig::default(),
            cache_capacity: 10_000,
            workers: 0,
            strict_verify: EngineConfig::strict_verify_from_env(),
        }
    }
}

/// What a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Decide `q(D) ≠ ∅`.
    Boolean,
    /// Count `|q(D)|` (full-CQ semantics, as everywhere in this repo).
    Count,
    /// Produce answer tuples, at most `limit` of them (`None` = all).
    /// Served by the semijoin-reduce-then-stream enumerator on GHD
    /// plans; [`crate::PreparedQuery::cursor`] exposes the stream itself
    /// instead of a materialized [`Answer::Tuples`].
    Enumerate {
        /// Cap on the number of answers produced (`None` = all).
        limit: Option<usize>,
    },
}

impl Workload {
    /// Stable lowercase name of the workload (matching the `@…` text
    /// directives), used in trace-span annotations and stats output.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Boolean => "boolean",
            Workload::Count => "count",
            Workload::Enumerate { .. } => "enumerate",
        }
    }
}

/// One unit of batch work: a query against a database. Databases are
/// borrowed, so many requests can share one database without copies.
#[derive(Clone, Copy)]
pub struct Request<'a> {
    /// The query to evaluate.
    pub query: &'a ConjunctiveQuery,
    /// The database to evaluate against.
    pub db: &'a Database,
    /// Boolean evaluation or counting.
    pub workload: Workload,
}

/// The result payload of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Answer {
    /// Boolean result.
    Bool(bool),
    /// Answer count.
    Count(u128),
    /// Answer tuples (full assignments in `Var` id order), as produced
    /// by a [`Workload::Enumerate`] request. Order is unspecified.
    Tuples(Vec<Vec<u64>>),
}

impl Answer {
    /// The Boolean result, if this was a [`Workload::Boolean`] request.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Answer::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The count, if this was a [`Workload::Count`] request.
    pub fn as_count(&self) -> Option<u128> {
        match self {
            Answer::Count(n) => Some(*n),
            _ => None,
        }
    }

    /// The tuples, if this was a [`Workload::Enumerate`] request.
    pub fn as_tuples(&self) -> Option<&[Vec<u64>]> {
        match self {
            Answer::Tuples(t) => Some(t),
            _ => None,
        }
    }

    /// Consume the answer into its tuples, if it has any.
    pub fn into_tuples(self) -> Option<Vec<Vec<u64>>> {
        match self {
            Answer::Tuples(t) => Some(t),
            _ => None,
        }
    }
}

/// How a run executed against its materialized bag tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BagMode {
    /// Copy-free overlay passes over the shared, reusable
    /// materialization: only rewritten nodes were copied
    /// ([`crate::PreparedQuery::run`] and cursors).
    Overlay,
    /// Consuming in-place passes over a tree this run owned (one-shot
    /// paths like [`Engine::serve`]): every node is the run's own copy.
    Cloned,
}

impl BagMode {
    /// Stable lowercase name, used in `--explain` output and stats.
    pub fn name(self) -> &'static str {
        match self {
            BagMode::Overlay => "overlay",
            BagMode::Cloned => "cloned",
        }
    }
}

/// How a run touched the materialized bag tree: execution mode plus the
/// rewrite sparsity of its tree passes. Absent for naive-join plans,
/// which have no bag tree. `bags_rewritten = 0` under [`BagMode::Overlay`]
/// is the ideal warm case — the run was pure probing, no copies at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BagExecution {
    /// Overlay (copy-free) or cloned (consuming) execution.
    pub mode: BagMode,
    /// Bag nodes the run's tree passes rewrote (copied + filtered).
    pub bags_rewritten: usize,
    /// Bag nodes in the materialized tree.
    pub bags_total: usize,
}

/// Where a response's plan came from and what it cost.
#[derive(Debug, Clone)]
pub struct PlanProvenance {
    /// The plan that was executed (with cost estimate and notes).
    pub planned: PlannedQuery,
    /// Whether the structure analysis came from the cache.
    pub cache_hit: bool,
    /// Time spent planning (≈ 0 on cache hits).
    pub planning: Duration,
    /// Time spent executing the plan against the database.
    pub execution: Duration,
    /// Bag-tree execution mode and rewrite sparsity (`None` on naive
    /// plans).
    pub bags: Option<BagExecution>,
    /// How this handle crossed the most recent delta epoch, if it was
    /// maintained rather than freshly prepared: `warm-overlay` when the
    /// bag tree was refreshed in place ([`crate::PreparedQuery::rebase`]),
    /// `re-prepared` when the server fell back to a full prepare.
    /// `None` on handles that never crossed a delta.
    pub maintenance: Option<crate::delta::MaintenanceClass>,
}

/// One request's outcome.
#[derive(Debug, Clone)]
pub struct Response {
    /// The answer.
    pub answer: Answer,
    /// How it was produced.
    pub provenance: PlanProvenance,
}

/// The serving engine. A cheap-clone handle: the planner, plan cache,
/// and configuration live behind one `Arc`, so clones share the cache
/// and every clone is `Send + Sync + 'static`. That is what lets
/// [`crate::Session`] and [`crate::PreparedQuery`] own their engine
/// reference instead of borrowing it — the owned, lifetime-free serving
/// handles the hot-reload [`crate::Catalog`] path requires. The plan
/// cache sits behind a mutex and is the only shared mutable state.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

struct EngineInner {
    planner: Planner,
    cache: Mutex<PlanCache>,
    config: EngineConfig,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineConfig::default())
    }
}

impl Engine {
    /// An engine with the given configuration.
    pub fn new(config: EngineConfig) -> Engine {
        Engine {
            inner: Arc::new(EngineInner {
                planner: Planner::new(config.planner.clone()),
                cache: Mutex::new(PlanCache::new(config.cache_capacity)),
                config,
            }),
        }
    }

    /// The process-wide shared engine (used by the `cqd2` facade so
    /// plan caching spans independent calls). Initialized with
    /// [`EngineConfig::default`] on first use — call
    /// [`Engine::shared_with_config`] *before* anything touches the
    /// shared engine to tune it.
    pub fn shared() -> &'static Engine {
        SHARED.get_or_init(Engine::default)
    }

    /// First-use initializer for the process-wide shared engine: if no
    /// caller has touched [`Engine::shared`] yet, the shared engine is
    /// built with `config` and returned. If the shared engine already
    /// exists (someone called `shared()` first, or another thread won
    /// the initialization race — `OnceLock` guarantees exactly one
    /// winner), the configuration is **not** applied and
    /// [`EngineError::SharedEngineInitialized`] is returned so the
    /// caller knows its knobs were ignored instead of silently serving
    /// with defaults.
    pub fn shared_with_config(config: EngineConfig) -> Result<&'static Engine, EngineError> {
        let mut applied = false;
        let engine = SHARED.get_or_init(|| {
            applied = true;
            Engine::new(config)
        });
        if applied {
            Ok(engine)
        } else {
            Err(EngineError::SharedEngineInitialized)
        }
    }

    /// The (cached) structural analysis for a hypergraph, translated
    /// into its coordinates, plus whether the cache answered.
    pub fn structure_for(
        &self,
        h: &cqd2_hypergraph::Hypergraph,
    ) -> (crate::planner::PlannedStructure, bool) {
        self.structure_for_in(h, None)
    }

    /// [`Engine::structure_for`], attributing the cache entry to the
    /// named catalog database. The prepare path passes the pinned
    /// snapshot's name so the plan spill can invalidate per name: a
    /// delta that bumps one database's epoch only stales the spilled
    /// plans that were actually prepared against it.
    pub fn structure_for_in(
        &self,
        h: &cqd2_hypergraph::Hypergraph,
        db: Option<&str>,
    ) -> (crate::planner::PlannedStructure, bool) {
        let mut cache = cqd2_cq::sync::lock_or_poison(&self.inner.cache);
        if let Some(hit) = cache.lookup_in(h, db) {
            // Rebuild the analysis around the *translated* GHD.
            let mut structure = (*hit.structure).clone();
            structure.ghd = hit.ghd;
            return (structure, true);
        }
        // Miss: plan while holding the lock so concurrent workers do not
        // duplicate the expensive analysis of one structure class. The
        // batch executor's parallelism comes from execution, which
        // dominates planning for warm workloads.
        let structure = self.inner.planner.plan_structure(h);
        let dbs: Vec<String> = db.map(str::to_string).into_iter().collect();
        let stored = cache.insert_in(h, structure, &dbs);
        ((*stored).clone(), false)
    }

    /// Plan `q` (from cache when its structure class is known) without
    /// executing anything. Structure-only: no database is consulted, so
    /// the choice reflects exponents alone (see [`Engine::plan_with_db`]
    /// for the statistics-refined plan).
    pub fn plan(&self, q: &ConjunctiveQuery, workload: Workload) -> (PlannedQuery, bool, Duration) {
        let start = Instant::now();
        let (structure, cache_hit) = self.structure_for(&q.hypergraph());
        let planned = match workload {
            Workload::Boolean | Workload::Enumerate { .. } => structure.bool_plan(),
            Workload::Count => structure.count_plan(),
        };
        (planned, cache_hit, start.elapsed())
    }

    /// Plan `q` against a concrete database: the cached structural
    /// analysis is refined with [`DataEstimate`]s from the database's
    /// statistics, so the naive-vs-GHD choice follows the data, not just
    /// the structural exponent. This is the planning path [`Engine::serve`]
    /// uses.
    pub fn plan_with_db(
        &self,
        q: &ConjunctiveQuery,
        db: &Database,
        workload: Workload,
    ) -> (PlannedQuery, bool, Duration) {
        let start = Instant::now();
        let (structure, cache_hit) = self.structure_for(&q.hypergraph());
        let est = DataEstimate::compute(q, structure.ghd.as_ref(), &db.stats());
        let planned = match workload {
            Workload::Boolean | Workload::Enumerate { .. } => structure.bool_plan_with(Some(&est)),
            Workload::Count => structure.count_plan_with(Some(&est)),
        };
        (planned, cache_hit, start.elapsed())
    }

    /// Serve one request: a compatibility shim that prepares the query
    /// against query-scoped statistics (only the relations the query's
    /// atoms name are scanned, so the per-request cost is proportional
    /// to the data this query can touch) and runs it once, borrowing
    /// `req.db` for the duration of the call. Callers serving many
    /// requests against one database should hold a [`Engine::session`]
    /// (one full statistics snapshot) and re-run
    /// [`crate::PreparedQuery`] handles instead — that is where the
    /// planning amortization lives.
    pub fn serve(&self, req: &Request<'_>) -> Response {
        let scan_start = Instant::now();
        let stats = DatabaseStats::collect_for_query(req.db, req.query);
        let scan = scan_start.elapsed();
        let mut resp = self.serve_on(req, &stats);
        // The statistics scan is planning-side work this call paid.
        resp.provenance.planning += scan;
        resp
    }

    /// [`Engine::serve`] against a precomputed statistics snapshot of
    /// `req.db`. The batch executor collects one snapshot per distinct
    /// database instead of re-scanning per request; single-request
    /// callers with an unchanging database get the same amortization by
    /// calling `db.stats()` once and passing it here (or by holding a
    /// [`crate::Session`], which pins a full snapshot).
    pub fn serve_with_stats(&self, req: &Request<'_>, stats: &DatabaseStats) -> Response {
        self.serve_on(req, stats)
    }

    /// One-shot serve: build the prepared core, consume it (no bag-tree
    /// copy), and fold the planning and preprocessing cost this call
    /// actually paid back into the provenance (prepared handles report
    /// zero planning on their runs; preprocessing lands in `execution`,
    /// where the old monolithic serve counted it). This borrows the
    /// database directly — no snapshot is cloned or pinned — which is
    /// what keeps the one-shot shims copy-free.
    fn serve_on(&self, req: &Request<'_>, stats: &DatabaseStats) -> Response {
        let core = PreparedCore::build(self, req.query, req.db, stats, None)
            // cqd2-lint: allow(panic-in-hot-path, reason = "infallible shim API: prepare on a query's own plan only fails on an engine bug; Session::prepare is the fallible surface")
            .expect("prepared plan is valid for its own query");
        let planning = core.planning;
        let preprocessing = core.preprocessing;
        let mut resp = core.run_once(req.db, req.workload);
        resp.provenance.planning = planning;
        resp.provenance.execution += preprocessing;
        resp
    }

    /// Decide `q(D) ≠ ∅` through the engine (planned, cached).
    pub fn solve_bcq(&self, q: &ConjunctiveQuery, db: &Database) -> bool {
        let req = Request {
            query: q,
            db,
            workload: Workload::Boolean,
        };
        // cqd2-lint: allow(panic-in-hot-path, reason = "a Boolean request always yields Answer::Bool by construction")
        self.serve(&req).answer.as_bool().expect("boolean workload")
    }

    /// Count `|q(D)|` through the engine (planned, cached).
    pub fn count_answers(&self, q: &ConjunctiveQuery, db: &Database) -> u128 {
        let req = Request {
            query: q,
            db,
            workload: Workload::Count,
        };
        // cqd2-lint: allow(panic-in-hot-path, reason = "a Count request always yields Answer::Count by construction")
        self.serve(&req).answer.as_count().expect("count workload")
    }

    /// Enumerate up to `limit` answer tuples of `q(D)` (`None` = all)
    /// through the engine (planned, cached). Tuples are full assignments
    /// in `Var` id order; the order of tuples is unspecified.
    pub fn enumerate_answers(
        &self,
        q: &ConjunctiveQuery,
        db: &Database,
        limit: Option<usize>,
    ) -> Vec<Vec<u64>> {
        let req = Request {
            query: q,
            db,
            workload: Workload::Enumerate { limit },
        };
        self.serve(&req)
            .answer
            .into_tuples()
            // cqd2-lint: allow(panic-in-hot-path, reason = "an Enumerate request always yields Answer::Tuples by construction")
            .expect("enumerate workload")
    }

    /// Evaluate a batch of requests on scoped worker threads, returning
    /// one response per request, in request order.
    ///
    /// Work distribution is a shared atomic cursor (requests vary wildly
    /// in cost, so static chunking would straggle); results land in
    /// per-slot cells, so no ordering pass is needed.
    pub fn execute_batch(&self, requests: &[Request<'_>]) -> Vec<Response> {
        let n = requests.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.effective_workers().min(n);
        // One statistics snapshot per *distinct* database (batches
        // typically share a handful of databases across many requests),
        // keyed by address — the borrows outlive the whole batch.
        let mut stats_by_db: std::collections::HashMap<usize, DatabaseStats> =
            std::collections::HashMap::new();
        for r in requests {
            stats_by_db
                .entry(std::ptr::from_ref(r.db) as usize)
                .or_insert_with(|| r.db.stats());
        }
        let stats_for = |r: &Request<'_>| &stats_by_db[&(std::ptr::from_ref(r.db) as usize)];
        if workers <= 1 {
            // Inline serving keeps intra-query bag parallelism available.
            return requests
                .iter()
                .map(|r| self.serve_with_stats(r, stats_for(r)))
                .collect();
        }
        // The batch already saturates the worker pool: disable nested
        // intra-query bag parallelism inside each worker.
        cqd2_cq::par::scoped_map(n, workers, |i| {
            with_sequential_bags(|| self.serve_with_stats(&requests[i], stats_for(&requests[i])))
        })
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        cqd2_cq::sync::lock_or_poison(&self.inner.cache).stats()
    }

    /// Clone out every cached structure class as `(representative,
    /// analysis)` pairs (see [`PlanCache::export`]). This is the plan
    /// store's spill surface; hit/miss counters are untouched.
    pub fn export_plans(
        &self,
    ) -> Vec<(
        cqd2_hypergraph::Hypergraph,
        crate::planner::PlannedStructure,
    )> {
        cqd2_cq::sync::lock_or_poison(&self.inner.cache).export()
    }

    /// [`Engine::export_plans`] with each entry's database-attribution
    /// set (see [`PlanCache::export_attributed`]) — the plan store's
    /// per-name-invalidation spill surface.
    pub fn export_plans_attributed(
        &self,
    ) -> Vec<(
        cqd2_hypergraph::Hypergraph,
        crate::planner::PlannedStructure,
        Vec<String>,
    )> {
        cqd2_cq::sync::lock_or_poison(&self.inner.cache).export_attributed()
    }

    /// Seed the plan cache with a previously exported analysis, keyed by
    /// its representative hypergraph. Returns `false` (and stores
    /// nothing) when the structure class is already cached — preloading
    /// never evicts or duplicates live entries, and bumps no hit/miss
    /// counters.
    pub fn preload_plan(
        &self,
        representative: &cqd2_hypergraph::Hypergraph,
        structure: crate::planner::PlannedStructure,
    ) -> bool {
        self.preload_plan_for(representative, structure, &[])
    }

    /// [`Engine::preload_plan`] with database attribution preserved:
    /// `dbs` seeds the entry's attribution set, so a spill → load →
    /// spill round-trip keeps per-name staleness intact.
    pub fn preload_plan_for(
        &self,
        representative: &cqd2_hypergraph::Hypergraph,
        structure: crate::planner::PlannedStructure,
        dbs: &[String],
    ) -> bool {
        let mut cache = cqd2_cq::sync::lock_or_poison(&self.inner.cache);
        if cache.contains(representative) {
            return false;
        }
        cache.insert_in(representative, structure, dbs);
        true
    }

    /// Whether this engine verifies plans at prepare time (see
    /// [`EngineConfig::strict_verify`]).
    pub fn strict_verify(&self) -> bool {
        self.inner.config.strict_verify
    }

    fn effective_workers(&self) -> usize {
        if self.inner.config.workers > 0 {
            self.inner.config.workers
        } else {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_cq::eval::{bcq_naive, count_naive, enumerate_naive};
    use cqd2_cq::generate::{canonical_query, planted_database, random_database};
    use cqd2_hypergraph::generators::{hyperchain, hypercycle};

    #[test]
    fn engine_matches_naive_on_mixed_batch() {
        let engine = Engine::new(EngineConfig {
            workers: 4,
            ..EngineConfig::default()
        });
        let queries: Vec<_> = (0..6)
            .map(|i| {
                let h = if i % 2 == 0 {
                    hyperchain(3, 2)
                } else {
                    hypercycle(4, 2)
                };
                canonical_query(&h)
            })
            .collect();
        let dbs: Vec<_> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                if i % 3 == 0 {
                    planted_database(q, 6, 12, i as u64)
                } else {
                    random_database(q, 5, 10, i as u64)
                }
            })
            .collect();
        let requests: Vec<Request<'_>> = queries
            .iter()
            .zip(&dbs)
            .enumerate()
            .map(|(i, (query, db))| Request {
                query,
                db,
                workload: match i % 3 {
                    0 => Workload::Boolean,
                    1 => Workload::Count,
                    _ => Workload::Enumerate { limit: None },
                },
            })
            .collect();
        let responses = engine.execute_batch(&requests);
        assert_eq!(responses.len(), requests.len());
        for (req, resp) in requests.iter().zip(&responses) {
            match req.workload {
                Workload::Boolean => {
                    assert_eq!(resp.answer, Answer::Bool(bcq_naive(req.query, req.db)));
                }
                Workload::Count => {
                    assert_eq!(resp.answer, Answer::Count(count_naive(req.query, req.db)));
                }
                Workload::Enumerate { .. } => {
                    let mut got = resp.answer.as_tuples().expect("tuples").to_vec();
                    got.sort_unstable();
                    assert_eq!(got, enumerate_naive(req.query, req.db));
                }
            }
        }
    }

    #[test]
    fn repeated_structures_amortize_planning() {
        let engine = Engine::default();
        let q = canonical_query(&hypercycle(5, 2));
        let db = random_database(&q, 4, 8, 1);
        for _ in 0..5 {
            engine.solve_bcq(&q, &db);
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(Engine::default().execute_batch(&[]).is_empty());
    }

    #[test]
    fn shared_engine_configuration_is_first_use_only() {
        // Touch the shared engine first: any later configuration attempt
        // must be rejected loudly instead of silently ignored.
        let shared = Engine::shared();
        let Err(err) = Engine::shared_with_config(EngineConfig::default()) else {
            panic!("configuration after first use must be rejected");
        };
        assert_eq!(err, crate::error::EngineError::SharedEngineInitialized);
        // The shared engine itself keeps working.
        let q = canonical_query(&hyperchain(3, 2));
        let db = random_database(&q, 4, 8, 5);
        assert_eq!(shared.solve_bcq(&q, &db), bcq_naive(&q, &db));
    }

    #[test]
    fn enumerate_answers_matches_naive() {
        let engine = Engine::default();
        let q = canonical_query(&hyperchain(3, 2));
        let db = planted_database(&q, 6, 18, 8);
        let mut got = engine.enumerate_answers(&q, &db, None);
        got.sort_unstable();
        assert_eq!(got, enumerate_naive(&q, &db));
        let capped = engine.enumerate_answers(&q, &db, Some(1));
        assert_eq!(capped.len(), 1.min(got.len()));
    }

    #[test]
    fn provenance_reports_strategy_and_cache_state() {
        let engine = Engine::default();
        let q = canonical_query(&hyperchain(4, 2));
        let db = random_database(&q, 4, 8, 2);
        let req = Request {
            query: &q,
            db: &db,
            workload: Workload::Boolean,
        };
        let first = engine.serve(&req);
        assert!(!first.provenance.cache_hit);
        assert_eq!(first.provenance.planned.plan.strategy(), "ghd-yannakakis");
        let second = engine.serve(&req);
        assert!(second.provenance.cache_hit);
        assert_eq!(first.answer, second.answer);
    }
}
