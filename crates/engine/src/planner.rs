//! The structure-aware planner.
//!
//! Planning is pure structural analysis — no database is consulted — so
//! its (potentially exponential-in-structure) cost is paid once per
//! *isomorphism class* and amortized by the plan cache. The planner runs
//! the paper's classification machinery:
//!
//! 1. exact ghw + optimal GHD when the instance is small enough
//!    (`cqd2_decomp::widths::ghw_decomposition`);
//! 2. otherwise certified-valid heuristic GHDs (min-fill elimination and
//!    the Lemma 4.6 dual route, whichever is narrower);
//! 3. for degree-2 structures of non-trivial width, the Theorem 4.7
//!    jigsaw extraction, which certifies membership in the hard regime.

use std::time::{Duration, Instant};

use cqd2_decomp::dual_bound::ghd_via_dual;
use cqd2_decomp::elimination::{min_fill_order, order_to_td};
use cqd2_decomp::widths::{ghw_decomposition, primal_graph};
use cqd2_decomp::Ghd;
use cqd2_dilution::DilutionSequence;
use cqd2_hypergraph::Hypergraph;
use cqd2_jigsaw::extract_jigsaw;

use crate::plan::{CostEstimate, DataEstimate, PlannedQuery, QueryPlan};

/// Planner knobs. The defaults suit interactive serving; tests and
/// experiments tighten them to force specific regimes.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Run the exact ghw DP only up to this many vertices. The DP's
    /// hard cap is 26 (`cqd2_decomp::exact::MAX_EXACT_VERTICES`), but
    /// its `2^n` state space makes the low twenties already cost
    /// minutes — far too slow for a planner — so serving defaults to a
    /// budget where planning stays in the low milliseconds.
    pub exact_vertex_cap: usize,
    /// Beyond the exact budget, fall back to certified heuristic GHDs
    /// (min-fill / dual-route). When `false`, large structures plan as
    /// naive joins.
    pub use_heuristic_ghd: bool,
    /// Largest jigsaw dimension the Theorem 4.7 extraction searches for.
    /// `0` disables jigsaw certificates entirely.
    pub jigsaw_max_n: usize,
    /// Node budget for the grid-minor search inside the extraction.
    pub jigsaw_budget: u64,
    /// Only attempt the (expensive) jigsaw extraction when the best GHD
    /// width is at least this; below it the structure is cheap anyway.
    pub jigsaw_min_width: usize,
    /// Width at which a jigsaw certificate flips the plan into the hard
    /// regime ([`crate::plan::QueryPlan::JigsawReduce`]); narrower
    /// structures keep their GHD plan and carry the certificate as a
    /// note only.
    pub hard_regime_width: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            exact_vertex_cap: 18,
            use_heuristic_ghd: true,
            // 5 matches the pre-engine facade's extraction cap, so
            // `cqd2::analyze` reports the same certificates it always did.
            jigsaw_max_n: 5,
            jigsaw_budget: 2_000_000,
            jigsaw_min_width: 2,
            hard_regime_width: 3,
        }
    }
}

/// Everything the planner learned about one structure (isomorphism
/// class). This is the value the plan cache stores; per-request
/// [`PlannedQuery`]s are derived from it cheaply.
#[derive(Debug, Clone)]
pub struct PlannedStructure {
    /// The best GHD found, if any (optimal when `ghd_exact`).
    pub ghd: Option<Ghd>,
    /// Whether `ghd` has optimal width (exact DP) or is heuristic.
    pub ghd_exact: bool,
    /// Theorem 4.7 certificate: dilution sequence to the `n × n` jigsaw.
    pub jigsaw: Option<(DilutionSequence, usize)>,
    /// Whether the certificate places the structure in the hard regime
    /// (width at or above the planner's `hard_regime_width`), which is
    /// when plans surface it as [`QueryPlan::JigsawReduce`].
    pub hard_regime: bool,
    /// Number of hypergraph edges (= distinct atom variable-sets): the
    /// naive join's data exponent.
    pub num_edges: usize,
    /// Planning notes, carried into every derived plan.
    pub notes: Vec<String>,
    /// Wall-clock spent planning this structure.
    pub planning_time: Duration,
}

impl PlannedStructure {
    /// The width of the best GHD, if one exists.
    pub fn width(&self) -> Option<usize> {
        self.ghd.as_ref().map(Ghd::width)
    }

    /// Derive the Boolean-evaluation plan (structure only).
    pub fn bool_plan(&self) -> PlannedQuery {
        self.derive_plan(false, None)
    }

    /// Derive the counting plan (structure only).
    pub fn count_plan(&self) -> PlannedQuery {
        self.derive_plan(true, None)
    }

    /// Derive the Boolean-evaluation plan, refined with data statistics:
    /// when the estimate says the naive join is no worse than the GHD
    /// route (small databases, where per-bag setup dominates), the plan
    /// flips to [`QueryPlan::NaiveJoin`] and records why.
    pub fn bool_plan_with(&self, data: Option<&DataEstimate>) -> PlannedQuery {
        self.derive_plan(false, data)
    }

    /// Derive the counting plan, refined with data statistics (see
    /// [`PlannedStructure::bool_plan_with`]).
    pub fn count_plan_with(&self, data: Option<&DataEstimate>) -> PlannedQuery {
        self.derive_plan(true, data)
    }

    fn derive_plan(&self, counting: bool, data: Option<&DataEstimate>) -> PlannedQuery {
        let naive_exponent = self.num_edges.max(1) as f64;
        let mut notes = self.notes.clone();
        // Hard regime certified: report the jigsaw plan. Evaluation still
        // uses the best GHD when one exists (the certificate talks about
        // the whole structure class, not about skipping a usable
        // decomposition).
        if let Some((sequence, n)) = self.jigsaw.as_ref().filter(|_| self.hard_regime) {
            let exponent = self.width().map_or(naive_exponent, |w| w as f64);
            notes.push(match &self.ghd {
                Some(g) => format!(
                    "hard regime (jigsaw n={n}); evaluating via width-{} ghd",
                    g.width()
                ),
                None => format!("hard regime (jigsaw n={n}); evaluating naively"),
            });
            return PlannedQuery {
                plan: QueryPlan::JigsawReduce {
                    sequence: sequence.clone(),
                    n: *n,
                },
                cost: CostEstimate {
                    db_exponent: exponent,
                    planning_units: sequence.ops.len() as f64,
                    data: data.copied(),
                },
                notes,
            };
        }
        match &self.ghd {
            Some(ghd) if (ghd.width() as f64) < naive_exponent => {
                let width = ghd.width();
                // Structure says GHD — but on small data the per-bag
                // setup costs can exceed the whole naive search; the
                // statistics-based estimate decides.
                // The numbers themselves live in `cost.data` and are
                // rendered by `explain()`; the note records only the
                // decision.
                if data.and_then(DataEstimate::naive_beats_ghd) == Some(true) {
                    notes.push(format!(
                        "stats: small data favors the naive join — overriding the width-{width} ghd plan"
                    ));
                    return PlannedQuery {
                        plan: QueryPlan::NaiveJoin,
                        cost: CostEstimate {
                            db_exponent: naive_exponent,
                            planning_units: 0.0,
                            data: data.copied(),
                        },
                        notes,
                    };
                }
                let cost = CostEstimate {
                    db_exponent: width.max(1) as f64,
                    planning_units: ghd.td.bags.len() as f64,
                    data: data.copied(),
                };
                let plan = if counting {
                    QueryPlan::CountingDp { ghd: ghd.clone() }
                } else {
                    QueryPlan::GhdYannakakis {
                        ghd: ghd.clone(),
                        width,
                    }
                };
                PlannedQuery { plan, cost, notes }
            }
            Some(ghd) => {
                notes.push(format!(
                    "ghd width {} ≥ atom count {}; naive join is no worse",
                    ghd.width(),
                    self.num_edges
                ));
                PlannedQuery {
                    plan: QueryPlan::NaiveJoin,
                    cost: CostEstimate {
                        db_exponent: naive_exponent,
                        planning_units: 0.0,
                        data: data.copied(),
                    },
                    notes,
                }
            }
            None => PlannedQuery {
                plan: QueryPlan::NaiveJoin,
                cost: CostEstimate {
                    db_exponent: naive_exponent,
                    planning_units: 0.0,
                    data: data.copied(),
                },
                notes,
            },
        }
    }
}

/// The planner: runs structural analysis once per structure.
#[derive(Debug, Clone, Default)]
pub struct Planner {
    /// Configuration knobs.
    pub config: PlannerConfig,
}

impl Planner {
    /// A planner with the given configuration.
    pub fn new(config: PlannerConfig) -> Planner {
        Planner { config }
    }

    /// Analyze one structure (the expensive, cache-amortized step).
    pub fn plan_structure(&self, h: &Hypergraph) -> PlannedStructure {
        let start = Instant::now();
        let mut notes = Vec::new();
        let num_edges = h.num_edges();

        if num_edges == 0 || h.num_vertices() == 0 {
            notes.push("trivial structure (no variables or no atoms)".to_string());
            return PlannedStructure {
                ghd: None,
                ghd_exact: false,
                jigsaw: None,
                hard_regime: false,
                num_edges,
                notes,
                planning_time: start.elapsed(),
            };
        }

        // 1. Exact decomposition when it fits the planning budget.
        let exact = if h.num_vertices() <= self.config.exact_vertex_cap {
            ghw_decomposition(h)
        } else {
            None
        };
        let (ghd, ghd_exact) = match exact {
            Some(g) => {
                notes.push(format!("exact ghw = {}", g.width()));
                (Some(g), true)
            }
            None if self.config.use_heuristic_ghd => {
                let g = self.heuristic_ghd(h);
                notes.push(format!(
                    "exact ghw over budget ({} vertices > cap {}); heuristic ghd width {}",
                    h.num_vertices(),
                    self.config.exact_vertex_cap,
                    g.width()
                ));
                (Some(g), false)
            }
            None => {
                notes.push(format!(
                    "exact ghw over budget ({} vertices > cap {}); heuristics disabled",
                    h.num_vertices(),
                    self.config.exact_vertex_cap
                ));
                (None, false)
            }
        };

        // 2. Theorem 4.7 certificate for wide degree-2 structures.
        let width_for_gate = ghd.as_ref().map_or(usize::MAX, Ghd::width);
        // The extraction pipeline requires a connected host (its minor
        // machinery walks one component); disconnected structures skip
        // the certificate rather than risk a partial answer.
        let jigsaw = if self.config.jigsaw_max_n >= 2
            && h.max_degree() <= 2
            && width_for_gate >= self.config.jigsaw_min_width
            && h.is_connected()
        {
            match extract_jigsaw(h, self.config.jigsaw_max_n, self.config.jigsaw_budget) {
                Ok(Some(e)) => {
                    notes.push(format!(
                        "Theorem 4.7: dilutes to the {n}×{n} jigsaw ({} ops)",
                        e.sequence.ops.len(),
                        n = e.n
                    ));
                    Some((e.sequence, e.n))
                }
                Ok(None) => None,
                Err(err) => {
                    notes.push(format!("jigsaw extraction skipped: {err}"));
                    None
                }
            }
        } else {
            None
        };

        let hard_regime = jigsaw.is_some() && width_for_gate >= self.config.hard_regime_width;
        if jigsaw.is_some() && !hard_regime {
            notes.push(format!(
                "jigsaw certificate below hard-regime width {}; keeping the ghd plan",
                self.config.hard_regime_width
            ));
        }
        PlannedStructure {
            ghd,
            ghd_exact,
            jigsaw,
            hard_regime,
            num_edges,
            notes,
            planning_time: start.elapsed(),
        }
    }

    /// Certified-valid (but possibly suboptimal) GHD for structures
    /// beyond the exact cap: min-fill elimination vs the Lemma 4.6 dual
    /// route, whichever is narrower.
    fn heuristic_ghd(&self, h: &Hypergraph) -> Ghd {
        let g = primal_graph(h);
        let direct = Ghd::from_td_exact(h, order_to_td(&g, &min_fill_order(&g)));
        let via_dual = ghd_via_dual(h);
        if via_dual.width() < direct.width() {
            via_dual
        } else {
            direct
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_hypergraph::generators::{hyperchain, hypercycle, random_degree_bounded};
    use cqd2_jigsaw::jigsaw;

    #[test]
    fn acyclic_structures_get_width_one_yannakakis() {
        let planner = Planner::default();
        let s = planner.plan_structure(&hyperchain(5, 3));
        assert_eq!(s.width(), Some(1));
        assert!(s.ghd_exact);
        let plan = s.bool_plan();
        assert!(matches!(
            plan.plan,
            QueryPlan::GhdYannakakis { width: 1, .. }
        ));
        assert_eq!(plan.cost.db_exponent, 1.0);
        assert!(matches!(s.count_plan().plan, QueryPlan::CountingDp { .. }));
    }

    #[test]
    fn cycles_get_width_two() {
        let planner = Planner::default();
        let s = planner.plan_structure(&hypercycle(6, 2));
        assert_eq!(s.width(), Some(2));
        assert!(matches!(
            s.bool_plan().plan,
            QueryPlan::GhdYannakakis { width: 2, .. }
        ));
    }

    #[test]
    fn jigsaw_structures_get_hardness_certificates() {
        let planner = Planner::default();
        let s = planner.plan_structure(&jigsaw(3, 3));
        assert!(s.width().unwrap() >= 3);
        let (_, n) = s.jigsaw.as_ref().expect("3×3 jigsaw found in itself");
        assert_eq!(*n, 3);
        let plan = s.bool_plan();
        assert!(matches!(plan.plan, QueryPlan::JigsawReduce { n: 3, .. }));
        // Hard regime, but evaluation cost still reflects the stored GHD.
        assert!(plan.cost.db_exponent <= s.width().unwrap() as f64);
    }

    #[test]
    fn oversize_structures_without_heuristics_plan_naive() {
        let planner = Planner::new(PlannerConfig {
            use_heuristic_ghd: false,
            jigsaw_max_n: 0,
            ..PlannerConfig::default()
        });
        // > 26 vertices: beyond the exact-DP cap.
        let h = random_degree_bounded(30, 3, 3, 0.4, 7);
        assert!(
            h.num_vertices() > 26,
            "instance should exceed the exact cap"
        );
        let s = planner.plan_structure(&h);
        assert!(s.ghd.is_none());
        assert!(matches!(s.bool_plan().plan, QueryPlan::NaiveJoin));
    }

    #[test]
    fn oversize_structures_with_heuristics_get_valid_ghds() {
        let planner = Planner::default();
        let h = hypercycle(30, 2);
        let s = planner.plan_structure(&h);
        let ghd = s.ghd.as_ref().expect("heuristic ghd");
        ghd.validate(&h).unwrap();
        assert!(!s.ghd_exact);
    }

    #[test]
    fn trivial_structure_plans_naive() {
        let h = Hypergraph::new(0, &[]).unwrap();
        let s = Planner::default().plan_structure(&h);
        assert!(matches!(s.bool_plan().plan, QueryPlan::NaiveJoin));
    }
}
