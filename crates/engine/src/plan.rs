//! Query plans: what the planner decided and why.
//!
//! A [`QueryPlan`] names the evaluation strategy the paper's dichotomies
//! single out for a query's structure; a [`CostEstimate`] makes the
//! choice explainable and lets callers predict scaling before touching a
//! database. When a database is in hand, a [`DataEstimate`] (computed
//! from [`cqd2_cq::stats::DatabaseStats`]) adds estimated intermediate
//! cardinalities, letting the engine choose naive-vs-GHD **by data**
//! rather than by structural exponent alone.

use cqd2_cq::stats::{estimate_join_rows, estimate_naive_cost, DatabaseStats};
use cqd2_cq::{Atom, ConjunctiveQuery};
use cqd2_decomp::Ghd;
use cqd2_dilution::DilutionSequence;

/// The evaluation strategy chosen for one query structure.
///
/// Variants correspond to the algorithmic regimes the paper separates:
///
/// - [`QueryPlan::NaiveJoin`] — backtracking join, the only fully general
///   strategy (exponential in query size).
/// - [`QueryPlan::GhdYannakakis`] — Prop. 2.2: bag materialization plus a
///   Yannakakis semijoin pass over a GHD; `O(‖D‖^width)`.
/// - [`QueryPlan::CountingDp`] — Prop. 4.14: the junction-tree counting
///   DP over a GHD, for full-CQ answer counting without enumeration.
/// - [`QueryPlan::JigsawReduce`] — Theorem 4.7 evidence of hardness: a
///   verified dilution sequence to an `n × n` jigsaw. Evaluation still
///   falls back to the naive join, but the plan certifies *why* no
///   bounded-width strategy exists for this structure class.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum QueryPlan {
    /// Backtracking join over all atoms.
    NaiveJoin,
    /// GHD-guided Boolean evaluation (Prop. 2.2).
    GhdYannakakis {
        /// The decomposition driving bag materialization and semijoins.
        ghd: Ghd,
        /// Its width (`max_u |λ_u|`), the exponent of the data cost.
        width: usize,
    },
    /// GHD-guided counting DP (Prop. 4.14).
    CountingDp {
        /// The decomposition driving the junction-tree DP.
        ghd: Ghd,
    },
    /// Theorem 4.7 hardness certificate: the structure dilutes to the
    /// `n × n` jigsaw, so ghw grows with `n` across the whole
    /// isomorphism class; evaluation uses the naive join.
    JigsawReduce {
        /// The verified dilution sequence (in the coordinates of the
        /// plan-cache representative of this structure class).
        sequence: DilutionSequence,
        /// Dimension of the jigsaw reached.
        n: usize,
    },
}

impl QueryPlan {
    /// Short strategy tag for logs and provenance.
    pub fn strategy(&self) -> &'static str {
        match self {
            QueryPlan::NaiveJoin => "naive-join",
            QueryPlan::GhdYannakakis { .. } => "ghd-yannakakis",
            QueryPlan::CountingDp { .. } => "counting-dp",
            QueryPlan::JigsawReduce { .. } => "jigsaw-reduce",
        }
    }

    /// The GHD the plan carries, if any.
    pub fn ghd(&self) -> Option<&Ghd> {
        match self {
            QueryPlan::GhdYannakakis { ghd, .. } | QueryPlan::CountingDp { ghd } => Some(ghd),
            _ => None,
        }
    }
}

/// Data-dependent cost estimates, derived from [`DatabaseStats`] for one
/// `(query, database)` pair.
///
/// Units are "tuple touches": the naive side is the product of atom
/// cardinalities (what the backtracker can visit with no pruning); the
/// GHD side sums, per bag, a fixed per-bag setup charge
/// ([`DataEstimate::BAG_SETUP_COST`], modelling hash-table builds and
/// buffer allocation), the bag's input cardinality, and the
/// selectivity-estimated cardinality of the materialized bag join. On
/// small databases the setup charges dominate and the naive join wins;
/// on large ones the `‖D‖^k` naive product explodes and the GHD route
/// wins — exactly the crossover the exponent-only model cannot see.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DataEstimate {
    /// Total tuples in the database (`‖D‖` up to constant factors).
    pub db_tuples: usize,
    /// Estimated cost of the naive backtracking join.
    pub naive_cost: f64,
    /// Estimated cost of the GHD route (bag materialization), when the
    /// structure has a GHD whose cover edges all map to query atoms.
    pub ghd_cost: Option<f64>,
    /// Largest estimated materialized-bag cardinality (the intermediate
    /// the GHD route actually builds).
    pub max_bag_rows: Option<f64>,
}

impl DataEstimate {
    /// Fixed per-bag charge (in tuple-touch units) for hash-table builds,
    /// projections, and buffer setup during bag materialization.
    pub const BAG_SETUP_COST: f64 = 64.0;

    /// Estimate costs for evaluating `q` with the given (optional) GHD
    /// against a database summarized by `stats`.
    pub fn compute(q: &ConjunctiveQuery, ghd: Option<&Ghd>, stats: &DatabaseStats) -> DataEstimate {
        let naive_cost = estimate_naive_cost(q.atoms.iter(), stats);
        let mut ghd_cost = None;
        let mut max_bag_rows = None;
        if let Some(g) = ghd {
            // The same edge → representative-atom mapping the evaluator's
            // bag materialization uses, so estimates cost exactly the
            // relations that will be joined.
            let edge_atom = q.edge_representatives(&q.hypergraph());
            let mut total = 0.0f64;
            let mut max_rows = 0.0f64;
            let mut resolvable = true;
            for cover in &g.covers {
                let atoms: Vec<&Atom> = cover
                    .iter()
                    .filter_map(|e| edge_atom.get(e.idx()).copied().flatten())
                    .map(|ai| &q.atoms[ai])
                    .collect();
                if atoms.len() != cover.len() {
                    resolvable = false;
                    break;
                }
                let input: f64 = atoms
                    .iter()
                    .map(|a| {
                        stats
                            .relation(&a.relation)
                            .map_or(0.0, |r| r.cardinality as f64)
                    })
                    .sum();
                let rows = estimate_join_rows(atoms.iter().copied(), stats);
                max_rows = max_rows.max(rows);
                total += Self::BAG_SETUP_COST + input + rows;
            }
            if resolvable {
                ghd_cost = Some(total);
                max_bag_rows = Some(max_rows);
            }
        }
        DataEstimate {
            db_tuples: stats.total_tuples(),
            naive_cost,
            ghd_cost,
            max_bag_rows,
        }
    }

    /// `Some(true)` when the data says the naive join is no worse than
    /// the GHD route; `None` when there is no GHD estimate to compare.
    pub fn naive_beats_ghd(&self) -> Option<bool> {
        self.ghd_cost.map(|g| self.naive_cost <= g)
    }
}

/// A coarse, explainable cost model: evaluation cost is taken to be
/// `setup + db_size ^ exponent` up to constants. Good enough to rank
/// strategies and to explain the ranking. When the plan was derived with
/// a database in hand, [`CostEstimate::data`] carries the estimated
/// intermediate cardinalities that drove the choice.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostEstimate {
    /// Exponent of the dominant `‖D‖^k` term (GHD width, or atom count
    /// for the naive join).
    pub db_exponent: f64,
    /// Structure-only setup cost already paid at planning time, in
    /// arbitrary units (decomposition / extraction work).
    pub planning_units: f64,
    /// Data-dependent estimates (present when planning saw a database).
    pub data: Option<DataEstimate>,
}

impl CostEstimate {
    /// Predicted evaluation cost (arbitrary units) at a database size.
    pub fn predict(&self, db_size: usize) -> f64 {
        (db_size.max(2) as f64).powf(self.db_exponent)
    }
}

/// A plan plus the planner's reasoning — the object the plan cache
/// stores (per structure class) and provenance reports carry.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlannedQuery {
    /// The chosen strategy for Boolean evaluation.
    pub plan: QueryPlan,
    /// Cost estimate for the chosen strategy.
    pub cost: CostEstimate,
    /// Human-readable planning notes ("acyclic, ghw = 1", "exact ghw
    /// unavailable above 26 vertices", …).
    pub notes: Vec<String>,
}

impl PlannedQuery {
    /// Multi-line explanation of the decision, for CLIs and logs.
    pub fn explain(&self) -> String {
        let mut out = format!(
            "strategy: {} (cost ≈ ‖D‖^{:.1})",
            self.plan.strategy(),
            self.cost.db_exponent
        );
        if let Some(est) = &self.cost.data {
            out.push_str(&format!(
                "\n  stats: ‖D‖ = {} tuples; est. naive ≈ {:.0} tuple-touches",
                est.db_tuples, est.naive_cost
            ));
            if let Some(g) = est.ghd_cost {
                out.push_str(&format!(", ghd ≈ {g:.0}"));
            }
            if let Some(m) = est.max_bag_rows {
                out.push_str(&format!(", largest bag ≈ {m:.0} rows"));
            }
        }
        match &self.plan {
            QueryPlan::GhdYannakakis { width, ghd } => {
                out.push_str(&format!(
                    "\n  ghd: width {width}, {} bags",
                    ghd.td.bags.len()
                ));
            }
            QueryPlan::CountingDp { ghd } => {
                out.push_str(&format!(
                    "\n  ghd: width {}, {} bags",
                    ghd.width(),
                    ghd.td.bags.len()
                ));
            }
            QueryPlan::JigsawReduce { sequence, n } => {
                out.push_str(&format!(
                    "\n  hardness certificate: dilutes to the {n}×{n} jigsaw in {} ops (Theorem 4.7)",
                    sequence.ops.len()
                ));
            }
            QueryPlan::NaiveJoin => {}
        }
        for note in &self.notes {
            out.push_str("\n  note: ");
            out.push_str(note);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_prediction_is_monotone_in_size_and_exponent() {
        let low = CostEstimate {
            db_exponent: 1.0,
            planning_units: 0.0,
            data: None,
        };
        let high = CostEstimate {
            db_exponent: 3.0,
            planning_units: 0.0,
            data: None,
        };
        assert!(low.predict(100) < low.predict(1000));
        assert!(low.predict(100) < high.predict(100));
    }

    #[test]
    fn data_estimate_crosses_over_with_database_size() {
        use cqd2_cq::generate::{canonical_query, random_database};
        use cqd2_decomp::widths::ghw_decomposition;
        use cqd2_hypergraph::generators::hypercycle;

        let q = canonical_query(&hypercycle(6, 2));
        let ghd = ghw_decomposition(&q.hypergraph()).expect("cycle decomposes");
        // Tiny database: per-bag setup charges dominate, naive wins.
        let small = random_database(&q, 3, 2, 1).stats();
        let est = DataEstimate::compute(&q, Some(&ghd), &small);
        assert_eq!(est.naive_beats_ghd(), Some(true), "{est:?}");
        // Big database: the ‖D‖^6 naive product explodes, the GHD wins.
        let big = random_database(&q, 500, 400, 2).stats();
        let est = DataEstimate::compute(&q, Some(&ghd), &big);
        assert_eq!(est.naive_beats_ghd(), Some(false), "{est:?}");
        assert!(est.max_bag_rows.is_some());
        // No GHD: nothing to compare against.
        let est = DataEstimate::compute(&q, None, &big);
        assert_eq!(est.naive_beats_ghd(), None);
    }

    #[test]
    fn explain_includes_data_estimates() {
        let planned = PlannedQuery {
            plan: QueryPlan::NaiveJoin,
            cost: CostEstimate {
                db_exponent: 2.0,
                planning_units: 0.0,
                data: Some(DataEstimate {
                    db_tuples: 12,
                    naive_cost: 36.0,
                    ghd_cost: Some(150.0),
                    max_bag_rows: Some(6.0),
                }),
            },
            notes: vec![],
        };
        let text = planned.explain();
        assert!(text.contains("12 tuples"), "{text}");
        assert!(text.contains("naive ≈ 36"), "{text}");
        assert!(text.contains("ghd ≈ 150"), "{text}");
    }

    #[test]
    fn strategy_tags_are_distinct() {
        let naive = QueryPlan::NaiveJoin;
        assert_eq!(naive.strategy(), "naive-join");
        assert!(naive.ghd().is_none());
    }
}
