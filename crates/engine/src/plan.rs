//! Query plans: what the planner decided and why.
//!
//! A [`QueryPlan`] names the evaluation strategy the paper's dichotomies
//! single out for a query's structure; a [`CostEstimate`] makes the
//! choice explainable and lets callers predict scaling before touching a
//! database.

use cqd2_decomp::Ghd;
use cqd2_dilution::DilutionSequence;

/// The evaluation strategy chosen for one query structure.
///
/// Variants correspond to the algorithmic regimes the paper separates:
///
/// - [`QueryPlan::NaiveJoin`] — backtracking join, the only fully general
///   strategy (exponential in query size).
/// - [`QueryPlan::GhdYannakakis`] — Prop. 2.2: bag materialization plus a
///   Yannakakis semijoin pass over a GHD; `O(‖D‖^width)`.
/// - [`QueryPlan::CountingDp`] — Prop. 4.14: the junction-tree counting
///   DP over a GHD, for full-CQ answer counting without enumeration.
/// - [`QueryPlan::JigsawReduce`] — Theorem 4.7 evidence of hardness: a
///   verified dilution sequence to an `n × n` jigsaw. Evaluation still
///   falls back to the naive join, but the plan certifies *why* no
///   bounded-width strategy exists for this structure class.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum QueryPlan {
    /// Backtracking join over all atoms.
    NaiveJoin,
    /// GHD-guided Boolean evaluation (Prop. 2.2).
    GhdYannakakis {
        /// The decomposition driving bag materialization and semijoins.
        ghd: Ghd,
        /// Its width (`max_u |λ_u|`), the exponent of the data cost.
        width: usize,
    },
    /// GHD-guided counting DP (Prop. 4.14).
    CountingDp {
        /// The decomposition driving the junction-tree DP.
        ghd: Ghd,
    },
    /// Theorem 4.7 hardness certificate: the structure dilutes to the
    /// `n × n` jigsaw, so ghw grows with `n` across the whole
    /// isomorphism class; evaluation uses the naive join.
    JigsawReduce {
        /// The verified dilution sequence (in the coordinates of the
        /// plan-cache representative of this structure class).
        sequence: DilutionSequence,
        /// Dimension of the jigsaw reached.
        n: usize,
    },
}

impl QueryPlan {
    /// Short strategy tag for logs and provenance.
    pub fn strategy(&self) -> &'static str {
        match self {
            QueryPlan::NaiveJoin => "naive-join",
            QueryPlan::GhdYannakakis { .. } => "ghd-yannakakis",
            QueryPlan::CountingDp { .. } => "counting-dp",
            QueryPlan::JigsawReduce { .. } => "jigsaw-reduce",
        }
    }

    /// The GHD the plan carries, if any.
    pub fn ghd(&self) -> Option<&Ghd> {
        match self {
            QueryPlan::GhdYannakakis { ghd, .. } | QueryPlan::CountingDp { ghd } => Some(ghd),
            _ => None,
        }
    }
}

/// A coarse, explainable cost model: evaluation cost is taken to be
/// `setup + db_size ^ exponent` up to constants. Good enough to rank
/// strategies and to explain the ranking; not a cardinality estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostEstimate {
    /// Exponent of the dominant `‖D‖^k` term (GHD width, or atom count
    /// for the naive join).
    pub db_exponent: f64,
    /// Structure-only setup cost already paid at planning time, in
    /// arbitrary units (decomposition / extraction work).
    pub planning_units: f64,
}

impl CostEstimate {
    /// Predicted evaluation cost (arbitrary units) at a database size.
    pub fn predict(&self, db_size: usize) -> f64 {
        (db_size.max(2) as f64).powf(self.db_exponent)
    }
}

/// A plan plus the planner's reasoning — the object the plan cache
/// stores (per structure class) and provenance reports carry.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlannedQuery {
    /// The chosen strategy for Boolean evaluation.
    pub plan: QueryPlan,
    /// Cost estimate for the chosen strategy.
    pub cost: CostEstimate,
    /// Human-readable planning notes ("acyclic, ghw = 1", "exact ghw
    /// unavailable above 26 vertices", …).
    pub notes: Vec<String>,
}

impl PlannedQuery {
    /// Multi-line explanation of the decision, for CLIs and logs.
    pub fn explain(&self) -> String {
        let mut out = format!(
            "strategy: {} (cost ≈ ‖D‖^{:.1})",
            self.plan.strategy(),
            self.cost.db_exponent
        );
        match &self.plan {
            QueryPlan::GhdYannakakis { width, ghd } => {
                out.push_str(&format!(
                    "\n  ghd: width {width}, {} bags",
                    ghd.td.bags.len()
                ));
            }
            QueryPlan::CountingDp { ghd } => {
                out.push_str(&format!(
                    "\n  ghd: width {}, {} bags",
                    ghd.width(),
                    ghd.td.bags.len()
                ));
            }
            QueryPlan::JigsawReduce { sequence, n } => {
                out.push_str(&format!(
                    "\n  hardness certificate: dilutes to the {n}×{n} jigsaw in {} ops (Theorem 4.7)",
                    sequence.ops.len()
                ));
            }
            QueryPlan::NaiveJoin => {}
        }
        for note in &self.notes {
            out.push_str("\n  note: ");
            out.push_str(note);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_prediction_is_monotone_in_size_and_exponent() {
        let low = CostEstimate {
            db_exponent: 1.0,
            planning_units: 0.0,
        };
        let high = CostEstimate {
            db_exponent: 3.0,
            planning_units: 0.0,
        };
        assert!(low.predict(100) < low.predict(1000));
        assert!(low.predict(100) < high.predict(100));
    }

    #[test]
    fn strategy_tags_are_distinct() {
        let naive = QueryPlan::NaiveJoin;
        assert_eq!(naive.strategy(), "naive-join");
        assert!(naive.ghd().is_none());
    }
}
