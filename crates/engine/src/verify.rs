//! Engine-side plan verification: the paper's invariants, checked at
//! prepare time.
//!
//! [`cqd2_decomp::verify`] audits a GHD's structure; this module lifts
//! that audit to whole [`QueryPlan`]s — the claimed width must hold,
//! the decomposition must be valid *for the query's hypergraph*, and
//! the chosen strategy must be consistent with the structure class the
//! planner detected (a jigsaw hardness certificate only makes sense on
//! degree-2 structures, Theorem 4.7's hypothesis).
//!
//! With strict verification enabled ([`crate::EngineConfig`]'s
//! `strict_verify`, or `CQD2_STRICT_VERIFY=1` in the environment),
//! [`crate::Session::prepare`] runs [`verify_planned`] on every plan it
//! derives — once per prepared query, never per run — and surfaces a
//! violation as [`crate::EngineError::Verify`] instead of letting a
//! planner bug produce silently wrong answers. `cqd2-analyze verify`
//! exposes the same check on the command line.

use cqd2_cq::ConjunctiveQuery;
use cqd2_decomp::verify::{verify_ghd, verify_ghd_width, VerifyError};
use cqd2_hypergraph::Hypergraph;

use crate::engine::{Engine, Workload};
use crate::error::EngineError;
use crate::plan::{PlannedQuery, QueryPlan};

/// Verify one derived plan against the query's hypergraph. This is the
/// engine half of the two-layer verifier: structural GHD checks are
/// delegated to [`cqd2_decomp::verify_ghd`]; the width claim and the
/// strategy/structure-class consistency are checked here.
pub fn verify_planned(h: &Hypergraph, planned: &PlannedQuery) -> Result<(), VerifyError> {
    match &planned.plan {
        QueryPlan::NaiveJoin => Ok(()),
        QueryPlan::GhdYannakakis { ghd, width } => verify_ghd_width(h, ghd, *width),
        QueryPlan::CountingDp { ghd } => verify_ghd(h, ghd),
        QueryPlan::JigsawReduce { n, .. } => {
            // Theorem 4.7 lives in the degree-2 world: a jigsaw
            // certificate on a higher-degree structure means the
            // planner routed the query into the wrong regime.
            if h.max_degree() > 2 {
                return Err(VerifyError::StrategyMismatch {
                    strategy: planned.plan.strategy().to_string(),
                    reason: format!(
                        "jigsaw certificate (n={n}) requires degree ≤ 2, structure has degree {}",
                        h.max_degree()
                    ),
                });
            }
            if *n < 2 {
                return Err(VerifyError::StrategyMismatch {
                    strategy: planned.plan.strategy().to_string(),
                    reason: format!("jigsaw dimension n={n} certifies nothing (need n ≥ 2)"),
                });
            }
            Ok(())
        }
    }
}

/// The outcome of verifying one workload's plan — what
/// `cqd2-analyze verify` prints per line.
#[derive(Debug, Clone)]
pub struct VerifiedPlan {
    /// Which workload the plan serves.
    pub workload: Workload,
    /// The strategy tag (`naive-join`, `ghd-yannakakis`, …).
    pub strategy: &'static str,
    /// The decomposition's width, when the plan carries a GHD.
    pub width: Option<usize>,
    /// Number of bags in the decomposition, when the plan carries one.
    pub bags: Option<usize>,
}

/// A fully verified query: every workload's plan passed
/// [`verify_planned`].
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// One entry per workload plan checked.
    pub plans: Vec<VerifiedPlan>,
    /// Whether the structure analysis came from the plan cache.
    pub cache_hit: bool,
}

impl Engine {
    /// Plan `q` (structure-only, cache-amortized) and verify every
    /// derived plan against the paper's invariants, returning what was
    /// checked. This is the engine surface behind
    /// `cqd2-analyze verify`; serving loops get the same checks
    /// implicitly at [`crate::Session::prepare`] when strict
    /// verification is on.
    pub fn verify_query(&self, q: &ConjunctiveQuery) -> Result<VerifyReport, EngineError> {
        let h = q.hypergraph();
        let (structure, cache_hit) = self.structure_for(&h);
        let mut plans = Vec::new();
        for (workload, planned) in [
            (Workload::Boolean, structure.bool_plan()),
            (Workload::Count, structure.count_plan()),
        ] {
            verify_planned(&h, &planned).map_err(EngineError::Verify)?;
            let ghd = planned.plan.ghd().or(structure.ghd.as_ref());
            plans.push(VerifiedPlan {
                workload,
                strategy: planned.plan.strategy(),
                width: ghd.map(cqd2_decomp::Ghd::width),
                bags: ghd.map(|g| g.td.bags.len()),
            });
        }
        // The jigsaw fallback evaluates through the best structural GHD
        // even though the plan is the hardness certificate — that GHD
        // must hold up too, it is what materialization will use.
        if let Some(g) = structure.ghd.as_ref() {
            verify_ghd(&h, g).map_err(EngineError::Verify)?;
        }
        Ok(VerifyReport { plans, cache_hit })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_cq::generate::canonical_query;
    use cqd2_decomp::{Ghd, TreeDecomposition};
    use cqd2_hypergraph::generators::{hyperchain, hypercycle};

    use crate::plan::CostEstimate;

    fn planned(plan: QueryPlan) -> PlannedQuery {
        PlannedQuery {
            plan,
            cost: CostEstimate {
                db_exponent: 1.0,
                planning_units: 0.0,
                data: None,
            },
            notes: vec![],
        }
    }

    #[test]
    fn engine_plans_verify_clean() {
        let engine = Engine::default();
        for h in [hyperchain(4, 2), hypercycle(5, 2)] {
            let q = canonical_query(&h);
            let report = engine.verify_query(&q).unwrap();
            assert_eq!(report.plans.len(), 2);
            assert!(report.plans.iter().all(|p| p.width.is_some()));
        }
        // Second verification of the same structure hits the cache.
        assert!(
            engine
                .verify_query(&canonical_query(&hyperchain(4, 2)))
                .unwrap()
                .cache_hit
        );
    }

    #[test]
    fn lying_width_claim_is_rejected() {
        let h = hypercycle(4, 2);
        let ghd = Ghd::from_td_exact(&h, TreeDecomposition::trivial(&h));
        let actual = ghd.width();
        let lie = planned(QueryPlan::GhdYannakakis {
            ghd,
            width: actual - 1,
        });
        assert!(matches!(
            verify_planned(&h, &lie).unwrap_err(),
            VerifyError::WidthExceeded { .. }
        ));
    }

    #[test]
    fn foreign_ghd_is_rejected() {
        // A decomposition built for a different hypergraph misses edges
        // of this one.
        let h = hypercycle(5, 2);
        let other = hyperchain(3, 2);
        let foreign = Ghd::from_td_exact(&other, TreeDecomposition::trivial(&other));
        let width = foreign.width();
        let err = verify_planned(
            &h,
            &planned(QueryPlan::GhdYannakakis {
                ghd: foreign,
                width,
            }),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                VerifyError::EdgeNotCovered { .. } | VerifyError::UnknownVertex { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn jigsaw_strategy_on_high_degree_structure_is_rejected() {
        use cqd2_dilution::DilutionSequence;
        // A degree-3 structure can never carry a Theorem 4.7 certificate.
        let h = Hypergraph::new(4, &[vec![0, 1], vec![1, 2], vec![1, 3]]).unwrap();
        assert!(h.max_degree() > 2);
        let bogus = planned(QueryPlan::JigsawReduce {
            sequence: DilutionSequence { ops: vec![] },
            n: 3,
        });
        assert!(matches!(
            verify_planned(&h, &bogus).unwrap_err(),
            VerifyError::StrategyMismatch { .. }
        ));
    }
}
