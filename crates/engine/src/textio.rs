//! A minimal text format for `(queries, database)` workloads, used by
//! the `cqd2-analyze eval` subcommand and the serving example.
//!
//! ```text
//! # comments and blank lines are ignored
//! Q: R(?x, ?y), S(?y, ?z)     # one query per `Q:` line (a batch)
//! @count                      # workload directive for later `Q:` lines
//! Q: R(?x, ?y)
//! @enumerate 10               # …stream up to 10 answer tuples
//! Q: S(?y, ?z)
//! R(1, 2)                     # every other line is a ground fact
//! S(2, 3)
//! S(2, 4)
//! ```
//!
//! Terms starting with `?` are variables (scoped per query line);
//! anything else must parse as a `u64` constant. Directive lines start
//! with `@` and set the workload for the `Q:` lines that follow:
//! `@boolean`, `@count`, or `@enumerate [limit]`. Queries before the
//! first directive carry no mode and fall back to whatever the caller
//! (e.g. the CLI's flags) chooses.
//!
//! All parse errors are typed [`ParseError`]s naming the offending
//! 1-based line.

use cqd2_cq::{ConjunctiveQuery, Database};

use crate::engine::Workload as QueryWorkload;

/// A workload-file parse error, attributed to a 1-based line when one
/// line is to blame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based offending line, `None` for file-level errors.
    pub line: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// An error attributed to a 1-based line.
    pub fn at(line: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line: Some(line),
            message: message.into(),
        }
    }

    /// A file-level error (no single offending line).
    pub fn whole_file(message: impl Into<String>) -> ParseError {
        ParseError {
            line: None,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(n) => write!(f, "line {n}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for ParseError {}

/// A parsed workload file: a batch of queries over one shared database,
/// each query optionally carrying the workload mode the file's
/// directives selected for it.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Queries in file order.
    pub queries: Vec<ConjunctiveQuery>,
    /// Per-query workload mode from `@…` directives (aligned with
    /// `queries`; `None` = no directive seen yet, caller decides).
    pub modes: Vec<Option<QueryWorkload>>,
    /// The shared database.
    pub db: Database,
}

/// Parse one `@…` directive body (without the `@`).
fn parse_directive(body: &str) -> Result<QueryWorkload, String> {
    let mut parts = body.split_whitespace();
    let mode = match parts.next() {
        Some("boolean") => QueryWorkload::Boolean,
        Some("count") => QueryWorkload::Count,
        Some("enumerate") => {
            let limit = match parts.next() {
                None => None,
                Some(text) => Some(text.parse::<usize>().map_err(|_| {
                    format!("`@enumerate` limit `{text}` is not a non-negative integer")
                })?),
            };
            QueryWorkload::Enumerate { limit }
        }
        Some(other) => {
            return Err(format!(
                "unknown directive `@{other}` (try @boolean, @count, @enumerate [limit])"
            ));
        }
        None => return Err("empty directive (`@` with no name)".to_string()),
    };
    if let Some(junk) = parts.next() {
        return Err(format!("unexpected `{junk}` after directive"));
    }
    Ok(mode)
}

/// Incremental fact-line parser shared by [`parse_workload`] and
/// [`parse_database`]: accumulates ground facts into a [`Database`],
/// tracking first-seen arity per relation (`Database::insert` treats
/// arity mismatches as schema errors and panics, so they are caught
/// here with a line number instead).
#[derive(Default)]
struct FactAccumulator {
    db: Database,
    /// relation → (first-seen arity, 1-based line it was seen on).
    arities: std::collections::HashMap<String, (usize, usize)>,
}

impl FactAccumulator {
    /// Parse one non-empty, comment-stripped fact line (1-based
    /// `lineno`) into the database.
    fn add_line(&mut self, line: &str, lineno: usize) -> Result<(), ParseError> {
        let (rel, terms) = parse_atom_text(line).map_err(|mut e| {
            e.line = Some(lineno);
            e
        })?;
        let tuple: Vec<u64> = terms
            .iter()
            .map(|t| {
                t.parse::<u64>()
                    .map_err(|_| ParseError::at(lineno, format!("fact term `{t}` is not a u64")))
            })
            .collect::<Result<_, _>>()?;
        let (first_arity, first_line) = *self
            .arities
            .entry(rel.clone())
            .or_insert((tuple.len(), lineno));
        if tuple.len() != first_arity {
            return Err(ParseError::at(
                lineno,
                format!(
                    "relation `{rel}` has {} terms here but {first_arity} on line {first_line}",
                    tuple.len()
                ),
            ));
        }
        self.db.insert(&rel, &tuple);
        Ok(())
    }
}

/// Parse the workload format. Errors name the offending line (1-based).
pub fn parse_workload(input: &str) -> Result<Workload, ParseError> {
    let mut queries = Vec::new();
    let mut modes = Vec::new();
    let mut current_mode: Option<QueryWorkload> = None;
    let mut facts = FactAccumulator::default();
    for (lineno, raw) in input.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(body) = line.strip_prefix('@') {
            if body.split_whitespace().next() == Some("trace") {
                return Err(ParseError::at(
                    lineno + 1,
                    "`@trace` is only valid in a server query batch, not a workload file",
                ));
            }
            current_mode = Some(parse_directive(body).map_err(|e| ParseError::at(lineno + 1, e))?);
        } else if let Some(qtext) = line.strip_prefix("Q:") {
            queries.push(parse_query(qtext).map_err(|mut e| {
                e.line = Some(lineno + 1);
                e
            })?);
            modes.push(current_mode);
        } else {
            facts.add_line(line, lineno + 1)?;
        }
    }
    if queries.is_empty() {
        return Err(ParseError::whole_file("no `Q:` line found"));
    }
    Ok(Workload {
        queries,
        modes,
        db: facts.db,
    })
}

/// Parse a *database file*: ground facts only, in the same syntax as the
/// fact lines of a workload file (comments and blank lines ignored).
/// `Q:` and `@…` lines are rejected — a database file describes data,
/// not a workload. This is what `cqd2-serve --db name=path` loads at
/// startup.
pub fn parse_database(input: &str) -> Result<Database, ParseError> {
    let mut facts = FactAccumulator::default();
    for (lineno, raw) in input.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with("Q:") || line.starts_with('@') {
            return Err(ParseError::at(
                lineno + 1,
                "queries and directives are not allowed in a database file (facts only)",
            ));
        }
        facts.add_line(line, lineno + 1)?;
    }
    Ok(facts.db)
}

/// Parse a *delta script*: `@insert` / `@delete` section directives,
/// each followed by fact lines in the usual syntax (comments and blank
/// lines ignored). The directives switch the polarity of subsequent
/// facts and may repeat; a fact line before the first directive is an
/// error, as is any other directive. This is the wire payload of the
/// protocol's `Delta` frame and the argument of
/// `cqd2-analyze client delta`.
///
/// ```text
/// @insert
/// R(1, 2)
/// S(2, 3)
/// @delete
/// R(9, 9)
/// ```
///
/// Semantics (enforced by [`cqd2_cq::Database::apply_delta`], not
/// here): deltas modify *existing* relations, inserts of present and
/// deletes of absent tuples are no-ops, and deletes win over inserts of
/// the same tuple within one batch.
pub fn parse_delta(input: &str) -> Result<cqd2_cq::DatabaseDelta, ParseError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Polarity {
        Insert,
        Delete,
    }
    let mut delta = cqd2_cq::DatabaseDelta::new();
    let mut polarity: Option<Polarity> = None;
    // relation → (first-seen arity, 1-based line), across both polarities.
    let mut arities: std::collections::HashMap<String, (usize, usize)> =
        std::collections::HashMap::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(body) = line.strip_prefix('@') {
            let mut parts = body.split_whitespace();
            polarity = match parts.next() {
                Some("insert") => Some(Polarity::Insert),
                Some("delete") => Some(Polarity::Delete),
                Some(other) => {
                    return Err(ParseError::at(
                        lineno + 1,
                        format!("unknown delta directive `@{other}` (try @insert or @delete)"),
                    ));
                }
                None => {
                    return Err(ParseError::at(lineno + 1, "empty directive (`@` with no name)"));
                }
            };
            if let Some(junk) = parts.next() {
                return Err(ParseError::at(
                    lineno + 1,
                    format!("unexpected `{junk}` after delta directive"),
                ));
            }
            continue;
        }
        let Some(polarity) = polarity else {
            return Err(ParseError::at(
                lineno + 1,
                "delta facts must follow an @insert or @delete directive",
            ));
        };
        let (rel, terms) = parse_atom_text(line).map_err(|mut e| {
            e.line = Some(lineno + 1);
            e
        })?;
        let tuple: Vec<u64> = terms
            .iter()
            .map(|t| {
                t.parse::<u64>().map_err(|_| {
                    ParseError::at(lineno + 1, format!("fact term `{t}` is not a u64"))
                })
            })
            .collect::<Result<_, _>>()?;
        let (first_arity, first_line) = *arities
            .entry(rel.clone())
            .or_insert((tuple.len(), lineno + 1));
        if tuple.len() != first_arity {
            return Err(ParseError::at(
                lineno + 1,
                format!(
                    "relation `{rel}` has {} terms here but {first_arity} on line {first_line}",
                    tuple.len()
                ),
            ));
        }
        match polarity {
            Polarity::Insert => delta.insert(&rel, tuple),
            Polarity::Delete => delta.delete(&rel, tuple),
        }
    }
    if delta.is_empty() {
        return Err(ParseError::whole_file(
            "empty delta (no facts under @insert or @delete)",
        ));
    }
    Ok(delta)
}

/// Render `db` as a facts-only database file — the inverse of
/// [`parse_database`] (round-trips exactly: tuples are already stored
/// deduplicated in lexicographic order). This is how programmatically
/// generated databases are shipped to a `cqd2-serve` instance.
pub fn render_database(db: &Database) -> String {
    let mut out = String::new();
    for (name, rel) in db.relations() {
        for tuple in &rel.tuples {
            let cells: Vec<String> = tuple.iter().map(u64::to_string).collect();
            out.push_str(name);
            out.push('(');
            out.push_str(&cells.join(", "));
            out.push_str(")\n");
        }
    }
    out
}

/// A parsed `cqd2-serve` query batch: the queries (with their selected
/// workload modes) plus batch-level flags carried by directives.
#[derive(Debug, Clone)]
pub struct QueryBatch {
    /// Queries in batch order, each with the mode its preceding
    /// directives selected (`None` = no directive yet; the server
    /// defaults to `@boolean`).
    pub queries: Vec<(ConjunctiveQuery, Option<QueryWorkload>)>,
    /// `true` when the batch contains an `@trace` directive: the server
    /// attaches a per-query span breakdown to every `Result` frame of
    /// the batch.
    pub trace: bool,
}

/// Parse a *query batch*: `Q:` lines and `@…` directives only, as
/// carried by a `cqd2-serve` `Query` frame (the database is bound per
/// connection, so ground facts are rejected). Besides the workload
/// directives, a batch may carry `@trace` — a batch-level flag asking
/// the server to attach per-query trace spans to its responses.
pub fn parse_query_batch(input: &str) -> Result<QueryBatch, ParseError> {
    let mut out = Vec::new();
    let mut current_mode: Option<QueryWorkload> = None;
    let mut trace = false;
    for (lineno, raw) in input.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(body) = line.strip_prefix('@') {
            let mut parts = body.split_whitespace();
            if parts.next() == Some("trace") {
                if let Some(junk) = parts.next() {
                    return Err(ParseError::at(
                        lineno + 1,
                        format!("unexpected `{junk}` after directive"),
                    ));
                }
                trace = true;
                continue;
            }
            current_mode = Some(parse_directive(body).map_err(|e| ParseError::at(lineno + 1, e))?);
        } else if let Some(qtext) = line.strip_prefix("Q:") {
            let q = parse_query(qtext).map_err(|mut e| {
                e.line = Some(lineno + 1);
                e
            })?;
            out.push((q, current_mode));
        } else {
            return Err(ParseError::at(
                lineno + 1,
                "ground facts are not allowed in a query batch (the database is bound at \
                 connection time)",
            ));
        }
    }
    if out.is_empty() {
        return Err(ParseError::whole_file("no `Q:` line found"));
    }
    Ok(QueryBatch {
        queries: out,
        trace,
    })
}

/// [`parse_query_batch`] without the batch-level flags — kept for
/// callers that only want the `(query, mode)` pairs.
pub fn parse_queries(
    input: &str,
) -> Result<Vec<(ConjunctiveQuery, Option<QueryWorkload>)>, ParseError> {
    parse_query_batch(input).map(|batch| batch.queries)
}

/// Parse one query body: a list of atoms separated by `,` (or `∧`, the
/// separator [`cqd2_cq::ConjunctiveQuery::display`] prints, so rendered
/// queries round-trip through this parser). Errors carry no line number
/// ([`parse_workload`] attributes them to its lines).
pub fn parse_query(text: &str) -> Result<ConjunctiveQuery, ParseError> {
    let mut atoms: Vec<(String, Vec<String>)> = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let close = rest
            .find(')')
            .ok_or_else(|| ParseError::whole_file(format!("missing `)` in `{rest}`")))?;
        let (atom_text, tail) = rest.split_at(close + 1);
        let (rel, terms) = parse_atom_text(atom_text.trim())?;
        atoms.push((rel, terms));
        let tail = tail.trim_start();
        rest = match tail.strip_prefix(',').or_else(|| tail.strip_prefix('∧')) {
            Some(after) => after.trim(),
            None if tail.is_empty() => tail,
            None => {
                return Err(ParseError::whole_file(format!(
                    "expected `,` between atoms, found `{tail}`"
                )));
            }
        };
    }
    if atoms.is_empty() {
        return Err(ParseError::whole_file("query has no atoms"));
    }
    let borrowed: Vec<(&str, Vec<&str>)> = atoms
        .iter()
        .map(|(r, ts)| (r.as_str(), ts.iter().map(String::as_str).collect()))
        .collect();
    let for_parse: Vec<(&str, &[&str])> =
        borrowed.iter().map(|(r, ts)| (*r, ts.as_slice())).collect();
    Ok(ConjunctiveQuery::parse(&for_parse))
}

/// Split `R(t1, t2, …)` into the relation name and raw term texts.
fn parse_atom_text(text: &str) -> Result<(String, Vec<String>), ParseError> {
    let open = text
        .find('(')
        .ok_or_else(|| ParseError::whole_file(format!("expected `Rel(…)`, got `{text}`")))?;
    let rel = text[..open].trim();
    if rel.is_empty() {
        return Err(ParseError::whole_file(format!(
            "missing relation name in `{text}`"
        )));
    }
    let body = text[open + 1..]
        .strip_suffix(')')
        .ok_or_else(|| ParseError::whole_file(format!("missing `)` in `{text}`")))?;
    let terms: Vec<String> = if body.trim().is_empty() {
        Vec::new()
    } else {
        body.split(',').map(|t| t.trim().to_string()).collect()
    };
    if terms.iter().any(String::is_empty) {
        return Err(ParseError::whole_file(format!("empty term in `{text}`")));
    }
    Ok((rel.to_string(), terms))
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_cq::eval::{bcq_naive, count_naive};

    #[test]
    fn parses_queries_and_facts() {
        let w = parse_workload(
            "# demo\n\
             Q: R(?x, ?y), S(?y, ?z)\n\
             Q: R(?a, ?a)\n\
             R(1, 2)   # planted\n\
             R(3, 3)\n\
             S(2, 3)\n",
        )
        .unwrap();
        assert_eq!(w.queries.len(), 2);
        assert_eq!(w.db.size(), 3);
        assert_eq!(w.modes, vec![None, None]);
        assert!(bcq_naive(&w.queries[0], &w.db));
        assert_eq!(count_naive(&w.queries[0], &w.db), 1);
        assert!(bcq_naive(&w.queries[1], &w.db)); // R(3,3) matches ?a,?a
    }

    #[test]
    fn constants_in_queries() {
        let w = parse_workload("Q: R(?x, 7)\nR(1, 7)\nR(2, 8)\n").unwrap();
        assert_eq!(count_naive(&w.queries[0], &w.db), 1);
    }

    #[test]
    fn directives_set_modes_for_following_queries() {
        let w = parse_workload(
            "Q: R(?x, ?y)\n\
             @count\n\
             Q: R(?x, ?x)\n\
             @enumerate 5\n\
             Q: R(?x, ?y)\n\
             @enumerate\n\
             Q: R(?y, ?x)\n\
             @boolean\n\
             Q: R(?x, ?y)\n\
             R(1, 2)\n",
        )
        .unwrap();
        assert_eq!(
            w.modes,
            vec![
                None,
                Some(QueryWorkload::Count),
                Some(QueryWorkload::Enumerate { limit: Some(5) }),
                Some(QueryWorkload::Enumerate { limit: None }),
                Some(QueryWorkload::Boolean),
            ]
        );
    }

    #[test]
    fn unknown_and_malformed_directives_are_line_errors() {
        let err = parse_workload("Q: R(?x)\n@frobnicate\nR(1)\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(
            err.message.contains("unknown directive `@frobnicate`"),
            "{err}"
        );

        let err = parse_workload("@enumerate banana\nQ: R(?x)\nR(1)\n").unwrap_err();
        assert_eq!(err.line, Some(1));
        assert!(err.message.contains("banana"), "{err}");

        let err = parse_workload("@count 3\nQ: R(?x)\nR(1)\n").unwrap_err();
        assert_eq!(err.line, Some(1));
        assert!(err.message.contains("unexpected `3`"), "{err}");

        let err = parse_workload("@\nQ: R(?x)\nR(1)\n").unwrap_err();
        assert_eq!(err.line, Some(1));
        assert!(err.message.contains("empty directive"), "{err}");
    }

    #[test]
    fn arity_mismatch_is_an_error_not_a_panic() {
        let err = parse_workload("Q: R(?x)\nR(1)\nR(1, 2)\n").unwrap_err();
        assert_eq!(err.line, Some(3), "{err}");
        assert!(
            err.to_string().contains("line 3") && err.message.contains("line 2"),
            "should cite both the offending and the first-seen line: {err}"
        );
    }

    #[test]
    fn stray_atom_separator_is_rejected() {
        let err = parse_workload("Q: R(?x, ?y); S(?y, ?z)\nR(1, 2)\n").unwrap_err();
        assert!(err.message.contains("expected `,` between atoms"), "{err}");
        assert_eq!(err.line, Some(1));
    }

    #[test]
    fn malformed_lines_name_their_line_number() {
        // Unclosed query atom.
        let err = parse_workload("Q: R(?x\nR(1)\n").unwrap_err();
        assert_eq!(err.line, Some(1), "{err}");
        // Non-numeric fact term.
        let err = parse_workload("Q: R(?x)\nR(banana)\n").unwrap_err();
        assert_eq!(err.line, Some(2), "{err}");
        assert!(err.to_string().starts_with("line 2:"), "{err}");
        // A fact line that is not an atom at all.
        let err = parse_workload("Q: R(?x)\njunk without parens\n").unwrap_err();
        assert_eq!(err.line, Some(2), "{err}");
        // Empty term inside an atom.
        let err = parse_workload("Q: R(?x,)\nR(1)\n").unwrap_err();
        assert_eq!(err.line, Some(1), "{err}");
        // File-level error: no query at all.
        let err = parse_workload("R(1, 2)\n").unwrap_err();
        assert_eq!(err.line, None);
        assert!(err.to_string().contains("no `Q:`"), "{err}");
    }

    #[test]
    fn enumerate_limit_zero_is_a_valid_directive() {
        // `@enumerate 0` is a legal (if odd) cap: the query runs but
        // yields no tuples — distinct from `@enumerate` (no limit).
        let w = parse_workload("@enumerate 0\nQ: R(?x)\nR(1)\nR(2)\n").unwrap();
        assert_eq!(
            w.modes,
            vec![Some(QueryWorkload::Enumerate { limit: Some(0) })]
        );
        let engine = crate::Engine::default();
        let session = engine.session(&w.db);
        let prepared = session.prepare(&w.queries[0]).unwrap();
        let resp = prepared.run(w.modes[0].unwrap());
        assert_eq!(resp.answer.as_tuples().map(<[_]>::len), Some(0));
    }

    #[test]
    fn directives_after_trailing_blank_lines_still_apply() {
        // Blank (and comment-only) lines between a directive and the
        // queries it governs are ignored, including at end of file.
        let w = parse_workload(
            "Q: R(?x)\n\
             \n\
             \n\
             @count\n\
             \n\
             # a comment island\n\
             \n\
             Q: R(?x)\n\
             R(1)\n\
             \n\
             \n",
        )
        .unwrap();
        assert_eq!(w.modes, vec![None, Some(QueryWorkload::Count)]);
        // A trailing directive with no query after it is harmless.
        let w = parse_workload("Q: R(?x)\nR(1)\n\n@count\n\n").unwrap();
        assert_eq!(w.modes, vec![None]);
    }

    #[test]
    fn crlf_line_endings_parse_identically() {
        let unix = "# demo\nQ: R(?x, ?y)\n@count\nQ: R(?x, ?x)\nR(1, 2)\nR(3, 3)\n";
        let dos = unix.replace('\n', "\r\n");
        let a = parse_workload(unix).unwrap();
        let b = parse_workload(&dos).unwrap();
        assert_eq!(a.queries.len(), b.queries.len());
        assert_eq!(a.modes, b.modes);
        assert_eq!(a.db.size(), b.db.size());
        assert_eq!(
            count_naive(&a.queries[0], &a.db),
            count_naive(&b.queries[0], &b.db)
        );
        // CRLF database and query-batch files too.
        let db = parse_database("R(1, 2)\r\nS(2, 3)\r\n").unwrap();
        assert_eq!(db.size(), 2);
        let qs = parse_queries("@count\r\nQ: R(?x, ?y)\r\n").unwrap();
        assert_eq!(qs[0].1, Some(QueryWorkload::Count));
    }

    #[test]
    fn database_files_are_facts_only() {
        let db = parse_database("# facts\nR(1, 2)\nR(2, 3)\nS(7)\n").unwrap();
        assert_eq!(db.size(), 3);
        assert!(parse_database("").unwrap().size() == 0);
        let err = parse_database("R(1)\nQ: R(?x)\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.message.contains("facts only"), "{err}");
        let err = parse_database("@count\n").unwrap_err();
        assert_eq!(err.line, Some(1));
        let err = parse_database("R(1)\nR(1, 2)\n").unwrap_err();
        assert_eq!(err.line, Some(2), "arity mismatch carries its line: {err}");
    }

    #[test]
    fn render_database_round_trips() {
        let db = parse_database("R(1, 2)\nR(3, 4)\nS(9)\n").unwrap();
        let text = render_database(&db);
        assert_eq!(parse_database(&text).unwrap(), db);
        assert_eq!(render_database(&Database::new()), "");
    }

    #[test]
    fn query_batches_are_queries_only() {
        let qs = parse_queries("Q: R(?x, ?y)\n@enumerate 3\nQ: S(?a)\n").unwrap();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[0].1, None);
        assert_eq!(qs[1].1, Some(QueryWorkload::Enumerate { limit: Some(3) }));
        let err = parse_queries("Q: R(?x)\nR(1, 2)\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.message.contains("bound at"), "{err}");
        let err = parse_queries("# nothing\n").unwrap_err();
        assert_eq!(err.line, None);
    }

    #[test]
    fn trace_directive_is_a_batch_flag_not_a_mode() {
        let batch = parse_query_batch("@trace\n@count\nQ: R(?x, ?y)\n").unwrap();
        assert!(batch.trace);
        assert_eq!(batch.queries[0].1, Some(QueryWorkload::Count));
        // Position is irrelevant; it flags the whole batch and does not
        // disturb the workload mode in force.
        let batch = parse_query_batch("@count\nQ: R(?x)\n@trace\nQ: S(?x)\n").unwrap();
        assert!(batch.trace);
        assert_eq!(batch.queries[1].1, Some(QueryWorkload::Count));
        let batch = parse_query_batch("Q: R(?x)\n").unwrap();
        assert!(!batch.trace);
        // Junk after `@trace` is rejected like any other directive.
        let err = parse_query_batch("@trace hard\nQ: R(?x)\n").unwrap_err();
        assert_eq!(err.line, Some(1));
        assert!(err.message.contains("unexpected `hard`"), "{err}");
        // Workload files reject it with a pointed message.
        let err = parse_workload("@trace\nQ: R(?x)\nR(1)\n").unwrap_err();
        assert_eq!(err.line, Some(1));
        assert!(err.message.contains("server query batch"), "{err}");
    }

    #[test]
    fn display_rendering_round_trips() {
        // `ConjunctiveQuery::display` joins atoms with `∧`; the parser
        // accepts that alongside `,`, so rendered queries are resendable
        // as query text (what `cqd2-analyze client --query` relies on).
        let w = parse_workload("Q: R(?x, ?y), S(?y, 7)\nR(1, 2)\nS(2, 7)\n").unwrap();
        let rendered = w.queries[0].display();
        assert!(rendered.contains('∧'), "{rendered}");
        let again = parse_query(&rendered).unwrap();
        assert_eq!(again.display(), rendered);
        assert_eq!(
            count_naive(&again, &w.db),
            count_naive(&w.queries[0], &w.db)
        );
    }

    #[test]
    fn parse_errors_are_std_errors() {
        let err = parse_workload("Q: R(?x\n").unwrap_err();
        let dyn_err: &dyn std::error::Error = &err;
        assert!(dyn_err.to_string().contains("line 1"));
    }
}
