//! A minimal text format for `(queries, database)` workloads, used by
//! the `cqd2-analyze eval` subcommand and the serving example.
//!
//! ```text
//! # comments and blank lines are ignored
//! Q: R(?x, ?y), S(?y, ?z)     # one query per `Q:` line (a batch)
//! R(1, 2)                     # every other line is a ground fact
//! S(2, 3)
//! S(2, 4)
//! ```
//!
//! Terms starting with `?` are variables (scoped per query line);
//! anything else must parse as a `u64` constant.

use cqd2_cq::{ConjunctiveQuery, Database};

/// A parsed workload file: a batch of queries over one shared database.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Queries in file order.
    pub queries: Vec<ConjunctiveQuery>,
    /// The shared database.
    pub db: Database,
}

/// Parse the workload format. Errors name the offending line (1-based).
pub fn parse_workload(input: &str) -> Result<Workload, String> {
    let mut queries = Vec::new();
    let mut db = Database::new();
    // First-seen arity per relation: `Database::insert` treats arity
    // mismatches as schema errors (panic), so catch them here with a
    // line number instead.
    let mut arities: std::collections::HashMap<String, (usize, usize)> =
        std::collections::HashMap::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(qtext) = line.strip_prefix("Q:") {
            queries.push(parse_query(qtext).map_err(|e| format!("line {}: {e}", lineno + 1))?);
        } else {
            let (rel, terms) =
                parse_atom_text(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let tuple: Vec<u64> = terms
                .iter()
                .map(|t| {
                    t.parse::<u64>()
                        .map_err(|_| format!("line {}: fact term `{t}` is not a u64", lineno + 1))
                })
                .collect::<Result<_, _>>()?;
            let (first_arity, first_line) = *arities
                .entry(rel.clone())
                .or_insert((tuple.len(), lineno + 1));
            if tuple.len() != first_arity {
                return Err(format!(
                    "line {}: relation `{rel}` has {} terms here but {first_arity} on line {first_line}",
                    lineno + 1,
                    tuple.len()
                ));
            }
            db.insert(&rel, &tuple);
        }
    }
    if queries.is_empty() {
        return Err("no `Q:` line found".to_string());
    }
    Ok(Workload { queries, db })
}

/// Parse one query body: a comma-separated list of atoms.
pub fn parse_query(text: &str) -> Result<ConjunctiveQuery, String> {
    let mut atoms: Vec<(String, Vec<String>)> = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let close = rest
            .find(')')
            .ok_or_else(|| format!("missing `)` in `{rest}`"))?;
        let (atom_text, tail) = rest.split_at(close + 1);
        let (rel, terms) = parse_atom_text(atom_text.trim())?;
        atoms.push((rel, terms));
        let tail = tail.trim_start();
        rest = match tail.strip_prefix(',') {
            Some(after) => after.trim(),
            None if tail.is_empty() => tail,
            None => {
                return Err(format!("expected `,` between atoms, found `{tail}`"));
            }
        };
    }
    if atoms.is_empty() {
        return Err("query has no atoms".to_string());
    }
    let borrowed: Vec<(&str, Vec<&str>)> = atoms
        .iter()
        .map(|(r, ts)| (r.as_str(), ts.iter().map(String::as_str).collect()))
        .collect();
    let for_parse: Vec<(&str, &[&str])> =
        borrowed.iter().map(|(r, ts)| (*r, ts.as_slice())).collect();
    Ok(ConjunctiveQuery::parse(&for_parse))
}

/// Split `R(t1, t2, …)` into the relation name and raw term texts.
fn parse_atom_text(text: &str) -> Result<(String, Vec<String>), String> {
    let open = text
        .find('(')
        .ok_or_else(|| format!("expected `Rel(…)`, got `{text}`"))?;
    let rel = text[..open].trim();
    if rel.is_empty() {
        return Err(format!("missing relation name in `{text}`"));
    }
    let body = text[open + 1..]
        .strip_suffix(')')
        .ok_or_else(|| format!("missing `)` in `{text}`"))?;
    let terms: Vec<String> = if body.trim().is_empty() {
        Vec::new()
    } else {
        body.split(',').map(|t| t.trim().to_string()).collect()
    };
    if terms.iter().any(String::is_empty) {
        return Err(format!("empty term in `{text}`"));
    }
    Ok((rel.to_string(), terms))
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_cq::eval::{bcq_naive, count_naive};

    #[test]
    fn parses_queries_and_facts() {
        let w = parse_workload(
            "# demo\n\
             Q: R(?x, ?y), S(?y, ?z)\n\
             Q: R(?a, ?a)\n\
             R(1, 2)   # planted\n\
             R(3, 3)\n\
             S(2, 3)\n",
        )
        .unwrap();
        assert_eq!(w.queries.len(), 2);
        assert_eq!(w.db.size(), 3);
        assert!(bcq_naive(&w.queries[0], &w.db));
        assert_eq!(count_naive(&w.queries[0], &w.db), 1);
        assert!(bcq_naive(&w.queries[1], &w.db)); // R(3,3) matches ?a,?a
    }

    #[test]
    fn constants_in_queries() {
        let w = parse_workload("Q: R(?x, 7)\nR(1, 7)\nR(2, 8)\n").unwrap();
        assert_eq!(count_naive(&w.queries[0], &w.db), 1);
    }

    #[test]
    fn arity_mismatch_is_an_error_not_a_panic() {
        let err = parse_workload("Q: R(?x)\nR(1)\nR(1, 2)\n").unwrap_err();
        assert!(
            err.contains("line 3") && err.contains("line 2"),
            "should cite both the offending and the first-seen line: {err}"
        );
    }

    #[test]
    fn stray_atom_separator_is_rejected() {
        let err = parse_workload("Q: R(?x, ?y); S(?y, ?z)\nR(1, 2)\n").unwrap_err();
        assert!(err.contains("expected `,` between atoms"), "{err}");
    }

    #[test]
    fn errors_name_the_line() {
        let err = parse_workload("Q: R(?x\nR(1)\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = parse_workload("Q: R(?x)\nR(banana)\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(parse_workload("R(1, 2)\n").unwrap_err().contains("no `Q:`"));
    }
}
