//! A minimal text format for `(queries, database)` workloads, used by
//! the `cqd2-analyze eval` subcommand and the serving example.
//!
//! ```text
//! # comments and blank lines are ignored
//! Q: R(?x, ?y), S(?y, ?z)     # one query per `Q:` line (a batch)
//! @count                      # workload directive for later `Q:` lines
//! Q: R(?x, ?y)
//! @enumerate 10               # …stream up to 10 answer tuples
//! Q: S(?y, ?z)
//! R(1, 2)                     # every other line is a ground fact
//! S(2, 3)
//! S(2, 4)
//! ```
//!
//! Terms starting with `?` are variables (scoped per query line);
//! anything else must parse as a `u64` constant. Directive lines start
//! with `@` and set the workload for the `Q:` lines that follow:
//! `@boolean`, `@count`, or `@enumerate [limit]`. Queries before the
//! first directive carry no mode and fall back to whatever the caller
//! (e.g. the CLI's flags) chooses.
//!
//! All parse errors are typed [`ParseError`]s naming the offending
//! 1-based line.

use cqd2_cq::{ConjunctiveQuery, Database};

use crate::engine::Workload as QueryWorkload;

/// A workload-file parse error, attributed to a 1-based line when one
/// line is to blame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based offending line, `None` for file-level errors.
    pub line: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// An error attributed to a 1-based line.
    pub fn at(line: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line: Some(line),
            message: message.into(),
        }
    }

    /// A file-level error (no single offending line).
    pub fn whole_file(message: impl Into<String>) -> ParseError {
        ParseError {
            line: None,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(n) => write!(f, "line {n}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for ParseError {}

/// A parsed workload file: a batch of queries over one shared database,
/// each query optionally carrying the workload mode the file's
/// directives selected for it.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Queries in file order.
    pub queries: Vec<ConjunctiveQuery>,
    /// Per-query workload mode from `@…` directives (aligned with
    /// `queries`; `None` = no directive seen yet, caller decides).
    pub modes: Vec<Option<QueryWorkload>>,
    /// The shared database.
    pub db: Database,
}

/// Parse one `@…` directive body (without the `@`).
fn parse_directive(body: &str) -> Result<QueryWorkload, String> {
    let mut parts = body.split_whitespace();
    let mode = match parts.next() {
        Some("boolean") => QueryWorkload::Boolean,
        Some("count") => QueryWorkload::Count,
        Some("enumerate") => {
            let limit = match parts.next() {
                None => None,
                Some(text) => Some(text.parse::<usize>().map_err(|_| {
                    format!("`@enumerate` limit `{text}` is not a non-negative integer")
                })?),
            };
            QueryWorkload::Enumerate { limit }
        }
        Some(other) => {
            return Err(format!(
                "unknown directive `@{other}` (try @boolean, @count, @enumerate [limit])"
            ));
        }
        None => return Err("empty directive (`@` with no name)".to_string()),
    };
    if let Some(junk) = parts.next() {
        return Err(format!("unexpected `{junk}` after directive"));
    }
    Ok(mode)
}

/// Parse the workload format. Errors name the offending line (1-based).
pub fn parse_workload(input: &str) -> Result<Workload, ParseError> {
    let mut queries = Vec::new();
    let mut modes = Vec::new();
    let mut current_mode: Option<QueryWorkload> = None;
    let mut db = Database::new();
    // First-seen arity per relation: `Database::insert` treats arity
    // mismatches as schema errors (panic), so catch them here with a
    // line number instead.
    let mut arities: std::collections::HashMap<String, (usize, usize)> =
        std::collections::HashMap::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(body) = line.strip_prefix('@') {
            current_mode = Some(parse_directive(body).map_err(|e| ParseError::at(lineno + 1, e))?);
        } else if let Some(qtext) = line.strip_prefix("Q:") {
            queries.push(parse_query(qtext).map_err(|mut e| {
                e.line = Some(lineno + 1);
                e
            })?);
            modes.push(current_mode);
        } else {
            let (rel, terms) = parse_atom_text(line).map_err(|mut e| {
                e.line = Some(lineno + 1);
                e
            })?;
            let tuple: Vec<u64> = terms
                .iter()
                .map(|t| {
                    t.parse::<u64>().map_err(|_| {
                        ParseError::at(lineno + 1, format!("fact term `{t}` is not a u64"))
                    })
                })
                .collect::<Result<_, _>>()?;
            let (first_arity, first_line) = *arities
                .entry(rel.clone())
                .or_insert((tuple.len(), lineno + 1));
            if tuple.len() != first_arity {
                return Err(ParseError::at(
                    lineno + 1,
                    format!(
                        "relation `{rel}` has {} terms here but {first_arity} on line {first_line}",
                        tuple.len()
                    ),
                ));
            }
            db.insert(&rel, &tuple);
        }
    }
    if queries.is_empty() {
        return Err(ParseError::whole_file("no `Q:` line found"));
    }
    Ok(Workload { queries, modes, db })
}

/// Parse one query body: a comma-separated list of atoms. Errors carry
/// no line number ([`parse_workload`] attributes them to its lines).
pub fn parse_query(text: &str) -> Result<ConjunctiveQuery, ParseError> {
    let mut atoms: Vec<(String, Vec<String>)> = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let close = rest
            .find(')')
            .ok_or_else(|| ParseError::whole_file(format!("missing `)` in `{rest}`")))?;
        let (atom_text, tail) = rest.split_at(close + 1);
        let (rel, terms) = parse_atom_text(atom_text.trim())?;
        atoms.push((rel, terms));
        let tail = tail.trim_start();
        rest = match tail.strip_prefix(',') {
            Some(after) => after.trim(),
            None if tail.is_empty() => tail,
            None => {
                return Err(ParseError::whole_file(format!(
                    "expected `,` between atoms, found `{tail}`"
                )));
            }
        };
    }
    if atoms.is_empty() {
        return Err(ParseError::whole_file("query has no atoms"));
    }
    let borrowed: Vec<(&str, Vec<&str>)> = atoms
        .iter()
        .map(|(r, ts)| (r.as_str(), ts.iter().map(String::as_str).collect()))
        .collect();
    let for_parse: Vec<(&str, &[&str])> =
        borrowed.iter().map(|(r, ts)| (*r, ts.as_slice())).collect();
    Ok(ConjunctiveQuery::parse(&for_parse))
}

/// Split `R(t1, t2, …)` into the relation name and raw term texts.
fn parse_atom_text(text: &str) -> Result<(String, Vec<String>), ParseError> {
    let open = text
        .find('(')
        .ok_or_else(|| ParseError::whole_file(format!("expected `Rel(…)`, got `{text}`")))?;
    let rel = text[..open].trim();
    if rel.is_empty() {
        return Err(ParseError::whole_file(format!(
            "missing relation name in `{text}`"
        )));
    }
    let body = text[open + 1..]
        .strip_suffix(')')
        .ok_or_else(|| ParseError::whole_file(format!("missing `)` in `{text}`")))?;
    let terms: Vec<String> = if body.trim().is_empty() {
        Vec::new()
    } else {
        body.split(',').map(|t| t.trim().to_string()).collect()
    };
    if terms.iter().any(String::is_empty) {
        return Err(ParseError::whole_file(format!("empty term in `{text}`")));
    }
    Ok((rel.to_string(), terms))
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_cq::eval::{bcq_naive, count_naive};

    #[test]
    fn parses_queries_and_facts() {
        let w = parse_workload(
            "# demo\n\
             Q: R(?x, ?y), S(?y, ?z)\n\
             Q: R(?a, ?a)\n\
             R(1, 2)   # planted\n\
             R(3, 3)\n\
             S(2, 3)\n",
        )
        .unwrap();
        assert_eq!(w.queries.len(), 2);
        assert_eq!(w.db.size(), 3);
        assert_eq!(w.modes, vec![None, None]);
        assert!(bcq_naive(&w.queries[0], &w.db));
        assert_eq!(count_naive(&w.queries[0], &w.db), 1);
        assert!(bcq_naive(&w.queries[1], &w.db)); // R(3,3) matches ?a,?a
    }

    #[test]
    fn constants_in_queries() {
        let w = parse_workload("Q: R(?x, 7)\nR(1, 7)\nR(2, 8)\n").unwrap();
        assert_eq!(count_naive(&w.queries[0], &w.db), 1);
    }

    #[test]
    fn directives_set_modes_for_following_queries() {
        let w = parse_workload(
            "Q: R(?x, ?y)\n\
             @count\n\
             Q: R(?x, ?x)\n\
             @enumerate 5\n\
             Q: R(?x, ?y)\n\
             @enumerate\n\
             Q: R(?y, ?x)\n\
             @boolean\n\
             Q: R(?x, ?y)\n\
             R(1, 2)\n",
        )
        .unwrap();
        assert_eq!(
            w.modes,
            vec![
                None,
                Some(QueryWorkload::Count),
                Some(QueryWorkload::Enumerate { limit: Some(5) }),
                Some(QueryWorkload::Enumerate { limit: None }),
                Some(QueryWorkload::Boolean),
            ]
        );
    }

    #[test]
    fn unknown_and_malformed_directives_are_line_errors() {
        let err = parse_workload("Q: R(?x)\n@frobnicate\nR(1)\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(
            err.message.contains("unknown directive `@frobnicate`"),
            "{err}"
        );

        let err = parse_workload("@enumerate banana\nQ: R(?x)\nR(1)\n").unwrap_err();
        assert_eq!(err.line, Some(1));
        assert!(err.message.contains("banana"), "{err}");

        let err = parse_workload("@count 3\nQ: R(?x)\nR(1)\n").unwrap_err();
        assert_eq!(err.line, Some(1));
        assert!(err.message.contains("unexpected `3`"), "{err}");

        let err = parse_workload("@\nQ: R(?x)\nR(1)\n").unwrap_err();
        assert_eq!(err.line, Some(1));
        assert!(err.message.contains("empty directive"), "{err}");
    }

    #[test]
    fn arity_mismatch_is_an_error_not_a_panic() {
        let err = parse_workload("Q: R(?x)\nR(1)\nR(1, 2)\n").unwrap_err();
        assert_eq!(err.line, Some(3), "{err}");
        assert!(
            err.to_string().contains("line 3") && err.message.contains("line 2"),
            "should cite both the offending and the first-seen line: {err}"
        );
    }

    #[test]
    fn stray_atom_separator_is_rejected() {
        let err = parse_workload("Q: R(?x, ?y); S(?y, ?z)\nR(1, 2)\n").unwrap_err();
        assert!(err.message.contains("expected `,` between atoms"), "{err}");
        assert_eq!(err.line, Some(1));
    }

    #[test]
    fn malformed_lines_name_their_line_number() {
        // Unclosed query atom.
        let err = parse_workload("Q: R(?x\nR(1)\n").unwrap_err();
        assert_eq!(err.line, Some(1), "{err}");
        // Non-numeric fact term.
        let err = parse_workload("Q: R(?x)\nR(banana)\n").unwrap_err();
        assert_eq!(err.line, Some(2), "{err}");
        assert!(err.to_string().starts_with("line 2:"), "{err}");
        // A fact line that is not an atom at all.
        let err = parse_workload("Q: R(?x)\njunk without parens\n").unwrap_err();
        assert_eq!(err.line, Some(2), "{err}");
        // Empty term inside an atom.
        let err = parse_workload("Q: R(?x,)\nR(1)\n").unwrap_err();
        assert_eq!(err.line, Some(1), "{err}");
        // File-level error: no query at all.
        let err = parse_workload("R(1, 2)\n").unwrap_err();
        assert_eq!(err.line, None);
        assert!(err.to_string().contains("no `Q:`"), "{err}");
    }

    #[test]
    fn parse_errors_are_std_errors() {
        let err = parse_workload("Q: R(?x\n").unwrap_err();
        let dyn_err: &dyn std::error::Error = &err;
        assert!(dyn_err.to_string().contains("line 1"));
    }
}
