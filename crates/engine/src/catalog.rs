//! The versioned database catalog: named, epoch-pinned snapshots.
//!
//! The paper's amortization story — pay the `O(‖D‖^w)` GHD
//! preprocessing once, answer cheaply forever after — only holds if the
//! database a prepared handle was built against cannot change
//! underneath it. The original serving API enforced that with borrows
//! (`Session<'a>` froze the database for the handle's lifetime), which
//! also froze the *server*: no database could ever be reloaded while a
//! single handle existed. This module replaces the borrow with a pin:
//!
//! - a [`DatabaseSnapshot`] is an immutable `(name, epoch, database,
//!   statistics)` quadruple, the statistics computed **once at publish
//!   time** (`O(‖D‖)`) and shared by every session that pins the
//!   snapshot;
//! - a [`Catalog`] maps names to `Arc<DatabaseSnapshot>`s with a
//!   monotonically increasing per-name **epoch**. [`Catalog::swap`]
//!   atomically publishes a new snapshot for a name: readers that
//!   already pinned the old `Arc` keep answering consistently against
//!   it (constant-delay cursors included), new sessions see the new
//!   epoch, and the old snapshot's memory is released when its last pin
//!   drops;
//! - the epoch is the invalidation token: caches keyed by `(query text,
//!   epoch)` — like the server's prepared-query cache — go stale
//!   *naturally* on a swap instead of serving answers from reloaded-away
//!   data.
//!
//! ```
//! use cqd2_engine::{Catalog, Engine, Workload};
//! use cqd2_cq::Database;
//!
//! let catalog = Catalog::new();
//! catalog.publish_str("main", "R(1, 2)\nS(2, 3)\n")?;
//!
//! let engine = Engine::default();
//! let session = engine.session_in(&catalog, "main")?;
//! let prepared = session.prepare(&cqd2_cq::ConjunctiveQuery::parse(&[
//!     ("R", &["?x", "?y"]),
//!     ("S", &["?y", "?z"]),
//! ]))?;
//! assert_eq!(prepared.run(Workload::Count).answer.as_count(), Some(1));
//!
//! // Hot reload: the swap does not disturb the pinned session…
//! catalog.swap_str("main", "R(1, 2)\nS(2, 3)\nS(2, 4)\n")?;
//! assert_eq!(prepared.run(Workload::Count).answer.as_count(), Some(1));
//! assert_eq!(prepared.epoch(), 0);
//! // …while a fresh session observes the new epoch and the new data.
//! let fresh = engine.session_in(&catalog, "main")?;
//! assert_eq!(fresh.epoch(), 1);
//! # Ok::<(), cqd2_engine::EngineError>(())
//! ```

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use cqd2_cq::stats::DatabaseStats;
use cqd2_cq::sync::{read_or_poison, write_or_poison};
use cqd2_cq::Database;

use crate::error::EngineError;
use crate::textio;

/// An immutable published state of one named database: the data, its
/// statistics (computed once, at publish time), the name it is
/// published under, and the epoch that publication got.
///
/// Snapshots are shared as `Arc<DatabaseSnapshot>`: a
/// [`crate::Session`] pins one at creation and every
/// [`crate::PreparedQuery`] prepared on the session keeps the pin, so
/// in-flight work keeps a consistent view across any number of
/// [`Catalog::swap`]s.
#[derive(Debug)]
pub struct DatabaseSnapshot {
    name: String,
    epoch: u64,
    db: Database,
    stats: DatabaseStats,
}

impl DatabaseSnapshot {
    /// Publish-time construction: takes ownership of `db` and computes
    /// its full statistics once (`O(‖D‖)`).
    pub fn new(name: impl Into<String>, epoch: u64, db: Database) -> DatabaseSnapshot {
        let stats = db.stats();
        DatabaseSnapshot {
            name: name.into(),
            epoch,
            db,
            stats,
        }
    }

    /// Construction from *precomputed* statistics: what the snapshot
    /// store uses — a `.cqds` file carries the statistics persisted at
    /// save time, so publishing a loaded database skips the `O(‖D‖)`
    /// collection pass entirely. The caller vouches that `stats`
    /// describes `db`; inside this crate that is the store's load path,
    /// whose checksums protect the pair together.
    pub fn with_stats(
        name: impl Into<String>,
        epoch: u64,
        db: Database,
        stats: DatabaseStats,
    ) -> DatabaseSnapshot {
        DatabaseSnapshot {
            name: name.into(),
            epoch,
            db,
            stats,
        }
    }

    /// A snapshot that is not published in any catalog (what the
    /// `&Database` convenience shim [`crate::Engine::session`] pins).
    pub(crate) fn detached(db: Database) -> DatabaseSnapshot {
        DatabaseSnapshot::new("", 0, db)
    }

    /// The name this snapshot was published under (empty for detached
    /// snapshots).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The publication epoch: 0 for the first publish of a name, bumped
    /// by one on every [`Catalog::swap`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The statistics snapshot computed at publish time.
    pub fn stats(&self) -> &DatabaseStats {
        &self.stats
    }
}

/// A mutable, versioned source of database snapshots: names map to
/// [`Arc<DatabaseSnapshot>`]s, and [`Catalog::swap`] publishes a new
/// snapshot for a name without disturbing readers of the old one.
///
/// All methods take `&self` (the map sits behind an `RwLock`), so one
/// catalog is shared freely across server threads, reload handlers, and
/// sessions. Lookups clone an `Arc` under the read lock — no data is
/// copied, and writers block readers only for the map update itself,
/// never for statistics computation (which happens before the lock is
/// taken).
#[derive(Default)]
pub struct Catalog {
    entries: RwLock<BTreeMap<String, Arc<DatabaseSnapshot>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Publish `db` under a *new* name at epoch 0. Rejects names that
    /// are already published ([`EngineError::DuplicateDatabase`]) — use
    /// [`Catalog::swap`] to replace an existing database, so that "load
    /// two databases under one name by accident" is a loud startup
    /// error, never a silent last-wins.
    pub fn publish(
        &self,
        name: impl Into<String>,
        db: Database,
    ) -> Result<Arc<DatabaseSnapshot>, EngineError> {
        let name = name.into();
        // Statistics are computed outside the lock; the write lock is
        // held only for the map insert.
        let snapshot = Arc::new(DatabaseSnapshot::new(name.clone(), 0, db));
        let mut entries = write_or_poison(&self.entries);
        if entries.contains_key(&name) {
            return Err(EngineError::DuplicateDatabase(name));
        }
        entries.insert(name, Arc::clone(&snapshot));
        Ok(snapshot)
    }

    /// Atomically publish a new snapshot for an *existing* name at the
    /// next epoch. Sessions and prepared queries pinning the previous
    /// snapshot are undisturbed — they keep answering against their
    /// epoch until dropped; new sessions (and epoch-keyed caches) see
    /// the new snapshot immediately.
    pub fn swap(&self, name: &str, db: Database) -> Result<Arc<DatabaseSnapshot>, EngineError> {
        // The statistics scan happens before the write lock so readers
        // are blocked only for the pointer swap. The epoch is re-read
        // under the lock, so concurrent swaps serialize cleanly.
        let stats_ready = DatabaseSnapshot::new(name, 0, db);
        let mut entries = write_or_poison(&self.entries);
        let Some(current) = entries.get(name) else {
            return Err(EngineError::UnknownDatabase(name.to_string()));
        };
        let snapshot = Arc::new(DatabaseSnapshot {
            epoch: current.epoch + 1,
            ..stats_ready
        });
        entries.insert(name.to_string(), Arc::clone(&snapshot));
        Ok(snapshot)
    }

    /// [`Catalog::publish`] with precomputed statistics
    /// ([`DatabaseSnapshot::with_stats`]): no statistics pass runs, not
    /// even outside the lock. This is the snapshot store's publish path.
    pub fn publish_with_stats(
        &self,
        name: impl Into<String>,
        db: Database,
        stats: DatabaseStats,
    ) -> Result<Arc<DatabaseSnapshot>, EngineError> {
        let name = name.into();
        let snapshot = Arc::new(DatabaseSnapshot::with_stats(name.clone(), 0, db, stats));
        let mut entries = write_or_poison(&self.entries);
        if entries.contains_key(&name) {
            return Err(EngineError::DuplicateDatabase(name));
        }
        entries.insert(name, Arc::clone(&snapshot));
        Ok(snapshot)
    }

    /// [`Catalog::swap`] with precomputed statistics (the snapshot
    /// store's reload path). Same epoch discipline as [`Catalog::swap`];
    /// on error the current snapshot keeps serving.
    pub fn swap_with_stats(
        &self,
        name: &str,
        db: Database,
        stats: DatabaseStats,
    ) -> Result<Arc<DatabaseSnapshot>, EngineError> {
        let ready = DatabaseSnapshot::with_stats(name, 0, db, stats);
        let mut entries = write_or_poison(&self.entries);
        let Some(current) = entries.get(name) else {
            return Err(EngineError::UnknownDatabase(name.to_string()));
        };
        let snapshot = Arc::new(DatabaseSnapshot {
            epoch: current.epoch + 1,
            ..ready
        });
        entries.insert(name.to_string(), Arc::clone(&snapshot));
        Ok(snapshot)
    }

    /// Apply a delta batch to the database published under `name` and
    /// publish the result at the next epoch — the **incremental** swap.
    ///
    /// Unlike [`Catalog::swap`], neither the data nor the statistics
    /// are rebuilt from scratch:
    ///
    /// - the merge ([`cqd2_cq::Database::apply_delta`]) rebuilds only
    ///   the relations the delta touches; every untouched relation is
    ///   carried into the new snapshot as the **same `Arc`** (assert
    ///   with [`cqd2_cq::Database::relation_arc`] + `Arc::ptr_eq`);
    /// - statistics are stitched ([`DatabaseStats::updated_for`]): only
    ///   the touched relations are re-scanned.
    ///
    /// The whole batch validates before anything publishes — a typed
    /// [`EngineError::Delta`] (unknown relation, arity mismatch) leaves
    /// the current epoch serving, untouched. Merge and statistics run
    /// outside the write lock; if another publish lands in between, the
    /// merge retries against the newer snapshot, so concurrent deltas
    /// serialize cleanly without holding the lock across `O(‖Δ‖)` work.
    pub fn apply_delta(
        &self,
        name: &str,
        delta: &cqd2_cq::DatabaseDelta,
    ) -> Result<crate::delta::DeltaOutcome, EngineError> {
        loop {
            let current = self.snapshot(name)?;
            // Merge + statistics stitch, outside any lock.
            let applied = current.db().apply_delta(delta)?;
            let stats = current.stats().updated_for(&applied.db, &applied.touched);
            let ready = DatabaseSnapshot::with_stats(name, 0, applied.db, stats);
            let mut entries = write_or_poison(&self.entries);
            let Some(live) = entries.get(name) else {
                return Err(EngineError::UnknownDatabase(name.to_string()));
            };
            if !Arc::ptr_eq(live, &current) {
                // A concurrent publish won; redo the merge on top of it.
                continue;
            }
            let snapshot = Arc::new(DatabaseSnapshot {
                epoch: live.epoch + 1,
                ..ready
            });
            entries.insert(name.to_string(), Arc::clone(&snapshot));
            return Ok(crate::delta::DeltaOutcome {
                snapshot,
                previous: current,
                touched: applied.touched,
                inserted: applied.inserted,
                deleted: applied.deleted,
            });
        }
    }

    /// [`Catalog::publish`] from a facts-only database text
    /// ([`textio::parse_database`]).
    pub fn publish_str(
        &self,
        name: impl Into<String>,
        text: &str,
    ) -> Result<Arc<DatabaseSnapshot>, EngineError> {
        let db = textio::parse_database(text)?;
        self.publish(name, db)
    }

    /// [`Catalog::swap`] from a facts-only database text.
    pub fn swap_str(&self, name: &str, text: &str) -> Result<Arc<DatabaseSnapshot>, EngineError> {
        let db = textio::parse_database(text)?;
        self.swap(name, db)
    }

    /// The current snapshot published under `name`, if any.
    pub fn get(&self, name: &str) -> Option<Arc<DatabaseSnapshot>> {
        read_or_poison(&self.entries).get(name).cloned()
    }

    /// Like [`Catalog::get`], but unknown names are a typed error.
    pub fn snapshot(&self, name: &str) -> Result<Arc<DatabaseSnapshot>, EngineError> {
        self.get(name)
            .ok_or_else(|| EngineError::UnknownDatabase(name.to_string()))
    }

    /// All published names, sorted.
    pub fn names(&self) -> Vec<String> {
        read_or_poison(&self.entries).keys().cloned().collect()
    }

    /// The current snapshot of every published name, sorted by name.
    pub fn snapshots(&self) -> Vec<Arc<DatabaseSnapshot>> {
        read_or_poison(&self.entries).values().cloned().collect()
    }

    /// Number of published names.
    pub fn len(&self) -> usize {
        read_or_poison(&self.entries).len()
    }

    /// Whether nothing is published.
    pub fn is_empty(&self) -> bool {
        read_or_poison(&self.entries).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_swap_and_epochs() {
        let catalog = Catalog::new();
        assert!(catalog.is_empty());
        let first = catalog.publish_str("main", "R(1, 2)\n").unwrap();
        assert_eq!((first.name(), first.epoch()), ("main", 0));
        assert_eq!(first.db().size(), 1);
        assert_eq!(first.stats().total_tuples(), 1);

        // Duplicate publish is a typed error, not last-wins.
        match catalog.publish_str("main", "R(9, 9)\n") {
            Err(EngineError::DuplicateDatabase(name)) => assert_eq!(name, "main"),
            other => panic!("{other:?}"),
        }
        // The failed publish did not disturb the entry.
        assert_eq!(catalog.snapshot("main").unwrap().db().size(), 1);

        // Swaps bump the epoch and leave the old Arc answering.
        let second = catalog.swap_str("main", "R(1, 2)\nR(3, 4)\n").unwrap();
        assert_eq!(second.epoch(), 1);
        assert_eq!(second.db().size(), 2);
        assert_eq!(first.db().size(), 1, "pinned snapshot undisturbed");
        assert_eq!(catalog.swap_str("main", "R(5, 6)\n").unwrap().epoch(), 2);

        // Swapping an unpublished name is a typed error.
        match catalog.swap("ghost", Database::new()) {
            Err(EngineError::UnknownDatabase(name)) => assert_eq!(name, "ghost"),
            other => panic!("{other:?}"),
        }
        match catalog.snapshot("ghost") {
            Err(EngineError::UnknownDatabase(_)) => {}
            other => panic!("{other:?}"),
        }

        catalog.publish_str("aux", "T(7)\n").unwrap();
        assert_eq!(catalog.names(), vec!["aux".to_string(), "main".to_string()]);
        assert_eq!(catalog.len(), 2);
        let snaps = catalog.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].name(), "aux");
    }

    #[test]
    fn swap_is_atomic_under_concurrent_readers() {
        // Readers racing a stream of swaps must only ever observe fully
        // published snapshots whose statistics match their data, with
        // non-decreasing epochs.
        let catalog = Catalog::new();
        catalog.publish_str("hot", "R(0, 0)\n").unwrap();
        let swaps = 200;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 1..=swaps {
                    let mut db = Database::new();
                    db.insert_all("R", &(0..=i).map(|j| vec![j, j]).collect::<Vec<_>>());
                    catalog.swap("hot", db).unwrap();
                }
            });
            for _ in 0..2 {
                scope.spawn(|| {
                    let mut last_epoch = 0;
                    for _ in 0..500 {
                        let snap = catalog.snapshot("hot").unwrap();
                        assert!(snap.epoch() >= last_epoch, "epochs are monotone");
                        last_epoch = snap.epoch();
                        // Stats were computed from exactly this data.
                        assert_eq!(snap.stats().total_tuples(), snap.db().size());
                        assert_eq!(snap.db().size() as u64, snap.epoch() + 1);
                    }
                });
            }
        });
        assert_eq!(catalog.snapshot("hot").unwrap().epoch(), swaps);
    }

    #[test]
    fn parse_failures_surface_and_do_not_publish() {
        let catalog = Catalog::new();
        match catalog.publish_str("bad", "R(banana)\n") {
            Err(EngineError::Parse(e)) => assert_eq!(e.line, Some(1)),
            other => panic!("{other:?}"),
        }
        assert!(catalog.get("bad").is_none());
        catalog.publish_str("ok", "R(1)\n").unwrap();
        match catalog.swap_str("ok", "R(1\n") {
            Err(EngineError::Parse(_)) => {}
            other => panic!("{other:?}"),
        }
        // A failed swap leaves the current epoch serving.
        assert_eq!(catalog.snapshot("ok").unwrap().epoch(), 0);
    }
}
