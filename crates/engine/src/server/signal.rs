//! SIGINT / SIGTERM → graceful shutdown, without a signal-handling
//! crate.
//!
//! The build environment is offline, so instead of `signal-hook` or
//! `ctrlc` this module declares libc's `signal(2)` directly (the Rust
//! standard library already links libc on Unix) and installs a handler
//! that does the only async-signal-safe thing a shutdown needs: set an
//! atomic flag. The [`crate::server::Server`] accept loop polls that
//! flag — via the [`crate::server::ServerHandle`] the caller registered
//! — every idle tick.
//!
//! One process-wide registration: the handler can only reach `static`
//! state, so the *first* registered handle wins and later calls return
//! `false`. On non-Unix targets registration is a no-op returning
//! `false`; drive shutdown through [`crate::server::ServerHandle`]
//! directly.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use crate::server::ServerHandle;

/// The flag the signal handler flips. A `OnceLock<Arc<_>>` so the
/// handler body touches only immortal state (the `Arc` is never dropped
/// once registered).
static SIGNAL_TARGET: OnceLock<Arc<AtomicBool>> = OnceLock::new();

#[cfg(unix)]
mod sys {
    /// `SIG_ERR`, the error return of `signal(2)`.
    pub const SIG_ERR: usize = usize::MAX;
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    extern "C" {
        /// libc `signal(2)`. The handler is passed as a raw function
        /// address, which is what the C ABI expects.
        pub fn signal(signum: i32, handler: usize) -> usize;
    }
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: one atomic load (OnceLock::get) + one store.
    if let Some(flag) = SIGNAL_TARGET.get() {
        flag.store(true, Ordering::SeqCst);
    }
}

/// Route SIGINT (ctrl-c) and SIGTERM to `handle.shutdown()`. Returns
/// `true` if this call installed the handlers; `false` if another
/// handle already owns them (or the target has no Unix signals).
#[cfg(unix)]
pub fn install_shutdown_signals(handle: &ServerHandle) -> bool {
    let flag = handle.shutdown_flag();
    if SIGNAL_TARGET.set(flag).is_err() {
        return false;
    }
    // SAFETY: `on_signal` only performs async-signal-safe atomic
    // operations, and `signal(2)` with a valid function pointer is the
    // documented way to install it.
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        let a = sys::signal(sys::SIGINT, handler);
        let b = sys::signal(sys::SIGTERM, handler);
        a != sys::SIG_ERR && b != sys::SIG_ERR
    }
}

/// Non-Unix stub: no signals to install.
#[cfg(not(unix))]
pub fn install_shutdown_signals(_handle: &ServerHandle) -> bool {
    false
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};

    #[test]
    fn first_registration_wins() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let handle = server.handle();
        let first = install_shutdown_signals(&handle);
        // Either this test or another in the process registered first;
        // a second registration must always be refused.
        let _ = first;
        assert!(!install_shutdown_signals(&handle));
    }
}
