//! A blocking client for the `cqd2-serve` wire protocol — what the
//! `cqd2-analyze client` subcommand, the loopback tests, and the
//! concurrent-serving bench drive.
//!
//! One [`Client`] owns one connection. The usual round-trip:
//!
//! ```no_run
//! use cqd2_engine::server::client::Client;
//! use cqd2_engine::Workload;
//!
//! let mut client = Client::connect("127.0.0.1:7878").unwrap();
//! let bound = client.bind_db("main").unwrap();
//! println!("bound to {} ({} facts)", bound.db, bound.facts);
//! let reply = client.request("@count\nQ: R(?x, ?y)\n").unwrap();
//! println!("count = {:?}", reply.results[0].answer.as_count());
//! // Admin round-trips (protocol v2): reload a database in place and
//! // inspect the catalog's epochs.
//! let reloaded = client.reload("main", "R(1, 2)\nR(5, 6)\n").unwrap();
//! println!("`{}` now at epoch {}", reloaded.db, reloaded.epoch);
//! let info = client.catalog_info().unwrap();
//! println!("serving {} database(s)", info.databases.len());
//! ```
//!
//! Errors the *server* signalled arrive as
//! [`ServerError::Rejected`] carrying the typed
//! [`wire::WireError`] (code, message, offending line), so callers can
//! distinguish backpressure (`Overloaded`) from parse errors from
//! shutdown.

use std::io::Write as _;
use std::net::{TcpStream, ToSocketAddrs};

use crate::engine::Workload;
use crate::server::frame::{read_frame, write_frame, Frame, FrameType};
use crate::server::wire::{
    self, WireBound, WireCatalog, WireDeltaApplied, WireDone, WireReloaded, WireResult, WireStats,
};
use crate::server::ServerError;

/// Client-side cap on accepted response payloads (tuples can be big).
const MAX_RESPONSE_LEN: u32 = 256 * 1024 * 1024;

/// All the answers to one `Query` frame.
#[derive(Debug, Clone)]
pub struct BatchReply {
    /// The request sequence number the server answered.
    pub request: u64,
    /// One result per query, in batch order.
    pub results: Vec<WireResult>,
}

/// A blocking connection to a `cqd2-serve` server.
pub struct Client {
    stream: TcpStream,
    seq: u64,
}

impl Client {
    /// Connect. The socket stays blocking (no read timeout): the server
    /// answers every frame, so reads always terminate.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServerError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, seq: 0 })
    }

    /// Bind this connection to the named database. Must precede
    /// [`Client::request`]; may be repeated to switch databases.
    pub fn bind_db(&mut self, name: &str) -> Result<WireBound, ServerError> {
        self.send(FrameType::Bind, name.as_bytes())?;
        let frame = self.read()?;
        match frame.frame_type {
            FrameType::Bound => decode(&frame),
            FrameType::Error => Err(ServerError::Rejected(decode(&frame)?)),
            other => Err(ServerError::UnexpectedFrame(other)),
        }
    }

    /// Send a query batch (`Q:` lines + `@…` directives, the
    /// [`crate::textio::parse_queries`] syntax) and collect its answers
    /// until the server's `Done` frame. An error frame — including an
    /// `Overloaded` backpressure rejection — surfaces as
    /// [`ServerError::Rejected`].
    ///
    /// `request` is strictly request-response: it must not be called
    /// while earlier [`Client::send`]-pipelined frames are still
    /// unanswered, because responses to *different* requests may
    /// interleave and this method awaits exactly one request's frames.
    /// A frame correlated to a different request therefore fails
    /// loudly (instead of silently mixing answers across batches);
    /// pipelining callers correlate by [`wire::WireResult::request`]
    /// themselves via [`Client::send`] / [`Client::read`], as the
    /// backpressure tests do.
    pub fn request(&mut self, text: &str) -> Result<BatchReply, ServerError> {
        self.send(FrameType::Query, text.as_bytes())?;
        let request = self.seq;
        let mut results: Vec<WireResult> = Vec::new();
        loop {
            let frame = self.read()?;
            match frame.frame_type {
                FrameType::Result => {
                    let result: WireResult = decode(&frame)?;
                    if result.request != request {
                        return Err(ServerError::Decode(format!(
                            "Result for request {} while awaiting {request} — use send()/read() \
                             to correlate pipelined requests",
                            result.request
                        )));
                    }
                    results.push(result);
                }
                FrameType::Done => {
                    let done: WireDone = decode(&frame)?;
                    if done.request != request {
                        return Err(ServerError::Decode(format!(
                            "Done for request {} while awaiting {request} — use send()/read() \
                             to correlate pipelined requests",
                            done.request
                        )));
                    }
                    return Ok(BatchReply { request, results });
                }
                FrameType::Error => return Err(ServerError::Rejected(decode(&frame)?)),
                other => return Err(ServerError::UnexpectedFrame(other)),
            }
        }
    }

    /// Single-query convenience: wrap `query_text` (one query body,
    /// e.g. `R(?x, ?y), S(?y, ?z)`) with the directive for `workload`
    /// and return its one result.
    pub fn query(
        &mut self,
        query_text: &str,
        workload: Workload,
    ) -> Result<WireResult, ServerError> {
        let batch = format!("{}\nQ: {}\n", wire::directive_for(workload), query_text);
        let mut reply = self.request(&batch)?;
        reply
            .results
            .pop()
            .ok_or_else(|| ServerError::Decode("empty batch reply".to_string()))
    }

    /// Hot-reload the named database with `facts` (a facts-only
    /// database text): a protocol-v2 `Reload` admin frame. Requires the
    /// server to run with `--allow-reload`; otherwise the typed
    /// `Unauthorized` rejection surfaces as [`ServerError::Rejected`],
    /// as do `UnknownDb` (name not served) and `Parse` (bad facts,
    /// `line` naming the payload line) rejections.
    ///
    /// On success the returned [`WireReloaded`] carries the new
    /// epoch: in-flight batches keep answering against the snapshot
    /// they pinned; queries accepted after this point observe the new
    /// data.
    pub fn reload(&mut self, name: &str, facts: &str) -> Result<WireReloaded, ServerError> {
        let payload = format!("{name}\n{facts}");
        self.send(FrameType::Reload, payload.as_bytes())?;
        let frame = self.read()?;
        match frame.frame_type {
            FrameType::Reloaded => decode(&frame),
            FrameType::Error => Err(ServerError::Rejected(decode(&frame)?)),
            other => Err(ServerError::UnexpectedFrame(other)),
        }
    }

    /// Apply an incremental delta batch to the named database: a
    /// protocol-v2 `Delta` admin frame whose payload is the database
    /// name followed by a delta script — `@insert` / `@delete` section
    /// directives and fact lines, the [`crate::textio::parse_delta`]
    /// syntax. Unlike [`Client::reload`], only the touched relations
    /// are rebuilt server-side: everything else is structurally shared
    /// into the new epoch, and warm prepared handles are migrated
    /// across it instead of purged.
    ///
    /// Requires the server to run with `--allow-reload`. A malformed
    /// script surfaces as a typed `Parse` rejection and a batch the
    /// delta kernel refuses (unknown relation, arity mismatch) as a
    /// typed `Delta` rejection — in both cases the previously published
    /// epoch keeps serving unmoved.
    pub fn delta(&mut self, name: &str, script: &str) -> Result<WireDeltaApplied, ServerError> {
        let payload = format!("{name}\n{script}");
        self.send(FrameType::Delta, payload.as_bytes())?;
        let frame = self.read()?;
        match frame.frame_type {
            FrameType::DeltaApplied => decode(&frame),
            FrameType::Error => Err(ServerError::Rejected(decode(&frame)?)),
            other => Err(ServerError::UnexpectedFrame(other)),
        }
    }

    /// Hot-reload the named database from a **server-local** snapshot
    /// file (`.cqds`, see [`crate::store`]): a protocol-v2 `Reload`
    /// admin frame whose payload names a path instead of carrying
    /// facts. The path is resolved by the server process — nothing is
    /// uploaded. A missing, corrupt, or version-skewed file surfaces as
    /// a typed `Store` rejection ([`ServerError::Rejected`]) and the
    /// previously published epoch keeps serving.
    pub fn reload_snapshot(&mut self, name: &str, path: &str) -> Result<WireReloaded, ServerError> {
        self.reload(name, &format!("@snapshot {path}"))
    }

    /// Describe the server's catalog (served names, epochs, sizes, and
    /// whether reloads are enabled): a protocol-v2 `CatalogInfo` admin
    /// frame.
    pub fn catalog_info(&mut self) -> Result<WireCatalog, ServerError> {
        self.send(FrameType::CatalogInfo, b"")?;
        let frame = self.read()?;
        match frame.frame_type {
            FrameType::Catalog => decode(&frame),
            FrameType::Error => Err(ServerError::Rejected(decode(&frame)?)),
            other => Err(ServerError::UnexpectedFrame(other)),
        }
    }

    /// Fetch the server's metrics snapshot — lifetime counters, live
    /// queue/connection gauges, and per-database latency histograms: a
    /// protocol-v2 `Stats` admin frame (always authorized; stats are
    /// read-only).
    pub fn stats(&mut self) -> Result<WireStats, ServerError> {
        self.send(FrameType::Stats, b"")?;
        let frame = self.read()?;
        match frame.frame_type {
            FrameType::StatsReport => decode(&frame),
            FrameType::Error => Err(ServerError::Rejected(decode(&frame)?)),
            other => Err(ServerError::UnexpectedFrame(other)),
        }
    }

    /// The sequence number of the most recent frame sent.
    pub fn last_request(&self) -> u64 {
        self.seq
    }

    /// Send a raw frame without awaiting a response (pipelining; the
    /// loopback tests also use this to probe protocol edges).
    pub fn send(&mut self, frame_type: FrameType, payload: &[u8]) -> Result<(), ServerError> {
        write_frame(&mut self.stream, frame_type, payload)?;
        self.stream.flush()?;
        self.seq += 1;
        Ok(())
    }

    /// Read the next frame (blocking).
    pub fn read(&mut self) -> Result<Frame, ServerError> {
        Ok(read_frame(&mut self.stream, MAX_RESPONSE_LEN)?)
    }
}

/// Decode a JSON frame payload.
fn decode<T: serde::Deserialize>(frame: &Frame) -> Result<T, ServerError> {
    let text = frame.text()?;
    serde::json::from_str(text).map_err(|e| ServerError::Decode(format!("{e} in `{text}`")))
}
