//! # `cqd2-serve` — the async socket serving front-end.
//!
//! This module turns the in-process serving engine into a network
//! server: a standalone binary (`cqd2-serve`, in `crates/core`) speaks a
//! length-prefixed framing of the workload-file text format over TCP,
//! so many concurrent clients share one engine, one plan cache, and one
//! [`Catalog`] of named databases. The build environment is offline —
//! no tokio, no mio — so concurrency is hand-rolled from blocking
//! sockets and scoped threads:
//!
//! - an **acceptor** loop (non-blocking `accept` + shutdown polling)
//!   spawns one reader thread per connection;
//! - readers decode frames incrementally ([`frame::FrameReader`]), bind
//!   the connection to a named database, and enqueue query batches on a
//!   **bounded job queue** ([`queue::JobQueue`]) — a full queue is
//!   answered *immediately* with a typed `Overloaded` error frame
//!   (backpressure), never buffered. Each accepted batch **pins the
//!   catalog's current snapshot** in an owned [`crate::Session`], so
//!   its answers stay consistent even if a reload swaps the database
//!   mid-execution;
//! - a **worker pool** drains the queue. Each database name keeps a
//!   shared cache of warm [`crate::PreparedQuery`] handles keyed by
//!   query text **and validated by epoch**: repeated queries skip
//!   planning *and* bag materialization — the amortization the paper's
//!   `O(‖D‖^w)` preprocessing bound makes worthwhile (gated ≥ 1.5× by
//!   `benches/engine_serve_concurrent.rs`) — and a handle prepared
//!   against epoch N is never served once a reload publishes N+1;
//! - **admin frames** (protocol v2): `Reload` atomically publishes a
//!   new snapshot for a served name via [`Catalog::swap`] (enabled by
//!   `ServerConfig::allow_reload` / `--allow-reload`; rejected with a
//!   typed `Unauthorized` error otherwise), `Delta` merges a batch of
//!   fact inserts/deletes incrementally via [`Catalog::apply_delta`]
//!   (same gate) — untouched relations are `Arc`-shared into the new
//!   epoch and warm prepared handles are migrated across it instead of
//!   purged — and `CatalogInfo` describes the served names with their
//!   epochs;
//! - **graceful shutdown**: a [`ServerHandle`] (or SIGINT/SIGTERM via
//!   [`signal::install_shutdown_signals`]) flips an atomic flag; the
//!   acceptor stops, accepted work drains, connections are notified
//!   with a `ShuttingDown` error frame, and [`Server::run`] returns the
//!   final [`ServerStats`].
//!
//! The wire protocol (frame layout, error codes, backpressure, reload
//! and shutdown semantics) is specified in `docs/PROTOCOL.md`;
//! [`client::Client`] implements it for scripted round-trips and the
//! `cqd2-analyze client` subcommand.
//!
//! ```no_run
//! use cqd2_engine::server::{Server, ServerConfig};
//! use cqd2_engine::{Catalog, Engine};
//!
//! let catalog = Catalog::new();
//! catalog.publish_str("main", "R(1, 2)\nS(2, 3)\n").unwrap();
//! let engine = Engine::default();
//! let config = ServerConfig {
//!     allow_reload: true, // accept v2 `Reload` admin frames
//!     ..ServerConfig::default()
//! };
//! let server = Server::bind("127.0.0.1:7878", config).unwrap();
//! let handle = server.handle(); // hand to a signal handler / another thread
//! cqd2_engine::server::signal::install_shutdown_signals(&handle);
//! let stats = server.run(&engine, &catalog).unwrap(); // blocks until shutdown
//! println!("served {} queries over {} reloads", stats.answered, stats.reloads);
//! ```

pub mod client;
pub mod frame;
pub mod queue;
pub mod signal;
pub mod wire;

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use cqd2_cq::eval::with_sequential_bags;
use cqd2_cq::sync::lock_or_poison;
use cqd2_cq::ConjunctiveQuery;

use crate::catalog::Catalog;
use crate::engine::{Engine, Workload};
use crate::error::EngineError;
use crate::metrics::{Counter, Gauge, Histogram, Phase, QueryTrace, Snapshot};
use crate::session::{PreparedQuery, Session};
use crate::textio::{self, ParseError};

use frame::{FrameError, FrameReader, FrameType, PollError, ReadEvent};
use queue::{JobQueue, PushError};
use wire::{
    ErrorCode, WireBound, WireCatalog, WireCatalogDb, WireDbStats, WireDone, WireError,
    WireHistogram, WireReloaded, WireResult, WireStats, WireTrace,
};

// ---------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing queries; 0 = available parallelism.
    pub workers: usize,
    /// Bounded request-queue capacity — the backpressure point. A
    /// `Query` frame arriving while the queue holds this many pending
    /// batches is rejected with an `Overloaded` error frame.
    pub queue_capacity: usize,
    /// Per-database prepared-query cache capacity (distinct query
    /// texts whose planned + materialized handles are kept warm).
    pub prepared_capacity: usize,
    /// Maximum accepted frame payload, in bytes.
    pub max_frame_len: u32,
    /// How often idle loops poll the shutdown flag (accept loop and
    /// per-connection read timeouts).
    pub poll_interval: Duration,
    /// At shutdown, how long a connection waits for its in-flight
    /// batches to drain before closing anyway.
    pub drain_timeout: Duration,
    /// Whether `Reload` admin frames are accepted (`--allow-reload`).
    /// Off by default: a reload mutates served data, so it must be
    /// opted into; without it, `Reload` gets a typed `Unauthorized`
    /// error frame.
    pub allow_reload: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue_capacity: 64,
            prepared_capacity: 256,
            max_frame_len: 16 * 1024 * 1024,
            poll_interval: Duration::from_millis(20),
            drain_timeout: Duration::from_secs(5),
            allow_reload: false,
        }
    }
}

// ---------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------

/// What can go wrong at the serving front-end — the top of the typed
/// error hierarchy ([`EngineError`] → [`cqd2_cq::eval::EvalError`],
/// [`ParseError`], [`FrameError`] all chain below it via `source`).
#[derive(Debug)]
pub enum ServerError {
    /// A socket operation failed.
    Io(io::Error),
    /// The peer violated the frame protocol.
    Frame(FrameError),
    /// The engine failed while planning, evaluating, or touching the
    /// catalog (unknown or duplicate database names included).
    Engine(EngineError),
    /// A workload / database / query-batch text failed to parse.
    Parse(ParseError),
    /// A payload that should have been JSON did not decode.
    Decode(String),
    /// The server answered with a typed error frame (client side).
    Rejected(WireError),
    /// The server sent a frame the client did not expect in this state.
    UnexpectedFrame(FrameType),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "socket error: {e}"),
            ServerError::Frame(e) => write!(f, "protocol error: {e}"),
            ServerError::Engine(e) => write!(f, "engine error: {e}"),
            ServerError::Parse(e) => write!(f, "parse error: {e}"),
            ServerError::Decode(msg) => write!(f, "malformed JSON payload: {msg}"),
            ServerError::Rejected(e) => {
                write!(
                    f,
                    "server rejected the request ({:?}): {}",
                    e.code, e.message
                )
            }
            ServerError::UnexpectedFrame(t) => write!(f, "unexpected {t:?} frame"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Frame(e) => Some(e),
            ServerError::Engine(e) => Some(e),
            ServerError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> ServerError {
        ServerError::Io(e)
    }
}

impl From<FrameError> for ServerError {
    fn from(e: FrameError) -> ServerError {
        ServerError::Frame(e)
    }
}

impl From<EngineError> for ServerError {
    fn from(e: EngineError) -> ServerError {
        ServerError::Engine(e)
    }
}

impl From<ParseError> for ServerError {
    fn from(e: ParseError) -> ServerError {
        ServerError::Parse(e)
    }
}

impl From<PollError> for ServerError {
    fn from(e: PollError) -> ServerError {
        match e {
            PollError::Io(e) => ServerError::Io(e),
            PollError::Frame(e) => ServerError::Frame(e),
        }
    }
}

// ---------------------------------------------------------------------
// Stats and the metrics registry.
// ---------------------------------------------------------------------

/// Server-wide monotonic counters, built on the lock-free
/// [`crate::metrics`] primitives (one shared instance per server).
#[derive(Debug, Default)]
struct StatsInner {
    connections: Counter,
    frames: Counter,
    batches: Counter,
    queries: Counter,
    answered: Counter,
    rejected_overload: Counter,
    parse_errors: Counter,
    protocol_errors: Counter,
    internal_errors: Counter,
    prepared_hits: Counter,
    prepared_misses: Counter,
    reloads: Counter,
    rejected_unauthorized: Counter,
    store_errors: Counter,
    bags_rewritten: Counter,
    bags_total: Counter,
    delta_batches: Counter,
    facts_inserted: Counter,
    facts_deleted: Counter,
    bags_remat: Counter,
    delta_errors: Counter,
}

impl StatsInner {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.get(),
            frames: self.frames.get(),
            batches: self.batches.get(),
            queries: self.queries.get(),
            answered: self.answered.get(),
            rejected_overload: self.rejected_overload.get(),
            parse_errors: self.parse_errors.get(),
            protocol_errors: self.protocol_errors.get(),
            internal_errors: self.internal_errors.get(),
            prepared_hits: self.prepared_hits.get(),
            prepared_misses: self.prepared_misses.get(),
            reloads: self.reloads.get(),
            rejected_unauthorized: self.rejected_unauthorized.get(),
            store_errors: self.store_errors.get(),
            bags_rewritten: self.bags_rewritten.get(),
            bags_total: self.bags_total.get(),
            delta_batches: self.delta_batches.get(),
            facts_inserted: self.facts_inserted.get(),
            facts_deleted: self.facts_deleted.get(),
            bags_remat: self.bags_remat.get(),
            delta_errors: self.delta_errors.get(),
        }
    }
}

/// One served database's slice of the metrics registry: request/error
/// counters plus the per-query server-latency histogram the serve path
/// populates on every answer (traced or not).
#[derive(Debug, Default)]
struct DbMetrics {
    batches: Counter,
    queries: Counter,
    errors: Counter,
    overloads: Counter,
    prepared_hits: Counter,
    prepared_misses: Counter,
    /// Bag nodes the overlay tree passes rewrote (copied + filtered),
    /// summed over every answered GHD-plan query.
    bags_rewritten: Counter,
    /// Bag nodes those passes visited in total; `rewritten / total` is
    /// the production overlay-sparsity ratio (0 = ideal warm serving:
    /// every run was pure probing over the shared materialization).
    bags_total: Counter,
    /// Delta batches successfully merged into this database.
    delta_batches: Counter,
    /// Facts those deltas inserted (no-op inserts excluded).
    facts_inserted: Counter,
    /// Facts those deltas deleted (no-op deletes excluded).
    facts_deleted: Counter,
    /// Bag-tree nodes re-materialized while migrating this database's
    /// prepared handles warm across delta epochs (dirty spines only).
    bags_remat: Counter,
    latency: Histogram,
}

/// The server's metrics registry: lifetime counters, the
/// active-connections gauge, and one [`DbMetrics`] per served name
/// (parallel to the name snapshot [`Server::run`] takes). Created when
/// the server starts serving and shared with [`ServerHandle`] so stats
/// can be read from outside the serving thread (the `--stats-interval`
/// dump).
#[derive(Debug)]
struct ServerMetrics {
    started: Instant,
    totals: StatsInner,
    active_connections: Gauge,
    per_db: Vec<DbMetrics>,
}

impl ServerMetrics {
    fn new(n_dbs: usize) -> ServerMetrics {
        ServerMetrics {
            started: Instant::now(),
            totals: StatsInner::default(),
            active_connections: Gauge::new(),
            per_db: (0..n_dbs).map(|_| DbMetrics::default()).collect(),
        }
    }

    /// The server-wide latency distribution: every database's histogram
    /// merged into one [`Snapshot`].
    fn merged_latency(&self) -> Snapshot {
        let mut merged = Snapshot::empty();
        for db in &self.per_db {
            merged.merge(&db.latency.snapshot());
        }
        merged
    }

    /// The one-line summary `cqd2-serve --stats-interval` prints.
    fn one_line(&self) -> String {
        let t = self.totals.snapshot();
        let lat = self.merged_latency();
        format!(
            "stats — uptime {}s, conns {} ({} active), batches {}, answered {}, \
             overloaded {}, errors {}, prepared {}/{} hit/miss, reloads {}, \
             deltas {} (+{} −{} facts), bags {}/{} rewritten, \
             latency p50 {}µs p99 {}µs max {}µs",
            self.started.elapsed().as_secs(),
            t.connections,
            self.active_connections.value(),
            t.batches,
            t.answered,
            t.rejected_overload,
            t.parse_errors + t.protocol_errors + t.internal_errors,
            t.prepared_hits,
            t.prepared_misses,
            t.reloads,
            t.delta_batches,
            t.facts_inserted,
            t.facts_deleted,
            t.bags_rewritten,
            t.bags_total,
            lat.p50(),
            lat.p99(),
            lat.max(),
        )
    }
}

/// A snapshot of the server's counters, returned by [`Server::run`] at
/// shutdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Frames received.
    pub frames: u64,
    /// Query batches accepted onto the queue.
    pub batches: u64,
    /// Queries received inside accepted batches.
    pub queries: u64,
    /// Queries answered with a `Result` frame.
    pub answered: u64,
    /// Batches rejected with `Overloaded` (backpressure).
    pub rejected_overload: u64,
    /// Payloads rejected with `Parse`.
    pub parse_errors: u64,
    /// Connections dropped for frame-protocol violations.
    pub protocol_errors: u64,
    /// Batches aborted by engine-internal errors.
    pub internal_errors: u64,
    /// Executions that reused a warm prepared-query handle.
    pub prepared_hits: u64,
    /// Executions that prepared (planned + materialized) fresh —
    /// including re-prepares forced by an epoch bump after a reload.
    pub prepared_misses: u64,
    /// Successful `Reload` publications ([`Catalog::swap`]s).
    pub reloads: u64,
    /// `Reload` frames rejected because the server runs without
    /// `allow_reload`.
    pub rejected_unauthorized: u64,
    /// `Reload { path }` frames rejected because the named snapshot
    /// file was missing, unreadable, corrupt, or version-skewed (the
    /// old epoch kept serving every time).
    pub store_errors: u64,
    /// Bag nodes rewritten (copied + filtered) by overlay tree passes
    /// across all answered GHD-plan queries.
    pub bags_rewritten: u64,
    /// Bag nodes visited by those passes in total. The ratio
    /// `bags_rewritten / bags_total` is the serving fleet's overlay
    /// sparsity; 0 means every warm run was copy-free.
    pub bags_total: u64,
    /// Successful `Delta` frame applications (structural-sharing epoch
    /// publications).
    pub delta_batches: u64,
    /// Facts inserted by delta batches (no-op inserts excluded).
    pub facts_inserted: u64,
    /// Facts deleted by delta batches (no-op deletes excluded).
    pub facts_deleted: u64,
    /// Bag-tree nodes re-materialized by warm prepared-handle
    /// migrations across delta epochs.
    pub bags_remat: u64,
    /// `Delta` frames rejected by the delta kernel (unknown relation or
    /// arity mismatch); the serving epoch stayed unmoved every time.
    pub delta_errors: u64,
}

// ---------------------------------------------------------------------
// Prepared-query cache.
// ---------------------------------------------------------------------

/// Per-database cache of warm, **owned** [`PreparedQuery`] handles,
/// keyed by the query's canonical rendering
/// ([`ConjunctiveQuery::display`]) and validated by catalog **epoch**:
/// each handle pins the snapshot it was prepared against, and a lookup
/// for a newer epoch treats the entry as stale — it is dropped on the
/// spot, never served. Bounded FIFO: when full, the oldest entry is
/// evicted (repeated-workload serving re-prepares it on next use; the
/// engine's isomorphism-keyed plan cache still amortizes the structure
/// analysis underneath).
struct PreparedCache {
    capacity: usize,
    map: HashMap<String, Arc<PreparedQuery>>,
    order: VecDeque<String>,
}

impl PreparedCache {
    fn new(capacity: usize) -> PreparedCache {
        PreparedCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// The warm handle for `key` at exactly `epoch`. A handle from an
    /// *older* epoch is stale (its data was reloaded away): it is
    /// removed and the lookup misses, so the caller re-prepares against
    /// its own pinned snapshot. A handle from a *newer* epoch also
    /// misses — the caller is a lagging batch pinned to a pre-reload
    /// snapshot — but stays cached: evicting it would make interleaved
    /// old- and new-epoch batches ping-pong the entry and re-pay the
    /// `O(‖D‖^width)` materialization on every lookup.
    fn get(&mut self, key: &str, epoch: u64) -> Option<Arc<PreparedQuery>> {
        match self.map.get(key) {
            Some(p) if p.epoch() == epoch => Some(Arc::clone(p)),
            Some(p) if p.epoch() < epoch => {
                self.map.remove(key);
                self.order.retain(|k| k != key);
                None
            }
            _ => None,
        }
    }

    fn insert(&mut self, key: String, prepared: Arc<PreparedQuery>) {
        if let Some(existing) = self.map.get_mut(&key) {
            // Another worker prepared the same text concurrently: keep
            // whichever pins the newer epoch (ties keep the first).
            if prepared.epoch() > existing.epoch() {
                *existing = prepared;
            }
            return;
        }
        while self.map.len() >= self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                }
                None => break,
            }
        }
        self.order.push_back(key.clone());
        self.map.insert(key, prepared);
    }

    /// Drop every entry not pinning `current_epoch` (called after a
    /// reload so stale bag trees release their memory eagerly instead
    /// of waiting to be looked up). Returns how many were dropped.
    fn purge_stale(&mut self, current_epoch: u64) -> usize {
        let before = self.map.len();
        self.map.retain(|_, p| p.epoch() == current_epoch);
        let map = &self.map;
        self.order.retain(|k| map.contains_key(k));
        before - self.map.len()
    }

    /// Migrate this cache across a delta epoch *without* purging it —
    /// the whole point of the update plane. Entries pinned to the
    /// pre-delta epoch are rebased warm ([`PreparedQuery::rebase`]:
    /// only the bags whose relations the delta touched are
    /// re-materialized; the clean spine keeps its `Arc`s and probe
    /// caches). Handles that cannot rebase (naive-plan cores carry no
    /// bag tree) are re-prepared via `reprepare` and marked
    /// `re-prepared`; entries from even older epochs are dropped as in
    /// [`PreparedCache::purge_stale`].
    fn refresh_after_delta(
        &mut self,
        outcome: &crate::delta::DeltaOutcome,
        reprepare: impl Fn(&ConjunctiveQuery) -> Option<PreparedQuery>,
    ) -> DeltaCacheRefresh {
        let mut refresh = DeltaCacheRefresh::default();
        let previous = outcome.previous.epoch();
        let mut dropped: Vec<String> = Vec::new();
        for (key, entry) in self.map.iter_mut() {
            if entry.epoch() > previous {
                continue; // already at (or past) the new epoch
            }
            if entry.epoch() < previous {
                dropped.push(key.clone()); // was stale before this delta
                continue;
            }
            match entry.rebase(&outcome.snapshot, &outcome.touched) {
                Some((warm, pass)) => {
                    *entry = Arc::new(warm);
                    refresh.warm += 1;
                    refresh.bags_remat += pass.rewritten as u64;
                }
                None => match reprepare(entry.query()) {
                    Some(mut fresh) => {
                        fresh.mark_re_prepared();
                        *entry = Arc::new(fresh);
                        refresh.reprepared += 1;
                    }
                    None => dropped.push(key.clone()),
                },
            }
        }
        for key in &dropped {
            self.map.remove(key);
        }
        let map = &self.map;
        self.order.retain(|k| map.contains_key(k));
        refresh
    }
}

/// What [`PreparedCache::refresh_after_delta`] did to a database's warm
/// handles — reported in the `DeltaApplied` frame and folded into the
/// delta metrics.
#[derive(Debug, Default, Clone, Copy)]
struct DeltaCacheRefresh {
    /// Handles migrated warm (dirty-spine refresh, `warm-overlay`).
    warm: u64,
    /// Handles re-prepared from scratch (`re-prepared`).
    reprepared: u64,
    /// Bag nodes re-materialized across all warm migrations.
    bags_remat: u64,
}

// ---------------------------------------------------------------------
// Connection plumbing.
// ---------------------------------------------------------------------

/// The write half of a connection, shared between its reader thread and
/// the workers answering its batches. The mutex keeps frames atomic on
/// the wire; `pending` counts batches accepted but not yet fully
/// answered, so shutdown can drain before closing.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    pending: AtomicU64,
}

impl ConnWriter {
    fn send(&self, frame_type: FrameType, payload: &[u8]) -> io::Result<()> {
        let mut stream = lock_or_poison(&self.stream);
        frame::write_frame(&mut *stream, frame_type, payload)
    }

    fn send_json<T: serde::Serialize>(&self, frame_type: FrameType, payload: &T) -> io::Result<()> {
        self.send(frame_type, serde::json::to_string(payload).as_bytes())
    }

    fn send_error(
        &self,
        request: Option<u64>,
        code: ErrorCode,
        message: impl Into<String>,
        line: Option<u64>,
    ) -> io::Result<()> {
        self.send_json(
            FrameType::Error,
            &WireError {
                request,
                code,
                message: message.into(),
                line,
                queue_depth: None,
                queue_capacity: None,
            },
        )
    }
}

/// One query of a batch, ready to execute.
struct QueryItem {
    query: ConjunctiveQuery,
    /// Prepared-cache key: the query's canonical rendering.
    key: String,
    workload: Workload,
}

/// One accepted `Query` frame: the batch, the owned session pinning the
/// snapshot it runs against, where to answer — plus the observability
/// context (receipt/enqueue timestamps, the already-measured parse
/// span, and whether the client asked for trace spans).
struct Job<'e> {
    /// Owned session pinning the catalog snapshot that was current when
    /// the batch was accepted — a concurrent reload cannot change what
    /// this batch answers.
    session: Session,
    prepared: &'e Mutex<PreparedCache>,
    writer: Arc<ConnWriter>,
    request: u64,
    items: Vec<QueryItem>,
    /// Index of the bound database in the server's name snapshot (for
    /// the per-database metrics slice).
    db_index: usize,
    /// When the `Query` frame was received — the zero point of every
    /// `server_micros` this batch reports.
    received_at: Instant,
    /// When the batch was accepted onto the queue (queue-wait span).
    enqueued_at: Instant,
    /// Time the connection thread spent parsing the batch text.
    parse: Duration,
    /// Whether the batch carried `@trace`: attach a span breakdown to
    /// every `Result` frame.
    trace: bool,
}

/// Everything a connection thread needs, borrowed from [`Server::run`]'s
/// stack (all threads are scoped, so plain references suffice).
struct ConnCtx<'e> {
    engine: &'e Engine,
    catalog: &'e Catalog,
    /// The names served (snapshotted at startup — reloads swap content,
    /// they never add or remove names).
    names: &'e [String],
    caches: &'e [Mutex<PreparedCache>],
    queue: &'e JobQueue<Job<'e>>,
    config: &'e ServerConfig,
    shutdown: &'e AtomicBool,
    metrics: &'e ServerMetrics,
}

impl<'e> Clone for ConnCtx<'e> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'e> Copy for ConnCtx<'e> {}

impl<'e> ConnCtx<'e> {
    fn name_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }
}

// ---------------------------------------------------------------------
// The server.
// ---------------------------------------------------------------------

/// A bound-but-not-yet-running server: holds the listening socket, the
/// shutdown flag, and the (not-yet-initialized) metrics slot.
/// [`Server::run`] blocks the calling thread until shutdown.
pub struct Server {
    listener: TcpListener,
    /// Resolved once at [`Server::bind`] time, so handles never need a
    /// fallible `local_addr` syscall after the fact.
    addr: SocketAddr,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    /// Set by [`Server::run`] once the served names are known (the
    /// registry holds one slice per name); handles cloned before that
    /// see `None` from the stats accessors.
    metrics: Arc<OnceLock<Arc<ServerMetrics>>>,
}

/// A cheap cloneable handle for stopping a running [`Server`] from
/// another thread (or a signal handler — see
/// [`signal::install_shutdown_signals`]) and for reading its live
/// serving statistics (the `--stats-interval` dump).
#[derive(Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
    metrics: Arc<OnceLock<Arc<ServerMetrics>>>,
}

impl ServerHandle {
    /// Request a graceful shutdown: stop accepting, drain accepted
    /// work, notify connections, return from [`Server::run`].
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The server's listening address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The raw shutdown flag (what the signal handler stores through).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// A live snapshot of the server's lifetime counters, or `None`
    /// before [`Server::run`] has started serving.
    pub fn stats(&self) -> Option<ServerStats> {
        self.metrics.get().map(|m| m.totals.snapshot())
    }

    /// The one-line stats summary `cqd2-serve --stats-interval` prints
    /// (counters + merged latency quantiles), or `None` before
    /// [`Server::run`] has started serving.
    pub fn stats_line(&self) -> Option<String> {
        self.metrics.get().map(|m| m.one_line())
    }
}

impl Server {
    /// Bind the listening socket. `addr` may use port 0 to let the OS
    /// pick (see [`Server::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            metrics: Arc::new(OnceLock::new()),
        })
    }

    /// The bound listening address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        Ok(self.addr)
    }

    /// A shutdown handle for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
            addr: self.addr,
            metrics: Arc::clone(&self.metrics),
        }
    }

    /// Serve until shutdown. Blocks the calling thread; all worker and
    /// connection threads are scoped inside, so `engine` and `catalog`
    /// are plain borrows — no leaking, no `'static` bounds. The set of
    /// served *names* is snapshotted here (one epoch-validated
    /// prepared-query cache per name); the *content* behind each name
    /// is resolved from the catalog per accepted batch, which is what
    /// makes `Reload` visible to new work while in-flight batches keep
    /// their pinned snapshots.
    ///
    /// Returns the final [`ServerStats`] once every thread has exited.
    pub fn run(self, engine: &Engine, catalog: &Catalog) -> io::Result<ServerStats> {
        let Server {
            listener,
            addr: _,
            config,
            shutdown,
            metrics: metrics_slot,
        } = self;
        listener.set_nonblocking(true)?;
        let names: Vec<String> = catalog.names();
        let caches: Vec<Mutex<PreparedCache>> = names
            .iter()
            .map(|_| Mutex::new(PreparedCache::new(config.prepared_capacity)))
            .collect();
        // Publish the registry so handles (e.g. the `--stats-interval`
        // dump thread) can read live stats while we serve.
        let metrics: &ServerMetrics =
            metrics_slot.get_or_init(|| Arc::new(ServerMetrics::new(names.len())));
        let queue: JobQueue<Job<'_>> = JobQueue::new(config.queue_capacity);
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            config.workers
        };
        // When several workers share the machine, nested intra-query bag
        // parallelism would oversubscribe it.
        let sequential_bags = workers > 1;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let queue = &queue;
                scope.spawn(move || worker_loop(queue, metrics, sequential_bags));
            }
            let ctx = ConnCtx {
                engine,
                catalog,
                names: &names,
                caches: &caches,
                queue: &queue,
                config: &config,
                shutdown: &shutdown,
                metrics,
            };
            while !shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        metrics.totals.connections.inc();
                        scope.spawn(move || conn_loop(ctx, stream));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(config.poll_interval);
                    }
                    Err(_) => {
                        // Transient accept failure (e.g. aborted
                        // handshake): keep serving.
                        std::thread::sleep(config.poll_interval);
                    }
                }
            }
            // Shutdown: refuse new work, let workers drain what was
            // accepted. Connection threads observe the flag themselves.
            queue.close();
        });
        Ok(metrics.totals.snapshot())
    }
}

// ---------------------------------------------------------------------
// Worker side.
// ---------------------------------------------------------------------

fn worker_loop(queue: &JobQueue<Job<'_>>, metrics: &ServerMetrics, sequential_bags: bool) {
    while let Some(job) = queue.pop() {
        execute_job(job, metrics, sequential_bags);
    }
}

/// Saturating whole-microseconds rendering of a duration.
fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Execute one accepted batch: resolve (or prepare) each query's warm
/// handle against the batch's pinned epoch, run it, frame the answer.
/// Any error frame terminates the batch (no `Done` follows), matching
/// the protocol's "error ends the request" rule.
///
/// Observability: every answered query stamps `server_micros` (receipt
/// of the `Query` frame → the result handed to the socket) and records
/// it into the database's latency histogram; when the batch carried
/// `@trace`, a [`QueryTrace`] is assembled per query from disjoint
/// phase sub-intervals (so the span sum never exceeds `server_micros`)
/// and attached to the `Result` payload.
fn execute_job(job: Job<'_>, metrics: &ServerMetrics, sequential_bags: bool) {
    let db_metrics = &metrics.per_db[job.db_index];
    let queue_wait = job.enqueued_at.elapsed();
    let epoch = job.session.epoch();
    let mut results = 0u64;
    for (index, item) in job.items.iter().enumerate() {
        let cached = {
            let mut cache = lock_or_poison(job.prepared);
            cache.get(&item.key, epoch)
        };
        let (prepared, prepared_hit) = match cached {
            Some(p) => (p, true),
            None => {
                // Prepare outside the cache lock: planning and bag
                // materialization are the expensive part, and other
                // workers must stay free to hit the cache meanwhile. A
                // concurrent duplicate prepare is possible and benign
                // (the cache keeps the newest epoch). The handle is
                // prepared on the *pinned* session, so even a reload
                // racing this prepare cannot mix epochs within the
                // batch.
                match job.session.prepare(&item.query) {
                    Ok(p) => {
                        let p = Arc::new(p);
                        lock_or_poison(job.prepared).insert(item.key.clone(), Arc::clone(&p));
                        (p, false)
                    }
                    Err(e) => {
                        metrics.totals.internal_errors.inc();
                        db_metrics.errors.inc();
                        let _ = job.writer.send_error(
                            Some(job.request),
                            ErrorCode::Internal,
                            format!("query {index}: {e}"),
                            None,
                        );
                        job.writer.pending.fetch_sub(1, Ordering::SeqCst);
                        return;
                    }
                }
            }
        };
        if prepared_hit {
            metrics.totals.prepared_hits.inc();
            db_metrics.prepared_hits.inc();
        } else {
            metrics.totals.prepared_misses.inc();
            db_metrics.prepared_misses.inc();
        }
        // Assemble the trace (batch-level phases first) only when the
        // client asked; the latency histograms are fed either way.
        let mut trace = job.trace.then(QueryTrace::new);
        if let Some(t) = trace.as_mut() {
            t.record(Phase::QueueWait, queue_wait);
            t.record(Phase::Parse, job.parse);
            let provenance = format!(
                "{} ({} | cache {} | prepared {})",
                prepared.plan(item.workload).plan.strategy(),
                item.workload.name(),
                if prepared.cache_hit() { "hit" } else { "miss" },
                if prepared_hit { "hit" } else { "miss" },
            );
            // Planning and materialization were paid at prepare time:
            // they belong to this request only on a prepared-cache miss.
            let (plan, materialize) = if prepared_hit {
                (Duration::ZERO, Duration::ZERO)
            } else {
                (prepared.planning_time(), prepared.preprocessing_time())
            };
            t.record_with(Phase::Plan, plan, provenance);
            t.record(Phase::Materialize, materialize);
        }
        let resp = match trace.as_mut() {
            Some(t) if sequential_bags => {
                with_sequential_bags(|| prepared.run_traced(item.workload, t))
            }
            Some(t) => prepared.run_traced(item.workload, t),
            None if sequential_bags => with_sequential_bags(|| prepared.run(item.workload)),
            None => prepared.run(item.workload),
        };
        // Overlay-sparsity accounting: how much of the prepared bag
        // tree this run had to copy (0 rewritten = fully copy-free).
        if let Some(bags) = &resp.provenance.bags {
            metrics
                .totals
                .bags_rewritten
                .add(bags.bags_rewritten as u64);
            metrics.totals.bags_total.add(bags.bags_total as u64);
            db_metrics.bags_rewritten.add(bags.bags_rewritten as u64);
            db_metrics.bags_total.add(bags.bags_total as u64);
        }
        let mut wire = WireResult::from_response(job.request, index as u64, prepared_hit, &resp);
        let payload = match trace {
            Some(mut t) => {
                // Measure serialization on the trace-less payload, then
                // stamp `server_micros` *after* that (all phases are
                // then completed sub-intervals of it) and re-encode
                // with the trace attached. The double encode is paid
                // only by traced batches.
                let ser_start = Instant::now();
                let _ = serde::json::to_string(&wire);
                t.record(Phase::Serialize, ser_start.elapsed());
                wire.server_micros = micros(job.received_at.elapsed());
                wire.trace = Some(WireTrace::from_trace(&t));
                serde::json::to_string(&wire)
            }
            None => {
                wire.server_micros = micros(job.received_at.elapsed());
                serde::json::to_string(&wire)
            }
        };
        db_metrics.latency.record(wire.server_micros);
        if job
            .writer
            .send(FrameType::Result, payload.as_bytes())
            .is_err()
        {
            // Client went away; drop the rest of the batch.
            job.writer.pending.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        results += 1;
        metrics.totals.answered.inc();
        db_metrics.queries.inc();
    }
    let _ = job.writer.send_json(
        FrameType::Done,
        &WireDone {
            request: job.request,
            results,
            server_micros: micros(job.received_at.elapsed()),
        },
    );
    job.writer.pending.fetch_sub(1, Ordering::SeqCst);
}

// ---------------------------------------------------------------------
// Connection side.
// ---------------------------------------------------------------------

/// Decrements the active-connections gauge when a connection thread
/// exits, whichever of `conn_loop`'s many return paths it takes.
struct ActiveConnGuard<'e>(&'e Gauge);

impl Drop for ActiveConnGuard<'_> {
    fn drop(&mut self) {
        self.0.dec();
    }
}

fn conn_loop(ctx: ConnCtx<'_>, stream: TcpStream) {
    ctx.metrics.active_connections.inc();
    let _active = ActiveConnGuard(&ctx.metrics.active_connections);
    if stream
        .set_read_timeout(Some(ctx.config.poll_interval))
        .is_err()
    {
        return;
    }
    // Result frames are small and latency-sensitive; don't let Nagle
    // batch them against the client's next read.
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(ConnWriter {
            stream: Mutex::new(w),
            pending: AtomicU64::new(0),
        }),
        Err(_) => return,
    };
    let mut stream = stream;
    let mut reader = FrameReader::new(ctx.config.max_frame_len);
    let mut seq: u64 = 0;
    let mut bound: Option<usize> = None;
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            drain_then_goodbye(ctx, &writer);
            return;
        }
        match reader.poll(&mut stream) {
            Ok(ReadEvent::Idle) => continue,
            Ok(ReadEvent::Closed) => return,
            Ok(ReadEvent::Frame(f)) => {
                // The zero point of this request's `server_micros`.
                let received_at = Instant::now();
                seq += 1;
                ctx.metrics.totals.frames.inc();
                match f.frame_type {
                    FrameType::Bind => {
                        bound = handle_bind(ctx, &writer, seq, &f, received_at).or(bound);
                    }
                    FrameType::Query => {
                        if !handle_query(ctx, &writer, seq, bound, &f, received_at) {
                            return;
                        }
                    }
                    FrameType::Reload => {
                        handle_reload(ctx, &writer, seq, &f, received_at);
                    }
                    FrameType::Delta => {
                        handle_delta(ctx, &writer, seq, &f, received_at);
                    }
                    FrameType::CatalogInfo => {
                        handle_catalog_info(ctx, &writer, seq, received_at);
                    }
                    FrameType::Stats => {
                        handle_stats(ctx, &writer, seq, received_at);
                    }
                    // Server→client frame types are never valid inbound.
                    FrameType::Bound
                    | FrameType::Result
                    | FrameType::Done
                    | FrameType::Reloaded
                    | FrameType::Catalog
                    | FrameType::StatsReport
                    | FrameType::DeltaApplied
                    | FrameType::Error => {
                        ctx.metrics.totals.protocol_errors.inc();
                        let _ = writer.send_error(
                            Some(seq),
                            ErrorCode::BadFrame,
                            format!("{:?} frames are server→client only", f.frame_type),
                            None,
                        );
                        return;
                    }
                }
            }
            Err(PollError::Frame(e)) => {
                ctx.metrics.totals.protocol_errors.inc();
                let code = match e {
                    FrameError::Version(_) => ErrorCode::Version,
                    _ => ErrorCode::BadFrame,
                };
                let _ = writer.send_error(None, code, e.to_string(), None);
                return;
            }
            Err(PollError::Io(_)) => return,
        }
    }
}

/// Answer a `Bind` frame. Returns the newly bound database index, or
/// `None` if the bind failed (the connection keeps any previous bind).
fn handle_bind(
    ctx: ConnCtx<'_>,
    writer: &ConnWriter,
    seq: u64,
    f: &frame::Frame,
    received_at: Instant,
) -> Option<usize> {
    let name = match f.text() {
        Ok(name) => name.trim(),
        Err(e) => {
            ctx.metrics.totals.protocol_errors.inc();
            let _ = writer.send_error(Some(seq), ErrorCode::BadFrame, e.to_string(), None);
            return None;
        }
    };
    match (ctx.name_index(name), ctx.catalog.get(name)) {
        (Some(i), Some(snapshot)) => {
            let _ = writer.send_json(
                FrameType::Bound,
                &WireBound {
                    request: seq,
                    db: name.to_string(),
                    facts: snapshot.db().size() as u64,
                    relations: snapshot.db().relations().count() as u64,
                    epoch: snapshot.epoch(),
                    server_micros: micros(received_at.elapsed()),
                },
            );
            Some(i)
        }
        _ => {
            let _ = writer.send_error(
                Some(seq),
                ErrorCode::UnknownDb,
                format!("no database `{name}` (serving: {})", ctx.names.join(", ")),
                None,
            );
            None
        }
    }
}

/// Answer a `Query` frame: parse, pin the current snapshot, then
/// enqueue (or reject). Returns `false` when the connection must close
/// (shutdown).
fn handle_query(
    ctx: ConnCtx<'_>,
    writer: &Arc<ConnWriter>,
    seq: u64,
    bound: Option<usize>,
    f: &frame::Frame,
    received_at: Instant,
) -> bool {
    let Some(db_index) = bound else {
        let _ = writer.send_error(
            Some(seq),
            ErrorCode::NotBound,
            "no database bound — send a Bind frame first",
            None,
        );
        return true;
    };
    let db_metrics = &ctx.metrics.per_db[db_index];
    let text = match f.text() {
        Ok(t) => t,
        Err(e) => {
            ctx.metrics.totals.protocol_errors.inc();
            let _ = writer.send_error(Some(seq), ErrorCode::BadFrame, e.to_string(), None);
            return true;
        }
    };
    let parse_started = Instant::now();
    let batch = match textio::parse_query_batch(text) {
        Ok(b) => b,
        Err(e) => {
            ctx.metrics.totals.parse_errors.inc();
            db_metrics.errors.inc();
            let _ = writer.send_error(
                Some(seq),
                ErrorCode::Parse,
                e.message.clone(),
                e.line.map(|l| l as u64),
            );
            return true;
        }
    };
    let parse = parse_started.elapsed();
    // Pin the catalog's current snapshot *now*: the batch executes
    // against exactly this epoch no matter how many reloads land while
    // it waits in the queue or streams its results.
    let session = match ctx.engine.session_in(ctx.catalog, &ctx.names[db_index]) {
        Ok(s) => s,
        Err(e) => {
            // Unreachable while names never leave the catalog, but keep
            // it a typed frame rather than a panic.
            let _ = writer.send_error(Some(seq), ErrorCode::UnknownDb, e.to_string(), None);
            return true;
        }
    };
    let trace = batch.trace;
    let items: Vec<QueryItem> = batch
        .queries
        .into_iter()
        .map(|(query, mode)| QueryItem {
            key: query.display(),
            query,
            workload: mode.unwrap_or(Workload::Boolean),
        })
        .collect();
    let n_queries = items.len() as u64;
    writer.pending.fetch_add(1, Ordering::SeqCst);
    let job = Job {
        session,
        prepared: &ctx.caches[db_index],
        writer: Arc::clone(writer),
        request: seq,
        items,
        db_index,
        received_at,
        enqueued_at: Instant::now(),
        parse,
        trace,
    };
    match ctx.queue.try_push(job) {
        Ok(()) => {
            ctx.metrics.totals.batches.inc();
            ctx.metrics.totals.queries.add(n_queries);
            db_metrics.batches.inc();
            true
        }
        Err(PushError::Full(job)) => {
            job.writer.pending.fetch_sub(1, Ordering::SeqCst);
            ctx.metrics.totals.rejected_overload.inc();
            db_metrics.overloads.inc();
            // The Overloaded frame carries the live queue picture so
            // clients can make an informed backoff decision.
            let _ = writer.send_json(
                FrameType::Error,
                &WireError {
                    request: Some(seq),
                    code: ErrorCode::Overloaded,
                    message: format!(
                        "request queue full ({} pending batches) — retry later",
                        ctx.config.queue_capacity
                    ),
                    line: None,
                    queue_depth: Some(ctx.queue.len() as u64),
                    queue_capacity: Some(ctx.queue.capacity() as u64),
                },
            );
            true
        }
        Err(PushError::Closed(job)) => {
            job.writer.pending.fetch_sub(1, Ordering::SeqCst);
            let _ = writer.send_error(
                Some(seq),
                ErrorCode::ShuttingDown,
                "server is shutting down",
                None,
            );
            false
        }
    }
}

/// Answer a `Reload` admin frame: authorize, parse (first payload line
/// = database name, rest = facts), swap the catalog, purge the name's
/// stale prepared handles, answer `Reloaded`. Handled inline on the
/// connection thread — reloads are rare control-plane work and must
/// not compete with queries for worker slots (and the swap itself
/// never blocks query execution: in-flight batches hold their own
/// pins).
fn handle_reload(
    ctx: ConnCtx<'_>,
    writer: &ConnWriter,
    seq: u64,
    f: &frame::Frame,
    received_at: Instant,
) {
    if !ctx.config.allow_reload {
        ctx.metrics.totals.rejected_unauthorized.inc();
        let _ = writer.send_error(
            Some(seq),
            ErrorCode::Unauthorized,
            "this server does not accept reloads (start it with --allow-reload)",
            None,
        );
        return;
    }
    let text = match f.text() {
        Ok(t) => t,
        Err(e) => {
            ctx.metrics.totals.protocol_errors.inc();
            let _ = writer.send_error(Some(seq), ErrorCode::BadFrame, e.to_string(), None);
            return;
        }
    };
    let (name, facts) = match text.split_once('\n') {
        Some((first, rest)) => (first.trim(), rest),
        None => (text.trim(), ""),
    };
    // An unknown name is not a parse failure: answer the typed frame
    // without touching any counter, exactly like `handle_bind`.
    let Some(db_index) = ctx.name_index(name) else {
        let _ = writer.send_error(
            Some(seq),
            ErrorCode::UnknownDb,
            format!("no database `{name}` (serving: {})", ctx.names.join(", ")),
            None,
        );
        return;
    };
    // Payload form 2: `@snapshot <path>` names a server-local `.cqds`
    // file to swap in ([`crate::store`]) instead of inline facts. The
    // `@` sigil cannot collide with facts text (the facts grammar
    // rejects `@` lines), and the path is resolved by the *server*
    // process — the client ships a name, never file contents.
    let swapped = match facts.trim().strip_prefix("@snapshot") {
        Some(path) => {
            let path = path.trim();
            if path.is_empty() {
                ctx.metrics.totals.protocol_errors.inc();
                let _ = writer.send_error(
                    Some(seq),
                    ErrorCode::BadFrame,
                    "@snapshot needs a server-local file path",
                    None,
                );
                return;
            }
            crate::store::swap_snapshot(ctx.catalog, name, path)
        }
        None => ctx.catalog.swap_str(name, facts),
    };
    let snapshot = match swapped {
        Ok(s) => s,
        Err(EngineError::Store(e)) => {
            // A bad file is the operator's problem, not the server's:
            // typed code, old epoch untouched and still serving.
            ctx.metrics.totals.store_errors.inc();
            let _ = writer.send_error(Some(seq), ErrorCode::Store, e.to_string(), None);
            return;
        }
        Err(EngineError::Parse(e)) => {
            ctx.metrics.totals.parse_errors.inc();
            let _ = writer.send_error(
                Some(seq),
                ErrorCode::Parse,
                e.message.clone(),
                // The facts start on payload line 2 (after the name
                // line); report payload-relative lines.
                e.line.map(|l| l as u64 + 1),
            );
            return;
        }
        Err(e) => {
            ctx.metrics.totals.internal_errors.inc();
            let _ = writer.send_error(Some(seq), ErrorCode::Internal, e.to_string(), None);
            return;
        }
    };
    // Eagerly release the old epoch's pinned bag trees; lookups would
    // drop them lazily anyway, but cold entries could linger.
    lock_or_poison(&ctx.caches[db_index]).purge_stale(snapshot.epoch());
    ctx.metrics.totals.reloads.inc();
    let _ = writer.send_json(
        FrameType::Reloaded,
        &WireReloaded {
            request: seq,
            db: name.to_string(),
            epoch: snapshot.epoch(),
            facts: snapshot.db().size() as u64,
            relations: snapshot.db().relations().count() as u64,
            server_micros: micros(received_at.elapsed()),
        },
    );
}

/// Answer a `Delta` admin frame: authorize (deltas mutate served data,
/// so they ride the same `--allow-reload` gate), parse (first payload
/// line = database name, rest = an `@insert` / `@delete` delta script),
/// merge incrementally via [`Catalog::apply_delta`] — untouched
/// relations are `Arc`-shared into the new epoch — then migrate the
/// name's warm prepared handles across the epoch instead of purging
/// them ([`PreparedCache::refresh_after_delta`]), and answer
/// `DeltaApplied`. Every rejection (unknown name, parse failure, delta
/// kernel refusal) leaves the previously published epoch serving
/// unmoved: the whole batch validates before any merge.
fn handle_delta(
    ctx: ConnCtx<'_>,
    writer: &ConnWriter,
    seq: u64,
    f: &frame::Frame,
    received_at: Instant,
) {
    if !ctx.config.allow_reload {
        ctx.metrics.totals.rejected_unauthorized.inc();
        let _ = writer.send_error(
            Some(seq),
            ErrorCode::Unauthorized,
            "this server does not accept deltas (start it with --allow-reload)",
            None,
        );
        return;
    }
    let text = match f.text() {
        Ok(t) => t,
        Err(e) => {
            ctx.metrics.totals.protocol_errors.inc();
            let _ = writer.send_error(Some(seq), ErrorCode::BadFrame, e.to_string(), None);
            return;
        }
    };
    let (name, script) = match text.split_once('\n') {
        Some((first, rest)) => (first.trim(), rest),
        None => (text.trim(), ""),
    };
    let Some(db_index) = ctx.name_index(name) else {
        let _ = writer.send_error(
            Some(seq),
            ErrorCode::UnknownDb,
            format!("no database `{name}` (serving: {})", ctx.names.join(", ")),
            None,
        );
        return;
    };
    let db_metrics = &ctx.metrics.per_db[db_index];
    let outcome = match crate::delta::apply_delta_text(ctx.catalog, name, script) {
        Ok(o) => o,
        Err(EngineError::Parse(e)) => {
            ctx.metrics.totals.parse_errors.inc();
            db_metrics.errors.inc();
            let _ = writer.send_error(
                Some(seq),
                ErrorCode::Parse,
                e.message.clone(),
                // The delta script starts on payload line 2 (after the
                // name line); report payload-relative lines.
                e.line.map(|l| l as u64 + 1),
            );
            return;
        }
        Err(EngineError::Delta(e)) => {
            // The delta kernel validated the whole batch and refused it
            // (unknown relation / arity mismatch) before merging
            // anything: typed code, old epoch untouched and serving.
            ctx.metrics.totals.delta_errors.inc();
            db_metrics.errors.inc();
            let _ = writer.send_error(
                Some(seq),
                ErrorCode::Delta,
                format!("delta rejected: {e}"),
                None,
            );
            return;
        }
        Err(e) => {
            ctx.metrics.totals.internal_errors.inc();
            db_metrics.errors.inc();
            let _ = writer.send_error(Some(seq), ErrorCode::Internal, e.to_string(), None);
            return;
        }
    };
    // Migrate the warm handles instead of purging them: only bags whose
    // relations the delta touched are re-materialized; naive-plan
    // handles re-prepare (cheap — the plan cache still holds their
    // structure analysis) and are marked `re-prepared`.
    let refresh = {
        let mut cache = lock_or_poison(&ctx.caches[db_index]);
        cache.refresh_after_delta(&outcome, |q| {
            ctx.engine
                .session_in(ctx.catalog, name)
                .ok()
                .and_then(|s| s.prepare(q).ok())
        })
    };
    ctx.metrics.totals.delta_batches.inc();
    ctx.metrics.totals.facts_inserted.add(outcome.inserted as u64);
    ctx.metrics.totals.facts_deleted.add(outcome.deleted as u64);
    ctx.metrics.totals.bags_remat.add(refresh.bags_remat);
    db_metrics.delta_batches.inc();
    db_metrics.facts_inserted.add(outcome.inserted as u64);
    db_metrics.facts_deleted.add(outcome.deleted as u64);
    db_metrics.bags_remat.add(refresh.bags_remat);
    let _ = writer.send_json(
        FrameType::DeltaApplied,
        &wire::WireDeltaApplied {
            request: seq,
            db: name.to_string(),
            epoch: outcome.snapshot.epoch(),
            inserted: outcome.inserted as u64,
            deleted: outcome.deleted as u64,
            relations_touched: outcome.touched.clone(),
            facts: outcome.snapshot.db().size() as u64,
            prepared_warm: refresh.warm,
            prepared_reprepared: refresh.reprepared,
            bags_remat: refresh.bags_remat,
            server_micros: micros(received_at.elapsed()),
        },
    );
}

/// Answer a `CatalogInfo` admin frame with the served names, their
/// epochs, and whether reloads are enabled.
fn handle_catalog_info(ctx: ConnCtx<'_>, writer: &ConnWriter, seq: u64, received_at: Instant) {
    let databases = ctx
        .names
        .iter()
        .filter_map(|name| ctx.catalog.get(name))
        .map(|snapshot| WireCatalogDb {
            name: snapshot.name().to_string(),
            epoch: snapshot.epoch(),
            facts: snapshot.db().size() as u64,
            relations: snapshot.db().relations().count() as u64,
        })
        .collect();
    let _ = writer.send_json(
        FrameType::Catalog,
        &WireCatalog {
            request: seq,
            reload_enabled: ctx.config.allow_reload,
            databases,
            server_micros: micros(received_at.elapsed()),
        },
    );
}

/// Answer a `Stats` admin frame with the full server-wide metrics
/// snapshot: lifetime counters, live queue/connection gauges, and the
/// per-database request counters and latency histograms. Handled
/// inline on the connection thread — reading atomics is cheap and must
/// stay responsive even when every worker is busy.
fn handle_stats(ctx: ConnCtx<'_>, writer: &ConnWriter, seq: u64, received_at: Instant) {
    let totals = ctx.metrics.totals.snapshot();
    let databases = ctx
        .names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let db = &ctx.metrics.per_db[i];
            WireDbStats {
                name: name.clone(),
                // Epoch is read live from the catalog: it reflects
                // reloads that happened after the counters were bumped.
                epoch: ctx.catalog.get(name).map(|s| s.epoch()).unwrap_or(0),
                batches: db.batches.get(),
                queries: db.queries.get(),
                errors: db.errors.get(),
                overloads: db.overloads.get(),
                prepared_hits: db.prepared_hits.get(),
                prepared_misses: db.prepared_misses.get(),
                bags_rewritten: db.bags_rewritten.get(),
                bags_total: db.bags_total.get(),
                delta_batches: db.delta_batches.get(),
                facts_inserted: db.facts_inserted.get(),
                facts_deleted: db.facts_deleted.get(),
                bags_remat: db.bags_remat.get(),
                latency: WireHistogram::from_snapshot(&db.latency.snapshot()),
            }
        })
        .collect();
    let _ = writer.send_json(
        FrameType::StatsReport,
        &WireStats {
            request: seq,
            uptime_micros: micros(ctx.metrics.started.elapsed()),
            connections: totals.connections,
            active_connections: ctx.metrics.active_connections.value(),
            frames: totals.frames,
            batches: totals.batches,
            queries: totals.queries,
            answered: totals.answered,
            rejected_overload: totals.rejected_overload,
            rejected_unauthorized: totals.rejected_unauthorized,
            parse_errors: totals.parse_errors,
            protocol_errors: totals.protocol_errors,
            internal_errors: totals.internal_errors,
            prepared_hits: totals.prepared_hits,
            prepared_misses: totals.prepared_misses,
            reloads: totals.reloads,
            store_errors: totals.store_errors,
            bags_rewritten: totals.bags_rewritten,
            bags_total: totals.bags_total,
            delta_batches: totals.delta_batches,
            facts_inserted: totals.facts_inserted,
            facts_deleted: totals.facts_deleted,
            bags_remat: totals.bags_remat,
            delta_errors: totals.delta_errors,
            queue_depth: ctx.queue.len() as u64,
            queue_high_water: ctx.queue.high_water() as u64,
            queue_capacity: ctx.queue.capacity() as u64,
            databases,
            server_micros: micros(received_at.elapsed()),
        },
    );
}

/// At shutdown, wait (bounded) for this connection's accepted batches
/// to be fully answered, then send `ShuttingDown` and close.
fn drain_then_goodbye(ctx: ConnCtx<'_>, writer: &ConnWriter) {
    let deadline = Instant::now() + ctx.config.drain_timeout;
    while writer.pending.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(ctx.config.poll_interval);
    }
    let _ = writer.send_error(None, ErrorCode::ShuttingDown, "server shutting down", None);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_cq::Database;

    fn catalog_session(catalog: &Catalog, engine: &Engine, name: &str) -> Session {
        engine.session_in(catalog, name).expect("session")
    }

    #[test]
    fn prepared_cache_is_bounded_fifo() {
        // Exercise the eviction policy shape-only (no server needed):
        // capacity clamps to ≥ 1 and FIFO-evicts.
        let engine = Engine::default();
        let catalog = Catalog::new();
        catalog.publish_str("main", "R(1, 2)\n").unwrap();
        let session = catalog_session(&catalog, &engine, "main");
        let mut cache = PreparedCache::new(2);
        let q1 = ConjunctiveQuery::parse(&[("R", &["?x", "?y"])]);
        let q2 = ConjunctiveQuery::parse(&[("R", &["?x", "?x"])]);
        let q3 = ConjunctiveQuery::parse(&[("R", &["?a", "?b"]), ("R", &["?b", "?c"])]);
        for q in [&q1, &q2, &q3] {
            let p = Arc::new(session.prepare(q).unwrap());
            cache.insert(q.display(), p);
        }
        assert!(cache.get(&q1.display(), 0).is_none(), "oldest evicted");
        assert!(cache.get(&q2.display(), 0).is_some());
        assert!(cache.get(&q3.display(), 0).is_some());
        // Re-inserting an existing key is a no-op, not a duplicate.
        let p = Arc::new(session.prepare(&q2).unwrap());
        cache.insert(q2.display(), p);
        assert_eq!(cache.map.len(), 2);
    }

    #[test]
    fn prepared_cache_never_serves_a_stale_epoch() {
        let engine = Engine::default();
        let catalog = Catalog::new();
        catalog.publish_str("main", "R(1, 2)\n").unwrap();
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"])]);
        let key = q.display();

        let mut cache = PreparedCache::new(8);
        let old = catalog_session(&catalog, &engine, "main");
        cache.insert(key.clone(), Arc::new(old.prepare(&q).unwrap()));
        assert_eq!(
            cache
                .get(&key, 0)
                .expect("same epoch hits")
                .run(Workload::Count)
                .answer
                .as_count(),
            Some(1)
        );

        // Reload publishes epoch 1: the warm epoch-0 handle must not be
        // served to epoch-1 sessions — and the stale entry is dropped.
        catalog.swap_str("main", "R(1, 2)\nR(3, 4)\n").unwrap();
        assert!(cache.get(&key, 1).is_none(), "stale handle served");
        assert!(cache.map.is_empty(), "stale entry dropped on lookup");

        // A fresh prepare against the new epoch repopulates, and
        // answers from the new data.
        let new = catalog_session(&catalog, &engine, "main");
        cache.insert(key.clone(), Arc::new(new.prepare(&q).unwrap()));
        assert_eq!(
            cache
                .get(&key, 1)
                .expect("new epoch hits")
                .run(Workload::Count)
                .answer
                .as_count(),
            Some(2)
        );

        // A lagging batch pinned to an older epoch misses on the newer
        // entry but must NOT evict it (that would ping-pong the cache
        // between interleaved old- and new-epoch batches).
        assert!(cache.get(&key, 0).is_none());
        assert!(
            cache.get(&key, 1).is_some(),
            "older-epoch lookups must not evict newer handles"
        );

        // purge_stale drops everything from other epochs in one pass.
        catalog.swap_str("main", "R(9, 9)\n").unwrap();
        assert_eq!(cache.purge_stale(2), 1);
        assert!(cache.map.is_empty() && cache.order.is_empty());
    }

    #[test]
    fn prepared_cache_eviction_is_consistent_under_concurrent_clients() {
        // Satellite coverage: many threads hammer one small cache with
        // overlapping query texts across an epoch bump. Invariants: the
        // cache never exceeds capacity, a lookup never returns a handle
        // from a different epoch than asked for, and every served
        // answer matches the epoch it was requested under.
        let engine = Engine::default();
        let catalog = Catalog::new();
        catalog.publish_str("main", "R(1, 2)\nR(2, 3)\n").unwrap();
        let queries: Vec<ConjunctiveQuery> = vec![
            ConjunctiveQuery::parse(&[("R", &["?x", "?y"])]),
            ConjunctiveQuery::parse(&[("R", &["?x", "?x"])]),
            ConjunctiveQuery::parse(&[("R", &["?a", "?b"]), ("R", &["?b", "?c"])]),
            ConjunctiveQuery::parse(&[("R", &["?a", "?b"]), ("R", &["?a", "?c"])]),
        ];
        let capacity = 2;
        let cache = Mutex::new(PreparedCache::new(capacity));
        let expected_by_epoch = |epoch: u64, q: &ConjunctiveQuery| -> u128 {
            let session = catalog_session(&catalog, &engine, "main");
            assert_eq!(session.epoch(), epoch);
            session
                .run(q, Workload::Count)
                .unwrap()
                .answer
                .as_count()
                .unwrap()
        };
        let expect0: Vec<u128> = queries.iter().map(|q| expected_by_epoch(0, q)).collect();

        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = &cache;
                let catalog = &catalog;
                let engine = &engine;
                let queries = &queries;
                let expect0 = &expect0;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    for i in 0..60 {
                        let q = &queries[(t + i) % queries.len()];
                        let key = q.display();
                        // Pin like a worker does: session first, then
                        // epoch-validated cache lookup.
                        let session = engine.session_in(catalog, "main").unwrap();
                        let epoch = session.epoch();
                        let cached = cache.lock().unwrap().get(&key, epoch);
                        let prepared = match cached {
                            Some(p) => p,
                            None => {
                                let p = Arc::new(session.prepare(q).unwrap());
                                let mut locked = cache.lock().unwrap();
                                locked.insert(key.clone(), Arc::clone(&p));
                                assert!(locked.map.len() <= capacity, "capacity exceeded");
                                p
                            }
                        };
                        assert_eq!(prepared.epoch(), epoch, "epoch mixed across handles");
                        let got = prepared.run(Workload::Count).answer.as_count().unwrap();
                        if epoch == 0 {
                            assert_eq!(got, expect0[(t + i) % queries.len()]);
                        } else {
                            // After the swap the database is empty: every
                            // count is 0, never a stale epoch-0 answer.
                            assert_eq!(got, 0, "stale answer served after reload");
                        }
                        if t == 0 && i == 20 {
                            catalog.swap("main", Database::new()).unwrap();
                        }
                    }
                });
            }
        });
        let final_len = cache.lock().unwrap().map.len();
        assert!(final_len <= capacity);
    }

    #[test]
    fn server_error_display_and_sources() {
        let e = ServerError::from(FrameError::Version(3));
        assert!(e.to_string().contains("version 3"), "{e}");
        assert!(std::error::Error::source(&e).is_some());
        let e = ServerError::Rejected(WireError {
            request: Some(1),
            code: ErrorCode::Overloaded,
            message: "queue full".into(),
            line: None,
            queue_depth: Some(4),
            queue_capacity: Some(4),
        });
        assert!(e.to_string().contains("Overloaded"), "{e}");
        let e = ServerError::from(EngineError::UnknownDatabase("x".into()));
        assert!(e.to_string().contains("`x`"), "{e}");
    }
}
