//! # `cqd2-serve` — the async socket serving front-end.
//!
//! This module turns the in-process serving engine into a network
//! server: a standalone binary (`cqd2-serve`, in `crates/core`) speaks a
//! length-prefixed framing of the workload-file text format over TCP,
//! so many concurrent clients share one engine, one plan cache, and one
//! set of materialized databases. The build environment is offline — no
//! tokio, no mio — so concurrency is hand-rolled from blocking sockets
//! and scoped threads:
//!
//! - an **acceptor** loop (non-blocking `accept` + shutdown polling)
//!   spawns one reader thread per connection;
//! - readers decode frames incrementally ([`frame::FrameReader`]), bind
//!   the connection to a named database, and enqueue query batches on a
//!   **bounded job queue** ([`queue::JobQueue`]) — a full queue is
//!   answered *immediately* with a typed `Overloaded` error frame
//!   (backpressure), never buffered;
//! - a **worker pool** drains the queue. Each database got a
//!   [`crate::Session`] at startup (statistics snapshotted
//!   once) and keeps a shared cache of [`crate::PreparedQuery`] handles
//!   keyed by query text, so repeated queries skip planning *and* bag
//!   materialization — the amortization the paper's `O(‖D‖^w)`
//!   preprocessing bound makes worthwhile (and that
//!   `benches/engine_serve_concurrent.rs` gates at ≥ 1.5× over
//!   sequential batch execution);
//! - **graceful shutdown**: a [`ServerHandle`] (or SIGINT/SIGTERM via
//!   [`signal::install_shutdown_signals`]) flips an atomic flag; the
//!   acceptor stops, accepted work drains, connections are notified
//!   with a `ShuttingDown` error frame, and [`Server::run`] returns the
//!   final [`ServerStats`].
//!
//! The wire protocol (frame layout, error codes, backpressure and
//! shutdown semantics) is specified in `docs/PROTOCOL.md`;
//! [`client::Client`] implements it for scripted round-trips and the
//! `cqd2-analyze client` subcommand.
//!
//! ```no_run
//! use cqd2_engine::server::{DbRegistry, Server, ServerConfig};
//! use cqd2_engine::Engine;
//!
//! let mut registry = DbRegistry::new();
//! registry.load_str("main", "R(1, 2)\nS(2, 3)\n").unwrap();
//! let engine = Engine::default();
//! let server = Server::bind("127.0.0.1:7878", ServerConfig::default()).unwrap();
//! let handle = server.handle(); // hand to a signal handler / another thread
//! cqd2_engine::server::signal::install_shutdown_signals(&handle);
//! let stats = server.run(&engine, &registry).unwrap(); // blocks until shutdown
//! println!("served {} queries", stats.answered);
//! ```

pub mod client;
pub mod frame;
pub mod queue;
pub mod signal;
pub mod wire;

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cqd2_cq::eval::with_sequential_bags;
use cqd2_cq::{ConjunctiveQuery, Database};

use crate::engine::{Engine, Workload};
use crate::error::EngineError;
use crate::session::{PreparedQuery, Session};
use crate::textio::{self, ParseError};

use frame::{FrameError, FrameReader, FrameType, PollError, ReadEvent};
use queue::{JobQueue, PushError};
use wire::{ErrorCode, WireBound, WireDone, WireError, WireResult};

// ---------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing queries; 0 = available parallelism.
    pub workers: usize,
    /// Bounded request-queue capacity — the backpressure point. A
    /// `Query` frame arriving while the queue holds this many pending
    /// batches is rejected with an `Overloaded` error frame.
    pub queue_capacity: usize,
    /// Per-database prepared-query cache capacity (distinct query
    /// texts whose planned + materialized handles are kept warm).
    pub prepared_capacity: usize,
    /// Maximum accepted frame payload, in bytes.
    pub max_frame_len: u32,
    /// How often idle loops poll the shutdown flag (accept loop and
    /// per-connection read timeouts).
    pub poll_interval: Duration,
    /// At shutdown, how long a connection waits for its in-flight
    /// batches to drain before closing anyway.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue_capacity: 64,
            prepared_capacity: 256,
            max_frame_len: 16 * 1024 * 1024,
            poll_interval: Duration::from_millis(20),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

// ---------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------

/// What can go wrong at the serving front-end — the top of the typed
/// error hierarchy ([`EngineError`] → [`cqd2_cq::eval::EvalError`],
/// [`ParseError`], [`FrameError`] all chain below it via `source`).
#[derive(Debug)]
pub enum ServerError {
    /// A socket operation failed.
    Io(io::Error),
    /// The peer violated the frame protocol.
    Frame(FrameError),
    /// The engine failed while planning or evaluating.
    Engine(EngineError),
    /// A workload / database / query-batch text failed to parse.
    Parse(ParseError),
    /// A payload that should have been JSON did not decode.
    Decode(String),
    /// [`DbRegistry::insert`] was given a name that is already taken.
    DuplicateDatabase(String),
    /// The server answered with a typed error frame (client side).
    Rejected(WireError),
    /// The server sent a frame the client did not expect in this state.
    UnexpectedFrame(FrameType),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "socket error: {e}"),
            ServerError::Frame(e) => write!(f, "protocol error: {e}"),
            ServerError::Engine(e) => write!(f, "engine error: {e}"),
            ServerError::Parse(e) => write!(f, "parse error: {e}"),
            ServerError::Decode(msg) => write!(f, "malformed JSON payload: {msg}"),
            ServerError::DuplicateDatabase(name) => {
                write!(f, "database `{name}` is already registered")
            }
            ServerError::Rejected(e) => {
                write!(
                    f,
                    "server rejected the request ({:?}): {}",
                    e.code, e.message
                )
            }
            ServerError::UnexpectedFrame(t) => write!(f, "unexpected {t:?} frame"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Frame(e) => Some(e),
            ServerError::Engine(e) => Some(e),
            ServerError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> ServerError {
        ServerError::Io(e)
    }
}

impl From<FrameError> for ServerError {
    fn from(e: FrameError) -> ServerError {
        ServerError::Frame(e)
    }
}

impl From<EngineError> for ServerError {
    fn from(e: EngineError) -> ServerError {
        ServerError::Engine(e)
    }
}

impl From<ParseError> for ServerError {
    fn from(e: ParseError) -> ServerError {
        ServerError::Parse(e)
    }
}

impl From<PollError> for ServerError {
    fn from(e: PollError) -> ServerError {
        match e {
            PollError::Io(e) => ServerError::Io(e),
            PollError::Frame(e) => ServerError::Frame(e),
        }
    }
}

// ---------------------------------------------------------------------
// Database registry.
// ---------------------------------------------------------------------

/// The named databases a server instance offers. Loaded once at
/// startup; connections bind to entries by name and get the session
/// (and its statistics snapshot) created for that database.
#[derive(Default)]
pub struct DbRegistry {
    entries: Vec<(String, Database)>,
}

impl DbRegistry {
    /// An empty registry.
    pub fn new() -> DbRegistry {
        DbRegistry::default()
    }

    /// Register `db` under `name`; names must be unique.
    pub fn insert(&mut self, name: impl Into<String>, db: Database) -> Result<(), ServerError> {
        let name = name.into();
        if self.index_of(&name).is_some() {
            return Err(ServerError::DuplicateDatabase(name));
        }
        self.entries.push((name, db));
        Ok(())
    }

    /// Parse a facts-only database file body ([`textio::parse_database`])
    /// and register it under `name`.
    pub fn load_str(&mut self, name: impl Into<String>, text: &str) -> Result<(), ServerError> {
        let db = textio::parse_database(text)?;
        self.insert(name, db)
    }

    /// Read and register a facts-only database file from disk.
    pub fn load_file(
        &mut self,
        name: impl Into<String>,
        path: &std::path::Path,
    ) -> Result<(), ServerError> {
        let text = std::fs::read_to_string(path)?;
        self.load_str(name, &text)
    }

    /// The index of `name`, if registered.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|(n, _)| n == name)
    }

    /// The `i`-th entry's name.
    pub fn name(&self, i: usize) -> &str {
        &self.entries[i].0
    }

    /// The `i`-th entry's database.
    pub fn db(&self, i: usize) -> &Database {
        &self.entries[i].1
    }

    /// All databases, in registration order.
    pub fn databases(&self) -> impl Iterator<Item = &Database> {
        self.entries.iter().map(|(_, db)| db)
    }

    /// All names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    /// Number of registered databases.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no database is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

// ---------------------------------------------------------------------
// Stats.
// ---------------------------------------------------------------------

/// Monotonic counters the serving loops update (atomics; one shared
/// instance per server).
#[derive(Debug, Default)]
struct StatsInner {
    connections: AtomicU64,
    frames: AtomicU64,
    batches: AtomicU64,
    queries: AtomicU64,
    answered: AtomicU64,
    rejected_overload: AtomicU64,
    parse_errors: AtomicU64,
    protocol_errors: AtomicU64,
    internal_errors: AtomicU64,
    prepared_hits: AtomicU64,
    prepared_misses: AtomicU64,
}

impl StatsInner {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            parse_errors: self.parse_errors.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            internal_errors: self.internal_errors.load(Ordering::Relaxed),
            prepared_hits: self.prepared_hits.load(Ordering::Relaxed),
            prepared_misses: self.prepared_misses.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of the server's counters, returned by [`Server::run`] at
/// shutdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Frames received.
    pub frames: u64,
    /// Query batches accepted onto the queue.
    pub batches: u64,
    /// Queries received inside accepted batches.
    pub queries: u64,
    /// Queries answered with a `Result` frame.
    pub answered: u64,
    /// Batches rejected with `Overloaded` (backpressure).
    pub rejected_overload: u64,
    /// Payloads rejected with `Parse`.
    pub parse_errors: u64,
    /// Connections dropped for frame-protocol violations.
    pub protocol_errors: u64,
    /// Batches aborted by engine-internal errors.
    pub internal_errors: u64,
    /// Executions that reused a warm prepared-query handle.
    pub prepared_hits: u64,
    /// Executions that prepared (planned + materialized) fresh.
    pub prepared_misses: u64,
}

// ---------------------------------------------------------------------
// Prepared-query cache.
// ---------------------------------------------------------------------

/// Per-database cache of warm [`PreparedQuery`] handles, keyed by the
/// query's canonical rendering ([`ConjunctiveQuery::display`]). Bounded
/// FIFO: when full, the oldest entry is evicted (repeated-workload
/// serving re-prepares it on next use; the engine's isomorphism-keyed
/// plan cache still amortizes the structure analysis underneath).
struct PreparedCache<'s> {
    capacity: usize,
    map: HashMap<String, Arc<PreparedQuery<'s>>>,
    order: VecDeque<String>,
}

impl<'s> PreparedCache<'s> {
    fn new(capacity: usize) -> PreparedCache<'s> {
        PreparedCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, key: &str) -> Option<Arc<PreparedQuery<'s>>> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, key: String, prepared: Arc<PreparedQuery<'s>>) {
        if self.map.contains_key(&key) {
            return; // another worker prepared the same text concurrently
        }
        while self.map.len() >= self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                }
                None => break,
            }
        }
        self.order.push_back(key.clone());
        self.map.insert(key, prepared);
    }
}

// ---------------------------------------------------------------------
// Connection plumbing.
// ---------------------------------------------------------------------

/// The write half of a connection, shared between its reader thread and
/// the workers answering its batches. The mutex keeps frames atomic on
/// the wire; `pending` counts batches accepted but not yet fully
/// answered, so shutdown can drain before closing.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    pending: AtomicU64,
}

impl ConnWriter {
    fn send(&self, frame_type: FrameType, payload: &[u8]) -> io::Result<()> {
        let mut stream = self.stream.lock().expect("connection writer poisoned");
        frame::write_frame(&mut *stream, frame_type, payload)
    }

    fn send_json<T: serde::Serialize>(&self, frame_type: FrameType, payload: &T) -> io::Result<()> {
        self.send(frame_type, serde::json::to_string(payload).as_bytes())
    }

    fn send_error(
        &self,
        request: Option<u64>,
        code: ErrorCode,
        message: impl Into<String>,
        line: Option<u64>,
    ) -> io::Result<()> {
        self.send_json(
            FrameType::Error,
            &WireError {
                request,
                code,
                message: message.into(),
                line,
            },
        )
    }
}

/// One query of a batch, ready to execute.
struct QueryItem {
    query: ConjunctiveQuery,
    /// Prepared-cache key: the query's canonical rendering.
    key: String,
    workload: Workload,
}

/// One accepted `Query` frame: the batch, where to run it, where to
/// answer.
struct Job<'s> {
    session: &'s Session<'s>,
    prepared: &'s Mutex<PreparedCache<'s>>,
    writer: Arc<ConnWriter>,
    request: u64,
    items: Vec<QueryItem>,
}

/// Everything a connection thread needs, borrowed from [`Server::run`]'s
/// stack (all threads are scoped, so plain references suffice).
struct ConnCtx<'e> {
    registry: &'e DbRegistry,
    sessions: &'e [Session<'e>],
    caches: &'e [Mutex<PreparedCache<'e>>],
    queue: &'e JobQueue<Job<'e>>,
    config: &'e ServerConfig,
    shutdown: &'e AtomicBool,
    stats: &'e StatsInner,
}

impl<'e> Clone for ConnCtx<'e> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'e> Copy for ConnCtx<'e> {}

// ---------------------------------------------------------------------
// The server.
// ---------------------------------------------------------------------

/// A bound-but-not-yet-running server: holds the listening socket, the
/// shutdown flag, and the stats counters. [`Server::run`] blocks the
/// calling thread until shutdown.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
}

/// A cheap cloneable handle for stopping a running [`Server`] from
/// another thread (or a signal handler — see
/// [`signal::install_shutdown_signals`]).
#[derive(Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Request a graceful shutdown: stop accepting, drain accepted
    /// work, notify connections, return from [`Server::run`].
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The server's listening address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The raw shutdown flag (what the signal handler stores through).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }
}

impl Server {
    /// Bind the listening socket. `addr` may use port 0 to let the OS
    /// pick (see [`Server::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            stats: Arc::new(StatsInner::default()),
        })
    }

    /// The bound listening address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
            addr: self
                .listener
                .local_addr()
                .expect("bound listener has an address"),
        }
    }

    /// Serve until shutdown. Blocks the calling thread; all worker and
    /// connection threads are scoped inside, so `engine` and `registry`
    /// are plain borrows — no leaking, no `'static` bounds. One
    /// [`Session`] is opened per registered database up front
    /// (statistics snapshotted once for the server's lifetime), along
    /// with one prepared-query cache per database.
    ///
    /// Returns the final [`ServerStats`] once every thread has exited.
    pub fn run(self, engine: &Engine, registry: &DbRegistry) -> io::Result<ServerStats> {
        let Server {
            listener,
            config,
            shutdown,
            stats,
        } = self;
        listener.set_nonblocking(true)?;
        let sessions: Vec<Session<'_>> =
            registry.databases().map(|db| engine.session(db)).collect();
        let caches: Vec<Mutex<PreparedCache<'_>>> = sessions
            .iter()
            .map(|_| Mutex::new(PreparedCache::new(config.prepared_capacity)))
            .collect();
        let queue: JobQueue<Job<'_>> = JobQueue::new(config.queue_capacity);
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            config.workers
        };
        // When several workers share the machine, nested intra-query bag
        // parallelism would oversubscribe it.
        let sequential_bags = workers > 1;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let queue = &queue;
                let stats = &stats;
                scope.spawn(move || worker_loop(queue, stats, sequential_bags));
            }
            let ctx = ConnCtx {
                registry,
                sessions: &sessions,
                caches: &caches,
                queue: &queue,
                config: &config,
                shutdown: &shutdown,
                stats: &stats,
            };
            while !shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        StatsInner::bump(&stats.connections);
                        scope.spawn(move || conn_loop(ctx, stream));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(config.poll_interval);
                    }
                    Err(_) => {
                        // Transient accept failure (e.g. aborted
                        // handshake): keep serving.
                        std::thread::sleep(config.poll_interval);
                    }
                }
            }
            // Shutdown: refuse new work, let workers drain what was
            // accepted. Connection threads observe the flag themselves.
            queue.close();
        });
        Ok(stats.snapshot())
    }
}

// ---------------------------------------------------------------------
// Worker side.
// ---------------------------------------------------------------------

fn worker_loop(queue: &JobQueue<Job<'_>>, stats: &StatsInner, sequential_bags: bool) {
    while let Some(job) = queue.pop() {
        execute_job(job, stats, sequential_bags);
    }
}

/// Execute one accepted batch: resolve (or prepare) each query's warm
/// handle, run it, frame the answer. Any error frame terminates the
/// batch (no `Done` follows), matching the protocol's "error ends the
/// request" rule.
fn execute_job(job: Job<'_>, stats: &StatsInner, sequential_bags: bool) {
    let mut results = 0u64;
    for (index, item) in job.items.iter().enumerate() {
        let cached = {
            let cache = job.prepared.lock().expect("prepared cache poisoned");
            cache.get(&item.key)
        };
        let (prepared, prepared_hit) = match cached {
            Some(p) => (p, true),
            None => {
                // Prepare outside the cache lock: planning and bag
                // materialization are the expensive part, and other
                // workers must stay free to hit the cache meanwhile. A
                // concurrent duplicate prepare is possible and benign
                // (first insert wins).
                match job.session.prepare(&item.query) {
                    Ok(p) => {
                        let p = Arc::new(p);
                        job.prepared
                            .lock()
                            .expect("prepared cache poisoned")
                            .insert(item.key.clone(), Arc::clone(&p));
                        (p, false)
                    }
                    Err(e) => {
                        StatsInner::bump(&stats.internal_errors);
                        let _ = job.writer.send_error(
                            Some(job.request),
                            ErrorCode::Internal,
                            format!("query {index}: {e}"),
                            None,
                        );
                        job.writer.pending.fetch_sub(1, Ordering::SeqCst);
                        return;
                    }
                }
            }
        };
        if prepared_hit {
            StatsInner::bump(&stats.prepared_hits);
        } else {
            StatsInner::bump(&stats.prepared_misses);
        }
        let resp = if sequential_bags {
            with_sequential_bags(|| prepared.run(item.workload))
        } else {
            prepared.run(item.workload)
        };
        let wire = WireResult::from_response(job.request, index as u64, prepared_hit, &resp);
        if job.writer.send_json(FrameType::Result, &wire).is_err() {
            // Client went away; drop the rest of the batch.
            job.writer.pending.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        results += 1;
        StatsInner::bump(&stats.answered);
    }
    let _ = job.writer.send_json(
        FrameType::Done,
        &WireDone {
            request: job.request,
            results,
        },
    );
    job.writer.pending.fetch_sub(1, Ordering::SeqCst);
}

// ---------------------------------------------------------------------
// Connection side.
// ---------------------------------------------------------------------

fn conn_loop(ctx: ConnCtx<'_>, stream: TcpStream) {
    if stream
        .set_read_timeout(Some(ctx.config.poll_interval))
        .is_err()
    {
        return;
    }
    // Result frames are small and latency-sensitive; don't let Nagle
    // batch them against the client's next read.
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(ConnWriter {
            stream: Mutex::new(w),
            pending: AtomicU64::new(0),
        }),
        Err(_) => return,
    };
    let mut stream = stream;
    let mut reader = FrameReader::new(ctx.config.max_frame_len);
    let mut seq: u64 = 0;
    let mut bound: Option<usize> = None;
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            drain_then_goodbye(ctx, &writer);
            return;
        }
        match reader.poll(&mut stream) {
            Ok(ReadEvent::Idle) => continue,
            Ok(ReadEvent::Closed) => return,
            Ok(ReadEvent::Frame(f)) => {
                seq += 1;
                StatsInner::bump(&ctx.stats.frames);
                match f.frame_type {
                    FrameType::Bind => {
                        bound = handle_bind(ctx, &writer, seq, &f).or(bound);
                    }
                    FrameType::Query => {
                        if !handle_query(ctx, &writer, seq, bound, &f) {
                            return;
                        }
                    }
                    // Server→client frame types are never valid inbound.
                    FrameType::Bound | FrameType::Result | FrameType::Done | FrameType::Error => {
                        StatsInner::bump(&ctx.stats.protocol_errors);
                        let _ = writer.send_error(
                            Some(seq),
                            ErrorCode::BadFrame,
                            format!("{:?} frames are server→client only", f.frame_type),
                            None,
                        );
                        return;
                    }
                }
            }
            Err(PollError::Frame(e)) => {
                StatsInner::bump(&ctx.stats.protocol_errors);
                let code = match e {
                    FrameError::Version(_) => ErrorCode::Version,
                    _ => ErrorCode::BadFrame,
                };
                let _ = writer.send_error(None, code, e.to_string(), None);
                return;
            }
            Err(PollError::Io(_)) => return,
        }
    }
}

/// Answer a `Bind` frame. Returns the newly bound shard index, or
/// `None` if the bind failed (the connection keeps any previous bind).
fn handle_bind(ctx: ConnCtx<'_>, writer: &ConnWriter, seq: u64, f: &frame::Frame) -> Option<usize> {
    let name = match f.text() {
        Ok(name) => name.trim(),
        Err(e) => {
            StatsInner::bump(&ctx.stats.protocol_errors);
            let _ = writer.send_error(Some(seq), ErrorCode::BadFrame, e.to_string(), None);
            return None;
        }
    };
    match ctx.registry.index_of(name) {
        Some(i) => {
            let db = ctx.registry.db(i);
            let _ = writer.send_json(
                FrameType::Bound,
                &WireBound {
                    request: seq,
                    db: name.to_string(),
                    facts: db.size() as u64,
                    relations: db.relations().count() as u64,
                },
            );
            Some(i)
        }
        None => {
            let known: Vec<&str> = ctx.registry.names().collect();
            let _ = writer.send_error(
                Some(seq),
                ErrorCode::UnknownDb,
                format!("no database `{name}` (serving: {})", known.join(", ")),
                None,
            );
            None
        }
    }
}

/// Answer a `Query` frame: parse, then enqueue (or reject). Returns
/// `false` when the connection must close (shutdown).
fn handle_query(
    ctx: ConnCtx<'_>,
    writer: &Arc<ConnWriter>,
    seq: u64,
    bound: Option<usize>,
    f: &frame::Frame,
) -> bool {
    let Some(shard) = bound else {
        let _ = writer.send_error(
            Some(seq),
            ErrorCode::NotBound,
            "no database bound — send a Bind frame first",
            None,
        );
        return true;
    };
    let text = match f.text() {
        Ok(t) => t,
        Err(e) => {
            StatsInner::bump(&ctx.stats.protocol_errors);
            let _ = writer.send_error(Some(seq), ErrorCode::BadFrame, e.to_string(), None);
            return true;
        }
    };
    let parsed = match textio::parse_queries(text) {
        Ok(p) => p,
        Err(e) => {
            StatsInner::bump(&ctx.stats.parse_errors);
            let _ = writer.send_error(
                Some(seq),
                ErrorCode::Parse,
                e.message.clone(),
                e.line.map(|l| l as u64),
            );
            return true;
        }
    };
    let items: Vec<QueryItem> = parsed
        .into_iter()
        .map(|(query, mode)| QueryItem {
            key: query.display(),
            query,
            workload: mode.unwrap_or(Workload::Boolean),
        })
        .collect();
    let n_queries = items.len() as u64;
    writer.pending.fetch_add(1, Ordering::SeqCst);
    let job = Job {
        session: &ctx.sessions[shard],
        prepared: &ctx.caches[shard],
        writer: Arc::clone(writer),
        request: seq,
        items,
    };
    match ctx.queue.try_push(job) {
        Ok(()) => {
            StatsInner::bump(&ctx.stats.batches);
            ctx.stats.queries.fetch_add(n_queries, Ordering::Relaxed);
            true
        }
        Err(PushError::Full(job)) => {
            job.writer.pending.fetch_sub(1, Ordering::SeqCst);
            StatsInner::bump(&ctx.stats.rejected_overload);
            let _ = writer.send_error(
                Some(seq),
                ErrorCode::Overloaded,
                format!(
                    "request queue full ({} pending batches) — retry later",
                    ctx.config.queue_capacity
                ),
                None,
            );
            true
        }
        Err(PushError::Closed(job)) => {
            job.writer.pending.fetch_sub(1, Ordering::SeqCst);
            let _ = writer.send_error(
                Some(seq),
                ErrorCode::ShuttingDown,
                "server is shutting down",
                None,
            );
            false
        }
    }
}

/// At shutdown, wait (bounded) for this connection's accepted batches
/// to be fully answered, then send `ShuttingDown` and close.
fn drain_then_goodbye(ctx: ConnCtx<'_>, writer: &ConnWriter) {
    let deadline = Instant::now() + ctx.config.drain_timeout;
    while writer.pending.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(ctx.config.poll_interval);
    }
    let _ = writer.send_error(None, ErrorCode::ShuttingDown, "server shutting down", None);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_rejects_duplicates_and_resolves_names() {
        let mut reg = DbRegistry::new();
        reg.load_str("a", "R(1, 2)\n").unwrap();
        reg.load_str("b", "S(3)\n").unwrap();
        assert!(matches!(
            reg.load_str("a", "T(0)\n"),
            Err(ServerError::DuplicateDatabase(_))
        ));
        assert_eq!(reg.index_of("b"), Some(1));
        assert_eq!(reg.index_of("missing"), None);
        assert_eq!(reg.name(0), "a");
        assert_eq!(reg.db(0).size(), 1);
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
        // Database files reject workload syntax.
        assert!(matches!(
            reg.load_str("c", "Q: R(?x)\n"),
            Err(ServerError::Parse(_))
        ));
    }

    #[test]
    fn prepared_cache_is_bounded_fifo() {
        // Exercise the eviction policy shape-only (no engine needed):
        // capacity clamps to ≥ 1 and FIFO-evicts.
        let engine = Engine::default();
        let mut db = Database::new();
        db.insert_all("R", &[vec![1, 2]]);
        let session = engine.session(&db);
        let mut cache = PreparedCache::new(2);
        let q1 = ConjunctiveQuery::parse(&[("R", &["?x", "?y"])]);
        let q2 = ConjunctiveQuery::parse(&[("R", &["?x", "?x"])]);
        let q3 = ConjunctiveQuery::parse(&[("R", &["?a", "?b"]), ("R", &["?b", "?c"])]);
        for q in [&q1, &q2, &q3] {
            let p = Arc::new(session.prepare(q).unwrap());
            cache.insert(q.display(), p);
        }
        assert!(cache.get(&q1.display()).is_none(), "oldest evicted");
        assert!(cache.get(&q2.display()).is_some());
        assert!(cache.get(&q3.display()).is_some());
        // Re-inserting an existing key is a no-op, not a duplicate.
        let p = Arc::new(session.prepare(&q2).unwrap());
        cache.insert(q2.display(), p);
        assert_eq!(cache.map.len(), 2);
    }

    #[test]
    fn server_error_display_and_sources() {
        let e = ServerError::from(FrameError::Version(3));
        assert!(e.to_string().contains("version 3"), "{e}");
        assert!(std::error::Error::source(&e).is_some());
        let e = ServerError::Rejected(WireError {
            request: Some(1),
            code: ErrorCode::Overloaded,
            message: "queue full".into(),
            line: None,
        });
        assert!(e.to_string().contains("Overloaded"), "{e}");
    }
}
