//! # `cqd2-serve` — the async socket serving front-end.
//!
//! This module turns the in-process serving engine into a network
//! server: a standalone binary (`cqd2-serve`, in `crates/core`) speaks a
//! length-prefixed framing of the workload-file text format over TCP,
//! so many concurrent clients share one engine, one plan cache, and one
//! [`Catalog`] of named databases. The build environment is offline —
//! no tokio, no mio — so concurrency is hand-rolled from blocking
//! sockets and scoped threads:
//!
//! - an **acceptor** loop (non-blocking `accept` + shutdown polling)
//!   spawns one reader thread per connection;
//! - readers decode frames incrementally ([`frame::FrameReader`]), bind
//!   the connection to a named database, and enqueue query batches on a
//!   **bounded job queue** ([`queue::JobQueue`]) — a full queue is
//!   answered *immediately* with a typed `Overloaded` error frame
//!   (backpressure), never buffered. Each accepted batch **pins the
//!   catalog's current snapshot** in an owned [`crate::Session`], so
//!   its answers stay consistent even if a reload swaps the database
//!   mid-execution;
//! - a **worker pool** drains the queue. Each database name keeps a
//!   shared cache of warm [`crate::PreparedQuery`] handles keyed by
//!   query text **and validated by epoch**: repeated queries skip
//!   planning *and* bag materialization — the amortization the paper's
//!   `O(‖D‖^w)` preprocessing bound makes worthwhile (gated ≥ 1.5× by
//!   `benches/engine_serve_concurrent.rs`) — and a handle prepared
//!   against epoch N is never served once a reload publishes N+1;
//! - **admin frames** (protocol v2): `Reload` atomically publishes a
//!   new snapshot for a served name via [`Catalog::swap`] (enabled by
//!   `ServerConfig::allow_reload` / `--allow-reload`; rejected with a
//!   typed `Unauthorized` error otherwise), and `CatalogInfo` describes
//!   the served names with their epochs;
//! - **graceful shutdown**: a [`ServerHandle`] (or SIGINT/SIGTERM via
//!   [`signal::install_shutdown_signals`]) flips an atomic flag; the
//!   acceptor stops, accepted work drains, connections are notified
//!   with a `ShuttingDown` error frame, and [`Server::run`] returns the
//!   final [`ServerStats`].
//!
//! The wire protocol (frame layout, error codes, backpressure, reload
//! and shutdown semantics) is specified in `docs/PROTOCOL.md`;
//! [`client::Client`] implements it for scripted round-trips and the
//! `cqd2-analyze client` subcommand.
//!
//! ```no_run
//! use cqd2_engine::server::{Server, ServerConfig};
//! use cqd2_engine::{Catalog, Engine};
//!
//! let catalog = Catalog::new();
//! catalog.publish_str("main", "R(1, 2)\nS(2, 3)\n").unwrap();
//! let engine = Engine::default();
//! let config = ServerConfig {
//!     allow_reload: true, // accept v2 `Reload` admin frames
//!     ..ServerConfig::default()
//! };
//! let server = Server::bind("127.0.0.1:7878", config).unwrap();
//! let handle = server.handle(); // hand to a signal handler / another thread
//! cqd2_engine::server::signal::install_shutdown_signals(&handle);
//! let stats = server.run(&engine, &catalog).unwrap(); // blocks until shutdown
//! println!("served {} queries over {} reloads", stats.answered, stats.reloads);
//! ```

pub mod client;
pub mod frame;
pub mod queue;
pub mod signal;
pub mod wire;

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cqd2_cq::eval::with_sequential_bags;
use cqd2_cq::ConjunctiveQuery;

use crate::catalog::Catalog;
use crate::engine::{Engine, Workload};
use crate::error::EngineError;
use crate::session::{PreparedQuery, Session};
use crate::textio::{self, ParseError};

use frame::{FrameError, FrameReader, FrameType, PollError, ReadEvent};
use queue::{JobQueue, PushError};
use wire::{
    ErrorCode, WireBound, WireCatalog, WireCatalogDb, WireDone, WireError, WireReloaded, WireResult,
};

// ---------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing queries; 0 = available parallelism.
    pub workers: usize,
    /// Bounded request-queue capacity — the backpressure point. A
    /// `Query` frame arriving while the queue holds this many pending
    /// batches is rejected with an `Overloaded` error frame.
    pub queue_capacity: usize,
    /// Per-database prepared-query cache capacity (distinct query
    /// texts whose planned + materialized handles are kept warm).
    pub prepared_capacity: usize,
    /// Maximum accepted frame payload, in bytes.
    pub max_frame_len: u32,
    /// How often idle loops poll the shutdown flag (accept loop and
    /// per-connection read timeouts).
    pub poll_interval: Duration,
    /// At shutdown, how long a connection waits for its in-flight
    /// batches to drain before closing anyway.
    pub drain_timeout: Duration,
    /// Whether `Reload` admin frames are accepted (`--allow-reload`).
    /// Off by default: a reload mutates served data, so it must be
    /// opted into; without it, `Reload` gets a typed `Unauthorized`
    /// error frame.
    pub allow_reload: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue_capacity: 64,
            prepared_capacity: 256,
            max_frame_len: 16 * 1024 * 1024,
            poll_interval: Duration::from_millis(20),
            drain_timeout: Duration::from_secs(5),
            allow_reload: false,
        }
    }
}

// ---------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------

/// What can go wrong at the serving front-end — the top of the typed
/// error hierarchy ([`EngineError`] → [`cqd2_cq::eval::EvalError`],
/// [`ParseError`], [`FrameError`] all chain below it via `source`).
#[derive(Debug)]
pub enum ServerError {
    /// A socket operation failed.
    Io(io::Error),
    /// The peer violated the frame protocol.
    Frame(FrameError),
    /// The engine failed while planning, evaluating, or touching the
    /// catalog (unknown or duplicate database names included).
    Engine(EngineError),
    /// A workload / database / query-batch text failed to parse.
    Parse(ParseError),
    /// A payload that should have been JSON did not decode.
    Decode(String),
    /// The server answered with a typed error frame (client side).
    Rejected(WireError),
    /// The server sent a frame the client did not expect in this state.
    UnexpectedFrame(FrameType),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "socket error: {e}"),
            ServerError::Frame(e) => write!(f, "protocol error: {e}"),
            ServerError::Engine(e) => write!(f, "engine error: {e}"),
            ServerError::Parse(e) => write!(f, "parse error: {e}"),
            ServerError::Decode(msg) => write!(f, "malformed JSON payload: {msg}"),
            ServerError::Rejected(e) => {
                write!(
                    f,
                    "server rejected the request ({:?}): {}",
                    e.code, e.message
                )
            }
            ServerError::UnexpectedFrame(t) => write!(f, "unexpected {t:?} frame"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Frame(e) => Some(e),
            ServerError::Engine(e) => Some(e),
            ServerError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> ServerError {
        ServerError::Io(e)
    }
}

impl From<FrameError> for ServerError {
    fn from(e: FrameError) -> ServerError {
        ServerError::Frame(e)
    }
}

impl From<EngineError> for ServerError {
    fn from(e: EngineError) -> ServerError {
        ServerError::Engine(e)
    }
}

impl From<ParseError> for ServerError {
    fn from(e: ParseError) -> ServerError {
        ServerError::Parse(e)
    }
}

impl From<PollError> for ServerError {
    fn from(e: PollError) -> ServerError {
        match e {
            PollError::Io(e) => ServerError::Io(e),
            PollError::Frame(e) => ServerError::Frame(e),
        }
    }
}

// ---------------------------------------------------------------------
// Stats.
// ---------------------------------------------------------------------

/// Monotonic counters the serving loops update (atomics; one shared
/// instance per server).
#[derive(Debug, Default)]
struct StatsInner {
    connections: AtomicU64,
    frames: AtomicU64,
    batches: AtomicU64,
    queries: AtomicU64,
    answered: AtomicU64,
    rejected_overload: AtomicU64,
    parse_errors: AtomicU64,
    protocol_errors: AtomicU64,
    internal_errors: AtomicU64,
    prepared_hits: AtomicU64,
    prepared_misses: AtomicU64,
    reloads: AtomicU64,
    rejected_unauthorized: AtomicU64,
}

impl StatsInner {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            parse_errors: self.parse_errors.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            internal_errors: self.internal_errors.load(Ordering::Relaxed),
            prepared_hits: self.prepared_hits.load(Ordering::Relaxed),
            prepared_misses: self.prepared_misses.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            rejected_unauthorized: self.rejected_unauthorized.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of the server's counters, returned by [`Server::run`] at
/// shutdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Frames received.
    pub frames: u64,
    /// Query batches accepted onto the queue.
    pub batches: u64,
    /// Queries received inside accepted batches.
    pub queries: u64,
    /// Queries answered with a `Result` frame.
    pub answered: u64,
    /// Batches rejected with `Overloaded` (backpressure).
    pub rejected_overload: u64,
    /// Payloads rejected with `Parse`.
    pub parse_errors: u64,
    /// Connections dropped for frame-protocol violations.
    pub protocol_errors: u64,
    /// Batches aborted by engine-internal errors.
    pub internal_errors: u64,
    /// Executions that reused a warm prepared-query handle.
    pub prepared_hits: u64,
    /// Executions that prepared (planned + materialized) fresh —
    /// including re-prepares forced by an epoch bump after a reload.
    pub prepared_misses: u64,
    /// Successful `Reload` publications ([`Catalog::swap`]s).
    pub reloads: u64,
    /// `Reload` frames rejected because the server runs without
    /// `allow_reload`.
    pub rejected_unauthorized: u64,
}

// ---------------------------------------------------------------------
// Prepared-query cache.
// ---------------------------------------------------------------------

/// Per-database cache of warm, **owned** [`PreparedQuery`] handles,
/// keyed by the query's canonical rendering
/// ([`ConjunctiveQuery::display`]) and validated by catalog **epoch**:
/// each handle pins the snapshot it was prepared against, and a lookup
/// for a newer epoch treats the entry as stale — it is dropped on the
/// spot, never served. Bounded FIFO: when full, the oldest entry is
/// evicted (repeated-workload serving re-prepares it on next use; the
/// engine's isomorphism-keyed plan cache still amortizes the structure
/// analysis underneath).
struct PreparedCache {
    capacity: usize,
    map: HashMap<String, Arc<PreparedQuery>>,
    order: VecDeque<String>,
}

impl PreparedCache {
    fn new(capacity: usize) -> PreparedCache {
        PreparedCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// The warm handle for `key` at exactly `epoch`. A handle from an
    /// *older* epoch is stale (its data was reloaded away): it is
    /// removed and the lookup misses, so the caller re-prepares against
    /// its own pinned snapshot. A handle from a *newer* epoch also
    /// misses — the caller is a lagging batch pinned to a pre-reload
    /// snapshot — but stays cached: evicting it would make interleaved
    /// old- and new-epoch batches ping-pong the entry and re-pay the
    /// `O(‖D‖^width)` materialization on every lookup.
    fn get(&mut self, key: &str, epoch: u64) -> Option<Arc<PreparedQuery>> {
        match self.map.get(key) {
            Some(p) if p.epoch() == epoch => Some(Arc::clone(p)),
            Some(p) if p.epoch() < epoch => {
                self.map.remove(key);
                self.order.retain(|k| k != key);
                None
            }
            _ => None,
        }
    }

    fn insert(&mut self, key: String, prepared: Arc<PreparedQuery>) {
        if let Some(existing) = self.map.get_mut(&key) {
            // Another worker prepared the same text concurrently: keep
            // whichever pins the newer epoch (ties keep the first).
            if prepared.epoch() > existing.epoch() {
                *existing = prepared;
            }
            return;
        }
        while self.map.len() >= self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                }
                None => break,
            }
        }
        self.order.push_back(key.clone());
        self.map.insert(key, prepared);
    }

    /// Drop every entry not pinning `current_epoch` (called after a
    /// reload so stale bag trees release their memory eagerly instead
    /// of waiting to be looked up). Returns how many were dropped.
    fn purge_stale(&mut self, current_epoch: u64) -> usize {
        let before = self.map.len();
        self.map.retain(|_, p| p.epoch() == current_epoch);
        let map = &self.map;
        self.order.retain(|k| map.contains_key(k));
        before - self.map.len()
    }
}

// ---------------------------------------------------------------------
// Connection plumbing.
// ---------------------------------------------------------------------

/// The write half of a connection, shared between its reader thread and
/// the workers answering its batches. The mutex keeps frames atomic on
/// the wire; `pending` counts batches accepted but not yet fully
/// answered, so shutdown can drain before closing.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    pending: AtomicU64,
}

impl ConnWriter {
    fn send(&self, frame_type: FrameType, payload: &[u8]) -> io::Result<()> {
        let mut stream = self.stream.lock().expect("connection writer poisoned");
        frame::write_frame(&mut *stream, frame_type, payload)
    }

    fn send_json<T: serde::Serialize>(&self, frame_type: FrameType, payload: &T) -> io::Result<()> {
        self.send(frame_type, serde::json::to_string(payload).as_bytes())
    }

    fn send_error(
        &self,
        request: Option<u64>,
        code: ErrorCode,
        message: impl Into<String>,
        line: Option<u64>,
    ) -> io::Result<()> {
        self.send_json(
            FrameType::Error,
            &WireError {
                request,
                code,
                message: message.into(),
                line,
            },
        )
    }
}

/// One query of a batch, ready to execute.
struct QueryItem {
    query: ConjunctiveQuery,
    /// Prepared-cache key: the query's canonical rendering.
    key: String,
    workload: Workload,
}

/// One accepted `Query` frame: the batch, the owned session pinning the
/// snapshot it runs against, where to answer.
struct Job<'e> {
    /// Owned session pinning the catalog snapshot that was current when
    /// the batch was accepted — a concurrent reload cannot change what
    /// this batch answers.
    session: Session,
    prepared: &'e Mutex<PreparedCache>,
    writer: Arc<ConnWriter>,
    request: u64,
    items: Vec<QueryItem>,
}

/// Everything a connection thread needs, borrowed from [`Server::run`]'s
/// stack (all threads are scoped, so plain references suffice).
struct ConnCtx<'e> {
    engine: &'e Engine,
    catalog: &'e Catalog,
    /// The names served (snapshotted at startup — reloads swap content,
    /// they never add or remove names).
    names: &'e [String],
    caches: &'e [Mutex<PreparedCache>],
    queue: &'e JobQueue<Job<'e>>,
    config: &'e ServerConfig,
    shutdown: &'e AtomicBool,
    stats: &'e StatsInner,
}

impl<'e> Clone for ConnCtx<'e> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'e> Copy for ConnCtx<'e> {}

impl<'e> ConnCtx<'e> {
    fn name_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }
}

// ---------------------------------------------------------------------
// The server.
// ---------------------------------------------------------------------

/// A bound-but-not-yet-running server: holds the listening socket, the
/// shutdown flag, and the stats counters. [`Server::run`] blocks the
/// calling thread until shutdown.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
}

/// A cheap cloneable handle for stopping a running [`Server`] from
/// another thread (or a signal handler — see
/// [`signal::install_shutdown_signals`]).
#[derive(Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Request a graceful shutdown: stop accepting, drain accepted
    /// work, notify connections, return from [`Server::run`].
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The server's listening address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The raw shutdown flag (what the signal handler stores through).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }
}

impl Server {
    /// Bind the listening socket. `addr` may use port 0 to let the OS
    /// pick (see [`Server::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            stats: Arc::new(StatsInner::default()),
        })
    }

    /// The bound listening address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
            addr: self
                .listener
                .local_addr()
                .expect("bound listener has an address"),
        }
    }

    /// Serve until shutdown. Blocks the calling thread; all worker and
    /// connection threads are scoped inside, so `engine` and `catalog`
    /// are plain borrows — no leaking, no `'static` bounds. The set of
    /// served *names* is snapshotted here (one epoch-validated
    /// prepared-query cache per name); the *content* behind each name
    /// is resolved from the catalog per accepted batch, which is what
    /// makes `Reload` visible to new work while in-flight batches keep
    /// their pinned snapshots.
    ///
    /// Returns the final [`ServerStats`] once every thread has exited.
    pub fn run(self, engine: &Engine, catalog: &Catalog) -> io::Result<ServerStats> {
        let Server {
            listener,
            config,
            shutdown,
            stats,
        } = self;
        listener.set_nonblocking(true)?;
        let names: Vec<String> = catalog.names();
        let caches: Vec<Mutex<PreparedCache>> = names
            .iter()
            .map(|_| Mutex::new(PreparedCache::new(config.prepared_capacity)))
            .collect();
        let queue: JobQueue<Job<'_>> = JobQueue::new(config.queue_capacity);
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            config.workers
        };
        // When several workers share the machine, nested intra-query bag
        // parallelism would oversubscribe it.
        let sequential_bags = workers > 1;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let queue = &queue;
                let stats = &stats;
                scope.spawn(move || worker_loop(queue, stats, sequential_bags));
            }
            let ctx = ConnCtx {
                engine,
                catalog,
                names: &names,
                caches: &caches,
                queue: &queue,
                config: &config,
                shutdown: &shutdown,
                stats: &stats,
            };
            while !shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        StatsInner::bump(&stats.connections);
                        scope.spawn(move || conn_loop(ctx, stream));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(config.poll_interval);
                    }
                    Err(_) => {
                        // Transient accept failure (e.g. aborted
                        // handshake): keep serving.
                        std::thread::sleep(config.poll_interval);
                    }
                }
            }
            // Shutdown: refuse new work, let workers drain what was
            // accepted. Connection threads observe the flag themselves.
            queue.close();
        });
        Ok(stats.snapshot())
    }
}

// ---------------------------------------------------------------------
// Worker side.
// ---------------------------------------------------------------------

fn worker_loop(queue: &JobQueue<Job<'_>>, stats: &StatsInner, sequential_bags: bool) {
    while let Some(job) = queue.pop() {
        execute_job(job, stats, sequential_bags);
    }
}

/// Execute one accepted batch: resolve (or prepare) each query's warm
/// handle against the batch's pinned epoch, run it, frame the answer.
/// Any error frame terminates the batch (no `Done` follows), matching
/// the protocol's "error ends the request" rule.
fn execute_job(job: Job<'_>, stats: &StatsInner, sequential_bags: bool) {
    let epoch = job.session.epoch();
    let mut results = 0u64;
    for (index, item) in job.items.iter().enumerate() {
        let cached = {
            let mut cache = job.prepared.lock().expect("prepared cache poisoned");
            cache.get(&item.key, epoch)
        };
        let (prepared, prepared_hit) = match cached {
            Some(p) => (p, true),
            None => {
                // Prepare outside the cache lock: planning and bag
                // materialization are the expensive part, and other
                // workers must stay free to hit the cache meanwhile. A
                // concurrent duplicate prepare is possible and benign
                // (the cache keeps the newest epoch). The handle is
                // prepared on the *pinned* session, so even a reload
                // racing this prepare cannot mix epochs within the
                // batch.
                match job.session.prepare(&item.query) {
                    Ok(p) => {
                        let p = Arc::new(p);
                        job.prepared
                            .lock()
                            .expect("prepared cache poisoned")
                            .insert(item.key.clone(), Arc::clone(&p));
                        (p, false)
                    }
                    Err(e) => {
                        StatsInner::bump(&stats.internal_errors);
                        let _ = job.writer.send_error(
                            Some(job.request),
                            ErrorCode::Internal,
                            format!("query {index}: {e}"),
                            None,
                        );
                        job.writer.pending.fetch_sub(1, Ordering::SeqCst);
                        return;
                    }
                }
            }
        };
        if prepared_hit {
            StatsInner::bump(&stats.prepared_hits);
        } else {
            StatsInner::bump(&stats.prepared_misses);
        }
        let resp = if sequential_bags {
            with_sequential_bags(|| prepared.run(item.workload))
        } else {
            prepared.run(item.workload)
        };
        let wire = WireResult::from_response(job.request, index as u64, prepared_hit, &resp);
        if job.writer.send_json(FrameType::Result, &wire).is_err() {
            // Client went away; drop the rest of the batch.
            job.writer.pending.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        results += 1;
        StatsInner::bump(&stats.answered);
    }
    let _ = job.writer.send_json(
        FrameType::Done,
        &WireDone {
            request: job.request,
            results,
        },
    );
    job.writer.pending.fetch_sub(1, Ordering::SeqCst);
}

// ---------------------------------------------------------------------
// Connection side.
// ---------------------------------------------------------------------

fn conn_loop(ctx: ConnCtx<'_>, stream: TcpStream) {
    if stream
        .set_read_timeout(Some(ctx.config.poll_interval))
        .is_err()
    {
        return;
    }
    // Result frames are small and latency-sensitive; don't let Nagle
    // batch them against the client's next read.
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(ConnWriter {
            stream: Mutex::new(w),
            pending: AtomicU64::new(0),
        }),
        Err(_) => return,
    };
    let mut stream = stream;
    let mut reader = FrameReader::new(ctx.config.max_frame_len);
    let mut seq: u64 = 0;
    let mut bound: Option<usize> = None;
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            drain_then_goodbye(ctx, &writer);
            return;
        }
        match reader.poll(&mut stream) {
            Ok(ReadEvent::Idle) => continue,
            Ok(ReadEvent::Closed) => return,
            Ok(ReadEvent::Frame(f)) => {
                seq += 1;
                StatsInner::bump(&ctx.stats.frames);
                match f.frame_type {
                    FrameType::Bind => {
                        bound = handle_bind(ctx, &writer, seq, &f).or(bound);
                    }
                    FrameType::Query => {
                        if !handle_query(ctx, &writer, seq, bound, &f) {
                            return;
                        }
                    }
                    FrameType::Reload => {
                        handle_reload(ctx, &writer, seq, &f);
                    }
                    FrameType::CatalogInfo => {
                        handle_catalog_info(ctx, &writer, seq);
                    }
                    // Server→client frame types are never valid inbound.
                    FrameType::Bound
                    | FrameType::Result
                    | FrameType::Done
                    | FrameType::Reloaded
                    | FrameType::Catalog
                    | FrameType::Error => {
                        StatsInner::bump(&ctx.stats.protocol_errors);
                        let _ = writer.send_error(
                            Some(seq),
                            ErrorCode::BadFrame,
                            format!("{:?} frames are server→client only", f.frame_type),
                            None,
                        );
                        return;
                    }
                }
            }
            Err(PollError::Frame(e)) => {
                StatsInner::bump(&ctx.stats.protocol_errors);
                let code = match e {
                    FrameError::Version(_) => ErrorCode::Version,
                    _ => ErrorCode::BadFrame,
                };
                let _ = writer.send_error(None, code, e.to_string(), None);
                return;
            }
            Err(PollError::Io(_)) => return,
        }
    }
}

/// Answer a `Bind` frame. Returns the newly bound database index, or
/// `None` if the bind failed (the connection keeps any previous bind).
fn handle_bind(ctx: ConnCtx<'_>, writer: &ConnWriter, seq: u64, f: &frame::Frame) -> Option<usize> {
    let name = match f.text() {
        Ok(name) => name.trim(),
        Err(e) => {
            StatsInner::bump(&ctx.stats.protocol_errors);
            let _ = writer.send_error(Some(seq), ErrorCode::BadFrame, e.to_string(), None);
            return None;
        }
    };
    match (ctx.name_index(name), ctx.catalog.get(name)) {
        (Some(i), Some(snapshot)) => {
            let _ = writer.send_json(
                FrameType::Bound,
                &WireBound {
                    request: seq,
                    db: name.to_string(),
                    facts: snapshot.db().size() as u64,
                    relations: snapshot.db().relations().count() as u64,
                    epoch: snapshot.epoch(),
                },
            );
            Some(i)
        }
        _ => {
            let _ = writer.send_error(
                Some(seq),
                ErrorCode::UnknownDb,
                format!("no database `{name}` (serving: {})", ctx.names.join(", ")),
                None,
            );
            None
        }
    }
}

/// Answer a `Query` frame: parse, pin the current snapshot, then
/// enqueue (or reject). Returns `false` when the connection must close
/// (shutdown).
fn handle_query(
    ctx: ConnCtx<'_>,
    writer: &Arc<ConnWriter>,
    seq: u64,
    bound: Option<usize>,
    f: &frame::Frame,
) -> bool {
    let Some(db_index) = bound else {
        let _ = writer.send_error(
            Some(seq),
            ErrorCode::NotBound,
            "no database bound — send a Bind frame first",
            None,
        );
        return true;
    };
    let text = match f.text() {
        Ok(t) => t,
        Err(e) => {
            StatsInner::bump(&ctx.stats.protocol_errors);
            let _ = writer.send_error(Some(seq), ErrorCode::BadFrame, e.to_string(), None);
            return true;
        }
    };
    let parsed = match textio::parse_queries(text) {
        Ok(p) => p,
        Err(e) => {
            StatsInner::bump(&ctx.stats.parse_errors);
            let _ = writer.send_error(
                Some(seq),
                ErrorCode::Parse,
                e.message.clone(),
                e.line.map(|l| l as u64),
            );
            return true;
        }
    };
    // Pin the catalog's current snapshot *now*: the batch executes
    // against exactly this epoch no matter how many reloads land while
    // it waits in the queue or streams its results.
    let session = match ctx.engine.session_in(ctx.catalog, &ctx.names[db_index]) {
        Ok(s) => s,
        Err(e) => {
            // Unreachable while names never leave the catalog, but keep
            // it a typed frame rather than a panic.
            let _ = writer.send_error(Some(seq), ErrorCode::UnknownDb, e.to_string(), None);
            return true;
        }
    };
    let items: Vec<QueryItem> = parsed
        .into_iter()
        .map(|(query, mode)| QueryItem {
            key: query.display(),
            query,
            workload: mode.unwrap_or(Workload::Boolean),
        })
        .collect();
    let n_queries = items.len() as u64;
    writer.pending.fetch_add(1, Ordering::SeqCst);
    let job = Job {
        session,
        prepared: &ctx.caches[db_index],
        writer: Arc::clone(writer),
        request: seq,
        items,
    };
    match ctx.queue.try_push(job) {
        Ok(()) => {
            StatsInner::bump(&ctx.stats.batches);
            ctx.stats.queries.fetch_add(n_queries, Ordering::Relaxed);
            true
        }
        Err(PushError::Full(job)) => {
            job.writer.pending.fetch_sub(1, Ordering::SeqCst);
            StatsInner::bump(&ctx.stats.rejected_overload);
            let _ = writer.send_error(
                Some(seq),
                ErrorCode::Overloaded,
                format!(
                    "request queue full ({} pending batches) — retry later",
                    ctx.config.queue_capacity
                ),
                None,
            );
            true
        }
        Err(PushError::Closed(job)) => {
            job.writer.pending.fetch_sub(1, Ordering::SeqCst);
            let _ = writer.send_error(
                Some(seq),
                ErrorCode::ShuttingDown,
                "server is shutting down",
                None,
            );
            false
        }
    }
}

/// Answer a `Reload` admin frame: authorize, parse (first payload line
/// = database name, rest = facts), swap the catalog, purge the name's
/// stale prepared handles, answer `Reloaded`. Handled inline on the
/// connection thread — reloads are rare control-plane work and must
/// not compete with queries for worker slots (and the swap itself
/// never blocks query execution: in-flight batches hold their own
/// pins).
fn handle_reload(ctx: ConnCtx<'_>, writer: &ConnWriter, seq: u64, f: &frame::Frame) {
    if !ctx.config.allow_reload {
        StatsInner::bump(&ctx.stats.rejected_unauthorized);
        let _ = writer.send_error(
            Some(seq),
            ErrorCode::Unauthorized,
            "this server does not accept reloads (start it with --allow-reload)",
            None,
        );
        return;
    }
    let text = match f.text() {
        Ok(t) => t,
        Err(e) => {
            StatsInner::bump(&ctx.stats.protocol_errors);
            let _ = writer.send_error(Some(seq), ErrorCode::BadFrame, e.to_string(), None);
            return;
        }
    };
    let (name, facts) = match text.split_once('\n') {
        Some((first, rest)) => (first.trim(), rest),
        None => (text.trim(), ""),
    };
    // An unknown name is not a parse failure: answer the typed frame
    // without touching any counter, exactly like `handle_bind`.
    let Some(db_index) = ctx.name_index(name) else {
        let _ = writer.send_error(
            Some(seq),
            ErrorCode::UnknownDb,
            format!("no database `{name}` (serving: {})", ctx.names.join(", ")),
            None,
        );
        return;
    };
    let snapshot = match ctx.catalog.swap_str(name, facts) {
        Ok(s) => s,
        Err(EngineError::Parse(e)) => {
            StatsInner::bump(&ctx.stats.parse_errors);
            let _ = writer.send_error(
                Some(seq),
                ErrorCode::Parse,
                e.message.clone(),
                // The facts start on payload line 2 (after the name
                // line); report payload-relative lines.
                e.line.map(|l| l as u64 + 1),
            );
            return;
        }
        Err(e) => {
            StatsInner::bump(&ctx.stats.internal_errors);
            let _ = writer.send_error(Some(seq), ErrorCode::Internal, e.to_string(), None);
            return;
        }
    };
    // Eagerly release the old epoch's pinned bag trees; lookups would
    // drop them lazily anyway, but cold entries could linger.
    ctx.caches[db_index]
        .lock()
        .expect("prepared cache poisoned")
        .purge_stale(snapshot.epoch());
    StatsInner::bump(&ctx.stats.reloads);
    let _ = writer.send_json(
        FrameType::Reloaded,
        &WireReloaded {
            request: seq,
            db: name.to_string(),
            epoch: snapshot.epoch(),
            facts: snapshot.db().size() as u64,
            relations: snapshot.db().relations().count() as u64,
        },
    );
}

/// Answer a `CatalogInfo` admin frame with the served names, their
/// epochs, and whether reloads are enabled.
fn handle_catalog_info(ctx: ConnCtx<'_>, writer: &ConnWriter, seq: u64) {
    let databases = ctx
        .names
        .iter()
        .filter_map(|name| ctx.catalog.get(name))
        .map(|snapshot| WireCatalogDb {
            name: snapshot.name().to_string(),
            epoch: snapshot.epoch(),
            facts: snapshot.db().size() as u64,
            relations: snapshot.db().relations().count() as u64,
        })
        .collect();
    let _ = writer.send_json(
        FrameType::Catalog,
        &WireCatalog {
            request: seq,
            reload_enabled: ctx.config.allow_reload,
            databases,
        },
    );
}

/// At shutdown, wait (bounded) for this connection's accepted batches
/// to be fully answered, then send `ShuttingDown` and close.
fn drain_then_goodbye(ctx: ConnCtx<'_>, writer: &ConnWriter) {
    let deadline = Instant::now() + ctx.config.drain_timeout;
    while writer.pending.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(ctx.config.poll_interval);
    }
    let _ = writer.send_error(None, ErrorCode::ShuttingDown, "server shutting down", None);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_cq::Database;

    fn catalog_session(catalog: &Catalog, engine: &Engine, name: &str) -> Session {
        engine.session_in(catalog, name).expect("session")
    }

    #[test]
    fn prepared_cache_is_bounded_fifo() {
        // Exercise the eviction policy shape-only (no server needed):
        // capacity clamps to ≥ 1 and FIFO-evicts.
        let engine = Engine::default();
        let catalog = Catalog::new();
        catalog.publish_str("main", "R(1, 2)\n").unwrap();
        let session = catalog_session(&catalog, &engine, "main");
        let mut cache = PreparedCache::new(2);
        let q1 = ConjunctiveQuery::parse(&[("R", &["?x", "?y"])]);
        let q2 = ConjunctiveQuery::parse(&[("R", &["?x", "?x"])]);
        let q3 = ConjunctiveQuery::parse(&[("R", &["?a", "?b"]), ("R", &["?b", "?c"])]);
        for q in [&q1, &q2, &q3] {
            let p = Arc::new(session.prepare(q).unwrap());
            cache.insert(q.display(), p);
        }
        assert!(cache.get(&q1.display(), 0).is_none(), "oldest evicted");
        assert!(cache.get(&q2.display(), 0).is_some());
        assert!(cache.get(&q3.display(), 0).is_some());
        // Re-inserting an existing key is a no-op, not a duplicate.
        let p = Arc::new(session.prepare(&q2).unwrap());
        cache.insert(q2.display(), p);
        assert_eq!(cache.map.len(), 2);
    }

    #[test]
    fn prepared_cache_never_serves_a_stale_epoch() {
        let engine = Engine::default();
        let catalog = Catalog::new();
        catalog.publish_str("main", "R(1, 2)\n").unwrap();
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"])]);
        let key = q.display();

        let mut cache = PreparedCache::new(8);
        let old = catalog_session(&catalog, &engine, "main");
        cache.insert(key.clone(), Arc::new(old.prepare(&q).unwrap()));
        assert_eq!(
            cache
                .get(&key, 0)
                .expect("same epoch hits")
                .run(Workload::Count)
                .answer
                .as_count(),
            Some(1)
        );

        // Reload publishes epoch 1: the warm epoch-0 handle must not be
        // served to epoch-1 sessions — and the stale entry is dropped.
        catalog.swap_str("main", "R(1, 2)\nR(3, 4)\n").unwrap();
        assert!(cache.get(&key, 1).is_none(), "stale handle served");
        assert!(cache.map.is_empty(), "stale entry dropped on lookup");

        // A fresh prepare against the new epoch repopulates, and
        // answers from the new data.
        let new = catalog_session(&catalog, &engine, "main");
        cache.insert(key.clone(), Arc::new(new.prepare(&q).unwrap()));
        assert_eq!(
            cache
                .get(&key, 1)
                .expect("new epoch hits")
                .run(Workload::Count)
                .answer
                .as_count(),
            Some(2)
        );

        // A lagging batch pinned to an older epoch misses on the newer
        // entry but must NOT evict it (that would ping-pong the cache
        // between interleaved old- and new-epoch batches).
        assert!(cache.get(&key, 0).is_none());
        assert!(
            cache.get(&key, 1).is_some(),
            "older-epoch lookups must not evict newer handles"
        );

        // purge_stale drops everything from other epochs in one pass.
        catalog.swap_str("main", "R(9, 9)\n").unwrap();
        assert_eq!(cache.purge_stale(2), 1);
        assert!(cache.map.is_empty() && cache.order.is_empty());
    }

    #[test]
    fn prepared_cache_eviction_is_consistent_under_concurrent_clients() {
        // Satellite coverage: many threads hammer one small cache with
        // overlapping query texts across an epoch bump. Invariants: the
        // cache never exceeds capacity, a lookup never returns a handle
        // from a different epoch than asked for, and every served
        // answer matches the epoch it was requested under.
        let engine = Engine::default();
        let catalog = Catalog::new();
        catalog.publish_str("main", "R(1, 2)\nR(2, 3)\n").unwrap();
        let queries: Vec<ConjunctiveQuery> = vec![
            ConjunctiveQuery::parse(&[("R", &["?x", "?y"])]),
            ConjunctiveQuery::parse(&[("R", &["?x", "?x"])]),
            ConjunctiveQuery::parse(&[("R", &["?a", "?b"]), ("R", &["?b", "?c"])]),
            ConjunctiveQuery::parse(&[("R", &["?a", "?b"]), ("R", &["?a", "?c"])]),
        ];
        let capacity = 2;
        let cache = Mutex::new(PreparedCache::new(capacity));
        let expected_by_epoch = |epoch: u64, q: &ConjunctiveQuery| -> u128 {
            let session = catalog_session(&catalog, &engine, "main");
            assert_eq!(session.epoch(), epoch);
            session
                .run(q, Workload::Count)
                .unwrap()
                .answer
                .as_count()
                .unwrap()
        };
        let expect0: Vec<u128> = queries.iter().map(|q| expected_by_epoch(0, q)).collect();

        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = &cache;
                let catalog = &catalog;
                let engine = &engine;
                let queries = &queries;
                let expect0 = &expect0;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    for i in 0..60 {
                        let q = &queries[(t + i) % queries.len()];
                        let key = q.display();
                        // Pin like a worker does: session first, then
                        // epoch-validated cache lookup.
                        let session = engine.session_in(catalog, "main").unwrap();
                        let epoch = session.epoch();
                        let cached = cache.lock().unwrap().get(&key, epoch);
                        let prepared = match cached {
                            Some(p) => p,
                            None => {
                                let p = Arc::new(session.prepare(q).unwrap());
                                let mut locked = cache.lock().unwrap();
                                locked.insert(key.clone(), Arc::clone(&p));
                                assert!(locked.map.len() <= capacity, "capacity exceeded");
                                p
                            }
                        };
                        assert_eq!(prepared.epoch(), epoch, "epoch mixed across handles");
                        let got = prepared.run(Workload::Count).answer.as_count().unwrap();
                        if epoch == 0 {
                            assert_eq!(got, expect0[(t + i) % queries.len()]);
                        } else {
                            // After the swap the database is empty: every
                            // count is 0, never a stale epoch-0 answer.
                            assert_eq!(got, 0, "stale answer served after reload");
                        }
                        if t == 0 && i == 20 {
                            catalog.swap("main", Database::new()).unwrap();
                        }
                    }
                });
            }
        });
        let final_len = cache.lock().unwrap().map.len();
        assert!(final_len <= capacity);
    }

    #[test]
    fn server_error_display_and_sources() {
        let e = ServerError::from(FrameError::Version(3));
        assert!(e.to_string().contains("version 3"), "{e}");
        assert!(std::error::Error::source(&e).is_some());
        let e = ServerError::Rejected(WireError {
            request: Some(1),
            code: ErrorCode::Overloaded,
            message: "queue full".into(),
            line: None,
        });
        assert!(e.to_string().contains("Overloaded"), "{e}");
        let e = ServerError::from(EngineError::UnknownDatabase("x".into()));
        assert!(e.to_string().contains("`x`"), "{e}");
    }
}
