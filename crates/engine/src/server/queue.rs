//! A bounded MPMC job queue (mutex + condvar) — the server's
//! backpressure point.
//!
//! Connection readers [`JobQueue::try_push`] and *never block*: a full
//! queue is an immediate [`PushError::Full`], which the reader turns
//! into an `Overloaded` error frame, so a saturated server stays
//! responsive instead of buffering unbounded work. Workers block in
//! [`JobQueue::pop`] until a job arrives or the queue is closed *and*
//! drained — closing therefore lets in-flight and already-accepted work
//! finish (graceful shutdown) while refusing new pushes with
//! [`PushError::Closed`].

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use cqd2_cq::sync::{lock_or_poison, wait_or_poison};

/// Why a push was refused. The job comes back to the caller in both
/// cases (so it can be answered with a typed error frame).
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — backpressure.
    Full(T),
    /// The queue was closed (server shutting down).
    Closed(T),
}

struct State<T> {
    jobs: VecDeque<T>,
    closed: bool,
    /// Deepest the queue has ever been — updated under this mutex on
    /// every accepted push, so it is exact (any accepted job implies a
    /// high-water mark of at least 1).
    high_water: usize,
}

/// The bounded queue. `T` is the server's job type; the queue itself is
/// job-agnostic.
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// A queue holding at most `capacity` pending jobs (minimum 1).
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                closed: false,
                high_water: 0,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue without blocking; a full or closed queue returns the job.
    pub fn try_push(&self, job: T) -> Result<(), PushError<T>> {
        let mut st = lock_or_poison(&self.state);
        if st.closed {
            return Err(PushError::Closed(job));
        }
        if st.jobs.len() >= self.capacity {
            return Err(PushError::Full(job));
        }
        st.jobs.push_back(job);
        st.high_water = st.high_water.max(st.jobs.len());
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Block until a job is available (`Some`) or the queue is closed
    /// and fully drained (`None`).
    pub fn pop(&self) -> Option<T> {
        let mut st = lock_or_poison(&self.state);
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = wait_or_poison(&self.ready, st);
        }
    }

    /// Close the queue: pending jobs still drain through [`JobQueue::pop`],
    /// new pushes fail, and blocked workers wake up.
    pub fn close(&self) {
        lock_or_poison(&self.state).closed = true;
        self.ready.notify_all();
    }

    /// Jobs currently queued (diagnostic).
    pub fn len(&self) -> usize {
        lock_or_poison(&self.state).jobs.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark: the deepest the queue has ever been. Exact
    /// (maintained under the queue lock), so it is ≥ 1 once any job
    /// has been accepted.
    pub fn high_water(&self) -> usize {
        lock_or_poison(&self.state).high_water
    }

    /// Capacity the queue was built with (after the minimum-1 clamp).
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_push_and_fifo_pop() {
        let q = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_wakes_blocked_workers() {
        let q = JobQueue::new(4);
        q.try_push(10).unwrap();
        q.close();
        match q.try_push(11) {
            Err(PushError::Closed(11)) => {}
            other => panic!("{other:?}"),
        }
        // Already-accepted work still drains.
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), None);
        // Blocked workers wake on close.
        let q = JobQueue::<u32>::new(1);
        std::thread::scope(|s| {
            let h = s.spawn(|| q.pop());
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.close();
            assert_eq!(h.join().unwrap(), None);
        });
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = JobQueue::new(0);
        q.try_push(1).unwrap();
        assert!(matches!(q.try_push(2), Err(PushError::Full(2))));
        assert_eq!(q.capacity(), 1);
    }

    #[test]
    fn high_water_mark_tracks_peak_depth_not_current() {
        let q = JobQueue::new(8);
        assert_eq!(q.high_water(), 0);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.try_push(3).unwrap();
        assert_eq!(q.high_water(), 3);
        q.pop();
        q.pop();
        q.pop();
        assert_eq!(q.len(), 0);
        assert_eq!(q.high_water(), 3, "the mark survives draining");
        q.try_push(4).unwrap();
        assert_eq!(q.high_water(), 3, "shallower refills do not move it");
    }
}
