//! The length-prefixed frame codec of the `cqd2-serve` wire protocol.
//!
//! Every message on the wire is one frame:
//!
//! ```text
//! +---------+---------+-------------------+-------------------+
//! | version |  type   |  payload length   |      payload      |
//! | 1 byte  | 1 byte  |  4 bytes (BE u32) |  `length` bytes   |
//! +---------+---------+-------------------+-------------------+
//! ```
//!
//! The version byte is [`PROTOCOL_VERSION`]; a peer speaking a different
//! version is rejected before its payload is read. Payloads are UTF-8
//! text: the workload-file query syntax on the way in ([`FrameType::Bind`],
//! [`FrameType::Query`]) and JSON ([`crate::server::wire`]) on the way
//! out. The full protocol is documented in `docs/PROTOCOL.md`.
//!
//! Two readers are provided: [`FrameReader`], an incremental accumulator
//! for server connections whose sockets use read timeouts (a timeout
//! mid-frame must not lose the bytes already consumed), and
//! [`read_frame`], a simple blocking reader for clients.

use std::io::{self, Read, Write};

/// The protocol version this build speaks (the first byte of every
/// frame). Version 2 added the catalog admin frames ([`FrameType::Reload`],
/// [`FrameType::CatalogInfo`] and their responses); version-1 peers get
/// a typed `Version` error frame, never undefined behavior.
pub const PROTOCOL_VERSION: u8 = 2;

/// Frame header length: version byte + type byte + u32 payload length.
pub const HEADER_LEN: usize = 6;

/// What a frame is. Client→server types sit below `0x80`, server→client
/// types at or above it (`Error` is deliberately in neither range — only
/// servers send it today, but the split keeps the space readable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Client → server: bind this connection to a named database.
    /// Payload: the database name (UTF-8).
    Bind = 0x01,
    /// Client → server: evaluate a query batch against the bound
    /// database. Payload: `Q:` lines and `@…` directives
    /// ([`crate::textio::parse_queries`] syntax).
    Query = 0x02,
    /// Client → server (admin, v2): hot-reload a named database. The
    /// payload's first line is the database name; the remaining lines
    /// are the new facts ([`crate::textio::parse_database`] syntax).
    /// Requires the server to run with reloads enabled
    /// (`--allow-reload`); rejected with an `Unauthorized` error frame
    /// otherwise.
    Reload = 0x03,
    /// Client → server (admin, v2): describe the server's catalog.
    /// Payload: empty.
    CatalogInfo = 0x04,
    /// Client → server (admin, v2): report the server's observability
    /// snapshot — counters, queue depth/high-water, per-database
    /// latency histograms. Payload: empty.
    Stats = 0x05,
    /// Client → server (admin, v2): apply a delta batch to a named
    /// database. The payload's first line is the database name; the
    /// remaining lines are a delta script — `@insert` / `@delete`
    /// section directives followed by fact lines
    /// ([`crate::textio::parse_delta`] syntax). The merge is
    /// incremental: untouched relations are structurally shared into
    /// the new epoch, and warm prepared-query cache entries are
    /// refreshed in place rather than purged. Requires reloads enabled
    /// (`--allow-reload`); rejected with an `Unauthorized` error frame
    /// otherwise.
    Delta = 0x06,
    /// Server → client: the connection is bound. Payload: JSON
    /// [`crate::server::wire::WireBound`].
    Bound = 0x81,
    /// Server → client: one query's answer. Payload: JSON
    /// [`crate::server::wire::WireResult`].
    Result = 0x82,
    /// Server → client: a query batch is fully answered. Payload: JSON
    /// [`crate::server::wire::WireDone`].
    Done = 0x83,
    /// Server → client (v2): a reload was published. Payload: JSON
    /// [`crate::server::wire::WireReloaded`].
    Reloaded = 0x84,
    /// Server → client (v2): the catalog description. Payload: JSON
    /// [`crate::server::wire::WireCatalog`].
    Catalog = 0x85,
    /// Server → client (v2): the observability snapshot. Payload: JSON
    /// [`crate::server::wire::WireStats`].
    StatsReport = 0x86,
    /// Server → client (v2): a delta batch was applied and the next
    /// epoch published. Payload: JSON
    /// [`crate::server::wire::WireDeltaApplied`].
    DeltaApplied = 0x87,
    /// Server → client: a typed error frame. Payload: JSON
    /// [`crate::server::wire::WireError`].
    Error = 0x7F,
}

impl FrameType {
    /// Decode a frame-type byte.
    pub fn from_byte(b: u8) -> Option<FrameType> {
        match b {
            0x01 => Some(FrameType::Bind),
            0x02 => Some(FrameType::Query),
            0x03 => Some(FrameType::Reload),
            0x04 => Some(FrameType::CatalogInfo),
            0x05 => Some(FrameType::Stats),
            0x06 => Some(FrameType::Delta),
            0x81 => Some(FrameType::Bound),
            0x82 => Some(FrameType::Result),
            0x83 => Some(FrameType::Done),
            0x84 => Some(FrameType::Reloaded),
            0x85 => Some(FrameType::Catalog),
            0x86 => Some(FrameType::StatsReport),
            0x87 => Some(FrameType::DeltaApplied),
            0x7F => Some(FrameType::Error),
            _ => None,
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What kind of frame this is.
    pub frame_type: FrameType,
    /// The raw payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// The payload as UTF-8 text.
    pub fn text(&self) -> Result<&str, FrameError> {
        std::str::from_utf8(&self.payload).map_err(|_| FrameError::Utf8)
    }
}

/// Why a frame could not be decoded. These are *protocol* errors — the
/// peer sent bytes this codec rejects — as opposed to the transport
/// errors `std::io::Error` covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The version byte did not match [`PROTOCOL_VERSION`].
    Version(u8),
    /// The type byte is not a known [`FrameType`].
    UnknownType(u8),
    /// The declared payload length exceeds the reader's cap.
    Oversized {
        /// Declared payload length.
        len: u32,
        /// The reader's configured maximum.
        max: u32,
    },
    /// The payload is not valid UTF-8 (all payloads are text).
    Utf8,
    /// The peer closed the connection mid-frame.
    Truncated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Version(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            FrameError::UnknownType(t) => write!(f, "unknown frame type 0x{t:02X}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Utf8 => f.write_str("frame payload is not valid UTF-8"),
            FrameError::Truncated => f.write_str("connection closed mid-frame"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Write one frame (header + payload) and flush. Header and payload
/// are coalesced into a single `write_all` — on an unbuffered
/// `TcpStream` that is one syscall per frame instead of two, which
/// matters at per-query-result frame rates.
pub fn write_frame(w: &mut impl Write, frame_type: FrameType, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds u32"))?;
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.push(PROTOCOL_VERSION);
    buf.push(frame_type as u8);
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// What [`FrameReader::poll`] can report besides a frame.
#[derive(Debug)]
pub enum ReadEvent {
    /// A complete frame arrived.
    Frame(Frame),
    /// The read timed out (or would block) with no complete frame;
    /// callers poll their shutdown flag and try again.
    Idle,
    /// The peer closed the connection cleanly (EOF on a frame boundary).
    Closed,
}

/// An incremental frame reader for sockets with read timeouts.
///
/// A blocking `read_exact` would lose already-consumed bytes when the
/// socket's read timeout fires mid-frame; this reader accumulates into
/// an internal buffer instead, so a frame interrupted by any number of
/// timeouts is still decoded intact once its bytes are all in.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    max_payload: u32,
}

impl FrameReader {
    /// A reader rejecting payloads longer than `max_payload` bytes.
    pub fn new(max_payload: u32) -> FrameReader {
        FrameReader {
            buf: Vec::new(),
            max_payload,
        }
    }

    /// Pump the reader once: decode a buffered frame if one is already
    /// complete, otherwise read from `r` and retry. Timeouts surface as
    /// [`ReadEvent::Idle`]; a clean EOF between frames as
    /// [`ReadEvent::Closed`]; EOF mid-frame as [`FrameError::Truncated`].
    pub fn poll(&mut self, r: &mut impl Read) -> Result<ReadEvent, PollError> {
        if let Some(frame) = self.try_decode()? {
            return Ok(ReadEvent::Frame(frame));
        }
        let mut chunk = [0u8; 4096];
        match r.read(&mut chunk) {
            Ok(0) => {
                if self.buf.is_empty() {
                    Ok(ReadEvent::Closed)
                } else {
                    Err(PollError::Frame(FrameError::Truncated))
                }
            }
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                match self.try_decode()? {
                    Some(frame) => Ok(ReadEvent::Frame(frame)),
                    None => Ok(ReadEvent::Idle),
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                Ok(ReadEvent::Idle)
            }
            Err(e) => Err(PollError::Io(e)),
        }
    }

    /// Decode one frame from the buffer if it is complete.
    fn try_decode(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        if self.buf[0] != PROTOCOL_VERSION {
            return Err(FrameError::Version(self.buf[0]));
        }
        let frame_type =
            FrameType::from_byte(self.buf[1]).ok_or(FrameError::UnknownType(self.buf[1]))?;
        let len = u32::from_be_bytes([self.buf[2], self.buf[3], self.buf[4], self.buf[5]]);
        if len > self.max_payload {
            return Err(FrameError::Oversized {
                len,
                max: self.max_payload,
            });
        }
        let total = HEADER_LEN + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[HEADER_LEN..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(Frame {
            frame_type,
            payload,
        }))
    }
}

/// A [`FrameReader::poll`] failure: transport or protocol.
#[derive(Debug)]
pub enum PollError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The peer violated the frame protocol.
    Frame(FrameError),
}

impl From<FrameError> for PollError {
    fn from(e: FrameError) -> PollError {
        PollError::Frame(e)
    }
}

/// Blocking frame read for clients (no read timeout on the socket):
/// reads exactly one frame or fails.
pub fn read_frame(r: &mut impl Read, max_payload: u32) -> Result<Frame, PollError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_or_truncated(r, &mut header)?;
    if header[0] != PROTOCOL_VERSION {
        return Err(FrameError::Version(header[0]).into());
    }
    let frame_type = FrameType::from_byte(header[1]).ok_or(FrameError::UnknownType(header[1]))?;
    let len = u32::from_be_bytes([header[2], header[3], header[4], header[5]]);
    if len > max_payload {
        return Err(FrameError::Oversized {
            len,
            max: max_payload,
        }
        .into());
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or_truncated(r, &mut payload)?;
    Ok(Frame {
        frame_type,
        payload,
    })
}

fn read_exact_or_truncated(r: &mut impl Read, buf: &mut [u8]) -> Result<(), PollError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            PollError::Frame(FrameError::Truncated)
        } else {
            PollError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn encode(frame_type: FrameType, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, frame_type, payload).unwrap();
        out
    }

    #[test]
    fn frames_round_trip_through_both_readers() {
        let bytes = [
            encode(FrameType::Bind, b"main"),
            encode(FrameType::Query, "Q: R(?x)\n".as_bytes()),
        ]
        .concat();
        // Blocking reader.
        let mut cur = Cursor::new(bytes.clone());
        let a = read_frame(&mut cur, 1024).unwrap();
        let b = read_frame(&mut cur, 1024).unwrap();
        assert_eq!((a.frame_type, a.text().unwrap()), (FrameType::Bind, "main"));
        assert_eq!(b.frame_type, FrameType::Query);
        // Incremental reader, fed one byte at a time: no byte loss.
        let mut reader = FrameReader::new(1024);
        let mut decoded = Vec::new();
        for byte in &bytes {
            match reader.poll(&mut Cursor::new(vec![*byte])).unwrap() {
                ReadEvent::Frame(f) => decoded.push(f),
                ReadEvent::Idle => {}
                ReadEvent::Closed => panic!("not closed"),
            }
        }
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].text().unwrap(), "main");
        // The stats admin pair occupies its reserved bytes.
        assert_eq!(FrameType::from_byte(0x05), Some(FrameType::Stats));
        assert_eq!(FrameType::from_byte(0x86), Some(FrameType::StatsReport));
        // The delta admin pair too.
        assert_eq!(FrameType::from_byte(0x06), Some(FrameType::Delta));
        assert_eq!(FrameType::from_byte(0x87), Some(FrameType::DeltaApplied));
        let f = read_frame(&mut Cursor::new(encode(FrameType::Stats, b"")), 16).unwrap();
        assert_eq!((f.frame_type, f.payload.len()), (FrameType::Stats, 0));
    }

    #[test]
    fn bad_version_type_and_size_are_typed_errors() {
        let mut wrong_version = encode(FrameType::Bind, b"x");
        wrong_version[0] = 9;
        match read_frame(&mut Cursor::new(wrong_version), 1024) {
            Err(PollError::Frame(FrameError::Version(9))) => {}
            other => panic!("{other:?}"),
        }
        // A protocol-1 peer against this protocol-2 build is the
        // canonical version mismatch: typed, and the message names both
        // versions.
        let mut v1 = encode(FrameType::Bind, b"x");
        v1[0] = 1;
        match read_frame(&mut Cursor::new(v1), 1024) {
            Err(PollError::Frame(e @ FrameError::Version(1))) => {
                let msg = e.to_string();
                assert!(msg.contains("version 1") && msg.contains('2'), "{msg}");
            }
            other => panic!("{other:?}"),
        }
        let mut wrong_type = encode(FrameType::Bind, b"x");
        wrong_type[1] = 0x55;
        match read_frame(&mut Cursor::new(wrong_type), 1024) {
            Err(PollError::Frame(FrameError::UnknownType(0x55))) => {}
            other => panic!("{other:?}"),
        }
        let big = encode(FrameType::Query, &[b'x'; 100]);
        match read_frame(&mut Cursor::new(big), 10) {
            Err(PollError::Frame(FrameError::Oversized { len: 100, max: 10 })) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eof_mid_frame_is_truncated_and_on_boundary_is_closed() {
        let bytes = encode(FrameType::Bind, b"main");
        let mut reader = FrameReader::new(64);
        match reader.poll(&mut Cursor::new(bytes[..3].to_vec())) {
            Ok(ReadEvent::Idle) => {}
            other => panic!("{other:?}"),
        }
        // The source is now exhausted mid-frame.
        match reader.poll(&mut Cursor::new(Vec::new())) {
            Err(PollError::Frame(FrameError::Truncated)) => {}
            other => panic!("{other:?}"),
        }
        let mut fresh = FrameReader::new(64);
        match fresh.poll(&mut Cursor::new(Vec::new())) {
            Ok(ReadEvent::Closed) => {}
            other => panic!("{other:?}"),
        }
    }
}
