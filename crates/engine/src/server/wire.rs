//! JSON payloads of the server→client frames.
//!
//! Every structure here derives the workspace's `serde` traits and
//! travels as JSON text inside a [`crate::server::frame`] frame. All
//! response payloads carry `request` — the 1-based sequence number of
//! the client frame they answer, counted per connection — so clients
//! may pipeline frames and still correlate responses.

use serde::{Deserialize, Serialize};

use crate::engine::{Answer, Response, Workload};
use crate::metrics::{QueryTrace, Snapshot};

/// Payload of a [`crate::server::frame::FrameType::Bound`] frame: the
/// connection is now bound to `db`. `facts`/`relations`/`epoch`
/// describe the catalog's *current* snapshot at bind time; each query
/// batch pins whatever snapshot is current when the batch is accepted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireBound {
    /// Sequence number of the `Bind` frame this answers.
    pub request: u64,
    /// The database name the connection is bound to.
    pub db: String,
    /// Total facts in the database.
    pub facts: u64,
    /// Number of relations in the database.
    pub relations: u64,
    /// The catalog epoch of the snapshot described above (bumped by
    /// every reload).
    pub epoch: u64,
    /// Microseconds the request spent inside the server (receipt of the
    /// client frame → this response handed to the socket). Subtracting
    /// it from a client-measured round-trip isolates network time.
    pub server_micros: u64,
}

/// Payload of a [`crate::server::frame::FrameType::Result`] frame: one
/// query's answer plus its plan provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireResult {
    /// Sequence number of the `Query` frame this answers.
    pub request: u64,
    /// 0-based index of the query within its batch.
    pub index: u64,
    /// The answer (Boolean, count, or tuples).
    pub answer: Answer,
    /// The executed plan's strategy name (e.g. `ghd-yannakakis`).
    pub strategy: String,
    /// Whether the structure analysis came from the engine's plan cache.
    pub cache_hit: bool,
    /// Whether the server reused a prepared-query handle (bag tree
    /// already materialized) for this execution.
    pub prepared_hit: bool,
    /// Nanoseconds of planning this execution paid (0 on prepared
    /// re-execution — the cost was paid when the handle was prepared).
    pub planning_ns: u64,
    /// Nanoseconds of execution (the per-run tree pass).
    pub execution_ns: u64,
    /// Microseconds this query spent inside the server, from receipt of
    /// its `Query` frame to this response being handed to the socket
    /// (so it includes queue wait and the batch's earlier queries).
    pub server_micros: u64,
    /// Per-phase span breakdown — present only when the batch carried
    /// the `@trace` directive. The phases are disjoint sub-intervals of
    /// the request's server residency, so their sum ≤ `server_micros`.
    pub trace: Option<WireTrace>,
}

impl WireResult {
    /// Assemble from an engine [`Response`]. `server_micros` is zero
    /// and `trace` absent until the server stamps them just before
    /// sending.
    pub fn from_response(request: u64, index: u64, prepared_hit: bool, resp: &Response) -> Self {
        WireResult {
            request,
            index,
            answer: resp.answer.clone(),
            strategy: resp.provenance.planned.plan.strategy().to_string(),
            cache_hit: resp.provenance.cache_hit,
            prepared_hit,
            planning_ns: u64::try_from(resp.provenance.planning.as_nanos()).unwrap_or(u64::MAX),
            execution_ns: u64::try_from(resp.provenance.execution.as_nanos()).unwrap_or(u64::MAX),
            server_micros: 0,
            trace: None,
        }
    }
}

/// One phase of a [`WireTrace`] span breakdown.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireSpan {
    /// Phase name: `queue_wait`, `parse`, `plan`, `materialize`,
    /// `execute`, or `serialize` ([`crate::metrics::Phase::name`]).
    pub phase: String,
    /// Microseconds spent in the phase.
    pub micros: u64,
    /// Optional annotation (e.g. the chosen strategy and cache
    /// provenance on `plan`).
    pub detail: Option<String>,
}

/// The span breakdown attached to a [`WireResult`] when its batch
/// carried `@trace`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireTrace {
    /// Sum of the span durations in microseconds. Because the phases
    /// are disjoint, this never exceeds the result's `server_micros`.
    pub total_micros: u64,
    /// The spans, in serve-path order.
    pub spans: Vec<WireSpan>,
}

impl WireTrace {
    /// Encode a recorded [`QueryTrace`]. The total is summed over the
    /// already-truncated per-span microseconds (not truncated from the
    /// exact `Duration` sum), so `total_micros == Σ spans[i].micros`
    /// holds exactly on the wire.
    pub fn from_trace(trace: &QueryTrace) -> WireTrace {
        let spans: Vec<WireSpan> = trace
            .spans()
            .iter()
            .map(|s| WireSpan {
                phase: s.phase.name().to_string(),
                micros: u64::try_from(s.duration.as_micros()).unwrap_or(u64::MAX),
                detail: s.detail.clone(),
            })
            .collect();
        WireTrace {
            total_micros: spans.iter().map(|s| s.micros).sum(),
            spans,
        }
    }
}

/// Payload of a [`crate::server::frame::FrameType::Done`] frame: the
/// batch of `results` answers for `request` is complete.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireDone {
    /// Sequence number of the `Query` frame this answers.
    pub request: u64,
    /// How many `Result` frames were sent for the batch.
    pub results: u64,
    /// Microseconds the whole batch spent inside the server, from
    /// receipt of its `Query` frame to this `Done` being handed to the
    /// socket.
    pub server_micros: u64,
}

/// Payload of a [`crate::server::frame::FrameType::Reloaded`] frame:
/// the catalog published a new snapshot for `db`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireReloaded {
    /// Sequence number of the `Reload` frame this answers.
    pub request: u64,
    /// The reloaded database's name.
    pub db: String,
    /// The new snapshot's epoch (old epoch + 1). Sessions pinned to
    /// older epochs keep answering consistently; new sessions see this
    /// one.
    pub epoch: u64,
    /// Total facts in the new snapshot.
    pub facts: u64,
    /// Number of relations in the new snapshot.
    pub relations: u64,
    /// Microseconds the reload spent inside the server (parse +
    /// statistics + publish).
    pub server_micros: u64,
}

/// Payload of a [`crate::server::frame::FrameType::DeltaApplied`]
/// frame: the catalog merged a delta batch into `db` and published a
/// new epoch by structural sharing (untouched relations are the same
/// `Arc`s as the previous snapshot's).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireDeltaApplied {
    /// Sequence number of the `Delta` frame this answers.
    pub request: u64,
    /// The database the delta was applied to.
    pub db: String,
    /// The new snapshot's epoch (old epoch + 1).
    pub epoch: u64,
    /// Facts actually inserted (inserting an already-present fact is an
    /// uncounted no-op).
    pub inserted: u64,
    /// Facts actually deleted (deleting an absent fact is an uncounted
    /// no-op; deletes win over inserts within one batch).
    pub deleted: u64,
    /// Names of the relations the batch touched, in name order. Every
    /// relation *not* listed here is structurally shared with the
    /// previous epoch.
    pub relations_touched: Vec<String>,
    /// Total facts in the new snapshot.
    pub facts: u64,
    /// Prepared-query cache entries migrated warm across the epoch
    /// (dirty-spine refresh; provenance `warm-overlay`).
    pub prepared_warm: u64,
    /// Prepared-query cache entries that fell back to a full re-prepare
    /// (naive-plan handles; provenance `re-prepared`).
    pub prepared_reprepared: u64,
    /// Bag-tree nodes re-materialized across all warm migrations (the
    /// dirty spines; every other bag was `Arc`-shared).
    pub bags_remat: u64,
    /// Microseconds the delta spent inside the server (parse + validate
    /// + merge + stats + publish + cache refresh).
    pub server_micros: u64,
}

/// One database in a [`WireCatalog`] description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireCatalogDb {
    /// The published name.
    pub name: String,
    /// The current epoch (number of reloads since startup).
    pub epoch: u64,
    /// Total facts in the current snapshot.
    pub facts: u64,
    /// Number of relations in the current snapshot.
    pub relations: u64,
}

/// Payload of a [`crate::server::frame::FrameType::Catalog`] frame:
/// the server's current catalog, one entry per served name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireCatalog {
    /// Sequence number of the `CatalogInfo` frame this answers.
    pub request: u64,
    /// Whether this server accepts `Reload` frames (`--allow-reload`).
    pub reload_enabled: bool,
    /// The served databases, in name order.
    pub databases: Vec<WireCatalogDb>,
    /// Microseconds the request spent inside the server.
    pub server_micros: u64,
}

/// Machine-readable error classes of a
/// [`crate::server::frame::FrameType::Error`] frame. An error frame
/// terminates the request it answers (no `Done` follows); whether the
/// *connection* survives depends on the code — see `docs/PROTOCOL.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The frame's version byte is not this server's protocol version.
    /// Connection is closed.
    Version,
    /// The frame violated the codec (unknown type, oversized payload,
    /// non-UTF-8 text, truncation). Connection is closed.
    BadFrame,
    /// The payload text failed to parse; `line` names the offending
    /// 1-based line. Connection survives.
    Parse,
    /// `Bind` named a database the server does not serve. Connection
    /// survives (the client may bind another name).
    UnknownDb,
    /// `Query` arrived before any successful `Bind`. Connection
    /// survives.
    NotBound,
    /// Backpressure: the server's bounded request queue is full; the
    /// request was rejected *without* being evaluated. Connection
    /// survives — retry later.
    Overloaded,
    /// The server is shutting down and accepts no new work. Connection
    /// is closed after this frame.
    ShuttingDown,
    /// The engine failed internally while evaluating. Connection
    /// survives.
    Internal,
    /// A `Reload` frame arrived but this server was not started with
    /// reloads enabled (`--allow-reload`). Connection survives.
    Unauthorized,
    /// A `Reload` frame named a snapshot file (`@snapshot <path>`) the
    /// server could not use: missing, unreadable, not a snapshot,
    /// version-skewed, or corrupt. The previously published epoch keeps
    /// serving. Connection survives.
    Store,
    /// A `Delta` frame was rejected by the delta kernel (unknown
    /// relation or arity mismatch). Deltas validate wholesale before any
    /// merge, so the previously published epoch keeps serving unchanged.
    /// Connection survives.
    Delta,
}

/// Payload of a [`crate::server::frame::FrameType::Error`] frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireError {
    /// Sequence number of the client frame this answers (`None` when
    /// the error is not attributable to one frame, e.g. a truncated
    /// header).
    pub request: Option<u64>,
    /// The machine-readable error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// For [`ErrorCode::Parse`]: the offending 1-based line of the
    /// payload text.
    pub line: Option<u64>,
    /// For [`ErrorCode::Overloaded`]: the request queue's depth at
    /// rejection time, so clients can calibrate their retry policy.
    pub queue_depth: Option<u64>,
    /// For [`ErrorCode::Overloaded`]: the queue's configured capacity.
    pub queue_capacity: Option<u64>,
}

/// A latency distribution summary inside a [`WireStats`] report,
/// rendered from a [`crate::metrics::Histogram`] snapshot. All values
/// are microseconds; quantiles carry the histogram's ≤ 1.6% relative
/// error, `max_micros` is exact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireHistogram {
    /// Samples recorded.
    pub count: u64,
    /// Median latency.
    pub p50_micros: u64,
    /// 90th-percentile latency.
    pub p90_micros: u64,
    /// 99th-percentile latency.
    pub p99_micros: u64,
    /// Exact maximum latency.
    pub max_micros: u64,
    /// Mean latency.
    pub mean_micros: u64,
}

impl WireHistogram {
    /// Summarize a histogram snapshot.
    pub fn from_snapshot(snap: &Snapshot) -> WireHistogram {
        WireHistogram {
            count: snap.count(),
            p50_micros: snap.p50(),
            p90_micros: snap.p90(),
            p99_micros: snap.p99(),
            max_micros: snap.max(),
            mean_micros: snap.mean(),
        }
    }
}

/// One served database's section of a [`WireStats`] report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireDbStats {
    /// The published name.
    pub name: String,
    /// The catalog's current epoch for the name.
    pub epoch: u64,
    /// Query batches accepted for this database.
    pub batches: u64,
    /// Individual queries answered against this database.
    pub queries: u64,
    /// Errors answered on this database's requests (parse + internal).
    pub errors: u64,
    /// Batches rejected with `Overloaded` while bound to this database.
    pub overloads: u64,
    /// Prepared-query cache hits.
    pub prepared_hits: u64,
    /// Prepared-query cache misses.
    pub prepared_misses: u64,
    /// Bag nodes rewritten (copied + filtered) by overlay tree passes
    /// over this database's prepared bag trees.
    pub bags_rewritten: u64,
    /// Bag nodes those passes visited in total; `rewritten / total` is
    /// this database's overlay sparsity (0 = fully copy-free serving).
    pub bags_total: u64,
    /// Delta batches successfully applied to this database.
    pub delta_batches: u64,
    /// Facts inserted by those deltas (no-op inserts excluded).
    pub facts_inserted: u64,
    /// Facts deleted by those deltas (no-op deletes excluded).
    pub facts_deleted: u64,
    /// Bag-tree nodes re-materialized while migrating this database's
    /// prepared handles warm across delta epochs.
    pub bags_remat: u64,
    /// Per-query server-latency distribution (receipt of the `Query`
    /// frame → the query's `Result` frame handed to the socket).
    pub latency: WireHistogram,
}

/// Payload of a [`crate::server::frame::FrameType::StatsReport`] frame:
/// the server's observability snapshot — lifetime counters, queue
/// gauges, and per-database latency histograms.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireStats {
    /// Sequence number of the `Stats` frame this answers.
    pub request: u64,
    /// Microseconds since the server started serving.
    pub uptime_micros: u64,
    /// Connections accepted since startup.
    pub connections: u64,
    /// Connections currently open.
    pub active_connections: u64,
    /// Frames received.
    pub frames: u64,
    /// Query batches accepted.
    pub batches: u64,
    /// Individual queries received inside accepted batches.
    pub queries: u64,
    /// Individual queries answered with a `Result` frame.
    pub answered: u64,
    /// Batches rejected with `Overloaded`.
    pub rejected_overload: u64,
    /// `Parse` error frames sent.
    pub parse_errors: u64,
    /// Protocol (`Version` / `BadFrame`) error frames sent.
    pub protocol_errors: u64,
    /// `Internal` error frames sent.
    pub internal_errors: u64,
    /// Prepared-query cache hits (all databases).
    pub prepared_hits: u64,
    /// Prepared-query cache misses (all databases).
    pub prepared_misses: u64,
    /// Successful `Reload` frames.
    pub reloads: u64,
    /// `Reload` frames rejected with `Unauthorized`.
    pub rejected_unauthorized: u64,
    /// `Reload { path }` frames rejected with `Store` (bad snapshot
    /// file; the old epoch kept serving).
    pub store_errors: u64,
    /// Bag nodes rewritten by overlay tree passes (all databases).
    pub bags_rewritten: u64,
    /// Bag nodes visited by those passes in total (all databases).
    pub bags_total: u64,
    /// Successful `Delta` frames (all databases).
    pub delta_batches: u64,
    /// Facts inserted by delta batches (all databases; no-ops excluded).
    pub facts_inserted: u64,
    /// Facts deleted by delta batches (all databases; no-ops excluded).
    pub facts_deleted: u64,
    /// Bag-tree nodes re-materialized by warm prepared-handle
    /// migrations across delta epochs (all databases).
    pub bags_remat: u64,
    /// `Delta` frames rejected with [`ErrorCode::Delta`] (the epoch kept
    /// serving unmoved).
    pub delta_errors: u64,
    /// Jobs in the request queue right now.
    pub queue_depth: u64,
    /// Deepest the request queue has ever been (exact; ≥ 1 once any
    /// batch has been accepted).
    pub queue_high_water: u64,
    /// The request queue's configured capacity.
    pub queue_capacity: u64,
    /// Per-database sections, in name order.
    pub databases: Vec<WireDbStats>,
    /// Microseconds this request spent inside the server.
    pub server_micros: u64,
}

/// Render the workload mode directive for `w` (the inverse of
/// [`crate::textio::parse_queries`]' directive handling) — used by
/// clients that assemble query batches programmatically.
pub fn directive_for(w: Workload) -> String {
    match w {
        Workload::Boolean => "@boolean".to_string(),
        Workload::Count => "@count".to_string(),
        Workload::Enumerate { limit: None } => "@enumerate".to_string(),
        Workload::Enumerate { limit: Some(n) } => format!("@enumerate {n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_structs_round_trip_as_json() {
        let result = WireResult {
            request: 3,
            index: 1,
            answer: Answer::Tuples(vec![vec![1, 2], vec![3, 4]]),
            strategy: "ghd-yannakakis".to_string(),
            cache_hit: true,
            prepared_hit: false,
            planning_ns: 0,
            execution_ns: 12_345,
            server_micros: 640,
            trace: Some(WireTrace {
                total_micros: 27,
                spans: vec![
                    WireSpan {
                        phase: "queue_wait".to_string(),
                        micros: 12,
                        detail: None,
                    },
                    WireSpan {
                        phase: "execute".to_string(),
                        micros: 15,
                        detail: Some("ghd-yannakakis".to_string()),
                    },
                ],
            }),
        };
        let json = serde::json::to_string(&result);
        assert_eq!(serde::json::from_str::<WireResult>(&json).unwrap(), result);
        // An untraced result (`trace: null`) round-trips to `None`.
        let plain = WireResult {
            trace: None,
            ..result.clone()
        };
        let json = serde::json::to_string(&plain);
        assert_eq!(serde::json::from_str::<WireResult>(&json).unwrap(), plain);

        let err = WireError {
            request: Some(7),
            code: ErrorCode::Overloaded,
            message: "queue full".to_string(),
            line: None,
            queue_depth: Some(64),
            queue_capacity: Some(64),
        };
        let json = serde::json::to_string(&err);
        assert!(json.contains("Overloaded"), "{json}");
        assert_eq!(serde::json::from_str::<WireError>(&json).unwrap(), err);

        let big_count = WireResult {
            answer: Answer::Count(u128::from(u64::MAX) + 5),
            ..result
        };
        let json = serde::json::to_string(&big_count);
        assert_eq!(
            serde::json::from_str::<WireResult>(&json).unwrap().answer,
            big_count.answer
        );
    }

    #[test]
    fn admin_payloads_round_trip_as_json() {
        let reloaded = WireReloaded {
            request: 4,
            db: "main".to_string(),
            epoch: 3,
            facts: 120,
            relations: 2,
            server_micros: 88,
        };
        let json = serde::json::to_string(&reloaded);
        assert_eq!(
            serde::json::from_str::<WireReloaded>(&json).unwrap(),
            reloaded
        );

        let applied = WireDeltaApplied {
            request: 6,
            db: "main".to_string(),
            epoch: 4,
            inserted: 17,
            deleted: 3,
            relations_touched: vec!["R".to_string(), "S".to_string()],
            facts: 134,
            prepared_warm: 2,
            prepared_reprepared: 1,
            bags_remat: 5,
            server_micros: 41,
        };
        let json = serde::json::to_string(&applied);
        assert_eq!(
            serde::json::from_str::<WireDeltaApplied>(&json).unwrap(),
            applied
        );

        let delta_err = WireError {
            request: Some(5),
            code: ErrorCode::Delta,
            message: "delta rejected: unknown relation `Ghost`".to_string(),
            line: None,
            queue_depth: None,
            queue_capacity: None,
        };
        let json = serde::json::to_string(&delta_err);
        assert!(json.contains("Delta"), "{json}");
        assert_eq!(serde::json::from_str::<WireError>(&json).unwrap(), delta_err);

        let catalog = WireCatalog {
            request: 9,
            reload_enabled: true,
            databases: vec![
                WireCatalogDb {
                    name: "aux".to_string(),
                    epoch: 0,
                    facts: 1,
                    relations: 1,
                },
                WireCatalogDb {
                    name: "main".to_string(),
                    epoch: 7,
                    facts: 42,
                    relations: 3,
                },
            ],
            server_micros: 12,
        };
        let json = serde::json::to_string(&catalog);
        assert_eq!(
            serde::json::from_str::<WireCatalog>(&json).unwrap(),
            catalog
        );

        let err = WireError {
            request: Some(2),
            code: ErrorCode::Unauthorized,
            message: "start it with --allow-reload".to_string(),
            line: None,
            queue_depth: None,
            queue_capacity: None,
        };
        let json = serde::json::to_string(&err);
        assert!(json.contains("Unauthorized"), "{json}");
        assert_eq!(serde::json::from_str::<WireError>(&json).unwrap(), err);
    }

    #[test]
    fn stats_report_round_trips_as_json() {
        let hist = crate::metrics::Histogram::new();
        for v in [100u64, 200, 300, 4_000] {
            hist.record(v);
        }
        let latency = WireHistogram::from_snapshot(&hist.snapshot());
        assert_eq!(latency.count, 4);
        assert_eq!(latency.max_micros, 4_000);
        assert!(latency.p50_micros <= latency.p99_micros);

        let stats = WireStats {
            request: 11,
            uptime_micros: 5_000_000,
            connections: 9,
            active_connections: 2,
            frames: 40,
            batches: 12,
            queries: 31,
            answered: 30,
            rejected_overload: 1,
            parse_errors: 0,
            protocol_errors: 0,
            internal_errors: 0,
            prepared_hits: 25,
            prepared_misses: 6,
            reloads: 1,
            rejected_unauthorized: 0,
            store_errors: 0,
            bags_rewritten: 3,
            bags_total: 90,
            delta_batches: 2,
            facts_inserted: 40,
            facts_deleted: 8,
            bags_remat: 4,
            delta_errors: 1,
            queue_depth: 0,
            queue_high_water: 3,
            queue_capacity: 64,
            databases: vec![WireDbStats {
                name: "main".to_string(),
                epoch: 1,
                batches: 12,
                queries: 31,
                errors: 0,
                overloads: 1,
                prepared_hits: 25,
                prepared_misses: 6,
                bags_rewritten: 3,
                bags_total: 90,
                delta_batches: 2,
                facts_inserted: 40,
                facts_deleted: 8,
                bags_remat: 4,
                latency,
            }],
            server_micros: 45,
        };
        let json = serde::json::to_string(&stats);
        assert_eq!(serde::json::from_str::<WireStats>(&json).unwrap(), stats);
    }

    #[test]
    fn directives_render_parseably() {
        for (w, text) in [
            (Workload::Boolean, "@boolean"),
            (Workload::Count, "@count"),
            (Workload::Enumerate { limit: None }, "@enumerate"),
            (Workload::Enumerate { limit: Some(4) }, "@enumerate 4"),
        ] {
            assert_eq!(directive_for(w), text);
            let batch = format!("{text}\nQ: R(?x)\n");
            let parsed = crate::textio::parse_queries(&batch).unwrap();
            assert_eq!(parsed[0].1, Some(w));
        }
    }
}
