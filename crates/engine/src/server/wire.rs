//! JSON payloads of the server→client frames.
//!
//! Every structure here derives the workspace's `serde` traits and
//! travels as JSON text inside a [`crate::server::frame`] frame. All
//! response payloads carry `request` — the 1-based sequence number of
//! the client frame they answer, counted per connection — so clients
//! may pipeline frames and still correlate responses.

use serde::{Deserialize, Serialize};

use crate::engine::{Answer, Response, Workload};

/// Payload of a [`crate::server::frame::FrameType::Bound`] frame: the
/// connection is now bound to `db`. `facts`/`relations`/`epoch`
/// describe the catalog's *current* snapshot at bind time; each query
/// batch pins whatever snapshot is current when the batch is accepted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireBound {
    /// Sequence number of the `Bind` frame this answers.
    pub request: u64,
    /// The database name the connection is bound to.
    pub db: String,
    /// Total facts in the database.
    pub facts: u64,
    /// Number of relations in the database.
    pub relations: u64,
    /// The catalog epoch of the snapshot described above (bumped by
    /// every reload).
    pub epoch: u64,
}

/// Payload of a [`crate::server::frame::FrameType::Result`] frame: one
/// query's answer plus its plan provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireResult {
    /// Sequence number of the `Query` frame this answers.
    pub request: u64,
    /// 0-based index of the query within its batch.
    pub index: u64,
    /// The answer (Boolean, count, or tuples).
    pub answer: Answer,
    /// The executed plan's strategy name (e.g. `ghd-yannakakis`).
    pub strategy: String,
    /// Whether the structure analysis came from the engine's plan cache.
    pub cache_hit: bool,
    /// Whether the server reused a prepared-query handle (bag tree
    /// already materialized) for this execution.
    pub prepared_hit: bool,
    /// Nanoseconds of planning this execution paid (0 on prepared
    /// re-execution — the cost was paid when the handle was prepared).
    pub planning_ns: u64,
    /// Nanoseconds of execution (the per-run tree pass).
    pub execution_ns: u64,
}

impl WireResult {
    /// Assemble from an engine [`Response`].
    pub fn from_response(request: u64, index: u64, prepared_hit: bool, resp: &Response) -> Self {
        WireResult {
            request,
            index,
            answer: resp.answer.clone(),
            strategy: resp.provenance.planned.plan.strategy().to_string(),
            cache_hit: resp.provenance.cache_hit,
            prepared_hit,
            planning_ns: u64::try_from(resp.provenance.planning.as_nanos()).unwrap_or(u64::MAX),
            execution_ns: u64::try_from(resp.provenance.execution.as_nanos()).unwrap_or(u64::MAX),
        }
    }
}

/// Payload of a [`crate::server::frame::FrameType::Done`] frame: the
/// batch of `results` answers for `request` is complete.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireDone {
    /// Sequence number of the `Query` frame this answers.
    pub request: u64,
    /// How many `Result` frames were sent for the batch.
    pub results: u64,
}

/// Payload of a [`crate::server::frame::FrameType::Reloaded`] frame:
/// the catalog published a new snapshot for `db`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireReloaded {
    /// Sequence number of the `Reload` frame this answers.
    pub request: u64,
    /// The reloaded database's name.
    pub db: String,
    /// The new snapshot's epoch (old epoch + 1). Sessions pinned to
    /// older epochs keep answering consistently; new sessions see this
    /// one.
    pub epoch: u64,
    /// Total facts in the new snapshot.
    pub facts: u64,
    /// Number of relations in the new snapshot.
    pub relations: u64,
}

/// One database in a [`WireCatalog`] description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireCatalogDb {
    /// The published name.
    pub name: String,
    /// The current epoch (number of reloads since startup).
    pub epoch: u64,
    /// Total facts in the current snapshot.
    pub facts: u64,
    /// Number of relations in the current snapshot.
    pub relations: u64,
}

/// Payload of a [`crate::server::frame::FrameType::Catalog`] frame:
/// the server's current catalog, one entry per served name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireCatalog {
    /// Sequence number of the `CatalogInfo` frame this answers.
    pub request: u64,
    /// Whether this server accepts `Reload` frames (`--allow-reload`).
    pub reload_enabled: bool,
    /// The served databases, in name order.
    pub databases: Vec<WireCatalogDb>,
}

/// Machine-readable error classes of a
/// [`crate::server::frame::FrameType::Error`] frame. An error frame
/// terminates the request it answers (no `Done` follows); whether the
/// *connection* survives depends on the code — see `docs/PROTOCOL.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The frame's version byte is not this server's protocol version.
    /// Connection is closed.
    Version,
    /// The frame violated the codec (unknown type, oversized payload,
    /// non-UTF-8 text, truncation). Connection is closed.
    BadFrame,
    /// The payload text failed to parse; `line` names the offending
    /// 1-based line. Connection survives.
    Parse,
    /// `Bind` named a database the server does not serve. Connection
    /// survives (the client may bind another name).
    UnknownDb,
    /// `Query` arrived before any successful `Bind`. Connection
    /// survives.
    NotBound,
    /// Backpressure: the server's bounded request queue is full; the
    /// request was rejected *without* being evaluated. Connection
    /// survives — retry later.
    Overloaded,
    /// The server is shutting down and accepts no new work. Connection
    /// is closed after this frame.
    ShuttingDown,
    /// The engine failed internally while evaluating. Connection
    /// survives.
    Internal,
    /// A `Reload` frame arrived but this server was not started with
    /// reloads enabled (`--allow-reload`). Connection survives.
    Unauthorized,
}

/// Payload of a [`crate::server::frame::FrameType::Error`] frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireError {
    /// Sequence number of the client frame this answers (`None` when
    /// the error is not attributable to one frame, e.g. a truncated
    /// header).
    pub request: Option<u64>,
    /// The machine-readable error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// For [`ErrorCode::Parse`]: the offending 1-based line of the
    /// payload text.
    pub line: Option<u64>,
}

/// Render the workload mode directive for `w` (the inverse of
/// [`crate::textio::parse_queries`]' directive handling) — used by
/// clients that assemble query batches programmatically.
pub fn directive_for(w: Workload) -> String {
    match w {
        Workload::Boolean => "@boolean".to_string(),
        Workload::Count => "@count".to_string(),
        Workload::Enumerate { limit: None } => "@enumerate".to_string(),
        Workload::Enumerate { limit: Some(n) } => format!("@enumerate {n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_structs_round_trip_as_json() {
        let result = WireResult {
            request: 3,
            index: 1,
            answer: Answer::Tuples(vec![vec![1, 2], vec![3, 4]]),
            strategy: "ghd-yannakakis".to_string(),
            cache_hit: true,
            prepared_hit: false,
            planning_ns: 0,
            execution_ns: 12_345,
        };
        let json = serde::json::to_string(&result);
        assert_eq!(serde::json::from_str::<WireResult>(&json).unwrap(), result);

        let err = WireError {
            request: Some(7),
            code: ErrorCode::Overloaded,
            message: "queue full".to_string(),
            line: None,
        };
        let json = serde::json::to_string(&err);
        assert!(json.contains("Overloaded"), "{json}");
        assert_eq!(serde::json::from_str::<WireError>(&json).unwrap(), err);

        let big_count = WireResult {
            answer: Answer::Count(u128::from(u64::MAX) + 5),
            ..result
        };
        let json = serde::json::to_string(&big_count);
        assert_eq!(
            serde::json::from_str::<WireResult>(&json).unwrap().answer,
            big_count.answer
        );
    }

    #[test]
    fn admin_payloads_round_trip_as_json() {
        let reloaded = WireReloaded {
            request: 4,
            db: "main".to_string(),
            epoch: 3,
            facts: 120,
            relations: 2,
        };
        let json = serde::json::to_string(&reloaded);
        assert_eq!(
            serde::json::from_str::<WireReloaded>(&json).unwrap(),
            reloaded
        );

        let catalog = WireCatalog {
            request: 9,
            reload_enabled: true,
            databases: vec![
                WireCatalogDb {
                    name: "aux".to_string(),
                    epoch: 0,
                    facts: 1,
                    relations: 1,
                },
                WireCatalogDb {
                    name: "main".to_string(),
                    epoch: 7,
                    facts: 42,
                    relations: 3,
                },
            ],
        };
        let json = serde::json::to_string(&catalog);
        assert_eq!(
            serde::json::from_str::<WireCatalog>(&json).unwrap(),
            catalog
        );

        let err = WireError {
            request: Some(2),
            code: ErrorCode::Unauthorized,
            message: "start it with --allow-reload".to_string(),
            line: None,
        };
        let json = serde::json::to_string(&err);
        assert!(json.contains("Unauthorized"), "{json}");
        assert_eq!(serde::json::from_str::<WireError>(&json).unwrap(), err);
    }

    #[test]
    fn directives_render_parseably() {
        for (w, text) in [
            (Workload::Boolean, "@boolean"),
            (Workload::Count, "@count"),
            (Workload::Enumerate { limit: None }, "@enumerate"),
            (Workload::Enumerate { limit: Some(4) }, "@enumerate 4"),
        ] {
            assert_eq!(directive_for(w), text);
            let batch = format!("{text}\nQ: R(?x)\n");
            let parsed = crate::textio::parse_queries(&batch).unwrap();
            assert_eq!(parsed[0].1, Some(w));
        }
    }
}
