//! Zero-dependency observability primitives: lock-free counters and
//! gauges, a log-linear latency [`Histogram`], and the per-query
//! [`QueryTrace`] span recorder.
//!
//! Everything here is built on `std::sync::atomic` only — no external
//! crates, consistent with the repository's vendored offline build —
//! and is cheap enough to leave permanently enabled on the hot path
//! (`benches/engine_metrics_overhead.rs` gates the instrumented warm
//! [`PreparedQuery::run`](crate::session::PreparedQuery::run) path
//! within 5% of the bare one).
//!
//! # Histogram design
//!
//! [`Histogram`] uses **log-linear bucketing** (the HdrHistogram /
//! DDSketch family): values below 64 get one bucket each (exact), and
//! every power-of-two octave above that is split into 64 linear
//! sub-buckets. The bucket width within an octave `[2^e, 2^(e+1))` is
//! `2^(e-6)`, so the relative quantile error is bounded by
//! `1/64 ≈ 1.6%` — within the ~2% budget — from a fixed array of 3776
//! `AtomicU64` slots covering the full `u64` range. Recording is one
//! `leading_zeros`, two shifts, and three `fetch_add`s; there is no
//! locking anywhere, so concurrent recorders never serialize and no
//! count is ever lost.
//!
//! Readers take a [`Snapshot`], which is a plain owned value: it can be
//! [merged](Snapshot::merge) with snapshots of other histograms (e.g.
//! per-database latency merged into a server-wide view) and queried for
//! [`quantile`](Snapshot::quantile), mean, and exact max.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS = 64` linear buckets, bounding relative error by 1/64.
const SUB_BITS: u32 = 6;
/// Number of exact single-value buckets at the bottom (`0..64`).
const LINEAR: u64 = 1 << SUB_BITS;
/// Total bucket count covering all of `u64`:
/// 64 exact buckets + 58 octaves × 64 sub-buckets.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) << SUB_BITS;

/// A monotonically increasing lock-free event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free gauge that remembers its **high-water mark**: the
/// largest value it has ever held, updated with `fetch_max` so
/// concurrent writers cannot lose a peak.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    high: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicU64::new(0),
            high: AtomicU64::new(0),
        }
    }

    /// Increments the gauge and folds the new value into the
    /// high-water mark.
    pub fn inc(&self) {
        let now = self.value.fetch_add(1, Ordering::Relaxed) + 1;
        self.high.fetch_max(now, Ordering::Relaxed);
    }

    /// Decrements the gauge. Saturates at zero rather than wrapping if
    /// a racing reader has already observed the decrement.
    pub fn dec(&self) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Sets the gauge to an absolute value, folding it into the
    /// high-water mark.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.high.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Largest value ever held.
    pub fn high_water(&self) -> u64 {
        self.high.load(Ordering::Relaxed)
    }
}

/// Maps a value to its log-linear bucket index. Total mapping is
/// monotone and covers all of `u64` in [`BUCKETS`] slots.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // 6..=63
        let sub = (v >> (e - SUB_BITS)) - LINEAR; // top SUB_BITS after the leading 1
        (((e - SUB_BITS + 1) as u64) << SUB_BITS) as usize + sub as usize
    }
}

/// Inclusive lower bound of a bucket (inverse of [`bucket_index`]).
fn bucket_floor(index: usize) -> u64 {
    let i = index as u64;
    if i < LINEAR {
        i
    } else {
        let e = (i >> SUB_BITS) + SUB_BITS as u64 - 1;
        let sub = i & (LINEAR - 1);
        (LINEAR + sub) << (e - SUB_BITS as u64)
    }
}

/// Width of a bucket in value units.
fn bucket_width(index: usize) -> u64 {
    let i = index as u64;
    if i < LINEAR {
        1
    } else {
        1 << ((i >> SUB_BITS) - 1)
    }
}

/// A fixed-size, lock-free log-linear histogram of `u64` samples
/// (typically latencies in microseconds).
///
/// ~30 KiB of `AtomicU64` buckets; ≤ 1.6% relative quantile error;
/// recording never locks or allocates. See the module docs for the
/// bucketing scheme.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .field("max", &self.max.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the boxed array through a Vec
        // to keep the (large) array off the stack.
        let buckets: Box<[AtomicU64; BUCKETS]> = (0..BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice()
            .try_into()
            // cqd2-lint: allow(panic-in-hot-path, reason = "construction-time only (not per request) and the vec length is BUCKETS by the range above")
            .unwrap_or_else(|_| unreachable!("vec length is BUCKETS by construction"));
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free: safe to call from any number of
    /// threads concurrently without losing counts.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as whole microseconds (saturating at
    /// `u64::MAX` µs ≈ 584 thousand years).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Takes an owned, mergeable snapshot of the current state.
    ///
    /// The snapshot is internally consistent per bucket but, under
    /// concurrent recording, `count`/`sum` may trail the bucket array
    /// by in-flight samples; quantiles are computed from the buckets
    /// themselves so they never see a torn rank.
    pub fn snapshot(&self) -> Snapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        Snapshot {
            count: buckets.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// An owned point-in-time copy of a [`Histogram`], supporting quantile
/// readout and merging with snapshots of other histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot::empty()
    }
}

impl Snapshot {
    /// An empty snapshot (identity element for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        Snapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Total samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact largest sample recorded (not bucket-quantized).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the midpoint of the bucket
    /// holding that rank, clamped to the exact recorded max. Relative
    /// error is bounded by half a bucket width (≤ 0.8%). Returns zero
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if target == self.count {
            return self.max; // the last rank is the exact recorded max
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let mid = bucket_floor(i) + bucket_width(i) / 2;
                return mid.min(self.max);
            }
        }
        self.max
    }

    /// Median shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile shorthand.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds another snapshot into this one (bucket-wise sum, exact
    /// max of maxes). Merging per-database snapshots yields the
    /// server-wide distribution.
    pub fn merge(&mut self, other: &Snapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// The serve-path phases a [`QueryTrace`] splits a request into.
///
/// Each phase is a **disjoint sub-interval** of the request's total
/// server residency, so the sum of span durations never exceeds the
/// `server_micros` stamped on the wire response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// From batch enqueue to a worker dequeuing it.
    QueueWait,
    /// Parsing the query-batch text into conjunctive queries.
    Parse,
    /// Planning: hypergraph analysis and strategy selection (zero on a
    /// prepared-cache hit; the detail string records the strategy and
    /// hit/miss provenance).
    Plan,
    /// Bag materialization for enumeration workloads (zero on a
    /// prepared-cache hit).
    Materialize,
    /// Executing the plan against the pinned snapshot.
    Execute,
    /// Encoding the result payload to JSON.
    Serialize,
}

impl Phase {
    /// Stable wire name of the phase (`snake_case`).
    pub fn name(self) -> &'static str {
        match self {
            Phase::QueueWait => "queue_wait",
            Phase::Parse => "parse",
            Phase::Plan => "plan",
            Phase::Materialize => "materialize",
            Phase::Execute => "execute",
            Phase::Serialize => "serialize",
        }
    }
}

/// One recorded phase of a traced query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Which serve-path phase this measures.
    pub phase: Phase,
    /// Wall-clock time spent in the phase.
    pub duration: Duration,
    /// Optional human-readable annotation (e.g. the chosen plan
    /// strategy and cache provenance for [`Phase::Plan`]).
    pub detail: Option<String>,
}

/// A lightweight per-query span recorder threaded through the serve
/// path.
///
/// Recording is a `Vec` push — no clocks are read by the trace itself;
/// callers measure each phase where it happens and hand in the
/// duration. Traces attach to wire responses when the client requests
/// them (`@trace`); the per-query latency histograms are populated
/// whether or not anyone is tracing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryTrace {
    spans: Vec<Span>,
}

impl QueryTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        QueryTrace::default()
    }

    /// Records a phase with no annotation.
    pub fn record(&mut self, phase: Phase, duration: Duration) {
        self.spans.push(Span {
            phase,
            duration,
            detail: None,
        });
    }

    /// Records a phase with an annotation.
    pub fn record_with(&mut self, phase: Phase, duration: Duration, detail: impl Into<String>) {
        self.spans.push(Span {
            phase,
            duration,
            detail: Some(detail.into()),
        });
    }

    /// The recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Sum of all span durations. Because phases are disjoint
    /// sub-intervals, this is ≤ the request's total server time.
    pub fn total(&self) -> Duration {
        self.spans.iter().map(|s| s.duration).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// xorshift64* — deterministic pseudo-random stream, no crates.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    #[test]
    fn bucket_mapping_is_monotone_and_self_inverse() {
        let probes = [
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1000,
            65_535,
            1 << 40,
            u64::MAX,
        ];
        let mut last = 0usize;
        for (i, &v) in probes.iter().enumerate() {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "index {idx} out of range for {v}");
            if i > 0 {
                assert!(idx >= last, "bucketing must be monotone at {v}");
            }
            last = idx;
            let floor = bucket_floor(idx);
            let width = bucket_width(idx);
            assert!(
                floor <= v && (width == 0 || v - floor < width || idx == BUCKETS - 1),
                "value {v} not inside its bucket [{floor}, {floor}+{width})"
            );
            assert_eq!(
                bucket_index(floor),
                idx,
                "floor must map back to its bucket"
            );
        }
        assert_eq!(
            bucket_index(u64::MAX),
            BUCKETS - 1,
            "u64::MAX fills the top bucket"
        );
    }

    #[test]
    fn quantiles_match_a_sorted_reference_within_two_percent() {
        let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
        let h = Histogram::new();
        let mut samples: Vec<u64> = (0..10_000)
            .map(|_| {
                // Mix scales: most samples small, a tail up to ~16M.
                let raw = rng.next();
                match raw % 10 {
                    0..=5 => raw % 1_000,
                    6..=8 => raw % 100_000,
                    _ => raw % 16_000_000,
                }
            })
            .collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count(), samples.len() as u64);
        assert_eq!(snap.max(), *samples.last().unwrap(), "max is exact");
        for q in [0.50, 0.90, 0.99, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let reference = samples[rank - 1];
            let estimate = snap.quantile(q);
            let slack = (reference as f64 * 0.02).max(1.0) as u64;
            assert!(
                estimate.abs_diff(reference) <= slack,
                "q={q}: estimate {estimate} vs reference {reference} (slack {slack})"
            );
        }
    }

    #[test]
    fn top_bucket_saturates_without_losing_counts() {
        let h = Histogram::new();
        for _ in 0..5 {
            h.record(u64::MAX);
        }
        h.record(u64::MAX - 1);
        h.record(1);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 7);
        assert_eq!(snap.max(), u64::MAX, "max is exact even in the top bucket");
        // The top-bucket midpoint would overshoot u64::MAX-ish values;
        // quantiles clamp to the exact recorded max instead.
        assert_eq!(snap.quantile(1.0), u64::MAX);
        assert!(snap.quantile(0.9) >= snap.quantile(0.5));
        assert_eq!(snap.p50(), snap.quantile(0.5));
    }

    #[test]
    fn eight_concurrent_recorders_lose_no_counts() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let h = Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    let mut rng = Rng(0xDEAD_BEEF ^ (t as u64 + 1));
                    for _ in 0..PER_THREAD {
                        h.record(rng.next() % 1_000_000);
                    }
                });
            }
        });
        let snap = h.snapshot();
        let expected = THREADS as u64 * PER_THREAD;
        assert_eq!(snap.count(), expected, "no recorded sample may be lost");
        assert_eq!(h.count(), expected);
        assert!(snap.quantile(0.5) <= snap.quantile(0.99));
        assert!(snap.quantile(0.99) <= snap.max());
    }

    #[test]
    fn snapshots_merge_bucketwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 10, 100, 1_000] {
            a.record(v);
        }
        for v in [5u64, 50, 500_000] {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 7);
        assert_eq!(merged.max(), 500_000);
        assert_eq!(merged.mean(), (1 + 10 + 100 + 1_000 + 5 + 50 + 500_000) / 7);
        let mut identity = Snapshot::empty();
        identity.merge(&merged);
        assert_eq!(identity, merged, "empty() is the merge identity");
    }

    #[test]
    fn gauge_tracks_value_and_high_water() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.value(), 2);
        assert_eq!(g.high_water(), 3);
        g.set(10);
        g.set(4);
        assert_eq!(g.value(), 4);
        assert_eq!(g.high_water(), 10);
        g.dec();
        g.dec();
        g.dec();
        g.dec();
        g.dec(); // one extra: must saturate, not wrap
        assert_eq!(g.value(), 0);
    }

    #[test]
    fn trace_totals_are_span_sums() {
        let mut t = QueryTrace::new();
        t.record(Phase::QueueWait, Duration::from_micros(5));
        t.record_with(
            Phase::Plan,
            Duration::from_micros(7),
            "ghd-yannakakis (cached)",
        );
        t.record(Phase::Execute, Duration::from_micros(30));
        assert_eq!(t.total(), Duration::from_micros(42));
        assert_eq!(t.spans().len(), 3);
        assert_eq!(t.spans()[1].phase.name(), "plan");
        assert_eq!(
            t.spans()[1].detail.as_deref(),
            Some("ghd-yannakakis (cached)")
        );
        let names: Vec<_> = [
            Phase::QueueWait,
            Phase::Parse,
            Phase::Plan,
            Phase::Materialize,
            Phase::Execute,
            Phase::Serialize,
        ]
        .iter()
        .map(|p| p.name())
        .collect();
        assert_eq!(
            names,
            [
                "queue_wait",
                "parse",
                "plan",
                "materialize",
                "execute",
                "serialize"
            ]
        );
    }
}
