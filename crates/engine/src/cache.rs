//! The plan cache: structural analysis amortized across isomorphic
//! queries.
//!
//! Workloads repeat *shapes* far more often than literal queries (the
//! same join pattern over different relation names and variable names).
//! Decompositions and jigsaw certificates depend only on the query's
//! hypergraph up to isomorphism, so the cache keys on
//! [`cqd2_hypergraph::fingerprint`] and confirms candidates with
//! [`find_isomorphism`]; on a hit, the stored GHD is translated along
//! the witness isomorphism into the incoming query's coordinates.
//!
//! ```
//! use cqd2_engine::Engine;
//! use cqd2_cq::{ConjunctiveQuery, Database};
//!
//! let engine = Engine::default();
//! let db = Database::new();
//! // Same shape, different relation and variable names: one structure
//! // class, analyzed once.
//! let a = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])]);
//! let b = ConjunctiveQuery::parse(&[("T", &["?p", "?q"]), ("U", &["?q", "?r"])]);
//! engine.solve_bcq(&a, &db);
//! engine.solve_bcq(&b, &db);
//! let stats = engine.cache_stats();
//! assert_eq!((stats.misses, stats.hits), (1, 1));
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use cqd2_decomp::Ghd;
use cqd2_hypergraph::{find_isomorphism, fingerprint, Hypergraph, Isomorphism, VertexId};

use crate::planner::PlannedStructure;

/// Translate a GHD of `rep` into the coordinates of an isomorphic
/// hypergraph via a witness isomorphism `rep → target`.
///
/// Bags map vertex-wise, covers map edge-wise; the tree shape is
/// unchanged. The result is a valid GHD of the target of the same width.
pub fn translate_ghd(ghd: &Ghd, iso: &Isomorphism) -> Ghd {
    let mut out = ghd.clone();
    for bag in &mut out.td.bags {
        for v in bag.iter_mut() {
            *v = iso.vertex_map[v.idx()];
        }
        bag.sort_unstable();
    }
    for cover in &mut out.covers {
        for e in cover.iter_mut() {
            *e = iso.edge_map[e.idx()];
        }
    }
    out
}

/// A cache hit: the stored analysis plus the coordinate translation for
/// the incoming query.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The stored structure analysis (in representative coordinates for
    /// the jigsaw certificate; the GHD below is already translated).
    pub structure: Arc<PlannedStructure>,
    /// The stored GHD translated into the incoming query's coordinates.
    pub ghd: Option<Ghd>,
    /// Vertex renaming `representative → query` that witnessed the hit
    /// (identity-shaped on a first-party miss-then-insert).
    pub vertex_map: Vec<VertexId>,
}

/// Hit/miss counters (snapshot view via [`PlanCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required fresh planning.
    pub misses: u64,
    /// Structures currently stored.
    pub entries: usize,
}

struct CacheEntry {
    representative: Hypergraph,
    structure: Arc<PlannedStructure>,
    /// Logical timestamp of the last hit (or the insertion), driving LRU
    /// eviction.
    last_used: u64,
    /// Names of the catalog databases this structure class has been
    /// prepared against (empty for structure-only planning). This is
    /// the plan spill's per-name invalidation attribution: a record is
    /// stale only when a database *it* served has moved epochs.
    dbs: std::collections::BTreeSet<String>,
}

/// Fingerprint-bucketed store of planned structures with per-entry LRU
/// eviction.
pub struct PlanCache {
    buckets: HashMap<u64, Vec<CacheEntry>>,
    capacity: usize,
    entries: usize,
    hits: u64,
    misses: u64,
    /// Monotonic logical clock; bumped on every lookup/insert.
    tick: u64,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` structures (0 means
    /// unbounded). On overflow the least-recently-used entry is evicted
    /// from its fingerprint bucket — hot structures survive capacity
    /// pressure, and a translated plan is never served stale (entries are
    /// dropped whole, never mutated).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            buckets: HashMap::new(),
            capacity,
            entries: 0,
            hits: 0,
            misses: 0,
            tick: 0,
        }
    }

    /// Look up the structure class of `h`. On a hit the stored GHD is
    /// translated into `h`'s coordinates and the entry's LRU stamp is
    /// refreshed. Counts a miss otherwise.
    pub fn lookup(&mut self, h: &Hypergraph) -> Option<CachedPlan> {
        self.lookup_in(h, None)
    }

    /// [`PlanCache::lookup`], additionally attributing the hit to the
    /// named database (the prepare path passes the pinned snapshot's
    /// name; structure-only planning passes `None`). The attribution
    /// set drives the plan spill's per-name staleness.
    pub fn lookup_in(&mut self, h: &Hypergraph, db: Option<&str>) -> Option<CachedPlan> {
        self.tick += 1;
        let key = fingerprint(h);
        if let Some(bucket) = self.buckets.get_mut(&key) {
            for entry in bucket.iter_mut() {
                if let Some(iso) = find_isomorphism(&entry.representative, h) {
                    self.hits += 1;
                    entry.last_used = self.tick;
                    if let Some(name) = db {
                        if !entry.dbs.contains(name) {
                            entry.dbs.insert(name.to_string());
                        }
                    }
                    let ghd = entry.structure.ghd.as_ref().map(|g| translate_ghd(g, &iso));
                    return Some(CachedPlan {
                        structure: Arc::clone(&entry.structure),
                        ghd,
                        vertex_map: iso.vertex_map,
                    });
                }
            }
        }
        self.misses += 1;
        None
    }

    /// Store the analysis of `h`'s structure class, with `h` as the
    /// class representative. At capacity, the least-recently-used entry
    /// across all fingerprint buckets is evicted first.
    pub fn insert(&mut self, h: &Hypergraph, structure: PlannedStructure) -> Arc<PlannedStructure> {
        self.insert_in(h, structure, &[])
    }

    /// [`PlanCache::insert`] with database attribution: `dbs` seeds the
    /// entry's attribution set (one name from the prepare path, or a
    /// spilled record's full set on preload).
    pub fn insert_in(
        &mut self,
        h: &Hypergraph,
        structure: PlannedStructure,
        dbs: &[String],
    ) -> Arc<PlannedStructure> {
        while self.capacity > 0 && self.entries >= self.capacity {
            self.evict_lru();
        }
        self.tick += 1;
        let structure = Arc::new(structure);
        self.buckets
            .entry(fingerprint(h))
            .or_default()
            .push(CacheEntry {
                representative: h.clone(),
                structure: Arc::clone(&structure),
                last_used: self.tick,
                dbs: dbs.iter().cloned().collect(),
            });
        self.entries += 1;
        structure
    }

    /// Remove the entry with the oldest LRU stamp (no-op on an empty
    /// cache). Empty buckets are dropped so the bucket map cannot grow
    /// without bound under churn.
    fn evict_lru(&mut self) {
        let victim = self
            .buckets
            .iter()
            .flat_map(|(&key, bucket)| {
                bucket
                    .iter()
                    .enumerate()
                    .map(move |(i, e)| (e.last_used, key, i))
            })
            .min()
            .map(|(_, key, i)| (key, i));
        let Some((key, i)) = victim else {
            return;
        };
        // cqd2-lint: allow(panic-in-hot-path, reason = "the victim key was read out of self.buckets two lines up under the same &mut borrow; the bucket cannot have vanished")
        let bucket = self.buckets.get_mut(&key).expect("victim bucket exists");
        bucket.remove(i);
        if bucket.is_empty() {
            self.buckets.remove(&key);
        }
        self.entries -= 1;
    }

    /// Is the structure class of `h` already cached? Unlike
    /// [`PlanCache::lookup`] this bumps no counters and refreshes no LRU
    /// stamps — it is the plan store's preload dedup probe, and must not
    /// distort the serving hit/miss statistics.
    pub fn contains(&self, h: &Hypergraph) -> bool {
        let key = fingerprint(h);
        self.buckets.get(&key).is_some_and(|bucket| {
            bucket
                .iter()
                .any(|e| find_isomorphism(&e.representative, h).is_some())
        })
    }

    /// Clone out every cached structure class as `(representative,
    /// analysis)` pairs, LRU-oldest first (so a capacity-truncating
    /// consumer keeps the hottest classes last-written). This is the
    /// plan store's spill surface; counters are untouched.
    pub fn export(&self) -> Vec<(Hypergraph, PlannedStructure)> {
        self.export_attributed()
            .into_iter()
            .map(|(h, s, _)| (h, s))
            .collect()
    }

    /// [`PlanCache::export`] with each entry's database-attribution set
    /// (sorted names; empty = structure-only planning). The plan spill
    /// persists this so staleness can be judged per name on reload.
    pub fn export_attributed(&self) -> Vec<(Hypergraph, PlannedStructure, Vec<String>)> {
        let mut entries: Vec<&CacheEntry> = self.buckets.values().flatten().collect();
        entries.sort_by_key(|e| e.last_used);
        entries
            .iter()
            .map(|e| {
                (
                    e.representative.clone(),
                    (*e.structure).clone(),
                    e.dbs.iter().cloned().collect(),
                )
            })
            .collect()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;
    use cqd2_hypergraph::generators::{hyperchain, hypercycle};

    fn relabel_reversed(h: &Hypergraph) -> Hypergraph {
        let n = h.num_vertices() as u32;
        let edges: Vec<Vec<u32>> = h
            .edge_ids()
            .map(|e| h.edge(e).iter().map(|v| n - 1 - v.0).collect())
            .collect();
        Hypergraph::new(n as usize, &edges).unwrap()
    }

    #[test]
    fn isomorphic_renamings_hit_after_one_miss() {
        let mut cache = PlanCache::new(0);
        let planner = Planner::default();
        let h = hypercycle(5, 2);
        assert!(cache.lookup(&h).is_none());
        cache.insert(&h, planner.plan_structure(&h));

        // Identical query: hit.
        assert!(cache.lookup(&h).is_some());
        // Renamed-but-isomorphic query: hit, with a translated GHD that
        // validates against the *renamed* hypergraph.
        let renamed = relabel_reversed(&h);
        let hit = cache.lookup(&renamed).expect("isomorphic structure hits");
        let ghd = hit.ghd.expect("cycle has a ghd");
        ghd.validate(&renamed).unwrap();
        assert_eq!(ghd.width(), 2);

        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
    }

    #[test]
    fn different_structures_miss() {
        let mut cache = PlanCache::new(0);
        let planner = Planner::default();
        let chain = hyperchain(4, 2);
        cache.insert(&chain, planner.plan_structure(&chain));
        assert!(cache.lookup(&hypercycle(4, 2)).is_none());
        assert!(cache.lookup(&hyperchain(5, 2)).is_none());
    }

    #[test]
    fn capacity_overflow_evicts_least_recently_used() {
        let mut cache = PlanCache::new(2);
        let planner = Planner::default();
        for k in 3..6 {
            let h = hyperchain(k, 2);
            cache.insert(&h, planner.plan_structure(&h));
        }
        // LRU order at the third insert was chain-3 < chain-4, so only
        // chain-3 was evicted; the cache stays full.
        assert!(cache.lookup(&hyperchain(3, 2)).is_none());
        assert!(cache.lookup(&hyperchain(4, 2)).is_some());
        assert!(cache.lookup(&hyperchain(5, 2)).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn hot_structure_survives_capacity_pressure() {
        let mut cache = PlanCache::new(2);
        let planner = Planner::default();
        let hot = hypercycle(5, 2);
        cache.insert(&hot, planner.plan_structure(&hot));
        // A stream of one-shot structures churns through the remaining
        // slot; the hot structure is touched between insertions and must
        // never be the LRU victim.
        for k in 3..8 {
            let cold = hyperchain(k, 2);
            assert!(cache.lookup(&hot).is_some(), "hot entry evicted at k={k}");
            cache.insert(&cold, planner.plan_structure(&cold));
        }
        assert!(cache.lookup(&hot).is_some());
        assert_eq!(cache.stats().entries, 2);
        // The cold structures churned: all but the newest were evicted.
        for k in 3..7 {
            assert!(cache.lookup(&hyperchain(k, 2)).is_none(), "k={k}");
        }
        assert!(cache.lookup(&hyperchain(7, 2)).is_some());
    }
}
