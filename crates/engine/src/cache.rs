//! The plan cache: structural analysis amortized across isomorphic
//! queries.
//!
//! Workloads repeat *shapes* far more often than literal queries (the
//! same join pattern over different relation names and variable names).
//! Decompositions and jigsaw certificates depend only on the query's
//! hypergraph up to isomorphism, so the cache keys on
//! [`cqd2_hypergraph::fingerprint`] and confirms candidates with
//! [`find_isomorphism`]; on a hit, the stored GHD is translated along
//! the witness isomorphism into the incoming query's coordinates.

use std::collections::HashMap;
use std::sync::Arc;

use cqd2_decomp::Ghd;
use cqd2_hypergraph::{find_isomorphism, fingerprint, Hypergraph, Isomorphism, VertexId};

use crate::planner::PlannedStructure;

/// Translate a GHD of `rep` into the coordinates of an isomorphic
/// hypergraph via a witness isomorphism `rep → target`.
///
/// Bags map vertex-wise, covers map edge-wise; the tree shape is
/// unchanged. The result is a valid GHD of the target of the same width.
pub fn translate_ghd(ghd: &Ghd, iso: &Isomorphism) -> Ghd {
    let mut out = ghd.clone();
    for bag in &mut out.td.bags {
        for v in bag.iter_mut() {
            *v = iso.vertex_map[v.idx()];
        }
        bag.sort_unstable();
    }
    for cover in &mut out.covers {
        for e in cover.iter_mut() {
            *e = iso.edge_map[e.idx()];
        }
    }
    out
}

/// A cache hit: the stored analysis plus the coordinate translation for
/// the incoming query.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The stored structure analysis (in representative coordinates for
    /// the jigsaw certificate; the GHD below is already translated).
    pub structure: Arc<PlannedStructure>,
    /// The stored GHD translated into the incoming query's coordinates.
    pub ghd: Option<Ghd>,
    /// Vertex renaming `representative → query` that witnessed the hit
    /// (identity-shaped on a first-party miss-then-insert).
    pub vertex_map: Vec<VertexId>,
}

/// Hit/miss counters (snapshot view via [`PlanCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required fresh planning.
    pub misses: u64,
    /// Structures currently stored.
    pub entries: usize,
}

struct CacheEntry {
    representative: Hypergraph,
    structure: Arc<PlannedStructure>,
}

/// Fingerprint-bucketed store of planned structures.
pub struct PlanCache {
    buckets: HashMap<u64, Vec<CacheEntry>>,
    capacity: usize,
    entries: usize,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` structures (0 means
    /// unbounded). Eviction is whole-cache: workloads that overflow the
    /// capacity are re-planned, never served stale or mistranslated
    /// plans.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            buckets: HashMap::new(),
            capacity,
            entries: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up the structure class of `h`. On a hit the stored GHD is
    /// translated into `h`'s coordinates. Counts a miss otherwise.
    pub fn lookup(&mut self, h: &Hypergraph) -> Option<CachedPlan> {
        let key = fingerprint(h);
        if let Some(bucket) = self.buckets.get(&key) {
            for entry in bucket {
                if let Some(iso) = find_isomorphism(&entry.representative, h) {
                    self.hits += 1;
                    let ghd = entry.structure.ghd.as_ref().map(|g| translate_ghd(g, &iso));
                    return Some(CachedPlan {
                        structure: Arc::clone(&entry.structure),
                        ghd,
                        vertex_map: iso.vertex_map,
                    });
                }
            }
        }
        self.misses += 1;
        None
    }

    /// Store the analysis of `h`'s structure class, with `h` as the
    /// class representative.
    pub fn insert(&mut self, h: &Hypergraph, structure: PlannedStructure) -> Arc<PlannedStructure> {
        if self.capacity > 0 && self.entries >= self.capacity {
            // Whole-cache eviction keeps the implementation obviously
            // correct; see ROADMAP for the planned LRU refinement.
            self.buckets.clear();
            self.entries = 0;
        }
        let structure = Arc::new(structure);
        self.buckets
            .entry(fingerprint(h))
            .or_default()
            .push(CacheEntry {
                representative: h.clone(),
                structure: Arc::clone(&structure),
            });
        self.entries += 1;
        structure
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;
    use cqd2_hypergraph::generators::{hyperchain, hypercycle};

    fn relabel_reversed(h: &Hypergraph) -> Hypergraph {
        let n = h.num_vertices() as u32;
        let edges: Vec<Vec<u32>> = h
            .edge_ids()
            .map(|e| h.edge(e).iter().map(|v| n - 1 - v.0).collect())
            .collect();
        Hypergraph::new(n as usize, &edges).unwrap()
    }

    #[test]
    fn isomorphic_renamings_hit_after_one_miss() {
        let mut cache = PlanCache::new(0);
        let planner = Planner::default();
        let h = hypercycle(5, 2);
        assert!(cache.lookup(&h).is_none());
        cache.insert(&h, planner.plan_structure(&h));

        // Identical query: hit.
        assert!(cache.lookup(&h).is_some());
        // Renamed-but-isomorphic query: hit, with a translated GHD that
        // validates against the *renamed* hypergraph.
        let renamed = relabel_reversed(&h);
        let hit = cache.lookup(&renamed).expect("isomorphic structure hits");
        let ghd = hit.ghd.expect("cycle has a ghd");
        ghd.validate(&renamed).unwrap();
        assert_eq!(ghd.width(), 2);

        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
    }

    #[test]
    fn different_structures_miss() {
        let mut cache = PlanCache::new(0);
        let planner = Planner::default();
        let chain = hyperchain(4, 2);
        cache.insert(&chain, planner.plan_structure(&chain));
        assert!(cache.lookup(&hypercycle(4, 2)).is_none());
        assert!(cache.lookup(&hyperchain(5, 2)).is_none());
    }

    #[test]
    fn capacity_overflow_clears_instead_of_mistranslating() {
        let mut cache = PlanCache::new(2);
        let planner = Planner::default();
        for k in 3..6 {
            let h = hyperchain(k, 2);
            cache.insert(&h, planner.plan_structure(&h));
        }
        // The first two entries were evicted by the clear; the third
        // remains resident.
        assert!(cache.lookup(&hyperchain(5, 2)).is_some());
        assert!(cache.lookup(&hyperchain(3, 2)).is_none());
        assert_eq!(cache.stats().entries, 1);
    }
}
