//! Typed errors for the serving layer.
//!
//! Every fallible public surface of `cqd2-engine` reports an
//! [`EngineError`] (or the [`crate::textio::ParseError`] it wraps) —
//! a real `std::error::Error` hierarchy with source chains, replacing
//! the stringly-typed `Result<_, String>` the engine started with.

use cqd2_cq::eval::EvalError;
use cqd2_decomp::verify::VerifyError;

use crate::store::StoreError;
use crate::textio::ParseError;

/// What can go wrong inside the serving engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Bag materialization at [`crate::Session::prepare`] rejected the
    /// resolved plan — the decomposition does not fit the query. This
    /// indicates an engine bug (cached GHDs are translated into the
    /// query's coordinates before use), so callers typically `expect`
    /// it away; it is surfaced as a typed error rather than a panic so
    /// embedders can choose.
    Eval(EvalError),
    /// A workload file failed to parse (line-attributed).
    Parse(ParseError),
    /// A delta batch was rejected by the update plane before anything
    /// was published: it named an unknown relation or carried a tuple
    /// of the wrong arity (see [`cqd2_cq::DeltaError`]). The serving
    /// epoch is guaranteed unmoved — deltas validate wholesale before
    /// any merge.
    Delta(cqd2_cq::DeltaError),
    /// Strict plan verification ([`crate::EngineConfig::strict_verify`]
    /// / `CQD2_STRICT_VERIFY=1`) rejected a derived plan: the named
    /// structural invariant from the paper does not hold, so executing
    /// the plan could produce wrong answers. Always an engine/planner
    /// bug — the typed variant makes it loud and matchable.
    Verify(VerifyError),
    /// A [`crate::Catalog`] lookup or [`crate::Catalog::swap`] named a
    /// database the catalog does not hold.
    UnknownDatabase(String),
    /// [`crate::Catalog::publish`] was given a name that is already
    /// published (replace an existing database with
    /// [`crate::Catalog::swap`] instead).
    DuplicateDatabase(String),
    /// A snapshot or plan-store file could not be read, written, or
    /// decoded (see [`crate::store`]). Carried as a typed variant so
    /// the server's reload path can distinguish a bad file from a bad
    /// request — and so a failed [`crate::store::swap_snapshot`]
    /// provably left the old epoch serving.
    Store(StoreError),
    /// [`crate::Engine::shared_with_config`] lost the initialization
    /// race: the process-wide engine already existed (with whatever
    /// configuration first touched it), so the supplied configuration
    /// was *not* applied.
    SharedEngineInitialized,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Eval(e) => write!(f, "evaluation failed: {e}"),
            EngineError::Parse(e) => write!(f, "workload parse error: {e}"),
            EngineError::Delta(e) => write!(f, "delta rejected: {e}"),
            EngineError::Verify(e) => write!(f, "plan verification failed: {e}"),
            EngineError::UnknownDatabase(name) => {
                write!(f, "no database `{name}` in the catalog")
            }
            EngineError::DuplicateDatabase(name) => {
                write!(
                    f,
                    "database `{name}` is already published (swap to replace it)"
                )
            }
            EngineError::Store(e) => write!(f, "snapshot store: {e}"),
            EngineError::SharedEngineInitialized => write!(
                f,
                "the shared engine is already initialized; configuration not applied"
            ),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Eval(e) => Some(e),
            EngineError::Parse(e) => Some(e),
            EngineError::Delta(e) => Some(e),
            EngineError::Verify(e) => Some(e),
            EngineError::Store(e) => Some(e),
            EngineError::UnknownDatabase(_)
            | EngineError::DuplicateDatabase(_)
            | EngineError::SharedEngineInitialized => None,
        }
    }
}

impl From<EvalError> for EngineError {
    fn from(e: EvalError) -> EngineError {
        EngineError::Eval(e)
    }
}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> EngineError {
        EngineError::Parse(e)
    }
}

impl From<cqd2_cq::DeltaError> for EngineError {
    fn from(e: cqd2_cq::DeltaError) -> EngineError {
        EngineError::Delta(e)
    }
}

impl From<VerifyError> for EngineError {
    fn from(e: VerifyError) -> EngineError {
        EngineError::Verify(e)
    }
}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> EngineError {
        EngineError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let parse = ParseError::at(3, "fact term `banana` is not a u64");
        let err = EngineError::from(parse.clone());
        assert!(err.to_string().contains("line 3"), "{err}");
        let dyn_err: &dyn std::error::Error = &err;
        let source = dyn_err.source().expect("parse errors chain");
        assert_eq!(source.to_string(), parse.to_string());
        assert!(EngineError::SharedEngineInitialized.to_string().len() > 10);
    }
}
