//! Sessions and prepared queries: the handle-based serving API.
//!
//! The paper's message — and this engine's architecture — is that the
//! expensive part of query answering is *reusable*: database statistics
//! depend only on the database, structure analysis only on the query's
//! hypergraph (up to isomorphism). The original `Engine::serve` surface
//! re-derived both on every call; this module splits them into handles
//! that each pay their cost exactly once:
//!
//! - [`Session`] wraps one [`Database`] and snapshots its
//!   [`DatabaseStats`] **once**, at creation. Every query prepared on
//!   the session reuses the snapshot for its stats-driven plan choice.
//! - [`PreparedQuery`] resolves the structure analysis (through the
//!   engine's isomorphism-keyed plan cache), derives the per-workload
//!   plans, and materializes the GHD bag tree **once**, at
//!   [`Session::prepare`]. Re-execution via [`PreparedQuery::run`] does
//!   no planning or re-materialization at all — provenance reports a
//!   zero planning duration — which is what makes repeated-query
//!   serving cheap (see `benches/engine_prepared.rs`).
//! - [`AnswerCursor`] streams `Enumerate` answers on demand: on the GHD
//!   route the semijoin reduction runs over the already-materialized
//!   bag tree when the cursor is opened, and each answer then arrives
//!   with constant delay (Durand & Grandjean / Carmeli & Kröll's
//!   enumeration regime).
//!
//! `Engine::serve` / `serve_with_stats` / `execute_batch` survive as
//! thin compatibility shims over these handles.

use std::borrow::Cow;
use std::time::{Duration, Instant};

use cqd2_cq::eval::{
    bcq_naive, count_naive, enumerate_naive_limit, GhdEnumerator, MaterializedBags,
};
use cqd2_cq::stats::DatabaseStats;
use cqd2_cq::{ConjunctiveQuery, Database};

use crate::engine::{Answer, Engine, PlanProvenance, Response, Workload};
use crate::error::EngineError;
use crate::plan::{DataEstimate, PlannedQuery, QueryPlan};

/// A serving session over one database: the engine handle, the database,
/// and a statistics snapshot computed once at session creation.
///
/// Sessions are cheap to keep around and share (`&Session` is all a
/// [`PreparedQuery`] needs); the database is borrowed, so many sessions
/// and prepared queries can serve one database without copies. A session
/// *snapshots* statistics: if the database is mutated afterwards, plan
/// choices keep following the stale snapshot (open a fresh session to
/// re-snapshot).
pub struct Session<'a> {
    engine: &'a Engine,
    db: &'a Database,
    stats: Cow<'a, DatabaseStats>,
}

impl Engine {
    /// Open a [`Session`] on `db`, snapshotting its statistics once
    /// (`O(‖D‖)`). All queries prepared on the session share the
    /// snapshot.
    ///
    /// ```
    /// use cqd2_engine::Engine;
    /// use cqd2_cq::Database;
    ///
    /// let mut db = Database::new();
    /// db.insert_all("R", &[vec![1, 2], vec![2, 3]]);
    /// let engine = Engine::default();
    /// let session = engine.session(&db);
    /// // The snapshot is taken here, once, and reused by every
    /// // `prepare` on this session.
    /// assert_eq!(session.stats().total_tuples(), 2);
    /// assert!(std::ptr::eq(session.db(), &db));
    /// ```
    pub fn session<'a>(&'a self, db: &'a Database) -> Session<'a> {
        Session {
            engine: self,
            db,
            stats: Cow::Owned(db.stats()),
        }
    }

    /// A session around a caller-provided statistics snapshot (the batch
    /// executor amortizes one snapshot per distinct database this way).
    pub fn session_with_stats<'a>(
        &'a self,
        db: &'a Database,
        stats: &'a DatabaseStats,
    ) -> Session<'a> {
        Session {
            engine: self,
            db,
            stats: Cow::Borrowed(stats),
        }
    }
}

impl<'a> Session<'a> {
    /// The engine this session serves through.
    pub fn engine(&self) -> &'a Engine {
        self.engine
    }

    /// The session's database.
    pub fn db(&self) -> &'a Database {
        self.db
    }

    /// The statistics snapshot taken at session creation.
    pub fn stats(&self) -> &DatabaseStats {
        &self.stats
    }

    /// Prepare `q` for repeated execution: resolve the structure
    /// analysis (cache-amortized), refine it with the session's
    /// statistics snapshot, derive the plan for every workload kind, and
    /// — on GHD plans — run the `O(‖D‖^width)` bag-materialization
    /// preprocessing, pinning the materialized bag tree in the handle
    /// (sound because the session borrows the database immutably for its
    /// whole lifetime). This is the only place planning or preprocessing
    /// happens; the returned handle re-executes with just the cheap
    /// per-run pass.
    ///
    /// This is also where all errors surface: an
    /// [`EngineError::Eval`] here means the resolved decomposition did
    /// not fit the query — an engine bug (cached GHDs are translated
    /// into the query's coordinates before use), reported as a typed
    /// error rather than a panic. Once a handle exists, its runs and
    /// cursors are infallible.
    ///
    /// ```
    /// use cqd2_engine::{Engine, Workload};
    /// use cqd2_cq::{ConjunctiveQuery, Database};
    ///
    /// let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])]);
    /// let mut db = Database::new();
    /// db.insert_all("R", &[vec![1, 2]]);
    /// db.insert_all("S", &[vec![2, 3], vec![2, 4]]);
    /// let engine = Engine::default();
    /// let session = engine.session(&db);
    ///
    /// // Planning + preprocessing happen here, once…
    /// let prepared = session.prepare(&q)?;
    /// // …so repeated runs are planning-free (provenance says so) and
    /// // one handle serves every workload kind.
    /// let run = prepared.run(Workload::Count);
    /// assert_eq!(run.answer.as_count(), Some(2));
    /// assert_eq!(run.provenance.planning, std::time::Duration::ZERO);
    /// assert_eq!(prepared.run(Workload::Boolean).answer.as_bool(), Some(true));
    /// # Ok::<(), cqd2_engine::EngineError>(())
    /// ```
    pub fn prepare(&self, q: &ConjunctiveQuery) -> Result<PreparedQuery<'_>, EngineError> {
        let start = Instant::now();
        let (structure, cache_hit) = self.engine.structure_for(&q.hypergraph());
        // Bounded-width structures get their plan refined by data: on
        // small databases the per-bag setup dominates and the estimate
        // flips the plan back to the naive join, with the numbers kept
        // in provenance.
        let est = DataEstimate::compute(q, structure.ghd.as_ref(), &self.stats);
        let bool_plan = structure.bool_plan_with(Some(&est));
        let count_plan = structure.count_plan_with(Some(&est));
        // Which decomposition actually drives evaluation: the plan's own
        // GHD, or — for a jigsaw hardness certificate — the best GHD the
        // structure analysis found (the certificate classifies the
        // structure; it never means "skip a usable decomposition"). The
        // flip decision is workload-independent, so one GHD serves all
        // three workloads.
        let exec_ghd = match &bool_plan.plan {
            QueryPlan::GhdYannakakis { .. } | QueryPlan::CountingDp { .. } => bool_plan.plan.ghd(),
            QueryPlan::JigsawReduce { .. } => structure.ghd.as_ref(),
            QueryPlan::NaiveJoin => None,
        };
        let planning = start.elapsed();
        let preprocess_start = Instant::now();
        let bags = match exec_ghd {
            Some(ghd) => Some(MaterializedBags::build(q, self.db, ghd)?),
            None => None,
        };
        Ok(PreparedQuery {
            session: self,
            query: q.clone(),
            bool_plan,
            count_plan,
            bags,
            cache_hit,
            planning,
            preprocessing: preprocess_start.elapsed(),
        })
    }

    /// Prepare-and-run in one call (one-shot convenience; serving loops
    /// should hold the [`PreparedQuery`] instead). The planning and
    /// preprocessing this call pays are folded back into the response's
    /// provenance.
    pub fn run(&self, q: &ConjunctiveQuery, workload: Workload) -> Result<Response, EngineError> {
        let prepared = self.prepare(q)?;
        let planning = prepared.planning_time();
        let preprocessing = prepared.preprocessing_time();
        let mut resp = prepared.run_once(workload);
        // One-shot semantics: this call *did* plan and materialize.
        resp.provenance.planning = planning;
        resp.provenance.execution += preprocessing;
        Ok(resp)
    }
}

/// A query prepared on a [`Session`]: structure analysis resolved (via
/// the plan cache), plans derived for every workload, and — on GHD
/// plans — the bag tree materialized, all exactly once at
/// [`Session::prepare`].
///
/// [`PreparedQuery::run`] re-executes against the session's database
/// with only the per-workload tree pass (semijoins / counting DP /
/// enumeration) — no planning, no re-materialization;
/// [`PreparedQuery::cursor`] streams enumeration answers without
/// materializing the result set. The handle pins the materialized bag
/// relations in memory (`O(‖D‖^width)` in the worst case); drop it to
/// release them.
pub struct PreparedQuery<'s> {
    session: &'s Session<'s>,
    query: ConjunctiveQuery,
    bool_plan: PlannedQuery,
    count_plan: PlannedQuery,
    /// The materialized bag tree (`None` = the plan is the naive join).
    bags: Option<MaterializedBags>,
    cache_hit: bool,
    planning: Duration,
    preprocessing: Duration,
}

impl<'s> PreparedQuery<'s> {
    /// The prepared query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// Whether the structure analysis came from the plan cache.
    pub fn cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// Time spent planning at [`Session::prepare`] (already paid; runs
    /// report zero).
    pub fn planning_time(&self) -> Duration {
        self.planning
    }

    /// Time spent materializing the bag tree at [`Session::prepare`]
    /// (zero for naive-join plans).
    pub fn preprocessing_time(&self) -> Duration {
        self.preprocessing
    }

    /// The plan a given workload will execute.
    pub fn plan(&self, workload: Workload) -> &PlannedQuery {
        match workload {
            Workload::Count => &self.count_plan,
            // Boolean evaluation and enumeration share the Yannakakis
            // bag machinery, hence the plan.
            Workload::Boolean | Workload::Enumerate { .. } => &self.bool_plan,
        }
    }

    /// Execute the prepared plan for `workload`. No planning happens
    /// here — provenance carries the resolved plan with a zero planning
    /// duration (see [`PreparedQuery::planning_time`] for the cost paid
    /// at prepare time). GHD passes run on a copy of the materialized
    /// bag tree, leaving the handle reusable; one-shot callers should
    /// use [`PreparedQuery::run_once`] to skip the copy.
    ///
    /// `Enumerate` materializes up to `limit` answers into
    /// [`Answer::Tuples`]; use [`PreparedQuery::cursor`] to stream
    /// instead.
    pub fn run(&self, workload: Workload) -> Response {
        let (q, db) = (&self.query, self.session.db);
        let exec_start = Instant::now();
        let answer = match workload {
            Workload::Boolean => Answer::Bool(match &self.bags {
                Some(bags) => bags.bcq(),
                None => bcq_naive(q, db),
            }),
            Workload::Count => Answer::Count(match &self.bags {
                Some(bags) => bags.count(),
                None => count_naive(q, db),
            }),
            Workload::Enumerate { limit } => Answer::Tuples(self.cursor(limit).collect()),
        };
        self.response(workload, answer, exec_start)
    }

    /// Execute once and consume the handle: the materialized bag tree
    /// is passed over in place instead of copied. This is what the
    /// one-shot `Engine::serve` shims use; serving loops keep the
    /// handle and call [`PreparedQuery::run`].
    pub fn run_once(mut self, workload: Workload) -> Response {
        let exec_start = Instant::now();
        let bags = self.bags.take();
        let (q, db) = (&self.query, self.session.db);
        let answer = match workload {
            Workload::Boolean => Answer::Bool(match bags {
                Some(bags) => bags.into_bcq(),
                None => bcq_naive(q, db),
            }),
            Workload::Count => Answer::Count(match bags {
                Some(bags) => bags.into_count(),
                None => count_naive(q, db),
            }),
            Workload::Enumerate { limit } => {
                let cursor = match bags {
                    Some(bags) => AnswerCursor {
                        inner: CursorInner::Streaming(bags.into_enumerator()),
                        remaining: limit,
                    },
                    None => AnswerCursor {
                        inner: CursorInner::Buffered(
                            enumerate_naive_limit(q, db, limit).into_iter(),
                        ),
                        remaining: limit,
                    },
                };
                Answer::Tuples(cursor.collect())
            }
        };
        self.response(workload, answer, exec_start)
    }

    /// Assemble the zero-planning per-run provenance.
    fn response(&self, workload: Workload, answer: Answer, exec_start: Instant) -> Response {
        Response {
            answer,
            provenance: PlanProvenance {
                planned: self.plan(workload).clone(),
                cache_hit: self.cache_hit,
                planning: Duration::ZERO,
                execution: exec_start.elapsed(),
            },
        }
    }

    /// Open a streaming [`AnswerCursor`] over `q(D)`, yielding at most
    /// `limit` answers (`None` = all).
    ///
    /// On the GHD route this runs the semijoin reduction over a copy of
    /// the already-materialized bag tree now, and then delivers answers
    /// with constant delay; on the naive route the backtracking search
    /// runs eagerly (stopping at `limit`) and the cursor drains the
    /// buffer.
    ///
    /// ```
    /// use cqd2_engine::Engine;
    /// use cqd2_cq::{ConjunctiveQuery, Database};
    ///
    /// let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])]);
    /// let mut db = Database::new();
    /// db.insert_all("R", &[vec![1, 2]]);
    /// db.insert_all("S", &[vec![2, 3], vec![2, 4]]);
    /// let engine = Engine::default();
    /// let session = engine.session(&db);
    /// let prepared = session.prepare(&q)?;
    ///
    /// // Answers stream on demand — `take`, `filter`, stop early…
    /// let first: Vec<Vec<u64>> = prepared.cursor(None).take(1).collect();
    /// assert_eq!(first.len(), 1);
    /// // …and a limit caps the stream at open time.
    /// assert_eq!(prepared.cursor(Some(2)).count(), 2);
    /// assert_eq!(prepared.cursor(Some(0)).count(), 0);
    /// # Ok::<(), cqd2_engine::EngineError>(())
    /// ```
    pub fn cursor(&self, limit: Option<usize>) -> AnswerCursor {
        let inner = match &self.bags {
            Some(bags) => CursorInner::Streaming(bags.enumerator()),
            None => CursorInner::Buffered(
                enumerate_naive_limit(&self.query, self.session.db, limit).into_iter(),
            ),
        };
        AnswerCursor {
            inner,
            remaining: limit,
        }
    }
}

enum CursorInner {
    /// Constant-delay streaming over a semijoin-reduced GHD bag tree.
    Streaming(GhdEnumerator),
    /// Pre-materialized answers (naive plans), drained on demand.
    Buffered(std::vec::IntoIter<Vec<u64>>),
}

/// A streaming handle over the answers of a prepared `Enumerate`
/// workload. Each item is a full assignment in `Var` id order (the
/// layout [`cqd2_cq::eval::enumerate_naive`] uses); the iteration order
/// is unspecified. The cursor stops after the `limit` it was opened
/// with.
pub struct AnswerCursor {
    inner: CursorInner,
    remaining: Option<usize>,
}

impl Iterator for AnswerCursor {
    type Item = Vec<u64>;

    fn next(&mut self) -> Option<Vec<u64>> {
        if self.remaining == Some(0) {
            return None;
        }
        let item = match &mut self.inner {
            CursorInner::Streaming(e) => e.next(),
            CursorInner::Buffered(b) => b.next(),
        }?;
        if let Some(r) = &mut self.remaining {
            *r -= 1;
        }
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match (&self.inner, self.remaining) {
            (CursorInner::Buffered(b), None) => b.size_hint(),
            (_, Some(r)) => (0, Some(r)),
            (CursorInner::Streaming(_), None) => (0, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_cq::eval::enumerate_naive;
    use cqd2_cq::generate::{canonical_query, planted_database, random_database};
    use cqd2_hypergraph::generators::{hyperchain, hypercycle};

    #[test]
    fn prepared_runs_match_naive_for_all_workloads() {
        let engine = Engine::default();
        for (i, h) in [hyperchain(4, 2), hypercycle(5, 2)].into_iter().enumerate() {
            let q = canonical_query(&h);
            let db = planted_database(&q, 6, 14, i as u64 + 1);
            let session = engine.session(&db);
            let prepared = session.prepare(&q).unwrap();
            assert_eq!(
                prepared.run(Workload::Boolean).answer.as_bool(),
                Some(bcq_naive(&q, &db))
            );
            assert_eq!(
                prepared.run(Workload::Count).answer.as_count(),
                Some(count_naive(&q, &db))
            );
            let resp = prepared.run(Workload::Enumerate { limit: None });
            let mut got = resp.answer.into_tuples().unwrap();
            got.sort_unstable();
            assert_eq!(got, enumerate_naive(&q, &db));
        }
    }

    #[test]
    fn prepared_runs_do_no_planning() {
        let engine = Engine::default();
        let q = canonical_query(&hypercycle(6, 2));
        let db = random_database(&q, 6, 30, 3);
        let session = engine.session(&db);
        let prepared = session.prepare(&q).unwrap();
        assert!(!prepared.cache_hit(), "first prepare plans fresh");
        assert!(prepared.planning_time() > Duration::ZERO);
        for _ in 0..3 {
            let resp = prepared.run(Workload::Boolean);
            assert_eq!(resp.provenance.planning, Duration::ZERO);
            assert_eq!(
                resp.provenance.planned.plan,
                prepared.plan(Workload::Boolean).plan
            );
        }
        // Re-preparing the same structure hits the cache.
        let again = session.prepare(&q).unwrap();
        assert!(again.cache_hit());
        assert_eq!(engine.cache_stats().misses, 1);
    }

    #[test]
    fn cursor_respects_limits_and_streams_everything() {
        let engine = Engine::default();
        let q = canonical_query(&hyperchain(3, 2));
        let db = planted_database(&q, 8, 40, 7);
        let session = engine.session(&db);
        let prepared = session.prepare(&q).unwrap();
        let all: Vec<_> = prepared.cursor(None).collect();
        let expected = enumerate_naive(&q, &db);
        assert_eq!(all.len(), expected.len());
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, expected);
        let capped: Vec<_> = prepared.cursor(Some(2)).collect();
        assert_eq!(capped.len(), expected.len().min(2));
        assert_eq!(prepared.cursor(Some(0)).count(), 0);
        // The limit also caps the materialized workload answer.
        let resp = prepared.run(Workload::Enumerate { limit: Some(1) });
        assert_eq!(resp.answer.as_tuples().map(<[_]>::len), Some(1));
    }

    #[test]
    fn session_one_shot_run_reports_planning() {
        let engine = Engine::default();
        let q = canonical_query(&hyperchain(4, 2));
        let db = random_database(&q, 5, 12, 9);
        let session = engine.session(&db);
        let resp = session.run(&q, Workload::Count).unwrap();
        assert_eq!(resp.answer.as_count(), Some(count_naive(&q, &db)));
        assert!(resp.provenance.planning > Duration::ZERO);
    }
}
