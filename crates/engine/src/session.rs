//! Sessions and prepared queries: the owned, handle-based serving API.
//!
//! The paper's message — and this engine's architecture — is that the
//! expensive part of query answering is *reusable*: database statistics
//! depend only on the database, structure analysis only on the query's
//! hypergraph (up to isomorphism). The original `Engine::serve` surface
//! re-derived both on every call; this module splits them into handles
//! that each pay their cost exactly once:
//!
//! - [`Session`] pins one [`DatabaseSnapshot`] — the database plus the
//!   statistics computed for it at publish time. Every query prepared
//!   on the session reuses the snapshot for its stats-driven plan
//!   choice.
//! - [`PreparedQuery`] resolves the structure analysis (through the
//!   engine's isomorphism-keyed plan cache), derives the per-workload
//!   plans, and materializes the GHD bag tree **once**, at
//!   [`Session::prepare`]. Re-execution via [`PreparedQuery::run`] does
//!   no planning or re-materialization at all — provenance reports a
//!   zero planning duration — which is what makes repeated-query
//!   serving cheap (see `benches/engine_prepared.rs`).
//! - [`AnswerCursor`] streams `Enumerate` answers on demand: on the GHD
//!   route the semijoin reduction runs over the already-materialized
//!   bag tree when the cursor is opened, and each answer then arrives
//!   with constant delay (Durand & Grandjean / Carmeli & Kröll's
//!   enumeration regime).
//!
//! All three handles are **owned and lifetime-free**: a session holds a
//! cheap clone of its [`Engine`] and an `Arc` pin on its snapshot, so
//! handles outlive the scope that created them, cross threads, and —
//! crucially — keep answering consistently against their pinned epoch
//! while a [`crate::Catalog::swap`] hot-reloads the database for new
//! sessions underneath them. `Engine::serve` / `serve_with_stats` /
//! `execute_batch` survive as thin, borrow-only compatibility shims
//! over the same machinery.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cqd2_cq::eval::{
    bcq_naive, count_naive, enumerate_naive_limit, GhdEnumerator, MaterializedBags,
};
use cqd2_cq::stats::DatabaseStats;
use cqd2_cq::{ConjunctiveQuery, Database};

use crate::catalog::{Catalog, DatabaseSnapshot};
use crate::engine::{Answer, BagExecution, BagMode, Engine, PlanProvenance, Response, Workload};
use crate::error::EngineError;
use crate::metrics::{Phase, QueryTrace};
use crate::plan::{DataEstimate, PlannedQuery, QueryPlan};

/// A serving session over one database snapshot: a cheap clone of the
/// engine handle plus an `Arc` pin on a [`DatabaseSnapshot`] (database
/// + statistics, computed once at publish time).
///
/// Sessions are owned and lifetime-free: clone them, move them across
/// threads, keep them in caches. The pinned snapshot is immutable — if
/// the source [`Catalog`] entry is [`Catalog::swap`]ped afterwards,
/// this session (and everything prepared on it) keeps answering
/// against its pinned epoch; open a fresh session to observe the new
/// one.
#[derive(Clone)]
pub struct Session {
    engine: Engine,
    snapshot: Arc<DatabaseSnapshot>,
}

impl Engine {
    /// Open a [`Session`] on a copy of `db`: convenience shim for
    /// embedders holding a plain [`Database`]. The database is cloned
    /// into a detached snapshot and its statistics computed once, both
    /// `O(‖D‖)`, so the returned session owns everything it needs.
    /// Serving loops with named, reloadable databases should publish
    /// into a [`Catalog`] and use [`Engine::session_in`] instead —
    /// that pins the already-published snapshot with no copy at all.
    ///
    /// ```
    /// use cqd2_engine::Engine;
    /// use cqd2_cq::Database;
    ///
    /// let mut db = Database::new();
    /// db.insert_all("R", &[vec![1, 2], vec![2, 3]]);
    /// let engine = Engine::default();
    /// let session = engine.session(&db);
    /// // The snapshot is taken here, once, and reused by every
    /// // `prepare` on this session. The session owns its copy: `db`
    /// // is free immediately.
    /// drop(db);
    /// assert_eq!(session.stats().total_tuples(), 2);
    /// ```
    pub fn session(&self, db: &Database) -> Session {
        self.session_pinned(Arc::new(DatabaseSnapshot::detached(db.clone())))
    }

    /// Open a [`Session`] pinning `snapshot` — zero-copy: the snapshot's
    /// statistics were computed when it was published.
    pub fn session_pinned(&self, snapshot: Arc<DatabaseSnapshot>) -> Session {
        Session {
            engine: self.clone(),
            snapshot,
        }
    }

    /// Open a [`Session`] on the current snapshot `catalog` publishes
    /// under `name` — the catalog-backed constructor serving loops use.
    /// The session pins the snapshot at its current epoch; a concurrent
    /// [`Catalog::swap`] never disturbs it.
    ///
    /// ```
    /// use cqd2_engine::{Catalog, Engine};
    ///
    /// let catalog = Catalog::new();
    /// catalog.publish_str("main", "R(1, 2)\n")?;
    /// let engine = Engine::default();
    /// let session = engine.session_in(&catalog, "main")?;
    /// assert_eq!(session.epoch(), 0);
    /// assert!(engine.session_in(&catalog, "missing").is_err());
    /// # Ok::<(), cqd2_engine::EngineError>(())
    /// ```
    pub fn session_in(&self, catalog: &Catalog, name: &str) -> Result<Session, EngineError> {
        Ok(self.session_pinned(catalog.snapshot(name)?))
    }
}

impl Session {
    /// The engine this session serves through.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The pinned database snapshot.
    pub fn snapshot(&self) -> &Arc<DatabaseSnapshot> {
        &self.snapshot
    }

    /// The session's database (the pinned snapshot's).
    pub fn db(&self) -> &Database {
        self.snapshot.db()
    }

    /// The statistics computed when the pinned snapshot was published.
    pub fn stats(&self) -> &DatabaseStats {
        self.snapshot.stats()
    }

    /// The catalog name this session's snapshot was published under,
    /// or `None` for detached sessions ([`Engine::session`] pins an
    /// unnamed snapshot). Feeds plan-cache attribution so the plan
    /// store can invalidate spilled plans per database name.
    fn db_name(&self) -> Option<&str> {
        let name = self.snapshot.name();
        (!name.is_empty()).then_some(name)
    }

    /// The pinned snapshot's epoch (0 for detached sessions opened via
    /// [`Engine::session`]).
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Prepare `q` for repeated execution: resolve the structure
    /// analysis (cache-amortized), refine it with the pinned snapshot's
    /// statistics, derive the plan for every workload kind, and — on
    /// GHD plans — run the `O(‖D‖^width)` bag-materialization
    /// preprocessing, pinning the materialized bag tree in the handle
    /// (sound because the handle also pins the immutable snapshot it
    /// was built from). This is the only place planning or
    /// preprocessing happens; the returned handle re-executes with just
    /// the cheap per-run pass.
    ///
    /// This is also where all errors surface: an
    /// [`EngineError::Eval`] here means the resolved decomposition did
    /// not fit the query — an engine bug (cached GHDs are translated
    /// into the query's coordinates before use), reported as a typed
    /// error rather than a panic. Once a handle exists, its runs and
    /// cursors are infallible.
    ///
    /// ```
    /// use cqd2_engine::{Engine, Workload};
    /// use cqd2_cq::{ConjunctiveQuery, Database};
    ///
    /// let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])]);
    /// let mut db = Database::new();
    /// db.insert_all("R", &[vec![1, 2]]);
    /// db.insert_all("S", &[vec![2, 3], vec![2, 4]]);
    /// let engine = Engine::default();
    /// let session = engine.session(&db);
    ///
    /// // Planning + preprocessing happen here, once…
    /// let prepared = session.prepare(&q)?;
    /// // …so repeated runs are planning-free (provenance says so) and
    /// // one handle serves every workload kind.
    /// let run = prepared.run(Workload::Count);
    /// assert_eq!(run.answer.as_count(), Some(2));
    /// assert_eq!(run.provenance.planning, std::time::Duration::ZERO);
    /// assert_eq!(prepared.run(Workload::Boolean).answer.as_bool(), Some(true));
    /// # Ok::<(), cqd2_engine::EngineError>(())
    /// ```
    pub fn prepare(&self, q: &ConjunctiveQuery) -> Result<PreparedQuery, EngineError> {
        let core = PreparedCore::build(&self.engine, q, self.db(), self.stats(), self.db_name())?;
        Ok(PreparedQuery {
            snapshot: Arc::clone(&self.snapshot),
            core,
        })
    }

    /// Prepare-and-run in one call (one-shot convenience; serving loops
    /// should hold the [`PreparedQuery`] instead). The planning and
    /// preprocessing this call pays are folded back into the response's
    /// provenance.
    pub fn run(&self, q: &ConjunctiveQuery, workload: Workload) -> Result<Response, EngineError> {
        let core = PreparedCore::build(&self.engine, q, self.db(), self.stats(), self.db_name())?;
        let planning = core.planning;
        let preprocessing = core.preprocessing;
        let mut resp = core.run_once(self.db(), workload);
        // One-shot semantics: this call *did* plan and materialize.
        resp.provenance.planning = planning;
        resp.provenance.execution += preprocessing;
        Ok(resp)
    }
}

/// The engine-internal prepared state: plans derived for every
/// workload and (on GHD plans) the materialized bag tree. This is the
/// shared machinery under both the owned [`PreparedQuery`] handle
/// (which pairs it with a snapshot pin) and the one-shot
/// `Engine::serve` shims (which run it against a borrowed database —
/// no snapshot, no copy).
pub(crate) struct PreparedCore {
    query: ConjunctiveQuery,
    bool_plan: PlannedQuery,
    count_plan: PlannedQuery,
    /// The materialized bag tree (`None` = the plan is the naive join).
    bags: Option<MaterializedBags>,
    cache_hit: bool,
    /// How the core crossed the most recent delta epoch (`None` =
    /// freshly prepared); surfaced in every response's provenance.
    maintenance: Option<crate::delta::MaintenanceClass>,
    pub(crate) planning: Duration,
    pub(crate) preprocessing: Duration,
}

impl PreparedCore {
    /// Plan `q` against `db` (with `stats` driving the naive-vs-GHD
    /// choice) and materialize the execution GHD's bag tree.
    pub(crate) fn build(
        engine: &Engine,
        q: &ConjunctiveQuery,
        db: &Database,
        stats: &DatabaseStats,
        db_name: Option<&str>,
    ) -> Result<PreparedCore, EngineError> {
        let start = Instant::now();
        let h = q.hypergraph();
        let (structure, cache_hit) = engine.structure_for_in(&h, db_name);
        // Bounded-width structures get their plan refined by data: on
        // small databases the per-bag setup dominates and the estimate
        // flips the plan back to the naive join, with the numbers kept
        // in provenance.
        let est = DataEstimate::compute(q, structure.ghd.as_ref(), stats);
        let bool_plan = structure.bool_plan_with(Some(&est));
        let count_plan = structure.count_plan_with(Some(&est));
        // Which decomposition actually drives evaluation: the plan's own
        // GHD, or — for a jigsaw hardness certificate — the best GHD the
        // structure analysis found (the certificate classifies the
        // structure; it never means "skip a usable decomposition"). The
        // flip decision is workload-independent, so one GHD serves all
        // three workloads.
        let exec_ghd = match &bool_plan.plan {
            QueryPlan::GhdYannakakis { .. } | QueryPlan::CountingDp { .. } => bool_plan.plan.ghd(),
            QueryPlan::JigsawReduce { .. } => structure.ghd.as_ref(),
            QueryPlan::NaiveJoin => None,
        };
        // Strict verification: audit every plan this prepare derived
        // (and the decomposition evaluation will actually use) against
        // the paper's structural invariants — once, here, never per
        // run. A violation is a planner bug surfaced as a typed error
        // instead of a wrong answer served from the cache forever.
        if engine.strict_verify() {
            crate::verify::verify_planned(&h, &bool_plan)?;
            crate::verify::verify_planned(&h, &count_plan)?;
            if let Some(ghd) = exec_ghd {
                cqd2_decomp::verify::verify_ghd(&h, ghd)?;
            }
        }
        let planning = start.elapsed();
        let preprocess_start = Instant::now();
        let bags = match exec_ghd {
            Some(ghd) => Some(MaterializedBags::build(q, db, ghd)?),
            None => None,
        };
        Ok(PreparedCore {
            query: q.clone(),
            bool_plan,
            count_plan,
            bags,
            cache_hit,
            maintenance: None,
            planning,
            preprocessing: preprocess_start.elapsed(),
        })
    }

    /// Warm-maintain this core across a delta: refresh the bag tree
    /// against the post-delta `db`, re-materializing only the bags that
    /// read a relation in `touched` and sharing everything else (bag
    /// relations *and* filled probe-table caches) with `self` by `Arc`.
    /// `None` when there is no bag tree to refresh (naive-join plans) —
    /// the caller should fall back to a full prepare.
    pub(crate) fn rebase_warm(
        &self,
        db: &Database,
        touched: &[String],
    ) -> Option<(PreparedCore, cqd2_cq::PassStats)> {
        let bags = self.bags.as_ref()?;
        let refresh_start = Instant::now();
        let (refreshed, pass) = bags.refresh(&self.query, db, touched);
        Some((
            PreparedCore {
                query: self.query.clone(),
                bool_plan: self.bool_plan.clone(),
                count_plan: self.count_plan.clone(),
                bags: Some(refreshed),
                cache_hit: self.cache_hit,
                maintenance: Some(crate::delta::MaintenanceClass::WarmOverlay),
                planning: Duration::ZERO,
                preprocessing: refresh_start.elapsed(),
            },
            pass,
        ))
    }

    fn plan(&self, workload: Workload) -> &PlannedQuery {
        match workload {
            Workload::Count => &self.count_plan,
            // Boolean evaluation and enumeration share the Yannakakis
            // bag machinery, hence the plan.
            Workload::Boolean | Workload::Enumerate { .. } => &self.bool_plan,
        }
    }

    /// Execute for `workload` against `db` (which must be the database
    /// the core was built from) through a [`cqd2_cq::eval::BagOverlay`]:
    /// the shared bag tree is never cloned — the pass copies only the
    /// nodes it rewrites, and provenance reports how many that was.
    fn run(&self, db: &Database, workload: Workload) -> Response {
        let exec_start = Instant::now();
        let (answer, pass) = match workload {
            Workload::Boolean => match &self.bags {
                Some(bags) => {
                    let (b, s) = bags.bcq_with_stats();
                    (Answer::Bool(b), Some(s))
                }
                None => (Answer::Bool(bcq_naive(&self.query, db)), None),
            },
            Workload::Count => match &self.bags {
                Some(bags) => {
                    let (c, s) = bags.count_with_stats();
                    (Answer::Count(c), Some(s))
                }
                None => (Answer::Count(count_naive(&self.query, db)), None),
            },
            Workload::Enumerate { limit } => {
                let (cursor, pass) = self.cursor_with_stats(db, limit);
                (Answer::Tuples(cursor.collect()), pass)
            }
        };
        let bags = pass.map(|s| BagExecution {
            mode: BagMode::Overlay,
            bags_rewritten: s.rewritten,
            bags_total: s.total,
        });
        self.response(workload, answer, exec_start, bags)
    }

    /// Execute once, consuming the core: the materialized bag tree is
    /// passed over in place instead of shared (provenance reports the
    /// `cloned` mode — the run owned every node).
    pub(crate) fn run_once(mut self, db: &Database, workload: Workload) -> Response {
        let exec_start = Instant::now();
        let bags = self.bags.take();
        let bag_exec = bags.as_ref().map(|b| BagExecution {
            mode: BagMode::Cloned,
            bags_rewritten: b.num_bags(),
            bags_total: b.num_bags(),
        });
        let answer = match workload {
            Workload::Boolean => Answer::Bool(match bags {
                Some(bags) => bags.into_bcq(),
                None => bcq_naive(&self.query, db),
            }),
            Workload::Count => Answer::Count(match bags {
                Some(bags) => bags.into_count(),
                None => count_naive(&self.query, db),
            }),
            Workload::Enumerate { limit } => {
                let cursor = match bags {
                    Some(bags) => AnswerCursor {
                        inner: CursorInner::Streaming(bags.into_enumerator()),
                        remaining: limit,
                    },
                    None => AnswerCursor {
                        inner: CursorInner::Buffered(
                            enumerate_naive_limit(&self.query, db, limit).into_iter(),
                        ),
                        remaining: limit,
                    },
                };
                Answer::Tuples(cursor.collect())
            }
        };
        self.response(workload, answer, exec_start, bag_exec)
    }

    fn cursor(&self, db: &Database, limit: Option<usize>) -> AnswerCursor {
        self.cursor_with_stats(db, limit).0
    }

    /// Open a cursor plus — on the GHD route — the overlay reduction's
    /// rewrite sparsity (`None` on the naive route).
    fn cursor_with_stats(
        &self,
        db: &Database,
        limit: Option<usize>,
    ) -> (AnswerCursor, Option<cqd2_cq::PassStats>) {
        let (inner, pass) = match &self.bags {
            Some(bags) => {
                let (e, s) = bags.enumerator_with_stats();
                (CursorInner::Streaming(e), Some(s))
            }
            None => (
                CursorInner::Buffered(enumerate_naive_limit(&self.query, db, limit).into_iter()),
                None,
            ),
        };
        (
            AnswerCursor {
                inner,
                remaining: limit,
            },
            pass,
        )
    }

    /// Assemble the zero-planning per-run provenance.
    fn response(
        &self,
        workload: Workload,
        answer: Answer,
        exec_start: Instant,
        bags: Option<BagExecution>,
    ) -> Response {
        Response {
            answer,
            provenance: PlanProvenance {
                planned: self.plan(workload).clone(),
                cache_hit: self.cache_hit,
                planning: Duration::ZERO,
                execution: exec_start.elapsed(),
                bags,
                maintenance: self.maintenance,
            },
        }
    }
}

/// A query prepared on a [`Session`]: structure analysis resolved (via
/// the plan cache), plans derived for every workload, and — on GHD
/// plans — the bag tree materialized, all exactly once at
/// [`Session::prepare`].
///
/// The handle is owned and lifetime-free: it pins the session's
/// [`DatabaseSnapshot`], so it stays valid — and keeps answering
/// against its pinned epoch — across catalog swaps, thread moves, and
/// the end of the scope that prepared it. [`PreparedQuery::run`]
/// re-executes with only the per-workload tree pass (semijoins /
/// counting DP / enumeration) — no planning, no re-materialization;
/// [`PreparedQuery::cursor`] streams enumeration answers without
/// materializing the result set. The handle pins the materialized bag
/// relations in memory (`O(‖D‖^width)` in the worst case) plus the
/// snapshot; drop it to release them.
pub struct PreparedQuery {
    snapshot: Arc<DatabaseSnapshot>,
    core: PreparedCore,
}

impl PreparedQuery {
    /// The prepared query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.core.query
    }

    /// The database snapshot this handle was prepared against (and will
    /// keep answering against, regardless of later catalog swaps).
    pub fn snapshot(&self) -> &Arc<DatabaseSnapshot> {
        &self.snapshot
    }

    /// The pinned snapshot's epoch — the invalidation token for caches
    /// of warm prepared handles: a handle whose epoch is older than the
    /// catalog's current epoch for the name answers consistently but
    /// stales, and epoch-keyed caches stop serving it to new sessions.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Whether the structure analysis came from the plan cache.
    pub fn cache_hit(&self) -> bool {
        self.core.cache_hit
    }

    /// Time spent planning at [`Session::prepare`] (already paid; runs
    /// report zero).
    pub fn planning_time(&self) -> Duration {
        self.core.planning
    }

    /// Time spent materializing the bag tree at [`Session::prepare`]
    /// (zero for naive-join plans).
    pub fn preprocessing_time(&self) -> Duration {
        self.core.preprocessing
    }

    /// The plan a given workload will execute.
    pub fn plan(&self, workload: Workload) -> &PlannedQuery {
        self.core.plan(workload)
    }

    /// Execute the prepared plan for `workload`. No planning happens
    /// here — provenance carries the resolved plan with a zero planning
    /// duration (see [`PreparedQuery::planning_time`] for the cost paid
    /// at prepare time). GHD passes run **copy-free** through an overlay
    /// over the shared materialized bag tree: only the nodes a pass
    /// rewrites are copied (provenance's `bags` field reports how many),
    /// and on join-consistent data warm runs copy nothing at all.
    ///
    /// `Enumerate` materializes up to `limit` answers into
    /// [`Answer::Tuples`]; use [`PreparedQuery::cursor`] to stream
    /// instead.
    pub fn run(&self, workload: Workload) -> Response {
        self.core.run(self.snapshot.db(), workload)
    }

    /// Execute like [`PreparedQuery::run`], additionally recording an
    /// `execute` span — annotated with the strategy that ran — into
    /// `trace`. This is the engine-level half of the serve path's
    /// per-query tracing; the span is built from provenance the run
    /// already measures, so the instrumentation adds only a `Vec` push
    /// (`benches/engine_metrics_overhead.rs` gates the warm path
    /// within 5% of [`PreparedQuery::run`]).
    pub fn run_traced(&self, workload: Workload, trace: &mut QueryTrace) -> Response {
        let resp = self.core.run(self.snapshot.db(), workload);
        trace.record_with(
            Phase::Execute,
            resp.provenance.execution,
            resp.provenance.planned.plan.strategy(),
        );
        resp
    }

    /// Execute once and consume the handle: the materialized bag tree
    /// is passed over in place instead of copied. Serving loops keep
    /// the handle and call [`PreparedQuery::run`].
    pub fn run_once(self, workload: Workload) -> Response {
        let PreparedQuery { snapshot, core } = self;
        core.run_once(snapshot.db(), workload)
    }

    /// Open a streaming [`AnswerCursor`] over `q(D)`, yielding at most
    /// `limit` answers (`None` = all).
    ///
    /// On the GHD route this runs the semijoin reduction through an
    /// overlay over the already-materialized bag tree now (bags the
    /// reduction leaves untouched are shared with the handle by `Arc`,
    /// not copied — any number of concurrent cursors pin one tree), and
    /// then delivers answers with constant delay; on the naive route the
    /// backtracking search runs eagerly (stopping at `limit`) and the
    /// cursor drains the buffer. Either way the cursor is
    /// self-contained: it stays valid (and keeps streaming the pinned
    /// epoch's answers) after the handle is dropped or the catalog entry
    /// is swapped.
    ///
    /// ```
    /// use cqd2_engine::Engine;
    /// use cqd2_cq::{ConjunctiveQuery, Database};
    ///
    /// let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])]);
    /// let mut db = Database::new();
    /// db.insert_all("R", &[vec![1, 2]]);
    /// db.insert_all("S", &[vec![2, 3], vec![2, 4]]);
    /// let engine = Engine::default();
    /// let session = engine.session(&db);
    /// let prepared = session.prepare(&q)?;
    ///
    /// // Answers stream on demand — `take`, `filter`, stop early…
    /// let first: Vec<Vec<u64>> = prepared.cursor(None).take(1).collect();
    /// assert_eq!(first.len(), 1);
    /// // …and a limit caps the stream at open time.
    /// assert_eq!(prepared.cursor(Some(2)).count(), 2);
    /// assert_eq!(prepared.cursor(Some(0)).count(), 0);
    /// # Ok::<(), cqd2_engine::EngineError>(())
    /// ```
    pub fn cursor(&self, limit: Option<usize>) -> AnswerCursor {
        self.core.cursor(self.snapshot.db(), limit)
    }

    /// **Warm migration across a delta epoch**: produce a handle pinned
    /// to the post-delta `snapshot` by refreshing this handle's bag
    /// tree in place — only the bags reading a relation in `touched`
    /// (the names [`crate::Catalog::apply_delta`] reports) are
    /// re-materialized; clean bags and their filled probe-table caches
    /// are shared with this handle by `Arc`, so the migrated handle
    /// starts as warm as this one. Plans are carried over unchanged
    /// (the structure did not move; only the data did).
    ///
    /// Returns the migrated handle plus the maintenance sparsity (how
    /// many bags were rewritten out of the total — surfaced as
    /// `BagExecution` would be, and recorded as
    /// [`crate::MaintenanceClass::WarmOverlay`] in every subsequent
    /// response's provenance). `None` when this handle has no bag tree
    /// (naive-join plans): prepare a fresh handle on the new snapshot
    /// instead and tag it with [`PreparedQuery::mark_re_prepared`].
    ///
    /// This handle is untouched either way — it keeps answering at its
    /// pinned epoch, so open cursors stay consistent.
    pub fn rebase(
        &self,
        snapshot: &Arc<DatabaseSnapshot>,
        touched: &[String],
    ) -> Option<(PreparedQuery, cqd2_cq::PassStats)> {
        let (core, pass) = self.core.rebase_warm(snapshot.db(), touched)?;
        Some((
            PreparedQuery {
                snapshot: Arc::clone(snapshot),
                core,
            },
            pass,
        ))
    }

    /// Tag this handle as the product of a full re-prepare after a
    /// delta (the fallback when [`PreparedQuery::rebase`] returned
    /// `None`): subsequent responses carry
    /// [`crate::MaintenanceClass::RePrepared`] in their provenance.
    pub fn mark_re_prepared(&mut self) {
        self.core.maintenance = Some(crate::delta::MaintenanceClass::RePrepared);
    }

    /// How this handle crossed the most recent delta epoch (`None` =
    /// freshly prepared, never maintained).
    pub fn maintenance(&self) -> Option<crate::delta::MaintenanceClass> {
        self.core.maintenance
    }
}

enum CursorInner {
    /// Constant-delay streaming over a semijoin-reduced GHD bag tree.
    Streaming(GhdEnumerator),
    /// Pre-materialized answers (naive plans), drained on demand.
    Buffered(std::vec::IntoIter<Vec<u64>>),
}

/// A streaming handle over the answers of a prepared `Enumerate`
/// workload. Each item is a full assignment in `Var` id order (the
/// layout [`cqd2_cq::eval::enumerate_naive`] uses); the iteration order
/// is unspecified. The cursor stops after the `limit` it was opened
/// with. Owned and lifetime-free, like the handles that open it.
pub struct AnswerCursor {
    inner: CursorInner,
    remaining: Option<usize>,
}

impl Iterator for AnswerCursor {
    type Item = Vec<u64>;

    fn next(&mut self) -> Option<Vec<u64>> {
        if self.remaining == Some(0) {
            return None;
        }
        let item = match &mut self.inner {
            CursorInner::Streaming(e) => e.next(),
            CursorInner::Buffered(b) => b.next(),
        }?;
        if let Some(r) = &mut self.remaining {
            *r -= 1;
        }
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match (&self.inner, self.remaining) {
            (CursorInner::Buffered(b), None) => b.size_hint(),
            (_, Some(r)) => (0, Some(r)),
            (CursorInner::Streaming(_), None) => (0, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_cq::eval::enumerate_naive;
    use cqd2_cq::generate::{canonical_query, planted_database, random_database};
    use cqd2_hypergraph::generators::{hyperchain, hypercycle};

    #[test]
    fn prepared_runs_match_naive_for_all_workloads() {
        let engine = Engine::default();
        for (i, h) in [hyperchain(4, 2), hypercycle(5, 2)].into_iter().enumerate() {
            let q = canonical_query(&h);
            let db = planted_database(&q, 6, 14, i as u64 + 1);
            let session = engine.session(&db);
            let prepared = session.prepare(&q).unwrap();
            assert_eq!(
                prepared.run(Workload::Boolean).answer.as_bool(),
                Some(bcq_naive(&q, &db))
            );
            assert_eq!(
                prepared.run(Workload::Count).answer.as_count(),
                Some(count_naive(&q, &db))
            );
            let resp = prepared.run(Workload::Enumerate { limit: None });
            let mut got = resp.answer.into_tuples().unwrap();
            got.sort_unstable();
            assert_eq!(got, enumerate_naive(&q, &db));
        }
    }

    #[test]
    fn prepared_runs_do_no_planning() {
        let engine = Engine::default();
        let q = canonical_query(&hypercycle(6, 2));
        let db = random_database(&q, 6, 30, 3);
        let session = engine.session(&db);
        let prepared = session.prepare(&q).unwrap();
        assert!(!prepared.cache_hit(), "first prepare plans fresh");
        assert!(prepared.planning_time() > Duration::ZERO);
        for _ in 0..3 {
            let resp = prepared.run(Workload::Boolean);
            assert_eq!(resp.provenance.planning, Duration::ZERO);
            assert_eq!(
                resp.provenance.planned.plan,
                prepared.plan(Workload::Boolean).plan
            );
        }
        // Re-preparing the same structure hits the cache.
        let again = session.prepare(&q).unwrap();
        assert!(again.cache_hit());
        assert_eq!(engine.cache_stats().misses, 1);
    }

    #[test]
    fn cursor_respects_limits_and_streams_everything() {
        let engine = Engine::default();
        let q = canonical_query(&hyperchain(3, 2));
        let db = planted_database(&q, 8, 40, 7);
        let session = engine.session(&db);
        let prepared = session.prepare(&q).unwrap();
        let all: Vec<_> = prepared.cursor(None).collect();
        let expected = enumerate_naive(&q, &db);
        assert_eq!(all.len(), expected.len());
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, expected);
        let capped: Vec<_> = prepared.cursor(Some(2)).collect();
        assert_eq!(capped.len(), expected.len().min(2));
        assert_eq!(prepared.cursor(Some(0)).count(), 0);
        // The limit also caps the materialized workload answer.
        let resp = prepared.run(Workload::Enumerate { limit: Some(1) });
        assert_eq!(resp.answer.as_tuples().map(<[_]>::len), Some(1));
    }

    #[test]
    fn session_one_shot_run_reports_planning() {
        let engine = Engine::default();
        let q = canonical_query(&hyperchain(4, 2));
        let db = random_database(&q, 5, 12, 9);
        let session = engine.session(&db);
        let resp = session.run(&q, Workload::Count).unwrap();
        assert_eq!(resp.answer.as_count(), Some(count_naive(&q, &db)));
        assert!(resp.provenance.planning > Duration::ZERO);
    }

    #[test]
    fn handles_are_owned_and_outlive_their_sources() {
        // The whole point of the redesign: no lifetime ties anything to
        // the scope that created it.
        let engine = Engine::default();
        let q = canonical_query(&hyperchain(3, 2));
        let db = planted_database(&q, 6, 18, 5);
        let expected = enumerate_naive(&q, &db);
        let expected_count = count_naive(&q, &db);

        let (prepared, cursor) = {
            let session = engine.session(&db);
            let prepared = session.prepare(&q).unwrap();
            let cursor = prepared.cursor(None);
            (prepared, cursor)
            // session dropped here; db borrow already released.
        };
        drop(db);
        drop(engine);

        // The handle still answers, on another thread, with no `'static`
        // gymnastics — it owns its snapshot and its engine handle.
        let handle = std::thread::spawn(move || {
            assert_eq!(
                prepared.run(Workload::Count).answer.as_count(),
                Some(expected_count)
            );
            let mut streamed: Vec<_> = cursor.collect();
            streamed.sort_unstable();
            streamed
        });
        assert_eq!(handle.join().unwrap(), expected);
    }

    #[test]
    fn catalog_sessions_pin_their_epoch_across_swaps() {
        let engine = Engine::default();
        let catalog = Catalog::new();
        catalog
            .publish_str("main", "R(1, 2)\nS(2, 3)\n")
            .expect("publish");
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])]);

        let old_session = engine.session_in(&catalog, "main").unwrap();
        let old_prepared = old_session.prepare(&q).unwrap();
        assert_eq!(old_prepared.epoch(), 0);
        // Open a cursor *before* the swap: in-flight enumeration.
        let mut in_flight = old_prepared.cursor(None);

        // Hot reload: one more S fact doubles the join's answers.
        catalog
            .swap_str("main", "R(1, 2)\nS(2, 3)\nS(2, 4)\n")
            .expect("swap");

        // The in-flight cursor and the old handle keep the old answers…
        let first = in_flight.next().expect("old epoch had one answer");
        assert_eq!(first, vec![1, 2, 3]);
        assert!(in_flight.next().is_none(), "old epoch had exactly one");
        assert_eq!(old_prepared.run(Workload::Count).answer.as_count(), Some(1));
        assert_eq!(old_session.epoch(), 0);

        // …while a fresh catalog session observes epoch 1 and new data.
        let new_session = engine.session_in(&catalog, "main").unwrap();
        assert_eq!(new_session.epoch(), 1);
        let new_prepared = new_session.prepare(&q).unwrap();
        assert_eq!(new_prepared.run(Workload::Count).answer.as_count(), Some(2));
    }
}
