//! The persistent snapshot + plan store (`.cqds` files).
//!
//! Restarting `cqd2-serve` used to throw away everything the paper says
//! to amortize: the facts were re-tokenized from text, the `O(‖D‖)`
//! statistics pass re-ran at publish time, and the plan cache came up
//! cold. This module makes the expensive preprocessing **durable**:
//!
//! - [`write_snapshot`] / [`read_snapshot`]: a versioned, checksummed
//!   binary format for a database snapshot. Each relation's tuples are
//!   laid out as one contiguous row-major `u64` buffer — exactly the
//!   [`cqd2_cq::FlatRelation`] layout — in a 64-byte-aligned section,
//!   so loading is one open + one bulk read (mmap-ready: the data
//!   sections could be mapped in place) followed by an `O(n)`
//!   sorted-distinct verification instead of tokenizing and re-sorting
//!   text. Per-relation statistics (cardinality, per-column distinct
//!   counts) are persisted in the table of contents, so publishing a
//!   loaded snapshot skips the statistics pass entirely
//!   ([`publish_snapshot`] / [`swap_snapshot`]).
//! - `save_plans` / `load_plans` *(requires the `serde` feature)*:
//!   spill the engine's isomorphism-keyed plan cache to JSON and
//!   preload it on the next start. Each record carries the catalog
//!   names it was prepared against, and the spill stamps the catalog's
//!   `name → epoch` map at save time; at load, staleness is judged
//!   **per record** — a record is skipped only when a database *it*
//!   names has moved to a different epoch (or vanished), so a delta
//!   to one database keeps every other database's warm plans.
//!   Unattributed records fall back to the conservative all-epochs
//!   rule (plans are structure-only, but the epoch stamps guarantee
//!   the warm cache corresponds to the data generation it was
//!   observed against).
//!
//! Every way a file can be wrong — bad magic, future version, flipped
//! byte, truncation, oversized length field, unsorted tuples — is a
//! typed [`StoreError`], never a panic and never an allocation beyond
//! the file's actual size. See `docs/SNAPSHOT.md` for the normative
//! on-disk layout.

use std::collections::BTreeMap;
use std::collections::HashSet;
use std::path::Path;
use std::sync::Arc;

use cqd2_cq::stats::{DatabaseStats, RelationStats};
use cqd2_cq::Database;

use crate::catalog::{Catalog, DatabaseSnapshot};
use crate::error::EngineError;

/// The 8-byte magic prefix of every `.cqds` file (also what
/// `cqd2-serve --db` sniffs to distinguish snapshots from text facts).
pub const MAGIC: [u8; 8] = *b"CQD2SNAP";

/// The schema version this build writes and the only one it reads.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed header length in bytes.
const HEADER_LEN: usize = 64;

/// Every data section starts on a 64-byte boundary (cache-line and
/// mmap-page friendly; `u64`-aligned for an in-place view).
const SECTION_ALIGN: usize = 64;

/// Defensive cap on a persisted relation's arity. Real arities are
/// single digits; a corrupt length field must not drive column loops.
const MAX_ARITY: u32 = 1 << 16;

/// What can go wrong reading or writing a `.cqds` file. Cloneable and
/// comparable so it can ride inside [`EngineError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The operating system refused the read or write. The unstructured
    /// `io::Error` is carried as its message (keeping this type `Eq`).
    Io {
        /// The path involved.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// The file does not start with the `CQD2SNAP` magic — it is not a
    /// snapshot at all (e.g. a text facts file passed to the wrong
    /// loader).
    NotASnapshot,
    /// The file's schema version is not the one this build reads. Both
    /// versions are named so operators know which side to upgrade.
    Version {
        /// The version the file declares.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// The file is structurally damaged: a checksum mismatch, a
    /// truncation, an out-of-bounds or misaligned section, or content
    /// violating the database invariants. `offset` is the byte position
    /// the damage was detected at.
    Corrupt {
        /// Byte offset of the detected damage.
        offset: u64,
        /// What exactly was wrong.
        message: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "snapshot I/O on {path}: {message}"),
            StoreError::NotASnapshot => {
                write!(f, "not a snapshot file (missing CQD2SNAP magic)")
            }
            StoreError::Version { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads version {supported})"
            ),
            StoreError::Corrupt { offset, message } => {
                write!(f, "corrupt snapshot at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    fn io(path: &Path, e: &std::io::Error) -> StoreError {
        StoreError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        }
    }

    fn corrupt(offset: usize, message: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            offset: offset as u64,
            message: message.into(),
        }
    }
}

/// A fully decoded snapshot file: the database, the statistics
/// persisted alongside it, and the (reserved, version-1-ignored) flag
/// bits, preserved so round trips keep them intact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotFile {
    /// The database, with every invariant re-verified on load.
    pub db: Database,
    /// The statistics persisted at save time (trusted under the body
    /// checksum — loading never re-runs the collection pass).
    pub stats: DatabaseStats,
    /// The header's reserved flag bits. Version 1 defines none; readers
    /// ignore them, round trips preserve them.
    pub flags: u32,
}

/// One relation's table-of-contents entry, as [`inspect_snapshot`]
/// reports it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSummary {
    /// Relation name.
    pub name: String,
    /// Arity (columns per tuple).
    pub arity: usize,
    /// Number of tuples.
    pub rows: u64,
    /// Absolute byte offset of the relation's data section
    /// (64-byte aligned).
    pub offset: u64,
    /// Persisted per-column distinct counts.
    pub distinct: Vec<u64>,
}

/// Header and table-of-contents summary of a snapshot file
/// (everything except the tuple data itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotSummary {
    /// Schema version.
    pub version: u32,
    /// Reserved flag bits.
    pub flags: u32,
    /// Total file length in bytes.
    pub file_len: u64,
    /// Per-relation entries, in name order.
    pub relations: Vec<RelationSummary>,
    /// Total tuples across all relations.
    pub total_tuples: u64,
}

// ---------------------------------------------------------------------
// Checksums and little-endian primitives.
// ---------------------------------------------------------------------

/// FNV-1a over `bytes`: dependency-free, and a single flipped byte
/// always changes the sum (the xor-then-multiply step is injective in
/// the flipped position), which is what the corruption sweep relies on.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn align_up(n: usize) -> usize {
    n.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

/// Little-endian `u32` at `off`. Callers have already bounds-checked
/// (the fixed header is length-verified up front).
fn u32_at(bytes: &[u8], off: usize) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&bytes[off..off + 4]);
    u32::from_le_bytes(a)
}

/// Little-endian `u64` at `off` (same contract as [`u32_at`]).
fn u64_at(bytes: &[u8], off: usize) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&bytes[off..off + 8]);
    u64::from_le_bytes(a)
}

/// Bounds-checked little-endian reads over the raw file bytes. Every
/// accessor returns a typed error instead of slicing out of range.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(StoreError::corrupt(
                self.pos,
                format!("{what} runs past the end of the file"),
            )),
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        let s = self.take(4, what)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        let s = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }
}

// ---------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------

/// Per-column distinct counts of one stored relation (the statistics
/// the table of contents persists).
fn distinct_counts(rel: &cqd2_cq::database::StoredRelation) -> Vec<u64> {
    (0..rel.arity)
        .map(|col| {
            let values: HashSet<u64> = rel.tuples.iter().map(|t| t[col]).collect();
            values.len() as u64
        })
        .collect()
}

/// Encode `db` as a version-[`FORMAT_VERSION`] snapshot. Statistics are
/// computed here, once — the save is where the `O(‖D‖)` pass is paid so
/// every later load can skip it.
pub fn encode_snapshot(db: &Database) -> Vec<u8> {
    encode_snapshot_with(db, FORMAT_VERSION, 0)
}

/// [`encode_snapshot`] with an explicit schema version and flag word.
/// Test-only surface: the version-skew and reserved-flags tests need to
/// write files this build's reader must reject or preserve. Checksums
/// are always computed over what is actually written.
#[doc(hidden)]
pub fn encode_snapshot_with(db: &Database, version: u32, flags: u32) -> Vec<u8> {
    let rels: Vec<(&str, &cqd2_cq::database::StoredRelation)> = db.relations().collect();
    let toc_len: usize = rels
        .iter()
        .map(|(name, rel)| 4 + name.len() + 4 + 8 + 8 + 8 * rel.arity)
        .sum();
    let data_start = align_up(HEADER_LEN + toc_len);
    let mut offsets = Vec::with_capacity(rels.len());
    let mut end = data_start;
    for (_, rel) in &rels {
        end = align_up(end);
        offsets.push(end);
        end += rel.tuples.len() * rel.arity * 8;
    }
    let file_len = end;

    let mut buf = Vec::with_capacity(file_len);
    buf.resize(HEADER_LEN, 0);
    for ((name, rel), &offset) in rels.iter().zip(&offsets) {
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&(rel.arity as u32).to_le_bytes());
        buf.extend_from_slice(&(rel.tuples.len() as u64).to_le_bytes());
        buf.extend_from_slice(&(offset as u64).to_le_bytes());
        for d in distinct_counts(rel) {
            buf.extend_from_slice(&d.to_le_bytes());
        }
    }
    for ((_, rel), &offset) in rels.iter().zip(&offsets) {
        buf.resize(offset, 0);
        for t in &rel.tuples {
            for &v in t {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    debug_assert_eq!(buf.len(), file_len);

    buf[0..8].copy_from_slice(&MAGIC);
    buf[8..12].copy_from_slice(&version.to_le_bytes());
    buf[12..16].copy_from_slice(&flags.to_le_bytes());
    buf[16..20].copy_from_slice(&(rels.len() as u32).to_le_bytes());
    // bytes 20..24 reserved (zero)
    buf[24..32].copy_from_slice(&(file_len as u64).to_le_bytes());
    // bytes 40..56 reserved (zero); checksums sealed below.
    reseal(&mut buf);
    buf
}

/// Recompute and rewrite the body and header checksums over the bytes
/// as they currently are. Test-only surface: the corruption sweep
/// patches structural fields (lengths, offsets, versions) and reseals,
/// so the *structural* validation is exercised rather than masked by a
/// checksum mismatch.
#[doc(hidden)]
pub fn reseal(bytes: &mut [u8]) {
    if bytes.len() < HEADER_LEN {
        return;
    }
    let body = fnv1a(&bytes[HEADER_LEN..]);
    bytes[32..40].copy_from_slice(&body.to_le_bytes());
    let header = fnv1a(&bytes[..56]);
    bytes[56..64].copy_from_slice(&header.to_le_bytes());
}

// ---------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------

/// Validate the header and table of contents of `bytes` (checksums,
/// version, every length/offset field) without materializing tuples.
pub fn inspect_bytes(bytes: &[u8]) -> Result<SnapshotSummary, StoreError> {
    // Magic first: anything without the prefix is "not a snapshot"
    // (however short), while a true snapshot cut below the header is
    // corruption.
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return Err(StoreError::NotASnapshot);
    }
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::corrupt(
            bytes.len(),
            format!(
                "file is {} bytes, shorter than the 64-byte header",
                bytes.len()
            ),
        ));
    }
    let header_sum = u64_at(bytes, 56);
    if fnv1a(&bytes[..56]) != header_sum {
        return Err(StoreError::corrupt(56, "header checksum mismatch"));
    }
    // The version check runs only on a checksum-clean header, so a
    // flipped version byte reads as corruption, not as a future format.
    let version = u32_at(bytes, 8);
    if version != FORMAT_VERSION {
        return Err(StoreError::Version {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let flags = u32_at(bytes, 12);
    let relation_count = u32_at(bytes, 16);
    let file_len = u64_at(bytes, 24);
    if file_len != bytes.len() as u64 {
        return Err(StoreError::corrupt(
            24,
            format!(
                "header declares {file_len} bytes but the file has {}",
                bytes.len()
            ),
        ));
    }
    let body_sum = u64_at(bytes, 32);
    if fnv1a(&bytes[HEADER_LEN..]) != body_sum {
        return Err(StoreError::corrupt(32, "body checksum mismatch"));
    }

    let mut cur = Cursor {
        bytes,
        pos: HEADER_LEN,
    };
    let mut relations = Vec::new();
    let mut total_tuples = 0u64;
    let mut prev_name: Option<String> = None;
    let mut prev_end = 0u64;
    for _ in 0..relation_count {
        let entry_at = cur.pos;
        let name_len = cur.u32("relation name length")? as usize;
        let name_bytes = cur.take(name_len, "relation name")?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| StoreError::corrupt(entry_at + 4, "relation name is not UTF-8"))?
            .to_string();
        if let Some(prev) = &prev_name {
            if *prev >= name {
                return Err(StoreError::corrupt(
                    entry_at,
                    format!("relation names out of order (`{prev}` then `{name}`)"),
                ));
            }
        }
        let arity = cur.u32("arity")?;
        if arity > MAX_ARITY {
            return Err(StoreError::corrupt(
                entry_at,
                format!("relation `{name}` declares arity {arity} (cap {MAX_ARITY})"),
            ));
        }
        let rows = cur.u64("row count")?;
        let offset = cur.u64("data offset")?;
        let section_bytes = rows
            .checked_mul(u64::from(arity))
            .and_then(|cells| cells.checked_mul(8))
            .ok_or_else(|| {
                StoreError::corrupt(
                    entry_at,
                    format!(
                        "relation `{name}` section size overflows (rows {rows} × arity {arity})"
                    ),
                )
            })?;
        let section_end = offset.checked_add(section_bytes).filter(|&e| e <= file_len);
        if section_end.is_none() || offset % SECTION_ALIGN as u64 != 0 || offset < prev_end {
            return Err(StoreError::corrupt(
                entry_at,
                format!(
                    "relation `{name}` data section [{offset}, +{section_bytes}) is out of \
                     bounds, misaligned, or overlapping"
                ),
            ));
        }
        if arity == 0 && rows > 1 {
            return Err(StoreError::corrupt(
                entry_at,
                format!("nullary relation `{name}` declares {rows} rows (at most 1 possible)"),
            ));
        }
        let mut distinct = Vec::with_capacity(arity as usize);
        for col in 0..arity {
            let d = cur.u64("distinct count")?;
            if d > rows || (rows > 0 && d == 0) {
                return Err(StoreError::corrupt(
                    entry_at,
                    format!(
                        "relation `{name}` column {col}: distinct count {d} impossible for \
                         {rows} rows"
                    ),
                ));
            }
            distinct.push(d);
        }
        total_tuples = total_tuples.checked_add(rows).ok_or_else(|| {
            StoreError::corrupt(entry_at, "total tuple count overflows".to_string())
        })?;
        // The safe unwrap: section_end was validated Some above.
        prev_end = section_end.unwrap_or(file_len);
        prev_name = Some(name.clone());
        relations.push(RelationSummary {
            name,
            arity: arity as usize,
            rows,
            offset,
            distinct,
        });
    }
    // Sections must live after the table of contents.
    let toc_end = cur.pos as u64;
    if let Some(first) = relations.iter().find(|r| r.offset < toc_end) {
        return Err(StoreError::corrupt(
            HEADER_LEN,
            format!(
                "relation `{}` data section at {} overlaps the table of contents (ends {toc_end})",
                first.name, first.offset
            ),
        ));
    }
    Ok(SnapshotSummary {
        version,
        flags,
        file_len,
        relations,
        total_tuples,
    })
}

/// Decode a full snapshot from `bytes`: validate everything
/// ([`inspect_bytes`]), then materialize the database with its sorted,
/// distinct-tuples invariant re-verified relation by relation, and
/// reassemble the persisted statistics. Allocation is bounded by the
/// actual file size — every row count was already checked against the
/// bytes present.
pub fn decode_snapshot(bytes: &[u8]) -> Result<SnapshotFile, StoreError> {
    let summary = inspect_bytes(bytes)?;
    let mut db = Database::new();
    let mut stats: BTreeMap<String, RelationStats> = BTreeMap::new();
    for rel in &summary.relations {
        let start = rel.offset as usize;
        let len = rel.rows as usize * rel.arity * 8;
        let section = &bytes[start..start + len];
        let tuples: Vec<Vec<u64>> = if rel.arity == 0 {
            vec![Vec::new(); rel.rows as usize]
        } else {
            section
                .chunks_exact(rel.arity * 8)
                .map(|row| (0..rel.arity).map(|col| u64_at(row, col * 8)).collect())
                .collect()
        };
        db.insert_sorted_relation(&rel.name, rel.arity, tuples)
            .map_err(|e| StoreError::corrupt(start, e.to_string()))?;
        stats.insert(
            rel.name.clone(),
            RelationStats {
                cardinality: rel.rows as usize,
                distinct: rel.distinct.iter().map(|&d| d as usize).collect(),
            },
        );
    }
    Ok(SnapshotFile {
        db,
        stats: DatabaseStats::from_parts(stats),
        flags: summary.flags,
    })
}

// ---------------------------------------------------------------------
// File I/O and catalog integration.
// ---------------------------------------------------------------------

/// Encode `db` and write it to `path`. Returns the file size in bytes.
pub fn write_snapshot(path: impl AsRef<Path>, db: &Database) -> Result<u64, StoreError> {
    let path = path.as_ref();
    let bytes = encode_snapshot(db);
    std::fs::write(path, &bytes).map_err(|e| StoreError::io(path, &e))?;
    Ok(bytes.len() as u64)
}

/// Read and decode the snapshot at `path`: one open, one bulk read,
/// checksum + invariant verification, no statistics pass.
pub fn read_snapshot(path: impl AsRef<Path>) -> Result<SnapshotFile, StoreError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| StoreError::io(path, &e))?;
    decode_snapshot(&bytes)
}

/// Read and validate the header + table of contents at `path` without
/// materializing tuples (the `cqd2-analyze snapshot inspect` surface).
pub fn inspect_snapshot(path: impl AsRef<Path>) -> Result<SnapshotSummary, StoreError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| StoreError::io(path, &e))?;
    inspect_bytes(&bytes)
}

/// Does `bytes` begin with the snapshot magic? (The `--db name=path`
/// format sniff: snapshots are loaded binary, everything else parses as
/// text facts.)
pub fn is_snapshot(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// [`Catalog::publish`] from a snapshot file, reusing the persisted
/// statistics — the publish-time `O(‖D‖)` collection pass is skipped.
pub fn publish_snapshot(
    catalog: &Catalog,
    name: &str,
    path: impl AsRef<Path>,
) -> Result<Arc<DatabaseSnapshot>, EngineError> {
    let file = read_snapshot(path)?;
    catalog.publish_with_stats(name, file.db, file.stats)
}

/// [`Catalog::swap`] from a snapshot file (the `Reload { path }` server
/// path). On any error the catalog is untouched — the old epoch keeps
/// serving.
pub fn swap_snapshot(
    catalog: &Catalog,
    name: &str,
    path: impl AsRef<Path>,
) -> Result<Arc<DatabaseSnapshot>, EngineError> {
    let file = read_snapshot(path)?;
    catalog.swap_with_stats(name, file.db, file.stats)
}

// ---------------------------------------------------------------------
// Plan-cache spill (serde feature).
// ---------------------------------------------------------------------

#[cfg(feature = "serde")]
mod plans {
    use std::collections::BTreeMap;
    use std::path::Path;
    use std::time::Duration;

    use cqd2_dilution::DilutionSequence;
    use cqd2_hypergraph::Hypergraph;

    use super::StoreError;
    use crate::catalog::Catalog;
    use crate::engine::Engine;
    use crate::planner::PlannedStructure;

    /// Spill-format version (independent of the `.cqds` binary format).
    /// v2 added per-record database attribution (`PlanRecord::dbs`),
    /// replacing v1's whole-file epoch token with per-record staleness.
    const PLAN_SPILL_VERSION: u64 = 2;

    /// One cached structure class, flattened for JSON. The
    /// representative hypergraph *is* the isomorphism-invariant key:
    /// re-inserting it recomputes the fingerprint, so the spill needs
    /// no explicit key field. `Duration` does not serialize; planning
    /// time travels as microseconds.
    #[derive(Debug, Clone)]
    #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
    struct PlanRecord {
        representative: Hypergraph,
        ghd: Option<cqd2_decomp::Ghd>,
        ghd_exact: bool,
        jigsaw_dilution: Option<DilutionSequence>,
        jigsaw_n: u64,
        hard_regime: bool,
        num_edges: usize,
        notes: Vec<String>,
        planning_micros: u64,
        /// Catalog names this structure class was prepared against
        /// (sorted). Staleness is judged per record: the record loads
        /// iff every named database is still published at the epoch
        /// the spill stamped for it. Empty = structure-only planning
        /// with no database attribution, judged against *all* epochs
        /// (the conservative v1 rule).
        dbs: Vec<String>,
    }

    /// The spill file: a version stamp, the catalog epochs observed at
    /// save time (the per-record staleness reference — each record's
    /// `dbs` names are checked against these stamps at load), and the
    /// plans.
    #[derive(Debug, Clone)]
    #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
    struct PlanSpill {
        version: u64,
        epochs: BTreeMap<String, u64>,
        plans: Vec<PlanRecord>,
    }

    /// What [`load_plans`] did.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct PlanLoad {
        /// Structures preloaded into the cache (already-cached
        /// isomorphs are skipped, not double-counted).
        pub loaded: usize,
        /// Records skipped because a database they were prepared
        /// against has moved on (epoch drift or unpublished). A delta
        /// to one database stales only that database's plans; the
        /// rest of the spill still loads.
        pub stale: usize,
    }

    /// Minimal first-pass decode of a spill file: just the version
    /// stamp, so format skew reports as [`StoreError::Version`] rather
    /// than a missing-field parse error from the full record shape.
    #[derive(Debug, Clone)]
    #[cfg_attr(feature = "serde", derive(serde::Deserialize))]
    struct SpillVersionProbe {
        version: u64,
    }

    /// Spill the engine's plan cache to `path` as JSON, stamping the
    /// current epochs of every database in `catalog` as the
    /// invalidation token. Returns the number of plans written.
    pub fn save_plans(
        path: impl AsRef<Path>,
        engine: &Engine,
        catalog: &Catalog,
    ) -> Result<usize, StoreError> {
        let path = path.as_ref();
        let epochs: BTreeMap<String, u64> = catalog
            .snapshots()
            .iter()
            .map(|s| (s.name().to_string(), s.epoch()))
            .collect();
        let plans: Vec<PlanRecord> = engine
            .export_plans_attributed()
            .into_iter()
            .map(|(representative, s, dbs)| PlanRecord {
                representative,
                ghd: s.ghd,
                ghd_exact: s.ghd_exact,
                jigsaw_n: s.jigsaw.as_ref().map_or(0, |(_, n)| *n as u64),
                jigsaw_dilution: s.jigsaw.map(|(d, _)| d),
                hard_regime: s.hard_regime,
                num_edges: s.num_edges,
                notes: s.notes,
                planning_micros: s.planning_time.as_micros() as u64,
                dbs,
            })
            .collect();
        let count = plans.len();
        let spill = PlanSpill {
            version: PLAN_SPILL_VERSION,
            epochs,
            plans,
        };
        std::fs::write(path, serde::json::to_string(&spill))
            .map_err(|e| StoreError::io(path, &e))?;
        Ok(count)
    }

    /// Load a plan spill from `path` and preload the engine's cache.
    /// Staleness is judged **per record** against the epochs stamped
    /// at save time: a record loads iff every database it was prepared
    /// against is still published at its stamped epoch. Unattributed
    /// records (empty `dbs`) fall back to the conservative rule — they
    /// load only when *every* stamped epoch still matches the catalog.
    /// Skipped records are counted in [`PlanLoad::stale`]; the rest of
    /// the spill still loads, so a delta to one database no longer
    /// discards every other database's warm plans.
    pub fn load_plans(
        path: impl AsRef<Path>,
        engine: &Engine,
        catalog: &Catalog,
    ) -> Result<PlanLoad, StoreError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| StoreError::io(path, &e))?;
        let probe: SpillVersionProbe = serde::json::from_str(&text)
            .map_err(|e| StoreError::corrupt(0, format!("plan spill: {e}")))?;
        if probe.version != PLAN_SPILL_VERSION {
            return Err(StoreError::Version {
                found: probe.version as u32,
                supported: PLAN_SPILL_VERSION as u32,
            });
        }
        let spill: PlanSpill = serde::json::from_str(&text)
            .map_err(|e| StoreError::corrupt(0, format!("plan spill: {e}")))?;
        let current: BTreeMap<String, u64> = catalog
            .snapshots()
            .iter()
            .map(|s| (s.name().to_string(), s.epoch()))
            .collect();
        let all_epochs_match = spill.epochs == current;
        let mut loaded = 0;
        let mut stale = 0;
        for rec in spill.plans {
            let fresh = if rec.dbs.is_empty() {
                all_epochs_match
            } else {
                rec.dbs.iter().all(|name| {
                    spill.epochs.get(name).is_some_and(|stamped| {
                        current.get(name) == Some(stamped)
                    })
                })
            };
            if !fresh {
                stale += 1;
                continue;
            }
            let structure = PlannedStructure {
                ghd: rec.ghd,
                ghd_exact: rec.ghd_exact,
                jigsaw: rec.jigsaw_dilution.map(|d| (d, rec.jigsaw_n as usize)),
                hard_regime: rec.hard_regime,
                num_edges: rec.num_edges,
                notes: rec.notes,
                planning_time: Duration::from_micros(rec.planning_micros),
            };
            if engine.preload_plan_for(&rec.representative, structure, &rec.dbs) {
                loaded += 1;
            }
        }
        Ok(PlanLoad { loaded, stale })
    }
}

#[cfg(feature = "serde")]
pub use plans::{load_plans, save_plans, PlanLoad};

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.insert_all("R", &[vec![1, 2], vec![3, 4], vec![3, 9]]);
        db.insert_all("S", &[vec![2], vec![4]]);
        db.insert_all("Wide", &[vec![0, u64::MAX, 7, 7, 1]]);
        db.insert_sorted_relation("Empty", 2, vec![]).unwrap();
        db
    }

    #[test]
    fn encode_decode_round_trips_with_stats() {
        let db = sample_db();
        let bytes = encode_snapshot(&db);
        let file = decode_snapshot(&bytes).unwrap();
        assert_eq!(file.db, db);
        assert_eq!(file.stats, db.stats());
        assert_eq!(file.flags, 0);
        // Deterministic encoding: same database, same bytes.
        assert_eq!(encode_snapshot(&db), bytes);
    }

    #[test]
    fn sections_are_aligned_and_inspectable() {
        let db = sample_db();
        let bytes = encode_snapshot(&db);
        let summary = inspect_bytes(&bytes).unwrap();
        assert_eq!(summary.version, FORMAT_VERSION);
        assert_eq!(summary.file_len, bytes.len() as u64);
        assert_eq!(summary.relations.len(), 4);
        assert_eq!(summary.total_tuples, 6);
        for rel in &summary.relations {
            assert_eq!(rel.offset % SECTION_ALIGN as u64, 0, "{}", rel.name);
        }
        // Names arrive sorted, and the persisted stats match collect().
        let names: Vec<&str> = summary.relations.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["Empty", "R", "S", "Wide"]);
        let r = summary.relations.iter().find(|r| r.name == "R").unwrap();
        assert_eq!((r.arity, r.rows), (2, 3));
        assert_eq!(r.distinct, vec![2, 3]);
    }

    #[test]
    fn flat_sections_match_the_kernel_layout() {
        use cqd2_cq::{FlatRelation, Var};
        let db = sample_db();
        let bytes = encode_snapshot(&db);
        let summary = inspect_bytes(&bytes).unwrap();
        let r = summary.relations.iter().find(|r| r.name == "R").unwrap();
        let start = r.offset as usize;
        let words: Vec<u64> = bytes[start..start + r.rows as usize * r.arity * 8]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        // The persisted section IS the FlatRelation buffer.
        let vars: Vec<Var> = (0..r.arity as u32).map(Var).collect();
        let flat = FlatRelation::from_flat(vars.clone(), r.rows as usize, words.clone()).unwrap();
        let reference = FlatRelation::from_rows(vars, &db.relation("R").unwrap().tuples);
        assert_eq!(flat.data(), reference.data());
        assert_eq!(flat, reference);
    }

    #[test]
    fn version_skew_is_rejected_naming_both_versions() {
        let bytes = encode_snapshot_with(&sample_db(), FORMAT_VERSION + 1, 0);
        match decode_snapshot(&bytes) {
            Err(StoreError::Version { found, supported }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("{other:?}"),
        }
        let msg = decode_snapshot(&bytes).unwrap_err().to_string();
        assert!(msg.contains("version 2"), "{msg}");
        assert!(msg.contains("version 1"), "{msg}");
    }

    #[test]
    fn reserved_flags_round_trip_untouched() {
        let db = sample_db();
        let bytes = encode_snapshot_with(&db, FORMAT_VERSION, 0xDEAD_BEEF);
        let file = decode_snapshot(&bytes).unwrap();
        assert_eq!(file.flags, 0xDEAD_BEEF);
        assert_eq!(file.db, db);
        // Re-encoding with the preserved flags is byte-identical.
        assert_eq!(
            encode_snapshot_with(&file.db, FORMAT_VERSION, file.flags),
            bytes
        );
    }

    #[test]
    fn not_a_snapshot_and_empty_inputs() {
        match decode_snapshot(b"") {
            Err(StoreError::NotASnapshot) => {}
            other => panic!("{other:?}"),
        }
        match decode_snapshot(b"R(1, 2)\nS(2, 3)\n text facts are never a snapshot") {
            Err(StoreError::NotASnapshot) => {}
            other => panic!("{other:?}"),
        }
        // A real snapshot cut below the 64-byte header is corruption.
        let head = encode_snapshot(&Database::new());
        match decode_snapshot(&head[..32]) {
            Err(StoreError::Corrupt { offset: 32, .. }) => {}
            other => panic!("{other:?}"),
        }
        assert!(!is_snapshot(b"R(1, 2)"));
        assert!(is_snapshot(&encode_snapshot(&Database::new())));
    }

    #[test]
    fn catalog_publish_and_swap_from_files() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cqd2-store-test-{}.cqds", std::process::id()));
        let db = sample_db();
        write_snapshot(&path, &db).unwrap();

        let catalog = Catalog::new();
        let snap = publish_snapshot(&catalog, "main", &path).unwrap();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.db(), &db);
        assert_eq!(snap.stats(), &db.stats());

        let mut db2 = db.clone();
        db2.insert("R", &[100, 200]);
        write_snapshot(&path, &db2).unwrap();
        let snap2 = swap_snapshot(&catalog, "main", &path).unwrap();
        assert_eq!(snap2.epoch(), 1);
        assert_eq!(snap2.db(), &db2);

        // A missing file is a typed error and leaves the epoch serving.
        let missing = dir.join("cqd2-store-test-definitely-missing.cqds");
        match swap_snapshot(&catalog, "main", &missing) {
            Err(EngineError::Store(StoreError::Io { .. })) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(catalog.snapshot("main").unwrap().epoch(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn plan_spill_invalidates_per_database_name() {
        use cqd2_cq::ConjunctiveQuery;
        let path = std::env::temp_dir().join(format!(
            "cqd2-plan-spill-per-name-{}.json",
            std::process::id()
        ));

        let catalog = Catalog::new();
        catalog.publish_str("a", "R(1, 2)\nS(2, 3)\n").unwrap();
        catalog
            .publish_str("b", "R(1, 2)\nS(2, 3)\nT(3, 4)\n")
            .unwrap();
        let engine = crate::engine::Engine::default();

        // Distinct hypergraph shapes → distinct cache entries, each
        // attributed to the database its session was pinned to.
        let q_a = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])]);
        let q_b = ConjunctiveQuery::parse(&[
            ("R", &["?x", "?y"]),
            ("S", &["?y", "?z"]),
            ("T", &["?z", "?w"]),
        ]);
        engine
            .session_in(&catalog, "a")
            .unwrap()
            .prepare(&q_a)
            .unwrap();
        engine
            .session_in(&catalog, "b")
            .unwrap()
            .prepare(&q_b)
            .unwrap();
        assert_eq!(save_plans(&path, &engine, &catalog).unwrap(), 2);

        // Delta one database: only its plans go stale on reload.
        crate::delta::apply_delta_text(&catalog, "a", "@insert\nR(7, 8)\n").unwrap();

        let fresh = crate::engine::Engine::default();
        let load = load_plans(&path, &fresh, &catalog).unwrap();
        assert_eq!(load, PlanLoad { loaded: 1, stale: 1 });
        // The survivor is b's entry, attribution intact — so a second
        // spill → load round-trip still invalidates per name.
        let kept = fresh.export_plans_attributed();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].2, vec!["b".to_string()]);
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn plan_spill_unattributed_records_use_the_conservative_rule() {
        use cqd2_cq::ConjunctiveQuery;
        let path = std::env::temp_dir().join(format!(
            "cqd2-plan-spill-unattributed-{}.json",
            std::process::id()
        ));

        let catalog = Catalog::new();
        catalog.publish_str("a", "R(1, 2)\nS(2, 3)\n").unwrap();
        let engine = crate::engine::Engine::default();
        // A detached session pins an unnamed snapshot → the cached
        // structure carries no attribution.
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])]);
        let db = catalog.snapshot("a").unwrap().db().clone();
        engine.session(&db).prepare(&q).unwrap();
        assert_eq!(save_plans(&path, &engine, &catalog).unwrap(), 1);

        // All stamped epochs still match → the record loads.
        let fresh = crate::engine::Engine::default();
        assert_eq!(
            load_plans(&path, &fresh, &catalog).unwrap(),
            PlanLoad { loaded: 1, stale: 0 }
        );

        // Any epoch drift stales an unattributed record (it could have
        // been observed against any of the served databases).
        crate::delta::apply_delta_text(&catalog, "a", "@insert\nR(9, 9)\n").unwrap();
        let fresh2 = crate::engine::Engine::default();
        assert_eq!(
            load_plans(&path, &fresh2, &catalog).unwrap(),
            PlanLoad { loaded: 0, stale: 1 }
        );
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn plan_spill_version_skew_is_a_typed_error() {
        let path = std::env::temp_dir().join(format!(
            "cqd2-plan-spill-version-{}.json",
            std::process::id()
        ));
        std::fs::write(&path, "{\"version\": 1, \"epochs\": {}, \"plans\": []}").unwrap();
        let catalog = Catalog::new();
        let engine = crate::engine::Engine::default();
        match load_plans(&path, &engine, &catalog) {
            Err(StoreError::Version {
                found: 1,
                supported: 2,
            }) => {}
            other => panic!("{other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }
}
