//! # cqd2-engine — serving layer for CQ workloads
//!
//! The paper's central message is that the *structure* of a conjunctive
//! query (degree 2, acyclicity, bounded ghw, jigsaw reducibility)
//! determines the right evaluation algorithm. This crate turns that
//! classification into a serving architecture:
//!
//! - [`planner`]: runs the structural analysis once per query structure
//!   and produces an explainable [`QueryPlan`] with a cost estimate —
//!   `NaiveJoin`, `GhdYannakakis` (Prop. 2.2), `CountingDp`
//!   (Prop. 4.14), or `JigsawReduce` (the Theorem 4.7 hardness
//!   certificate).
//! - [`cache`]: a plan cache keyed by the query hypergraph's
//!   isomorphism-invariant fingerprint; repeated-*shape* workloads pay
//!   for decomposition once, and cached GHDs are translated along a
//!   witness isomorphism into each incoming query's coordinates.
//! - [`catalog`]: the **versioned database catalog** — named databases
//!   published as [`DatabaseSnapshot`]s (data + statistics, computed
//!   once at publish time) with a per-name epoch; [`Catalog::swap`]
//!   hot-reloads a database without disturbing pinned readers, and the
//!   epoch is the invalidation token for prepared-handle caches.
//! - [`delta`]: the **incremental update plane** —
//!   [`Catalog::apply_delta`] publishes a batch of fact
//!   inserts/deletes as the next epoch with **structural sharing**
//!   (only touched relations rebuilt and re-scanned for statistics,
//!   everything else `Arc`-carried), and [`PreparedQuery::rebase`]
//!   migrates warm handles across the epoch by re-materializing only
//!   the dirty bag spine; the achieved [`MaintenanceClass`]
//!   (`warm-overlay` / `re-prepared`) lands in plan provenance.
//! - [`session`]: the **owned, handle-based serving API** —
//!   [`Engine::session_in`] pins a catalog snapshot ([`Engine::session`]
//!   is the `&Database` convenience shim); [`Session::prepare`] resolves
//!   a query's structure analysis and plan once (through the cache);
//!   [`PreparedQuery::run`] re-executes at zero planning cost, and
//!   [`PreparedQuery::cursor`] streams `Enumerate` answers with constant
//!   delay after semijoin-reduction preprocessing. All handles are
//!   lifetime-free: they stay valid across catalog swaps, scope ends,
//!   and thread moves, answering consistently against their pinned
//!   epoch.
//! - [`engine`]: [`Engine::execute_batch`] evaluates batches of
//!   `(query, db)` requests over shared databases with scoped worker
//!   threads, returning per-request answers plus plan provenance.
//!   `Engine::serve` and friends are compatibility shims over sessions.
//! - [`server`] *(requires the `serde` feature)*: the **socket serving
//!   front-end** — a thread-pool TCP server (`cqd2-serve`) framing the
//!   workload text format over a shared [`Catalog`], with per-batch
//!   snapshot pinning, epoch-validated prepared-query caches, hot
//!   `Reload` / `Delta` / `CatalogInfo` admin frames (deltas migrate
//!   the warm caches instead of purging them), a bounded queue with
//!   typed backpressure, and graceful shutdown. See `docs/PROTOCOL.md`.
//! - [`store`]: the **persistent snapshot + plan store** — a versioned,
//!   checksummed `.cqds` binary format laying each relation out as the
//!   kernel's contiguous `FlatRelation` buffer (mmap-ready sections,
//!   statistics persisted alongside, so publishing a loaded snapshot
//!   skips the statistics pass), plus a serde-gated plan-cache spill
//!   keyed by hypergraph fingerprint with catalog epochs as the
//!   invalidation token. See `docs/SNAPSHOT.md`.
//! - [`metrics`]: zero-dependency observability primitives — lock-free
//!   [`Counter`]s / [`Gauge`]s, a log-linear latency [`Histogram`] with
//!   mergeable [`Snapshot`]s and p50/p90/p99 readout, and the
//!   [`QueryTrace`] per-query span recorder the server threads through
//!   the serve path (`queue_wait` / `parse` / `plan` / `materialize` /
//!   `execute` / `serialize`).
//! - [`error`]: the typed [`EngineError`] hierarchy (a real
//!   `std::error::Error` with source chains).
//! - [`textio`]: a small text format for workload files (queries, facts,
//!   and `@boolean` / `@count` / `@enumerate` workload directives) and
//!   delta scripts (`@insert` / `@delete` sections of facts),
//!   shared by the `cqd2-analyze` subcommands and the examples.
//!
//! ```
//! use cqd2_engine::{Engine, Workload};
//! use cqd2_cq::{ConjunctiveQuery, Database};
//!
//! let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])]);
//! let mut db = Database::new();
//! db.insert_all("R", &[vec![1, 2]]);
//! db.insert_all("S", &[vec![2, 3], vec![2, 4]]);
//!
//! let engine = Engine::default();
//! // Statistics snapshotted once per session, plan resolved once per
//! // prepared query; runs just execute.
//! let session = engine.session(&db);
//! let prepared = session.prepare(&q).unwrap();
//! assert_eq!(prepared.run(Workload::Boolean).answer.as_bool(), Some(true));
//! assert_eq!(prepared.run(Workload::Count).answer.as_count(), Some(2));
//! // Enumeration streams tuples (full assignments in Var id order).
//! let answers: Vec<_> = prepared.cursor(None).collect();
//! assert_eq!(answers.len(), 2);
//! // The count run reused the Boolean run's structural analysis.
//! assert_eq!(engine.cache_stats().misses, 1);
//! ```

pub mod cache;
pub mod catalog;
pub mod delta;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod plan;
pub mod planner;
#[cfg(feature = "serde")]
pub mod server;
pub mod session;
pub mod store;
pub mod textio;
pub mod verify;

pub use cache::{CacheStats, CachedPlan, PlanCache};
pub use catalog::{Catalog, DatabaseSnapshot};
pub use delta::{apply_delta_text, DeltaOutcome, MaintenanceClass};
pub use engine::{
    Answer, BagExecution, BagMode, Engine, EngineConfig, PlanProvenance, Request, Response,
    Workload,
};
pub use error::EngineError;
pub use metrics::{Counter, Gauge, Histogram, Phase, QueryTrace, Snapshot, Span};
pub use plan::{CostEstimate, DataEstimate, PlannedQuery, QueryPlan};
pub use planner::{PlannedStructure, Planner, PlannerConfig};
#[cfg(feature = "serde")]
pub use server::{Server, ServerConfig, ServerError, ServerHandle, ServerStats};
pub use session::{AnswerCursor, PreparedQuery, Session};
pub use store::{SnapshotFile, SnapshotSummary, StoreError};
pub use textio::ParseError;
pub use verify::{verify_planned, VerifiedPlan, VerifyReport};
