//! # cqd2-engine — serving layer for CQ workloads
//!
//! The paper's central message is that the *structure* of a conjunctive
//! query (degree 2, acyclicity, bounded ghw, jigsaw reducibility)
//! determines the right evaluation algorithm. This crate turns that
//! classification into a serving architecture:
//!
//! - [`planner`]: runs the structural analysis once per query structure
//!   and produces an explainable [`QueryPlan`] with a cost estimate —
//!   `NaiveJoin`, `GhdYannakakis` (Prop. 2.2), `CountingDp`
//!   (Prop. 4.14), or `JigsawReduce` (the Theorem 4.7 hardness
//!   certificate).
//! - [`cache`]: a plan cache keyed by the query hypergraph's
//!   isomorphism-invariant fingerprint; repeated-*shape* workloads pay
//!   for decomposition once, and cached GHDs are translated along a
//!   witness isomorphism into each incoming query's coordinates.
//! - [`engine`]: [`Engine::execute_batch`] evaluates batches of
//!   `(query, db)` requests over shared databases with scoped worker
//!   threads, returning per-request answers plus plan provenance.
//! - [`textio`]: a small text format for workload files, shared by the
//!   `cqd2-analyze eval` subcommand and the examples.
//!
//! ```
//! use cqd2_engine::{Engine, Request, Workload};
//! use cqd2_cq::{ConjunctiveQuery, Database};
//!
//! let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])]);
//! let mut db = Database::new();
//! db.insert_all("R", &[vec![1, 2]]);
//! db.insert_all("S", &[vec![2, 3]]);
//!
//! let engine = Engine::default();
//! let responses = engine.execute_batch(&[
//!     Request { query: &q, db: &db, workload: Workload::Boolean },
//!     Request { query: &q, db: &db, workload: Workload::Count },
//! ]);
//! assert_eq!(responses[0].answer.as_bool(), Some(true));
//! assert_eq!(responses[1].answer.as_count(), Some(1));
//! // The second request reused the first one's structural analysis.
//! assert_eq!(engine.cache_stats().hits, 1);
//! ```

pub mod cache;
pub mod engine;
pub mod plan;
pub mod planner;
pub mod textio;

pub use cache::{CacheStats, CachedPlan, PlanCache};
pub use engine::{Answer, Engine, EngineConfig, PlanProvenance, Request, Response, Workload};
pub use plan::{CostEstimate, DataEstimate, PlannedQuery, QueryPlan};
pub use planner::{PlannedStructure, Planner, PlannerConfig};
