//! The incremental update plane: delta batches, structural-sharing
//! epoch publish, and warm maintenance of prepared handles.
//!
//! A full [`crate::Catalog::swap`] rebuilds everything — the database,
//! its statistics, and (transitively, via epoch invalidation) every
//! prepared handle over it. That is the right tool for wholesale
//! reloads, and exactly the wrong one for a stream of small fact
//! updates: a hundred-tuple delta against a hundred-megabyte database
//! should cost `O(‖Δ‖ + touched)`, not `O(‖D‖)`. This module makes
//! deltas first-class, with structural sharing at every layer:
//!
//! - **Data**: [`cqd2_cq::Database::apply_delta`] rebuilds only the
//!   touched relations; every other relation is carried into the new
//!   snapshot as the same `Arc` (no buffer copy, no re-sort).
//! - **Statistics**: [`cqd2_cq::DatabaseStats::updated_for`] re-scans
//!   only the touched relations and reuses the rest of the snapshot's
//!   per-relation statistics.
//! - **Epochs**: [`crate::Catalog::apply_delta`] publishes the merged
//!   database at the next epoch under the normal swap discipline —
//!   pinned readers are undisturbed, the write lock is held only for
//!   the pointer swap, and a rejected delta provably leaves the
//!   serving epoch unmoved (the whole batch validates before any merge).
//! - **Prepared handles**: [`crate::PreparedQuery::rebase`] migrates a
//!   warm handle onto the new snapshot by refreshing only the bag-tree
//!   nodes whose source relations the delta touched
//!   ([`cqd2_cq::MaterializedBags::refresh`]); clean bags — and their
//!   filled probe-table caches — are shared with the old tree by `Arc`.
//!   Responses from a maintained handle carry a [`MaintenanceClass`] in
//!   their provenance: [`MaintenanceClass::WarmOverlay`] when the bag
//!   tree was refreshed in place, [`MaintenanceClass::RePrepared`] when
//!   the server had to fall back to a full prepare (naive-join plans
//!   have no tree to refresh).
//!
//! The wire format of a delta batch is the textio delta script
//! ([`crate::textio::parse_delta`]): `@insert` / `@delete` section
//! directives followed by fact lines. [`apply_delta_text`] is the
//! one-call server path: parse, validate, merge, publish.
//!
//! ```
//! use cqd2_engine::{Catalog, Engine, Workload};
//!
//! let catalog = Catalog::new();
//! catalog.publish_str("main", "R(1, 2)\nS(2, 3)\nT(7)\n")?;
//! let engine = Engine::default();
//! let q = cqd2_cq::ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])]);
//! let prepared = engine.session_in(&catalog, "main")?.prepare(&q)?;
//!
//! // A delta touching S publishes epoch 1 incrementally…
//! let outcome = cqd2_engine::delta::apply_delta_text(&catalog, "main", "@insert\nS(2, 4)\n")?;
//! assert_eq!(outcome.snapshot.epoch(), 1);
//! assert_eq!((outcome.inserted, outcome.deleted), (1, 0));
//! // …sharing the untouched relations' buffers with epoch 0.
//! assert!(outcome.shares_relation_with_previous("R"));
//! assert!(outcome.shares_relation_with_previous("T"));
//! assert!(!outcome.shares_relation_with_previous("S"));
//! // The old handle keeps answering at its pinned epoch; a fresh
//! // session sees the delta. (On GHD plans, `PreparedQuery::rebase`
//! // migrates the old handle warm instead.)
//! assert_eq!(prepared.run(Workload::Count).answer.as_count(), Some(1));
//! let fresh = engine.session_in(&catalog, "main")?.prepare(&q)?;
//! assert_eq!(fresh.run(Workload::Count).answer.as_count(), Some(2));
//! # Ok::<(), cqd2_engine::EngineError>(())
//! ```

use std::sync::Arc;

use crate::catalog::{Catalog, DatabaseSnapshot};
use crate::error::EngineError;
use crate::textio;

/// How a prepared handle crossed a delta epoch — recorded in
/// [`crate::PlanProvenance::maintenance`] on every response the
/// maintained handle produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceClass {
    /// The handle's materialized bag tree was refreshed in place: only
    /// the bags reading a touched relation were re-materialized, clean
    /// bags and their probe-table caches were shared by `Arc`.
    WarmOverlay,
    /// The handle was rebuilt from scratch (full plan resolution + bag
    /// materialization) — the fallback when there is no bag tree to
    /// refresh (naive-join plans) or the warm path was declined.
    RePrepared,
}

impl MaintenanceClass {
    /// Stable lower-case label (`warm-overlay` / `re-prepared`), used
    /// by provenance rendering and the wire layer.
    pub fn name(self) -> &'static str {
        match self {
            MaintenanceClass::WarmOverlay => "warm-overlay",
            MaintenanceClass::RePrepared => "re-prepared",
        }
    }
}

/// What [`Catalog::apply_delta`] published: the new snapshot, the
/// snapshot it replaced, and the merge's account of what changed.
#[derive(Debug, Clone)]
pub struct DeltaOutcome {
    /// The snapshot published at the next epoch.
    pub snapshot: Arc<DatabaseSnapshot>,
    /// The snapshot the delta was merged against (one epoch older;
    /// pinned readers may still be answering from it).
    pub previous: Arc<DatabaseSnapshot>,
    /// Names of the relations the merge actually rebuilt, sorted. A
    /// relation a delta names but does not change (pure no-op inserts /
    /// deletes) is **not** listed.
    pub touched: Vec<String>,
    /// Tuples genuinely added (inserts of already-present tuples do not
    /// count).
    pub inserted: usize,
    /// Tuples genuinely removed (deletes of absent tuples do not count).
    pub deleted: usize,
}

impl DeltaOutcome {
    /// Does the new snapshot share relation `name`'s storage with the
    /// previous one (same `Arc`, no copy)? The structural-sharing
    /// witness: true for every relation the delta did not touch, false
    /// for rebuilt ones, `false` also if either side lacks the name.
    pub fn shares_relation_with_previous(&self, name: &str) -> bool {
        match (
            self.snapshot.db().relation_arc(name),
            self.previous.db().relation_arc(name),
        ) {
            (Some(new), Some(old)) => Arc::ptr_eq(new, old),
            _ => false,
        }
    }
}

/// Parse a textio delta script (`@insert` / `@delete` sections, see
/// [`textio::parse_delta`]) and apply it to the database `catalog`
/// publishes under `name` — the server's `Delta`-frame path in one
/// call. Parse errors surface as line-attributed
/// [`EngineError::Parse`]; semantic rejections (unknown relation, arity
/// mismatch) as [`EngineError::Delta`]. Either way the current epoch
/// keeps serving, untouched.
pub fn apply_delta_text(
    catalog: &Catalog,
    name: &str,
    text: &str,
) -> Result<DeltaOutcome, EngineError> {
    let delta = textio::parse_delta(text)?;
    catalog.apply_delta(name, &delta)
}

/// Re-export of the batch builder for embedders assembling deltas
/// programmatically instead of via the text format.
pub use cqd2_cq::DatabaseDelta as Delta;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Workload};
    use cqd2_cq::DatabaseDelta;

    fn catalog_with_main() -> Catalog {
        let catalog = Catalog::new();
        catalog
            .publish_str("main", "R(1, 2)\nS(2, 3)\nT(9)\n")
            .unwrap();
        catalog
    }

    #[test]
    fn delta_publishes_next_epoch_and_shares_untouched_arcs() {
        let catalog = catalog_with_main();
        let mut delta = DatabaseDelta::new();
        delta.insert("S", vec![2, 4]);
        let outcome = catalog.apply_delta("main", &delta).unwrap();
        assert_eq!(outcome.snapshot.epoch(), 1);
        assert_eq!(outcome.previous.epoch(), 0);
        assert_eq!(outcome.touched, vec!["S".to_string()]);
        assert_eq!((outcome.inserted, outcome.deleted), (1, 0));
        assert!(outcome.shares_relation_with_previous("R"));
        assert!(outcome.shares_relation_with_previous("T"));
        assert!(!outcome.shares_relation_with_previous("S"));
        // Stitched statistics describe the merged data exactly.
        assert_eq!(
            outcome.snapshot.stats().total_tuples(),
            outcome.snapshot.db().size()
        );
        let s = outcome.snapshot.stats().relation("S").unwrap();
        assert_eq!(s.cardinality, 2);
    }

    #[test]
    fn rejected_delta_leaves_epoch_unmoved() {
        let catalog = catalog_with_main();
        let mut unknown = DatabaseDelta::new();
        unknown.insert("Ghost", vec![1]);
        match catalog.apply_delta("main", &unknown) {
            Err(EngineError::Delta(cqd2_cq::DeltaError::UnknownRelation(n))) => {
                assert_eq!(n, "Ghost")
            }
            other => panic!("{other:?}"),
        }
        let mut arity = DatabaseDelta::new();
        arity.insert("R", vec![1, 2]); // fine…
        arity.delete("T", vec![1, 2]); // …but T has arity 1
        match catalog.apply_delta("main", &arity) {
            Err(EngineError::Delta(cqd2_cq::DeltaError::ArityMismatch { relation, .. })) => {
                assert_eq!(relation, "T")
            }
            other => panic!("{other:?}"),
        }
        // Nothing published: same epoch, same data.
        let snap = catalog.snapshot("main").unwrap();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.db().size(), 3);
    }

    #[test]
    fn delta_text_round_trip_and_parse_errors() {
        let catalog = catalog_with_main();
        let outcome =
            apply_delta_text(&catalog, "main", "@insert\nS(2, 4)\n@delete\nR(1, 2)\n").unwrap();
        assert_eq!((outcome.inserted, outcome.deleted), (1, 1));
        let mut touched = outcome.touched.clone();
        touched.sort();
        assert_eq!(touched, vec!["R".to_string(), "S".to_string()]);

        // Facts before any directive are a line-attributed parse error.
        match apply_delta_text(&catalog, "main", "S(5, 6)\n") {
            Err(EngineError::Parse(e)) => assert_eq!(e.line, Some(1)),
            other => panic!("{other:?}"),
        }
        // Unknown directives too.
        match apply_delta_text(&catalog, "main", "@upsert\nS(5, 6)\n") {
            Err(EngineError::Parse(e)) => assert_eq!(e.line, Some(1)),
            other => panic!("{other:?}"),
        }
        // Neither failed call published anything.
        assert_eq!(catalog.snapshot("main").unwrap().epoch(), 1);
    }

    #[test]
    fn prepared_handles_rebase_warm_across_a_delta() {
        // Large enough that the data estimate keeps the GHD plan (tiny
        // databases flip to the naive join, which has no tree to
        // refresh — that fallback is covered below).
        let q = cqd2_cq::ConjunctiveQuery::parse(&[
            ("R", &["?x", "?y"]),
            ("S", &["?y", "?z"]),
            ("U", &["?z", "?w"]),
        ]);
        let db = cqd2_cq::generate::planted_database(&q, 60, 400, 5);
        let catalog = Catalog::new();
        catalog.publish("main", db).unwrap();
        let engine = Engine::default();
        let prepared = engine
            .session_in(&catalog, "main")
            .unwrap()
            .prepare(&q)
            .unwrap();
        let before = cqd2_cq::eval::count_naive(&q, catalog.snapshot("main").unwrap().db());
        assert_eq!(
            prepared.run(Workload::Count).answer.as_count(),
            Some(before)
        );
        assert!(prepared.maintenance().is_none());

        // Graft a fresh U edge onto an existing S endpoint so the count
        // genuinely changes.
        let z = catalog.snapshot("main").unwrap().db().relation("S").unwrap().tuples[0][1];
        let outcome =
            apply_delta_text(&catalog, "main", &format!("@insert\nU({z}, 999999)\n")).unwrap();
        let (warm, pass) = prepared
            .rebase(&outcome.snapshot, &outcome.touched)
            .expect("a 400-tuple chain runs on the GHD route");
        assert!(pass.rewritten >= 1 && pass.rewritten < pass.total);
        assert_eq!(warm.epoch(), 1);
        assert_eq!(warm.maintenance(), Some(MaintenanceClass::WarmOverlay));
        let after = cqd2_cq::eval::count_naive(&q, outcome.snapshot.db());
        assert!(after > before, "the grafted edge adds answers");
        let resp = warm.run(Workload::Count);
        assert_eq!(resp.answer.as_count(), Some(after));
        assert_eq!(
            resp.provenance.maintenance,
            Some(MaintenanceClass::WarmOverlay)
        );
        // The old handle still answers at its pinned epoch.
        assert_eq!(
            prepared.run(Workload::Count).answer.as_count(),
            Some(before)
        );

        // A cold re-prepare marked as such reports the other class.
        let mut fresh = engine
            .session_pinned(Arc::clone(&outcome.snapshot))
            .prepare(&q)
            .unwrap();
        fresh.mark_re_prepared();
        let resp = fresh.run(Workload::Count);
        assert_eq!(
            resp.provenance.maintenance,
            Some(MaintenanceClass::RePrepared)
        );
        assert_eq!(MaintenanceClass::WarmOverlay.name(), "warm-overlay");
        assert_eq!(MaintenanceClass::RePrepared.name(), "re-prepared");
    }

    #[test]
    fn concurrent_deltas_serialize_without_losing_updates() {
        let catalog = Catalog::new();
        let mut facts = String::new();
        for i in 0..4u64 {
            facts.push_str(&format!("R({i}, {i})\n"));
        }
        catalog.publish_str("hot", &facts).unwrap();
        let rounds = 40u64;
        std::thread::scope(|scope| {
            for t in 0..3u64 {
                let catalog = &catalog;
                scope.spawn(move || {
                    for i in 0..rounds {
                        let mut delta = DatabaseDelta::new();
                        delta.insert("R", vec![1000 + t * rounds + i, 7]);
                        catalog.apply_delta("hot", &delta).unwrap();
                    }
                });
            }
        });
        let snap = catalog.snapshot("hot").unwrap();
        assert_eq!(snap.epoch(), 3 * rounds);
        assert_eq!(snap.db().size() as u64, 4 + 3 * rounds);
        assert_eq!(snap.stats().total_tuples(), snap.db().size());
    }
}
