//! A HyperBench-like corpus and the **Table 1** census.
//!
//! Appendix A of the paper tabulates the HyperBench benchmark
//! (Fischl et al. 2021): of 3649 hypergraphs, 932 have degree 2 (only 16
//! of them synthetic), and the degree-2 slice contains many instances of
//! high ghw — Table 1 reports the counts with `ghw > k`:
//!
//! | k | amount |
//! |---|--------|
//! | 1 | 649    |
//! | 2 | 575    |
//! | 3 | 506    |
//! | 4 | 452    |
//! | 5 | 389    |
//!
//! The real benchmark cannot be downloaded in this offline environment
//! (see DESIGN.md §5), so [`corpus`] synthesizes a deterministic corpus of
//! 3649 hypergraphs from families mirroring HyperBench's provenance mix,
//! calibrated so the degree-2 slice reproduces the table exactly. The
//! *census* ([`mod@census`]) is a real classifier — GYO acyclicity, structural
//! jigsaw recognition with the paper's separator lower bound, exact ghw on
//! small instances, certified intervals otherwise — and [`io`] parses the
//! genuine HyperBench `.hg` format so the same census can run on the real
//! data when available.

pub mod census;
pub mod corpus;
pub mod io;
pub mod recognize;

pub use census::{census, CensusRow, HgStats};
pub use corpus::{generate_corpus, CorpusEntry, Provenance};
pub use recognize::{is_alpha_acyclic, recognize_grid, recognize_jigsaw};
