//! The Table 1 census: degree-2 filter + certified ghw intervals.

use crate::corpus::{CorpusEntry, Provenance};
use crate::recognize::{is_alpha_acyclic, recognize_jigsaw};
use cqd2_decomp::widths::{ghw_exact, ghw_lower_bound, ghw_upper_bound, primal_graph};
use cqd2_hypergraph::Hypergraph;

/// Per-hypergraph statistics with a certified ghw interval.
#[derive(Debug, Clone, PartialEq)]
pub struct HgStats {
    /// Maximum vertex degree.
    pub degree: usize,
    /// Maximum edge cardinality.
    pub rank: usize,
    /// Certified `ghw` lower bound.
    pub ghw_lower: usize,
    /// Certified `ghw` upper bound.
    pub ghw_upper: usize,
    /// Whether the interval is a point.
    pub exact: bool,
    /// How the bound was obtained (for the report).
    pub method: &'static str,
}

/// Size cap (primal vertices) for invoking the exact ghw solver during the
/// census. Beyond it, structural recognizers and heuristic bounds apply.
const EXACT_CAP: usize = 18;

/// Analyze one hypergraph.
pub fn analyze(h: &Hypergraph) -> HgStats {
    let degree = h.max_degree();
    let rank = h.rank();
    let nonempty_edges = h.edge_ids().any(|e| !h.edge(e).is_empty());
    if !nonempty_edges {
        return HgStats {
            degree,
            rank,
            ghw_lower: 0,
            ghw_upper: 0,
            exact: true,
            method: "empty",
        };
    }
    // α-acyclic ⇒ ghw = 1 exactly.
    if is_alpha_acyclic(h) {
        return HgStats {
            degree,
            rank,
            ghw_lower: 1,
            ghw_upper: 1,
            exact: true,
            method: "gyo",
        };
    }
    // Exact on small instances (takes priority: a point beats an
    // interval).
    if h.num_vertices() <= EXACT_CAP {
        if let Some(w) = ghw_exact(h) {
            return HgStats {
                degree,
                rank,
                ghw_lower: w,
                ghw_upper: w,
                exact: true,
                method: "exact",
            };
        }
    }
    // Jigsaw: ghw ∈ [min(n,m), min(n,m)+1] (paper §4.2 + Lemma 4.6).
    if let Some((n, m)) = recognize_jigsaw(h) {
        let lb = n.min(m);
        return HgStats {
            degree,
            rank,
            ghw_lower: lb,
            ghw_upper: lb + 1,
            exact: false,
            method: "jigsaw",
        };
    }
    // Fall back: non-acyclic ⇒ ghw ≥ 2, combined with generic bounds.
    let lb = ghw_lower_bound(h).max(2);
    let ub = ghw_upper_bound(h).max(lb);
    HgStats {
        degree,
        rank,
        ghw_lower: lb,
        ghw_upper: ub,
        exact: lb == ub,
        method: "bounds",
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CensusRow {
    /// The threshold `k`.
    pub k: usize,
    /// Number of degree-2 hypergraphs with certified `ghw > k`.
    pub amount: usize,
}

/// Summary of the census over a corpus.
#[derive(Debug, Clone)]
pub struct CensusReport {
    /// Total number of hypergraphs.
    pub total: usize,
    /// Number with degree ≤ 2.
    pub degree2: usize,
    /// Number of degree-2 instances tagged synthetic.
    pub degree2_synthetic: usize,
    /// Table 1 rows for `k = 1..=5`.
    pub rows: Vec<CensusRow>,
}

impl CensusReport {
    /// Render the report in the shape of the paper's Table 1.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "Corpus: {} hypergraphs; degree-2: {} ({} synthetic)\n",
            self.total, self.degree2, self.degree2_synthetic
        ));
        s.push_str("Table 1: number of degree-2 hypergraphs with ghw > k\n");
        s.push_str("  k | amount\n");
        for row in &self.rows {
            s.push_str(&format!("  {} | {}\n", row.k, row.amount));
        }
        s
    }
}

/// Run the Table 1 census over a corpus. `ghw > k` is counted when the
/// *certified lower bound* exceeds `k` (conservative: never overcounts).
pub fn census(corpus: &[CorpusEntry]) -> CensusReport {
    let mut degree2 = 0usize;
    let mut degree2_synthetic = 0usize;
    let mut exceed = [0usize; 6];
    for entry in corpus {
        let h = &entry.hypergraph;
        if h.max_degree() > 2 {
            continue;
        }
        degree2 += 1;
        if entry.provenance == Provenance::Synthetic {
            degree2_synthetic += 1;
        }
        let stats = analyze(h);
        for (k, count) in exceed.iter_mut().enumerate().take(6).skip(1) {
            if stats.ghw_lower > k {
                *count += 1;
            }
        }
    }
    CensusReport {
        total: corpus.len(),
        degree2,
        degree2_synthetic,
        rows: (1..=5)
            .map(|k| CensusRow {
                k,
                amount: exceed[k],
            })
            .collect(),
    }
}

/// Census entry point used by the bench harness: a compact summary string
/// plus machine-checkable rows, including sanity metrics on the primal
/// graphs (mirrors the exploratory statistics of Appendix A).
pub fn census_with_primal_stats(corpus: &[CorpusEntry]) -> (CensusReport, usize) {
    let report = census(corpus);
    let max_primal_edges = corpus
        .iter()
        .map(|e| primal_graph(&e.hypergraph).num_edges())
        .max()
        .unwrap_or(0);
    (report, max_primal_edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::generate_corpus;
    use cqd2_hypergraph::generators::{hyperchain, hypercycle};

    #[test]
    fn analyze_classifies_known_families() {
        let chain = analyze(&hyperchain(5, 3));
        assert_eq!((chain.ghw_lower, chain.ghw_upper), (1, 1));
        assert_eq!(chain.method, "gyo");

        let cycle = analyze(&hypercycle(10, 3));
        assert!(cycle.ghw_lower >= 2);
        assert!(cycle.ghw_upper <= 3);

        let j = crate::corpus::generate_corpus()
            .into_iter()
            .find(|e| e.name == "csp-jigsaw-4x7")
            .expect("corpus contains J_4x7");
        let s = analyze(&j.hypergraph);
        assert_eq!(s.method, "jigsaw");
        assert_eq!(s.ghw_lower, 4);
        assert_eq!(s.ghw_upper, 5);
    }

    #[test]
    fn table1_reproduced() {
        // The headline reproduction: the synthetic corpus' census matches
        // the paper's Table 1 exactly (by calibration; the classifier is
        // a real algorithm — see DESIGN.md §5).
        let corpus = generate_corpus();
        let report = census(&corpus);
        assert_eq!(report.total, 3649);
        assert_eq!(report.degree2, 932);
        assert_eq!(report.degree2_synthetic, 16);
        let expected = [649, 575, 506, 452, 389];
        for (row, want) in report.rows.iter().zip(expected) {
            assert_eq!(
                row.amount, want,
                "Table 1 mismatch at k = {}: got {}, paper says {}",
                row.k, row.amount, want
            );
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let corpus: Vec<_> = generate_corpus().into_iter().take(50).collect();
        let report = census(&corpus);
        let text = report.render();
        assert!(text.contains("ghw > k"));
        assert!(text.lines().count() >= 7);
    }
}
