//! The synthetic HyperBench-like corpus (see crate docs and DESIGN.md §5).
//!
//! 3649 deterministic hypergraphs. The degree-2 slice (932 instances, 16
//! tagged synthetic) is calibrated so the Table 1 census reproduces the
//! paper's counts; the remaining 2717 instances mirror HyperBench's
//! higher-degree CQ/CSP families.

use cqd2_hypergraph::generators::{
    complete_graph, grid_graph, hyperchain, hypercycle, hyperstar, random_degree_bounded,
};
use cqd2_hypergraph::{dual, reduce, Hypergraph};

/// Where an instance (nominally) comes from, mirroring HyperBench's
/// application/synthetic provenance split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Real-world CQs / CSPs (the bulk of HyperBench).
    Application,
    /// Synthetically generated instances (rare in the degree-2 slice:
    /// 16 of 932).
    Synthetic,
}

/// One corpus instance.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Stable instance name.
    pub name: String,
    /// Provenance tag.
    pub provenance: Provenance,
    /// The hypergraph.
    pub hypergraph: Hypergraph,
}

fn jigsaw(n: usize, m: usize) -> Hypergraph {
    let (d, _) = dual(&grid_graph(n, m).to_hypergraph());
    let (r, _) = reduce(&d);
    r
}

/// Graft a degree-3 star onto the first vertex of `h`, forcing the
/// hypergraph out of the degree-2 slice.
fn graft_star(h: &Hypergraph) -> Hypergraph {
    let base = h.num_vertices() as u32;
    let mut edges: Vec<Vec<u32>> = h
        .edge_ids()
        .map(|e| h.edge(e).iter().map(|v| v.0).collect())
        .collect();
    let anchor = if base > 0 { 0 } else { base };
    for i in 0..3u32 {
        edges.push(vec![anchor, base + i]);
    }
    Hypergraph::new((base + 3) as usize, &edges).expect("fresh vertices keep edges distinct")
}

/// Generate the full 3649-instance corpus. Deterministic: the same output
/// every call.
pub fn generate_corpus() -> Vec<CorpusEntry> {
    let mut out: Vec<CorpusEntry> = Vec::with_capacity(3649);
    let mut push = |name: String, provenance: Provenance, hypergraph: Hypergraph| {
        out.push(CorpusEntry {
            name,
            provenance,
            hypergraph,
        });
    };

    // ---------------- degree-2 slice: 932 instances ----------------
    // (a) 283 α-acyclic (ghw = 1): chains of varied length and rank.
    {
        let mut count = 0;
        'outer: for rank in 2..=6 {
            for len in 2..=60 {
                if count == 283 {
                    break 'outer;
                }
                push(
                    format!("cq-chain-r{rank}-l{len}"),
                    Provenance::Application,
                    hyperchain(len, rank),
                );
                count += 1;
            }
        }
        assert_eq!(count, 283);
    }
    // (b) 74 with certified ghw lower bound 2: hypercycles.
    {
        let mut count = 0;
        'outer: for rank in 2..=4 {
            for len in 3..=40 {
                if count == 74 {
                    break 'outer;
                }
                // Skip the 4-cycle of rank 2 (it is the 2x2 jigsaw and
                // would be double-counted with the jigsaw family).
                if rank == 2 && len == 4 {
                    continue;
                }
                push(
                    format!("csp-cycle-r{rank}-l{len}"),
                    Provenance::Application,
                    hypercycle(len, rank),
                );
                count += 1;
            }
        }
        assert_eq!(count, 74);
    }
    // (c)-(f) jigsaw families with certified lower bound min(n, m).
    // 16 of the lb=3 group are tagged synthetic (HyperBench: 16 of 932).
    // Buckets (lb, count): instances whose certified ghw lower bound is
    // exactly lb (for lb ∈ {3,4,5}: rectangular jigsaws J_{lb,m}), and the
    // "ghw > 5" bucket with min dimension ranging over 6..13.
    let buckets: [(usize, usize); 4] = [(3, 69), (4, 54), (5, 63), (6, 389)];
    for (lb, want) in buckets {
        for i in 0..want {
            let (n, m) = if lb == 6 {
                let n = 6 + i / 49;
                (n, n + i % 49)
            } else {
                (lb, lb + i)
            };
            let provenance = if lb == 3 && i < 16 {
                Provenance::Synthetic
            } else {
                Provenance::Application
            };
            push(format!("csp-jigsaw-{n}x{m}"), provenance, jigsaw(n, m));
        }
    }

    // ---------------- higher-degree remainder: 2717 -----------------
    // Stars (acyclic, degree = #edges): 300.
    {
        let mut count = 0;
        'outer: for rank in 2..=6 {
            for k in 3..=80 {
                if count == 300 {
                    break 'outer;
                }
                push(
                    format!("cq-star-r{rank}-k{k}"),
                    Provenance::Application,
                    hyperstar(k, rank),
                );
                count += 1;
            }
        }
    }
    // Clique primal graphs (high degree): 417.
    {
        for i in 0..417 {
            let n = 4 + (i % 17);
            let g = complete_graph(n);
            push(
                format!("csp-clique-{n}-v{i}"),
                if i % 3 == 0 {
                    Provenance::Synthetic
                } else {
                    Provenance::Application
                },
                g.to_hypergraph(),
            );
        }
    }
    // Random degree-3..6 hypergraphs: 1500. The generator only bounds the
    // degree from above, so instances that came out with degree ≤ 2 get a
    // degree-3 star grafted on (the census filters by actual degree, and
    // this slice must stay out of the degree-2 count).
    {
        for i in 0..1500u64 {
            let deg = 3 + (i % 4) as usize;
            let m = 5 + (i % 25) as usize;
            let rank = 2 + (i % 4) as usize;
            let mut h = random_degree_bounded(m, rank.max(2), deg, 0.7, 0xC0FFEE + i);
            if h.max_degree() <= 2 {
                h = graft_star(&h);
            }
            push(
                format!("csp-random-d{deg}-{i}"),
                if i % 2 == 0 {
                    Provenance::Synthetic
                } else {
                    Provenance::Application
                },
                h,
            );
        }
    }
    // High-degree acyclic (star-of-chains): 500.
    {
        for i in 0..500usize {
            let arms = 3 + (i % 6);
            let rank = 2 + (i % 3);
            // A star whose rays are chains: acyclic, degree = arms.
            let mut edges: Vec<Vec<u32>> = Vec::new();
            let mut next = 1u32;
            for _ in 0..arms {
                let mut prev = 0u32;
                for _ in 0..2 {
                    let mut e = vec![prev];
                    while e.len() < rank {
                        e.push(next);
                        next += 1;
                    }
                    prev = *e.last().unwrap();
                    edges.push(e);
                }
            }
            let h = Hypergraph::new(next as usize, &edges).expect("distinct edges");
            push(format!("cq-tree-a{arms}-{i}"), Provenance::Application, h);
        }
    }

    assert_eq!(out.len(), 3649, "corpus must have exactly 3649 instances");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_shape() {
        let corpus = generate_corpus();
        assert_eq!(corpus.len(), 3649);
        let degree2 = corpus
            .iter()
            .filter(|e| e.hypergraph.max_degree() <= 2)
            .count();
        assert_eq!(degree2, 932, "degree-2 slice size");
        let synthetic_d2 = corpus
            .iter()
            .filter(|e| e.hypergraph.max_degree() <= 2 && e.provenance == Provenance::Synthetic)
            .count();
        assert_eq!(synthetic_d2, 16, "synthetic degree-2 instances");
    }

    #[test]
    fn corpus_names_unique() {
        let corpus = generate_corpus();
        let mut names: Vec<&str> = corpus.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate instance names");
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = generate_corpus();
        let b = generate_corpus();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.hypergraph.signature(), y.hypergraph.signature());
        }
    }
}
