//! Parser for the HyperBench `.hg` hypergraph format, so the census can be
//! pointed at the genuine benchmark when it is available.
//!
//! The format lists one edge per line (comma- or newline-separated):
//!
//! ```text
//! e1(v1,v2,v3),
//! e2(v3,v4),
//! ```
//!
//! Vertex and edge names are arbitrary identifiers. `%`-prefixed lines are
//! comments.

use cqd2_hypergraph::{HgError, Hypergraph, HypergraphBuilder};

/// Parse a `.hg`-format string into a hypergraph.
pub fn parse_hg(input: &str) -> Result<Hypergraph, HgError> {
    let mut builder = HypergraphBuilder::new();
    // Edges may be separated by ',' at line ends; normalize and split on
    // the closing parenthesis.
    for raw_line in input.lines() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
            continue;
        }
        for chunk in line.split(')') {
            let chunk = chunk.trim().trim_start_matches(',').trim();
            if chunk.is_empty() {
                continue;
            }
            let Some((name, args)) = chunk.split_once('(') else {
                return Err(HgError::Precondition(format!(
                    "malformed edge declaration: {chunk:?}"
                )));
            };
            let vars: Vec<&str> = args
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            builder = builder.edge(name.trim(), &vars);
        }
    }
    builder.build()
}

/// Load every `.hg` file in a directory (sorted by name). Intended for
/// running the census against a local copy of the real HyperBench data.
pub fn load_directory(dir: &std::path::Path) -> std::io::Result<Vec<(String, Hypergraph)>> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "hg"))
        .collect();
    entries.sort_by_key(|e| e.file_name());
    let mut out = Vec::new();
    for entry in entries {
        let text = std::fs::read_to_string(entry.path())?;
        match parse_hg(&text) {
            Ok(h) => out.push((entry.file_name().to_string_lossy().into_owned(), h)),
            Err(e) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}: {e}", entry.path().display()),
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let h = parse_hg("e1(a,b,c),\ne2(c,d),\n").unwrap();
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.num_vertices(), 4);
        assert_eq!(h.rank(), 3);
        let c = h.vertex_by_name("c").unwrap();
        assert_eq!(h.degree(c), 2);
    }

    #[test]
    fn parse_multiple_edges_per_line() {
        let h = parse_hg("e1(a,b), e2(b,c)").unwrap();
        assert_eq!(h.num_edges(), 2);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let h = parse_hg("% header\n\ne1(x,y)\n# trailing\n").unwrap();
        assert_eq!(h.num_edges(), 1);
    }

    #[test]
    fn malformed_rejected() {
        assert!(parse_hg("oops").is_err());
    }

    #[test]
    fn duplicate_edge_contents_collapse() {
        // Set semantics, matching the paper's E(H) ⊆ 2^V.
        let h = parse_hg("e1(a,b)\ne2(b,a)\n").unwrap();
        assert_eq!(h.num_edges(), 1);
    }
}
