//! Structural recognizers used by the census: GYO α-acyclicity, grid
//! graphs, and jigsaw hypergraphs.

use cqd2_hypergraph::{Graph, Hypergraph};
use std::collections::BTreeSet;

/// GYO reduction: a hypergraph is α-acyclic iff repeatedly (a) deleting
/// vertices that occur in exactly one edge and (b) deleting edges
/// contained in other edges empties it to at most one edge.
/// α-acyclic hypergraphs with at least one edge have `ghw = 1` exactly.
pub fn is_alpha_acyclic(h: &Hypergraph) -> bool {
    let mut edges: Vec<BTreeSet<u32>> = h
        .edge_ids()
        .map(|e| h.edge(e).iter().map(|v| v.0).collect())
        .collect();
    loop {
        let mut changed = false;
        // Vertex occurrence counts.
        let mut count: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for e in &edges {
            for &v in e {
                *count.entry(v).or_insert(0) += 1;
            }
        }
        for e in &mut edges {
            let before = e.len();
            e.retain(|v| count[v] > 1);
            if e.len() != before {
                changed = true;
            }
        }
        // Remove edges contained in others (including duplicates/empties).
        let mut keep: Vec<bool> = vec![true; edges.len()];
        for i in 0..edges.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..edges.len() {
                if i == j || !keep[j] {
                    continue;
                }
                if edges[i].is_subset(&edges[j]) && (edges[i] != edges[j] || i > j) {
                    keep[i] = false;
                    changed = true;
                    break;
                }
            }
        }
        let new_edges: Vec<BTreeSet<u32>> = edges
            .into_iter()
            .zip(&keep)
            .filter(|(_, k)| **k)
            .map(|(e, _)| e)
            .collect();
        edges = new_edges;
        if edges.len() <= 1 {
            return true;
        }
        if !changed {
            return false;
        }
    }
}

/// Per-vertex grid coordinates produced by [`recognize_grid`].
pub type GridCoords = Vec<(usize, usize)>;

/// Recognize a grid graph: returns `(rows, cols)` with `rows ≤ cols` and
/// the coordinate of each vertex, if `g` is an `rows × cols` grid.
pub fn recognize_grid(g: &Graph) -> Option<(usize, usize, GridCoords)> {
    let n = g.num_vertices();
    if n == 0 || !g.is_connected() {
        return None;
    }
    if n == 1 {
        return (g.num_edges() == 0).then(|| (1, 1, vec![(0, 0)]));
    }
    // 1 × m grids are paths.
    if let Some(order) = path_order(g) {
        let coords = {
            let mut c = vec![(0usize, 0usize); n];
            for (j, &v) in order.iter().enumerate() {
                c[v as usize] = (0, j);
            }
            c
        };
        return Some((1, n, coords));
    }
    // General grids: exactly 4 corners of degree 2.
    let corners: Vec<u32> = (0..n as u32).filter(|&v| g.degree(v) == 2).collect();
    if corners.len() != 4 {
        return None;
    }
    let c1 = corners[0];
    let d1 = bfs_distances(g, c1);
    for &c2 in &corners[1..] {
        let width = d1[c2 as usize];
        // Candidate: c2 is the corner in the same row, at distance m-1.
        let m = width + 1;
        if !n.is_multiple_of(m) {
            continue;
        }
        let rows = n / m;
        let d2 = bfs_distances(g, c2);
        // coords: j = (d1 + (m-1) - d2)/2, i = d1 - j.
        let mut coords = vec![(usize::MAX, usize::MAX); n];
        let mut ok = true;
        for v in 0..n {
            let (a, b) = (d1[v], d2[v]);
            if (a + width) < b || !(a + width - b).is_multiple_of(2) {
                ok = false;
                break;
            }
            let j = (a + width - b) / 2;
            if j > a {
                ok = false;
                break;
            }
            let i = a - j;
            if i >= rows || j >= m {
                ok = false;
                break;
            }
            coords[v] = (i, j);
        }
        if !ok {
            continue;
        }
        // Verify bijectivity and exact grid adjacency.
        let mut seen = vec![false; n];
        for &(i, j) in &coords {
            let idx = i * m + j;
            if seen[idx] {
                ok = false;
                break;
            }
            seen[idx] = true;
        }
        if !ok {
            continue;
        }
        let expected_edges = rows * (m - 1) + (rows - 1) * m;
        if g.num_edges() != expected_edges {
            continue;
        }
        let all_grid_edges = g.edges().all(|(u, v)| {
            let (iu, ju) = coords[u as usize];
            let (iv, jv) = coords[v as usize];
            iu.abs_diff(iv) + ju.abs_diff(jv) == 1
        });
        if all_grid_edges {
            let (r, c) = (rows.min(m), rows.max(m));
            // Normalize coords to rows ≤ cols orientation.
            let coords = if rows <= m {
                coords
            } else {
                coords.into_iter().map(|(i, j)| (j, i)).collect()
            };
            return Some((r, c, coords));
        }
    }
    None
}

fn path_order(g: &Graph) -> Option<Vec<u32>> {
    let n = g.num_vertices();
    if g.num_edges() != n - 1 {
        return None;
    }
    let ends: Vec<u32> = (0..n as u32).filter(|&v| g.degree(v) == 1).collect();
    if ends.len() != 2 || (0..n as u32).any(|v| g.degree(v) > 2) {
        return None;
    }
    let mut order = vec![ends[0]];
    let mut prev = ends[0];
    let mut cur = ends[0];
    while order.len() < n {
        let next = *g.neighbors(cur).iter().find(|&&w| w != prev)?;
        order.push(next);
        prev = cur;
        cur = next;
    }
    Some(order)
}

fn bfs_distances(g: &Graph, s: u32) -> Vec<usize> {
    let mut d = vec![usize::MAX; g.num_vertices()];
    let mut q = std::collections::VecDeque::new();
    d[s as usize] = 0;
    q.push_back(s);
    while let Some(v) = q.pop_front() {
        for &w in g.neighbors(v) {
            if d[w as usize] == usize::MAX {
                d[w as usize] = d[v as usize] + 1;
                q.push_back(w);
            }
        }
    }
    d
}

/// Recognize a jigsaw hypergraph structurally (no isomorphism search):
/// all vertices have degree exactly 2, pairwise edge intersections have
/// size ≤ 1, the cell-adjacency graph is a grid, and the vertex count
/// equals the number of adjacent cell pairs. Returns `(n, m)`, `n ≤ m`.
pub fn recognize_jigsaw(h: &Hypergraph) -> Option<(usize, usize)> {
    if h.num_edges() < 2 {
        return None;
    }
    if h.vertices().any(|v| h.degree(v) != 2) {
        return None;
    }
    let k = h.num_edges();
    let mut adj = Graph::empty(k);
    let mut pairs = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            let s = h.edge_intersection_size(
                cqd2_hypergraph::EdgeId(i as u32),
                cqd2_hypergraph::EdgeId(j as u32),
            );
            match s {
                0 => {}
                1 => {
                    adj.add_edge(i as u32, j as u32);
                    pairs += 1;
                }
                _ => return None,
            }
        }
    }
    if h.num_vertices() != pairs {
        return None;
    }
    let (n, m, _) = recognize_grid(&adj)?;
    Some((n, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_hypergraph::generators::{grid_graph, hyperchain, hypercycle, hyperstar, path_graph};
    use cqd2_hypergraph::{dual, reduce};

    fn jigsaw(n: usize, m: usize) -> Hypergraph {
        let (d, _) = dual(&grid_graph(n, m).to_hypergraph());
        let (r, _) = reduce(&d);
        r
    }

    #[test]
    fn acyclicity() {
        assert!(is_alpha_acyclic(&hyperchain(6, 3)));
        assert!(is_alpha_acyclic(&hyperstar(5, 3)));
        assert!(!is_alpha_acyclic(&hypercycle(4, 3)));
        assert!(!is_alpha_acyclic(&jigsaw(2, 2)));
        // The classic: triangle is cyclic, but adding the full edge makes
        // it acyclic.
        let tri = Hypergraph::new(3, &[vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap();
        assert!(!is_alpha_acyclic(&tri));
        let tri_plus =
            Hypergraph::new(3, &[vec![0, 1], vec![1, 2], vec![0, 2], vec![0, 1, 2]]).unwrap();
        assert!(is_alpha_acyclic(&tri_plus));
    }

    #[test]
    fn grid_recognition() {
        for (n, m) in [(2, 2), (2, 5), (3, 3), (3, 7), (4, 4), (1, 6)] {
            let g = grid_graph(n, m);
            let (rn, rm, coords) = recognize_grid(&g).unwrap_or_else(|| {
                panic!("failed to recognize {n}x{m} grid");
            });
            assert_eq!((rn, rm), (n.min(m), n.max(m)));
            assert_eq!(coords.len(), n * m);
        }
        assert!(recognize_grid(&path_graph(5)).is_some()); // 1x5
        assert!(recognize_grid(&cqd2_hypergraph::generators::cycle_graph(6)).is_none());
        assert!(recognize_grid(&cqd2_hypergraph::generators::complete_graph(4)).is_none());
        // Grid plus a chord is not a grid.
        let mut g = grid_graph(3, 3);
        g.add_edge(0, 4);
        assert!(recognize_grid(&g).is_none());
    }

    #[test]
    fn jigsaw_recognition() {
        for (n, m) in [(2, 2), (2, 4), (3, 3), (3, 5), (6, 8)] {
            assert_eq!(
                recognize_jigsaw(&jigsaw(n, m)),
                Some((n.min(m), n.max(m))),
                "jigsaw {n}x{m}"
            );
        }
        assert_eq!(recognize_jigsaw(&hypercycle(5, 2)), None); // cycle ≠ grid
        assert_eq!(recognize_jigsaw(&hyperchain(4, 3)), None); // degree-1 vertices
    }

    #[test]
    fn large_jigsaw_recognition_is_fast() {
        let j = jigsaw(8, 20);
        assert_eq!(recognize_jigsaw(&j), Some((8, 20)));
    }
}
