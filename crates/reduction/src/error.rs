//! Typed errors for the Theorem 3.4 / 4.15 reduction.
//!
//! Formerly `Result<_, String>` surfaces; the `cqd2-lint`
//! `stringly-error` rule bans that shape, so reduction failures are now
//! matchable variants with the replay detail preserved.

use cqd2_hypergraph::HgError;

/// What can go wrong reducing an instance along a dilution sequence, or
/// verifying the result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReductionError {
    /// Replaying the dilution sequence on the host failed.
    Dilution(HgError),
    /// The supplied instance is not bound to the dilution's result
    /// hypergraph.
    NotBound,
    /// The reverse walk hit a state inconsistent with the recorded
    /// traces (a vertex or edge vanished, a merge target was isolated,
    /// a deleted subedge had no superset, …).
    Replay(String),
    /// Theorem 4.15 violated: answer cardinalities differ.
    NotParsimonious { original: usize, reduced: usize },
    /// Theorem 3.4 violated: the projected answer set differs from the
    /// original answer set.
    ProjectionMismatch { projected: usize, original: usize },
}

impl std::fmt::Display for ReductionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReductionError::Dilution(e) => write!(f, "dilution replay failed: {e}"),
            ReductionError::NotBound => {
                write!(f, "instance is not bound to the dilution result")
            }
            ReductionError::Replay(what) => write!(f, "reverse walk inconsistent: {what}"),
            ReductionError::NotParsimonious { original, reduced } => write!(
                f,
                "not parsimonious: |q(D_q)| = {original} but |p(D_p)| = {reduced}"
            ),
            ReductionError::ProjectionMismatch {
                projected,
                original,
            } => write!(
                f,
                "projection mismatch: projected {projected} distinct vs original {original} distinct"
            ),
        }
    }
}

impl std::error::Error for ReductionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReductionError::Dilution(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HgError> for ReductionError {
    fn from(e: HgError) -> ReductionError {
        ReductionError::Dilution(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let err = ReductionError::from(HgError::VertexOutOfRange(3));
        assert!(err.to_string().contains("v3"), "{err}");
        assert!(err.source().is_some());
        assert!(ReductionError::NotBound.source().is_none());
        let p = ReductionError::NotParsimonious {
            original: 4,
            reduced: 5,
        };
        assert!(p.to_string().contains('4') && p.to_string().contains('5'));
    }
}
