//! Self-join elimination (the preprocessing step of Theorem 3.4's proof).
//!
//! Duplicate relation symbols are split into fresh per-atom symbols whose
//! relations are copies of the original — the query's hypergraph and
//! answer set are unchanged.

use cqd2_cq::{ConjunctiveQuery, Database};

/// Split self-joins: returns an equivalent self-join-free `(q', D')` with
/// the same hypergraph and the same answers.
pub fn eliminate_self_joins(q: &ConjunctiveQuery, db: &Database) -> (ConjunctiveQuery, Database) {
    let mut q2 = q.clone();
    let mut db2 = Database::new();
    for (i, atom) in q2.atoms.iter_mut().enumerate() {
        let fresh = format!("{}__sj{}", atom.relation, i);
        if let Some(rel) = db.relation(&atom.relation) {
            db2.insert_all(&fresh, &rel.tuples);
        }
        atom.relation = fresh;
    }
    (q2, db2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_cq::eval::{count_naive, enumerate_naive};

    #[test]
    fn answers_preserved() {
        let q = ConjunctiveQuery::parse(&[("E", &["?x", "?y"]), ("E", &["?y", "?z"])]);
        let mut db = Database::new();
        db.insert_all("E", &[vec![1, 2], vec![2, 3], vec![3, 1]]);
        let (q2, db2) = eliminate_self_joins(&q, &db);
        assert!(q2.is_self_join_free());
        assert_eq!(enumerate_naive(&q, &db), enumerate_naive(&q2, &db2));
        assert_eq!(count_naive(&q, &db), count_naive(&q2, &db2));
    }

    #[test]
    fn hypergraph_unchanged() {
        let q = ConjunctiveQuery::parse(&[("E", &["?x", "?y"]), ("E", &["?y", "?x"])]);
        let db = Database::new();
        let (q2, _) = eliminate_self_joins(&q, &db);
        assert!(cqd2_hypergraph::are_isomorphic(
            &q.hypergraph(),
            &q2.hypergraph()
        ));
    }

    #[test]
    fn missing_relations_tolerated() {
        let q = ConjunctiveQuery::parse(&[("E", &["?x", "?y"])]);
        let db = Database::new();
        let (q2, db2) = eliminate_self_joins(&q, &db);
        assert!(db2.relation(&q2.atoms[0].relation).is_none());
    }
}
