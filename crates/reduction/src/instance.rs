//! Instances bound to a hypergraph: query + database with the atom ↔ edge
//! bijection the reduction needs.

use cqd2_cq::{ConjunctiveQuery, Database};
use cqd2_hypergraph::Hypergraph;

/// A BCQ/#CQ instance whose query's atoms correspond one-to-one to the
/// edges of a hypergraph (atom `i` ↔ edge `i`, arguments = edge vertices
/// in sorted order, variable `j` ↔ vertex `j`).
///
/// This is the *canonical* shape the Theorem 3.4 reduction operates on;
/// arbitrary self-join-free instances are brought into it by
/// [`crate::selfjoin::eliminate_self_joins`] plus renaming.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The query.
    pub query: ConjunctiveQuery,
    /// The database.
    pub db: Database,
}

impl Instance {
    /// The canonical query for `h` with relation names `prefix{edge}`,
    /// and the provided database (whose relations must use the same
    /// names).
    pub fn canonical(h: &Hypergraph, db: Database, prefix: &str) -> Instance {
        let var_names: Vec<String> = h
            .vertices()
            .map(|v| h.vertex_name(v).trim_start_matches('?').to_string())
            .collect();
        let atoms = h
            .edge_ids()
            .map(|e| cqd2_cq::Atom {
                relation: format!("{prefix}{}", e.idx()),
                terms: h
                    .edge(e)
                    .iter()
                    .map(|&v| cqd2_cq::Term::Var(cqd2_cq::Var(v.0)))
                    .collect(),
            })
            .collect();
        Instance {
            query: ConjunctiveQuery { atoms, var_names },
            db,
        }
    }

    /// Check the binding invariant against `h`.
    pub fn is_bound_to(&self, h: &Hypergraph) -> bool {
        if self.query.atoms.len() != h.num_edges() {
            return false;
        }
        if self.query.num_vars() != h.num_vertices() {
            return false;
        }
        for (i, atom) in self.query.atoms.iter().enumerate() {
            let edge: Vec<u32> = h
                .edge(cqd2_hypergraph::EdgeId(i as u32))
                .iter()
                .map(|v| v.0)
                .collect();
            let terms: Option<Vec<u32>> = atom
                .terms
                .iter()
                .map(|t| match t {
                    cqd2_cq::Term::Var(v) => Some(v.0),
                    cqd2_cq::Term::Const(_) => None,
                })
                .collect();
            if terms.as_deref() != Some(edge.as_slice()) {
                return false;
            }
        }
        true
    }

    /// Database size in total cells (`Σ arity × |tuples|`), the `‖D‖`
    /// measure the reduction's blowup bounds speak about.
    pub fn db_weight(&self) -> usize {
        self.db
            .relations()
            .map(|(_, r)| r.arity * r.tuples.len())
            .sum()
    }

    /// Largest constant in the database (fresh-constant allocation).
    pub fn max_constant(&self) -> u64 {
        self.db
            .relations()
            .flat_map(|(_, r)| r.tuples.iter().flatten().copied())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_cq::generate::random_database;
    use cqd2_hypergraph::generators::hyperchain;

    #[test]
    fn canonical_binding() {
        let h = hyperchain(3, 3);
        let q = Instance::canonical(&h, Database::new(), "E");
        assert!(q.is_bound_to(&h));
        assert_eq!(q.query.atoms.len(), 3);
        assert!(q.query.is_self_join_free());
    }

    #[test]
    fn weight_and_constants() {
        let h = hyperchain(2, 2);
        let tmp = Instance::canonical(&h, Database::new(), "E");
        let db = random_database(&tmp.query, 50, 10, 1);
        let inst = Instance::canonical(&h, db, "E");
        assert!(inst.db_weight() > 0);
        assert!(inst.max_constant() < 50);
    }
}
