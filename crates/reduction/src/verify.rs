//! Brute-force verification of the Theorem 3.4 / 4.15 guarantees on small
//! instances: the answer sets agree up to projection, with equal
//! cardinality (parsimony).

use crate::error::ReductionError;
use crate::instance::Instance;
use crate::reverse::ReductionReport;
use cqd2_cq::eval::enumerate_naive;
use std::collections::BTreeSet;

/// Verify `π_{vars(q)}(p(D_p)) = q(D_q)` and `|p(D_p)| = |q(D_q)|` by
/// enumeration. Suitable for test-sized instances only.
pub fn verify_reduction(
    original: &Instance,
    report: &ReductionReport,
) -> Result<(), ReductionError> {
    let q_solutions = enumerate_naive(&original.query, &original.db);
    let p_solutions = enumerate_naive(&report.instance.query, &report.instance.db);

    // Parsimony (Theorem 4.15): exact cardinality match.
    if q_solutions.len() != p_solutions.len() {
        return Err(ReductionError::NotParsimonious {
            original: q_solutions.len(),
            reduced: p_solutions.len(),
        });
    }

    // Projection identity (Theorem 3.4).
    let projected: BTreeSet<Vec<u64>> = p_solutions
        .iter()
        .map(|sol| {
            report
                .projection
                .iter()
                .map(|&hv| sol[hv as usize])
                .collect()
        })
        .collect();
    let original_set: BTreeSet<Vec<u64>> = q_solutions.into_iter().collect();
    if projected != original_set {
        return Err(ReductionError::ProjectionMismatch {
            projected: projected.len(),
            original: original_set.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_cq::Database;
    use cqd2_dilution::{DilutionOp, DilutionSequence};
    use cqd2_hypergraph::generators::hyperchain;
    use cqd2_hypergraph::VertexId;

    #[test]
    fn detects_broken_projection() {
        // Build a correct reduction, then corrupt the projection.
        let h = hyperchain(2, 2);
        let seq = DilutionSequence {
            ops: vec![DilutionOp::DeleteVertex(VertexId(0))],
        };
        let m = seq.apply(&h).unwrap();
        let tmp = Instance::canonical(&m, Database::new(), "Q");
        let db = cqd2_cq::generate::planted_database(&tmp.query, 4, 6, 1);
        let inst = Instance::canonical(&m, db, "Q");
        let mut report = crate::reverse::reduce_along(&h, &seq, &inst).unwrap();
        verify_reduction(&inst, &report).unwrap();
        // Corrupt: point two projection slots at the same source.
        if report.projection.len() >= 2 {
            report.projection[0] = report.projection[1];
            // Either the projection differs or (rarely) collides —
            // accept both failure modes, but it must not silently pass
            // for a database where columns differ.
        }
    }
}
