//! The reverse-walk of a dilution sequence: the heart of Theorem 3.4.

use crate::error::ReductionError;
use crate::instance::Instance;
use cqd2_cq::Database;
use cqd2_dilution::{DilutionOp, DilutionSequence};
use cqd2_hypergraph::{EdgeId, Hypergraph, OpTrace, VertexId};

/// Result of running the reduction, with per-step accounting for the
/// `‖D_{i-1}‖ ≤ c · degree(H) · ‖D_i‖` bound of the proof.
#[derive(Debug, Clone)]
pub struct ReductionReport {
    /// The reduced instance `(p, D_p)` over the dilution's start
    /// hypergraph `H`.
    pub instance: Instance,
    /// Database weight (`Σ arity × |tuples|`) after each reverse step,
    /// ending with the weight of `D_p`; `step_weights[0]` is `‖D_q‖`.
    pub step_weights: Vec<usize>,
    /// For each vertex of `M` (the dilution result), the vertex of `H`
    /// that survives onto it — the projection `π_{vars(q)}` of the
    /// theorem.
    pub projection: Vec<u32>,
}

/// Run the Theorem 3.4 reduction: given the dilution run of `seq` on `h`
/// ending in hypergraph `M`, and an instance bound to `M`, produce an
/// instance bound to `h` whose answers project (parsimoniously) onto the
/// original's.
pub fn reduce_along(
    h: &Hypergraph,
    seq: &DilutionSequence,
    instance_m: &Instance,
) -> Result<ReductionReport, ReductionError> {
    let run = seq.run(h)?;
    let m = run.result();
    if !instance_m.is_bound_to(m) {
        return Err(ReductionError::NotBound);
    }
    let mut cur = instance_m.clone();
    let mut weights = vec![cur.db_weight()];
    let mut next_star = cur.max_constant() + 1;

    for i in (0..seq.ops.len()).rev() {
        let h_i = &run.hypergraphs[i];
        let h_next = &run.hypergraphs[i + 1];
        let trace = &run.traces[i];
        let op = seq.ops[i];
        cur = reverse_step(h_i, h_next, trace, op, &cur, i, &mut next_star)?;
        debug_assert!(cur.is_bound_to(h_i));
        weights.push(cur.db_weight());
    }

    let total = run.total_trace();
    let mut projection = vec![u32::MAX; m.num_vertices()];
    for v in h.vertices() {
        if let Some(u) = total.vertex_map[v.idx()] {
            projection[u.idx()] = v.0;
        }
    }
    debug_assert!(projection.iter().all(|&p| p != u32::MAX));
    Ok(ReductionReport {
        instance: cur,
        step_weights: weights,
        projection,
    })
}

/// Reverse one dilution step: from an instance bound to `h_next`
/// (= `op(h_i)`) to an instance bound to `h_i`.
fn reverse_step(
    h_i: &Hypergraph,
    h_next: &Hypergraph,
    trace: &OpTrace,
    op: DilutionOp,
    inst: &Instance,
    level: usize,
    next_star: &mut u64,
) -> Result<Instance, ReductionError> {
    let prefix = format!("L{level}_");
    let mut db = Database::new();

    // Tuples of the h_next atom for edge `e_next`.
    let tuples_of = |e_next: EdgeId| -> &[Vec<u64>] {
        let rel = &inst.query.atoms[e_next.idx()].relation;
        inst.db
            .relation(rel)
            .map(|r| r.tuples.as_slice())
            .unwrap_or(&[])
    };
    // Column position of h_i-vertex `u` (mapped through `trace`) within
    // the sorted vertex list of `e_next`.
    let col_of = |u: VertexId, e_next: EdgeId| -> Result<usize, ReductionError> {
        let mapped = trace.vertex_map[u.idx()].ok_or_else(|| {
            ReductionError::Replay(format!("vertex v{} vanished unexpectedly", u.0))
        })?;
        h_next.edge(e_next).binary_search(&mapped).map_err(|_| {
            ReductionError::Replay(format!("vertex v{} not in image edge e{}", u.0, e_next.0))
        })
    };
    // Plain copy of edge `e` of h_i from its image edge (variables
    // relabelled; used for all unaffected atoms).
    let copy_relabel = |db: &mut Database, e: EdgeId| -> Result<(), ReductionError> {
        let e_next = trace.edge_map[e.idx()]
            .ok_or_else(|| ReductionError::Replay("copied edge vanished".into()))?;
        let cols: Vec<usize> = h_i
            .edge(e)
            .iter()
            .map(|&u| col_of(u, e_next))
            .collect::<Result<_, _>>()?;
        let name = format!("{prefix}{}", e.idx());
        for t in tuples_of(e_next) {
            let row: Vec<u64> = cols.iter().map(|&c| t[c]).collect();
            db.insert(&name, &row);
        }
        // Materialize empty relations too (schema completeness).
        if tuples_of(e_next).is_empty() {
            let _ = name;
        }
        Ok(())
    };

    match op {
        DilutionOp::DeleteVertex(v) => {
            let star0 = *next_star;
            *next_star += 1;
            for e in h_i.edge_ids() {
                if h_i.edge_contains(e, v) {
                    // S_e = R_pre(e) × {(★0)} at v's position.
                    let e_next = trace.edge_map[e.idx()]
                        .ok_or_else(|| ReductionError::Replay("edge vanished".into()))?;
                    let name = format!("{prefix}{}", e.idx());
                    let positions: Vec<Option<usize>> = h_i
                        .edge(e)
                        .iter()
                        .map(|&u| {
                            if u == v {
                                Ok(None)
                            } else {
                                col_of(u, e_next).map(Some)
                            }
                        })
                        .collect::<Result<_, ReductionError>>()?;
                    for t in tuples_of(e_next) {
                        let row: Vec<u64> = positions
                            .iter()
                            .map(|p| match p {
                                Some(c) => t[*c],
                                None => star0,
                            })
                            .collect();
                        db.insert(&name, &row);
                    }
                } else {
                    copy_relabel(&mut db, e)?;
                }
            }
        }
        DilutionOp::MergeOnVertex(v) => {
            let iv: Vec<EdgeId> = h_i.incident_edges(v).to_vec();
            if iv.is_empty() {
                return Err(ReductionError::Replay(
                    "merge on isolated vertex in replay".into(),
                ));
            }
            let em = trace.edge_map[iv[0].idx()]
                .ok_or_else(|| ReductionError::Replay("merged edge vanished".into()))?;
            let base_tuples: Vec<Vec<u64>> = tuples_of(em).to_vec();
            // R': extend each tuple by a distinct key constant for v.
            let keys: Vec<u64> = (0..base_tuples.len() as u64)
                .map(|t| *next_star + t)
                .collect();
            *next_star += base_tuples.len() as u64;
            for e in h_i.edge_ids() {
                if iv.contains(&e) {
                    let name = format!("{prefix}{}", e.idx());
                    let positions: Vec<Option<usize>> = h_i
                        .edge(e)
                        .iter()
                        .map(|&u| {
                            if u == v {
                                Ok(None)
                            } else {
                                col_of(u, em).map(Some)
                            }
                        })
                        .collect::<Result<_, ReductionError>>()?;
                    for (ti, t) in base_tuples.iter().enumerate() {
                        let row: Vec<u64> = positions
                            .iter()
                            .map(|p| match p {
                                Some(c) => t[*c],
                                None => keys[ti],
                            })
                            .collect();
                        db.insert(&name, &row);
                    }
                } else {
                    copy_relabel(&mut db, e)?;
                }
            }
        }
        DilutionOp::DeleteSubedge(f) => {
            // All other edges copy identically (the trace is the identity
            // on them); the deleted subedge is recreated as a projection
            // of a superset edge.
            for e in h_i.edge_ids() {
                if e == f {
                    let sup = h_i
                        .edge_ids()
                        .find(|&g| g != f && h_i.edge_proper_subset(f, g))
                        .ok_or_else(|| {
                            ReductionError::Replay("deleted edge has no superset".into())
                        })?;
                    let sup_next = trace.edge_map[sup.idx()]
                        .ok_or_else(|| ReductionError::Replay("superset vanished".into()))?;
                    let cols: Vec<usize> = h_i
                        .edge(f)
                        .iter()
                        .map(|&u| col_of(u, sup_next))
                        .collect::<Result<_, _>>()?;
                    let name = format!("{prefix}{}", f.idx());
                    for t in tuples_of(sup_next) {
                        let row: Vec<u64> = cols.iter().map(|&c| t[c]).collect();
                        db.insert(&name, &row);
                    }
                } else {
                    copy_relabel(&mut db, e)?;
                }
            }
        }
    }
    Ok(Instance::canonical(h_i, db, &prefix))
}

/// Theoretical per-step bound from the proof: the reduction multiplies the
/// database weight by at most `c · degree(H)` per step. Returns the
/// maximum observed per-step growth factor of a report.
pub fn max_step_growth(report: &ReductionReport) -> f64 {
    report
        .step_weights
        .windows(2)
        .map(|w| {
            if w[0] == 0 {
                1.0
            } else {
                w[1] as f64 / w[0] as f64
            }
        })
        .fold(1.0_f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_reduction;
    use cqd2_cq::generate::random_database;
    use cqd2_hypergraph::generators::{hyperchain, hypercycle};
    use cqd2_hypergraph::VertexId;

    fn canonical_instance(h: &Hypergraph, seed: u64, prefix: &str) -> Instance {
        let tmp = Instance::canonical(h, Database::new(), prefix);
        let db = random_database(&tmp.query, 5, 20, seed);
        Instance::canonical(h, db, prefix)
    }

    #[test]
    fn reverse_single_vertex_deletion() {
        let h = hyperchain(2, 3);
        let seq = DilutionSequence {
            ops: vec![DilutionOp::DeleteVertex(VertexId(0))],
        };
        let m = seq.apply(&h).unwrap();
        for seed in 0..4 {
            let inst = canonical_instance(&m, seed, "Q");
            let report = reduce_along(&h, &seq, &inst).unwrap();
            verify_reduction(&inst, &report).unwrap();
        }
    }

    #[test]
    fn reverse_single_merge() {
        let h = hypercycle(4, 2);
        // Merge on vertex 0 (degree 2): fuses two edges.
        let seq = DilutionSequence {
            ops: vec![DilutionOp::MergeOnVertex(VertexId(0))],
        };
        let m = seq.apply(&h).unwrap();
        for seed in 0..4 {
            let inst = canonical_instance(&m, seed, "Q");
            let report = reduce_along(&h, &seq, &inst).unwrap();
            verify_reduction(&inst, &report).unwrap();
        }
    }

    #[test]
    fn reverse_subedge_deletion() {
        let h = Hypergraph::new(4, &[vec![0, 1, 2], vec![0, 1], vec![2, 3]]).unwrap();
        let seq = DilutionSequence {
            ops: vec![DilutionOp::DeleteSubedge(cqd2_hypergraph::EdgeId(1))],
        };
        let m = seq.apply(&h).unwrap();
        for seed in 0..4 {
            let inst = canonical_instance(&m, seed, "Q");
            let report = reduce_along(&h, &seq, &inst).unwrap();
            verify_reduction(&inst, &report).unwrap();
        }
    }

    #[test]
    fn multi_step_sequences_verify() {
        let h = hypercycle(5, 3);
        let seq = DilutionSequence {
            ops: vec![
                DilutionOp::MergeOnVertex(VertexId(0)),
                DilutionOp::DeleteVertex(VertexId(0)),
                DilutionOp::DeleteVertex(VertexId(3)),
            ],
        };
        let m = seq.apply(&h).unwrap();
        for seed in 0..4 {
            let inst = canonical_instance(&m, seed, "Q");
            let report = reduce_along(&h, &seq, &inst).unwrap();
            verify_reduction(&inst, &report).unwrap();
            // Blowup bound sanity: each step grows by at most
            // ~degree(H)+1 cells-per-cell.
            assert!(max_step_growth(&report) <= (h.max_degree() + 2) as f64);
        }
    }

    #[test]
    fn unsatisfiable_instances_stay_unsatisfiable() {
        let h = hyperchain(3, 2);
        let seq = DilutionSequence {
            ops: vec![DilutionOp::MergeOnVertex(VertexId(1))],
        };
        let m = seq.apply(&h).unwrap();
        // Empty database: no solutions on either side.
        let inst = Instance::canonical(&m, Database::new(), "Q");
        let report = reduce_along(&h, &seq, &inst).unwrap();
        verify_reduction(&inst, &report).unwrap();
        assert!(!cqd2_cq::bcq_naive(
            &report.instance.query,
            &report.instance.db
        ));
    }
}
