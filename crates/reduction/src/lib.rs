//! The **Theorem 3.4** fpt-reduction: `p-BCQ(M)` reduces to `p-BCQ(H)`
//! when every hypergraph of `M` is a dilution of a hypergraph of `H` —
//! and its parsimonious counting variant, **Theorem 4.15**.
//!
//! Given a dilution sequence `W = (w₁, …, w_ℓ)` from `H` to `M` and an
//! instance `(q, D_q)` whose query hypergraph is `M`, the reduction walks
//! `W` *in reverse*, transforming the instance at every step so that the
//! answer set is preserved up to projection — and exactly preserved in
//! cardinality (the reduction is parsimonious):
//!
//! - reversing a **vertex deletion** re-attaches the deleted variable,
//!   extending every tuple of the affected relations by the fixed fresh
//!   constant `★₀`;
//! - reversing a **merging on `v`** splits the merged atom back into the
//!   original edges, sharing a fresh *key column* for `v` (one distinct
//!   `★ᵢ` per tuple) so the split relations are functionally dependent on
//!   `v`;
//! - reversing a **subedge deletion** adds back the subedge's atom as a
//!   projection of its superset edge's relation.
//!
//! Self-joins are eliminated up front ([`selfjoin`]), exactly as in the
//! paper's proof. [`verify`] checks both the projection identity
//! `π_{vars(q)}(p(D_p)) = q(D_q)` and parsimony `|p(D_p)| = |q(D_q)|` by
//! brute-force enumeration on small instances — this is the executable
//! content of Theorems 3.4 and 4.15.

pub mod error;
pub mod instance;
pub mod reverse;
pub mod selfjoin;
pub mod verify;

pub use error::ReductionError;
pub use instance::Instance;
pub use reverse::{reduce_along, ReductionReport};
pub use selfjoin::eliminate_self_joins;
pub use verify::verify_reduction;
