//! Typed errors for the jigsaw extraction pipeline.
//!
//! The Theorem 4.7 / Lemma D.4 constructions chain dilution machinery,
//! hypergraph surgery, and witness validation; [`JigsawError`] gives
//! each failure source a matchable variant (the public surfaces used to
//! return `Result<_, String>`, which the `cqd2-lint` `stringly-error`
//! rule now bans).

use cqd2_dilution::DilutionError;
use cqd2_hypergraph::HgError;

use crate::prejigsaw::PreJigsawError;

/// What can go wrong extracting jigsaws and pre-jigsaws.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JigsawError {
    /// An input violated a stated precondition (degree > 2, …).
    Unsupported(&'static str),
    /// The underlying dilution construction or verification failed.
    Dilution(DilutionError),
    /// Hypergraph surgery (induced sub-hypergraph, …) failed.
    Hypergraph(HgError),
    /// The constructed pre-jigsaw witness failed Definition 5.1.
    Witness(PreJigsawError),
    /// A Lemma D.4 construction step failed (bad grid description,
    /// missing dual source vertex, no clean connecting path, …).
    Construction(String),
}

impl std::fmt::Display for JigsawError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JigsawError::Unsupported(what) => write!(f, "unsupported input: {what}"),
            JigsawError::Dilution(e) => write!(f, "dilution step failed: {e}"),
            JigsawError::Hypergraph(e) => write!(f, "hypergraph operation failed: {e}"),
            JigsawError::Witness(e) => write!(f, "pre-jigsaw witness invalid: {e}"),
            JigsawError::Construction(what) => write!(f, "construction failed: {what}"),
        }
    }
}

impl std::error::Error for JigsawError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JigsawError::Dilution(e) => Some(e),
            JigsawError::Hypergraph(e) => Some(e),
            JigsawError::Witness(e) => Some(e),
            JigsawError::Unsupported(_) | JigsawError::Construction(_) => None,
        }
    }
}

impl From<DilutionError> for JigsawError {
    fn from(e: DilutionError) -> JigsawError {
        JigsawError::Dilution(e)
    }
}

impl From<HgError> for JigsawError {
    fn from(e: HgError) -> JigsawError {
        JigsawError::Hypergraph(e)
    }
}

impl From<PreJigsawError> for JigsawError {
    fn from(e: PreJigsawError) -> JigsawError {
        JigsawError::Witness(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let err = JigsawError::from(PreJigsawError::BadPi);
        assert!(err.to_string().contains("witness"), "{err}");
        let dyn_err: &dyn std::error::Error = &err;
        assert!(dyn_err.source().is_some());
        assert!(JigsawError::Unsupported("degree > 2").source().is_none());
    }
}
