//! The **Theorem 4.7** pipeline: every degree-2 hypergraph with large ghw
//! dilutes to a large jigsaw.
//!
//! `extract_jigsaw` executes the constructive chain
//!
//! ```text
//!   H  —Lemma 3.6→  reduced H  —dual→  H^d  —grid minor→  G_n  —Lemma 4.4→  J_n
//! ```
//!
//! and returns a *verified* dilution sequence from the input hypergraph to
//! the `n × n` jigsaw, for the largest `n` the budgeted grid-minor search
//! finds. (The Robertson–Seymour bound `f(n)` relating ghw to `n` is
//! combinatorial; the pipeline reports what it finds rather than relying
//! on the galactic bound — see DESIGN.md §5.)

use cqd2_dilution::decide::verify_dilution;
use cqd2_dilution::duality::{dilution_from_minor_map, dual_as_graph};
use cqd2_dilution::reduce_seq::reduction_sequence;
use cqd2_dilution::DilutionSequence;
use cqd2_hypergraph::{dual, generators::grid_graph, Graph, Hypergraph};
use cqd2_minors::grid::find_grid_minor;

use crate::error::JigsawError;
use crate::jigsaw::jigsaw;

/// Result of the Theorem 4.7 extraction.
#[derive(Debug, Clone)]
pub struct JigsawExtraction {
    /// Dimension of the extracted square jigsaw.
    pub n: usize,
    /// A verified dilution sequence from the input hypergraph to
    /// `jigsaw(n, n)`.
    pub sequence: DilutionSequence,
}

/// Extract the largest square jigsaw dilution the budget allows from a
/// degree-2 hypergraph. `max_n` caps the search. Returns `None` when not
/// even the 2×2 jigsaw is found (e.g. acyclic inputs, ghw ≤ 1 territory).
pub fn extract_jigsaw(
    h: &Hypergraph,
    max_n: usize,
    minor_budget: u64,
) -> Result<Option<JigsawExtraction>, JigsawError> {
    if h.max_degree() > 2 {
        return Err(JigsawError::Unsupported(
            "Theorem 4.7 pipeline requires degree ≤ 2",
        ));
    }
    let prefix = reduction_sequence(h)?;
    let reduced = prefix.apply(h)?;
    let hd = dual_as_graph(&reduced);
    // Largest grid first.
    for n in (2..=max_n).rev() {
        if n * n > hd.num_vertices() {
            continue;
        }
        let model = match find_grid_minor(&hd, n, n, minor_budget) {
            cqd2_minors::finder::MinorSearch::Found(m) => m,
            _ => continue,
        };
        let pattern = grid_graph(n, n);
        let (suffix, run) = dilution_from_minor_map(&reduced, &pattern, &model)?;
        debug_assert!(cqd2_hypergraph::are_isomorphic(run.result(), &jigsaw(n, n)));
        let mut ops = prefix.ops.clone();
        ops.extend(suffix.ops);
        let sequence = DilutionSequence { ops };
        verify_dilution(h, &jigsaw(n, n), &sequence)?;
        return Ok(Some(JigsawExtraction { n, sequence }));
    }
    Ok(None)
}

/// The degree-2 hypergraph of **Figure 2** (left): a hypergraph that
/// dilutes to the 3 × 2 jigsaw. We realize it as the dual of a decorated
/// 3 × 2 grid — the figure's hypergraph has extra vertices inside edges
/// and small protrusions, which dualize to subdivisions and pendants.
pub fn figure2_hypergraph() -> Hypergraph {
    // Take the 3x2 grid, subdivide two edges, add a pendant: its dual is a
    // degree-2 hypergraph requiring three mergings and some vertex
    // deletions to reach the jigsaw, mirroring the figure.
    let g = grid_graph(3, 2);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut next = 6u32;
    for (i, (u, v)) in g.edges().enumerate() {
        if i < 3 {
            // subdivide the first three edges (three mergings in Figure 2)
            edges.push((u, next));
            edges.push((next, v));
            next += 1;
        } else {
            edges.push((u, v));
        }
    }
    // one pendant decoration (deleted vertices in Figure 2's second step)
    edges.push((0, next));
    let host = Graph::from_edges(next as usize + 1, &edges);
    let (d, _) = dual(&host.to_hypergraph());
    let (h, _) = cqd2_hypergraph::reduce(&d);
    h
}

/// Generator for the experiment families: the dual of an `n × m` grid with
/// every edge subdivided `s` times and `pendants` pendant edges attached —
/// a degree-2 hypergraph whose hidden jigsaw has dimension `min(n, m)`.
pub fn decorated_jigsaw_dual(n: usize, m: usize, s: usize, pendants: usize) -> Hypergraph {
    let g = grid_graph(n, m);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut next = (n * m) as u32;
    for (u, v) in g.edges() {
        let mut prev = u;
        for _ in 0..s {
            edges.push((prev, next));
            prev = next;
            next += 1;
        }
        edges.push((prev, v));
    }
    for p in 0..pendants {
        let anchor = (p % (n * m)) as u32;
        edges.push((anchor, next));
        next += 1;
    }
    let host = Graph::from_edges(next as usize, &edges);
    let (d, _) = dual(&host.to_hypergraph());
    let (h, _) = cqd2_hypergraph::reduce(&d);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_decomp::widths::ghw_exact;

    const BUDGET: u64 = 3_000_000;

    #[test]
    fn figure2_dilutes_to_3x2_jigsaw() {
        let h = figure2_hypergraph();
        assert!(h.max_degree() <= 2);
        let extraction = extract_jigsaw(&h, 2, BUDGET)
            .unwrap()
            .expect("jigsaw found");
        assert!(extraction.n >= 2);
        // Specifically, the 3x2 target of Figure 2 is reachable: check the
        // rectangular variant explicitly via the duality decision.
        let g32 = cqd2_hypergraph::generators::grid_graph(3, 2);
        let r = cqd2_dilution::decide::decide_dilution_to_graph_dual(&h, &g32, BUDGET).unwrap();
        let seq = r.sequence().expect("3x2 jigsaw is a dilution");
        verify_dilution(&h, &crate::jigsaw::jigsaw(3, 2), &seq).unwrap();
    }

    #[test]
    fn jigsaw_extracts_itself() {
        let j3 = jigsaw(3, 3);
        let e = extract_jigsaw(&j3, 3, BUDGET).unwrap().expect("found");
        assert_eq!(e.n, 3);
    }

    #[test]
    fn acyclic_inputs_have_no_jigsaw() {
        let chain = cqd2_hypergraph::generators::hyperchain(6, 3);
        let e = extract_jigsaw(&chain, 4, BUDGET).unwrap();
        assert!(e.is_none(), "acyclic hypergraphs contain no 2x2 jigsaw");
    }

    #[test]
    fn decorated_duals_yield_their_grid() {
        let h = decorated_jigsaw_dual(3, 3, 1, 2);
        assert!(h.max_degree() <= 2);
        let e = extract_jigsaw(&h, 3, BUDGET).unwrap().expect("found");
        assert_eq!(e.n, 3);
    }

    #[test]
    fn extraction_dimension_tracks_ghw() {
        // Theorem 4.7 direction check on small cases: larger hidden grid
        // ⇒ larger ghw ⇒ larger extracted jigsaw.
        let h2 = decorated_jigsaw_dual(2, 2, 1, 0);
        let h3 = decorated_jigsaw_dual(3, 3, 1, 0);
        let e2 = extract_jigsaw(&h2, 4, BUDGET).unwrap().expect("2x2");
        let e3 = extract_jigsaw(&h3, 4, BUDGET).unwrap().expect("3x3");
        assert!(e3.n >= e2.n);
        let g2 = ghw_exact(&crate::jigsaw::jigsaw(e2.n, e2.n)).unwrap();
        if let Some(w2) = ghw_exact(&h2) {
            // The extracted jigsaw's ghw lower-bounds the host's ghw
            // (Lemma 3.2(3)).
            assert!(g2 <= w2);
        }
    }
}
