//! Jigsaw hypergraphs (Definition 4.2).
//!
//! The `n × m` jigsaw has edges `e_{i,j}` for `(i,j) ∈ [n] × [m]`, every
//! vertex has degree 2, `|e_{i,j} ∩ e_{i+1,j}| = |e_{i,j} ∩ e_{i,j+1}| = 1`,
//! and no other pair of edges intersects. It is the hypergraph dual of the
//! `n × m` grid graph and is unique up to isomorphism. `ghw(J_{n,n}) ≥ n`
//! (balanced-separator argument, Section 4.2) and `≤ n + 1` (Lemma 4.6).

use cqd2_dilution::{decide::verify_dilution, DilutionOp, DilutionSequence};
use cqd2_hypergraph::{are_isomorphic, generators::grid_graph, Hypergraph, VertexId};

/// Construct the `n × m` jigsaw. Edge `e_{i,j}` has index `i * m + j`
/// (row-major) and name `e(i,j)`; vertices are the shared points between
/// adjacent edges.
///
/// Requires `n, m ≥ 1` and `n * m ≥ 2` (a single edge cannot have degree-2
/// vertices; the 1×1 "jigsaw" would be the empty-edge hypergraph).
pub fn jigsaw(n: usize, m: usize) -> Hypergraph {
    assert!(n >= 1 && m >= 1 && n * m >= 2, "jigsaw needs ≥ 2 edges");
    // Vertices = edges of the n×m grid: horizontal (i,j)-(i,j+1) and
    // vertical (i,j)-(i+1,j).
    let mut edges: Vec<Vec<u32>> = vec![Vec::new(); n * m];
    let mut next_vertex = 0u32;
    let cell = |i: usize, j: usize| i * m + j;
    for i in 0..n {
        for j in 0..m {
            if j + 1 < m {
                edges[cell(i, j)].push(next_vertex);
                edges[cell(i, j + 1)].push(next_vertex);
                next_vertex += 1;
            }
            if i + 1 < n {
                edges[cell(i, j)].push(next_vertex);
                edges[cell(i + 1, j)].push(next_vertex);
                next_vertex += 1;
            }
        }
    }
    let mut h = Hypergraph::new(next_vertex as usize, &edges).expect("jigsaw edges distinct");
    for i in 0..n {
        for j in 0..m {
            h.set_edge_name(
                cqd2_hypergraph::EdgeId(cell(i, j) as u32),
                format!("e({},{})", i + 1, j + 1),
            );
        }
    }
    h
}

/// Recognize a jigsaw: returns `(n, m)` with `n ≤ m` if `h` is isomorphic
/// to the `n × m` jigsaw.
pub fn jigsaw_dimension(h: &Hypergraph) -> Option<(usize, usize)> {
    let k = h.num_edges();
    if k < 2 || h.max_degree() > 2 {
        return None;
    }
    // Vertex count must be n(m-1) + (n-1)m.
    for n in 1..=k {
        if !k.is_multiple_of(n) {
            continue;
        }
        let m = k / n;
        if n > m {
            break;
        }
        let expected_vertices = n * (m.saturating_sub(1)) + n.saturating_sub(1) * m;
        if h.num_vertices() != expected_vertices {
            continue;
        }
        if are_isomorphic(h, &jigsaw(n, m)) {
            return Some((n, m));
        }
    }
    None
}

/// The dilution from the `n × m` jigsaw to the `n × (m-1)` jigsaw
/// (the paper notes this after Definition 4.2): merge the last two columns
/// by merging on the vertices joining them, then delete the leftovers.
///
/// Returns a verified sequence (requires `m ≥ 3`, so the result is still a
/// jigsaw with ≥ 2 edges).
pub fn column_reduction_sequence(n: usize, m: usize) -> DilutionSequence {
    assert!(m >= 3 && n >= 1 && n * (m - 1) >= 2);
    let j = jigsaw(n, m);
    // Vertices joining column m-2 and m-1 (0-based): shared vertex of
    // e(i, m-2) and e(i, m-1) for each row i. Merging on each fuses the two
    // last-column edges of that row; leftover degree-1 vertices (the old
    // verticals between rows within the merged column pair... those become
    // internal) are cleaned by deleting duplicates via Lemma 3.6-style
    // vertex deletions. We build the sequence dynamically and verify.
    let mut ops = Vec::new();
    let mut cur = j.clone();
    // Phase 1: merge on every shared vertex between the last two columns.
    loop {
        let target = cur.vertices().find(|&v| {
            let iv = cur.incident_edges(v);
            iv.len() == 2 && {
                let n0 = cur.edge_name(iv[0]);
                let n1 = cur.edge_name(iv[1]);
                let (c0, r0) = parse_cell(n0);
                let (c1, r1) = parse_cell(n1);
                r0 == r1 && ((c0 == m - 1 && c1 == m) || (c0 == m && c1 == m - 1))
            }
        });
        match target {
            Some(v) => {
                let op = DilutionOp::MergeOnVertex(v);
                let (next, _) = op.apply(&cur).expect("legal merge");
                ops.push(op);
                cur = next;
            }
            None => break,
        }
    }
    // Phase 2: the merged edges may retain vertices that now have degree 1
    // inside a single edge and duplicate types — delete redundant vertices
    // until the result is the smaller jigsaw. A vertex is redundant when it
    // has a duplicate type or degree ≤ 1... here specifically: old
    // vertical connectors *between the merged edges of adjacent rows* are
    // now doubled (two parallel connections); drop duplicates.
    loop {
        let dup = find_duplicate_type_vertex(&cur);
        match dup {
            Some(v) => {
                let op = DilutionOp::DeleteVertex(v);
                let (next, _) = op.apply(&cur).expect("legal deletion");
                ops.push(op);
                cur = next;
            }
            None => break,
        }
    }
    let seq = DilutionSequence { ops };
    debug_assert!(verify_dilution(&j, &jigsaw(n, m - 1), &seq).is_ok());
    seq
}

fn parse_cell(name: &str) -> (usize, usize) {
    // "e(i,j)" -> (j, i): returns (column, row).
    let inner = name
        .trim_start_matches("e(")
        .trim_start_matches("m(")
        .trim_end_matches(')');
    let mut parts = inner.split(',');
    let i: usize = parts
        .next()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0);
    let j: usize = parts
        .next()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0);
    (j, i)
}

fn find_duplicate_type_vertex(h: &Hypergraph) -> Option<VertexId> {
    let mut seen = std::collections::BTreeMap::new();
    for v in h.vertices() {
        let t = h.vertex_type(v).to_vec();
        if t.is_empty() {
            return Some(v);
        }
        if seen.contains_key(&t) {
            return Some(v);
        }
        seen.insert(t, v);
    }
    None
}

/// The jigsaw is the dual of the grid (sanity constructor used by tests
/// and benches): `dual(grid_graph(n, m))`, reduced.
pub fn jigsaw_via_dual(n: usize, m: usize) -> Hypergraph {
    let (d, _) = cqd2_hypergraph::dual(&grid_graph(n, m).to_hypergraph());
    let (r, _) = cqd2_hypergraph::reduce(&d);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_decomp::widths::ghw_exact;

    #[test]
    fn jigsaw_counts_match_definition() {
        // Figure 3: the 3×4 jigsaw.
        let j = jigsaw(3, 4);
        assert_eq!(j.num_edges(), 12);
        assert_eq!(j.max_degree(), 2);
        // 3*(4-1) + (3-1)*4 = 9 + 8 = 17 vertices.
        assert_eq!(j.num_vertices(), 17);
        // Intersection structure: adjacent cells share exactly 1 vertex.
        for i in 0..3usize {
            for jdx in 0..4usize {
                let e = cqd2_hypergraph::EdgeId((i * 4 + jdx) as u32);
                if jdx + 1 < 4 {
                    let f = cqd2_hypergraph::EdgeId((i * 4 + jdx + 1) as u32);
                    assert_eq!(j.edge_intersection_size(e, f), 1);
                }
                if i + 1 < 3 {
                    let f = cqd2_hypergraph::EdgeId(((i + 1) * 4 + jdx) as u32);
                    assert_eq!(j.edge_intersection_size(e, f), 1);
                }
                if jdx + 2 < 4 {
                    let f = cqd2_hypergraph::EdgeId((i * 4 + jdx + 2) as u32);
                    assert_eq!(j.edge_intersection_size(e, f), 0);
                }
            }
        }
    }

    #[test]
    fn jigsaw_equals_dual_of_grid() {
        for (n, m) in [(2, 2), (2, 3), (3, 3), (3, 4)] {
            assert!(
                are_isomorphic(&jigsaw(n, m), &jigsaw_via_dual(n, m)),
                "jigsaw({n},{m}) is not the grid dual"
            );
        }
    }

    #[test]
    fn recognition() {
        assert_eq!(jigsaw_dimension(&jigsaw(3, 4)), Some((3, 4)));
        assert_eq!(jigsaw_dimension(&jigsaw(2, 2)), Some((2, 2)));
        let not_jigsaw = Hypergraph::new(3, &[vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap();
        assert_eq!(jigsaw_dimension(&not_jigsaw), None);
        // The 1×4 jigsaw is the dual of the path P4 (end edges have a
        // single vertex); a rank-2 hyperchain has *private* end vertices
        // and is therefore NOT a jigsaw.
        assert_eq!(jigsaw_dimension(&jigsaw(1, 4)), Some((1, 4)));
        let chain = cqd2_hypergraph::generators::hyperchain(4, 2);
        assert_eq!(jigsaw_dimension(&chain), None);
    }

    #[test]
    fn column_reduction_is_a_dilution() {
        for (n, m) in [(2, 3), (3, 3), (2, 4)] {
            let seq = column_reduction_sequence(n, m);
            verify_dilution(&jigsaw(n, m), &jigsaw(n, m - 1), &seq).unwrap();
        }
    }

    #[test]
    fn jigsaw_ghw_bracket() {
        // The paper's anchor: n ≤ ghw(J_{n,n}) ≤ n + 1.
        for n in 2..=3 {
            let w = ghw_exact(&jigsaw(n, n)).expect("small jigsaw");
            assert!(w >= n && w <= n + 1, "ghw(J_{n}) = {w}");
        }
        // Rectangular: ghw(J_{2,4}) ≥ 2.
        let w = ghw_exact(&jigsaw(2, 4)).unwrap();
        assert!((2..=3).contains(&w));
    }

    #[test]
    fn unique_up_to_isomorphism() {
        // Building via different vertex orders yields isomorphic results.
        let a = jigsaw(3, 2);
        let b = jigsaw_via_dual(3, 2);
        let c = jigsaw_via_dual(2, 3);
        assert!(are_isomorphic(&a, &b));
        assert!(are_isomorphic(&a, &c)); // transpose symmetry
    }
}
