//! Pre-jigsaws (Definition 5.1) and the Lemma D.4 construction.
//!
//! A hypergraph `H` is an `n × m`-pre-jigsaw when the `n × m` jigsaw `J`
//! maps into it via `π : V(J) → V(H)` and `o : E(J) → 2^{E(H)}` such that
//! (1) the `o`-images are pairwise disjoint, (2) they cover `E(H)`,
//! (3) vertices sharing a jigsaw edge `e` are joined by paths using only
//! edges of `o(e)` and no other `π`-image vertices, and (4) every vertex of
//! `H` lies in the `π`-image or on one of those fixed paths.
//!
//! Lemma D.4 builds a pre-jigsaw *dilution* from an expressive grid minor
//! of the dual; [`prejigsaw_from_expressive`] implements the dualization
//! and the final vertex-trimming dilution.

use cqd2_hypergraph::{dual, EdgeId, Hypergraph, VertexId};
use cqd2_minors::expressive::ExpressiveMinor;
use std::collections::BTreeSet;

use crate::error::JigsawError;
use crate::jigsaw::jigsaw;

/// A witness that a hypergraph is an `n × m`-pre-jigsaw.
#[derive(Debug, Clone)]
pub struct PreJigsawWitness {
    /// Jigsaw dimensions.
    pub n: usize,
    /// Jigsaw dimensions.
    pub m: usize,
    /// `π`: for each vertex of the `n × m` jigsaw, its image in `H`.
    pub pi: Vec<VertexId>,
    /// `o`: for each jigsaw edge (row-major `i * m + j`), the edge group.
    pub o: Vec<Vec<EdgeId>>,
    /// The fixed paths of property (3): for each jigsaw edge, for each
    /// unordered pair of its vertices, the vertex sequence in `H`.
    pub paths: Vec<Vec<(usize, usize, Vec<VertexId>)>>,
}

/// Reasons a pre-jigsaw witness can be invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreJigsawError {
    /// `π` is not injective or has the wrong arity.
    BadPi,
    /// The `o`-groups overlap (condition 1).
    OverlappingGroups,
    /// Some edge of `H` is in no group (condition 2).
    UncoveredEdge(u32),
    /// A fixed path is missing or violates condition 3.
    BadPath(usize, usize, usize),
    /// A vertex of `H` is outside `π` image and all paths (condition 4).
    UncoveredVertex(u32),
}

impl std::fmt::Display for PreJigsawError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PreJigsawError::BadPi => write!(f, "π is not an injective map of the jigsaw vertices"),
            PreJigsawError::OverlappingGroups => write!(f, "o-groups overlap (condition 1)"),
            PreJigsawError::UncoveredEdge(e) => {
                write!(f, "edge e{e} is in no o-group (condition 2)")
            }
            PreJigsawError::BadPath(e, u, v) => {
                write!(
                    f,
                    "missing or dirty path for pair ({u},{v}) of jigsaw edge {e} (condition 3)"
                )
            }
            PreJigsawError::UncoveredVertex(v) => {
                write!(
                    f,
                    "vertex v{v} is outside the π-image and all paths (condition 4)"
                )
            }
        }
    }
}

impl std::error::Error for PreJigsawError {}

impl PreJigsawWitness {
    /// Validate per Definition 5.1 against `h`.
    pub fn validate(&self, h: &Hypergraph) -> Result<(), PreJigsawError> {
        let j = jigsaw(self.n, self.m);
        if self.pi.len() != j.num_vertices() {
            return Err(PreJigsawError::BadPi);
        }
        let pi_set: BTreeSet<VertexId> = self.pi.iter().copied().collect();
        if pi_set.len() != self.pi.len() {
            return Err(PreJigsawError::BadPi);
        }
        // (1) disjoint groups; (2) covering E(H).
        let mut owner: Vec<Option<usize>> = vec![None; h.num_edges()];
        if self.o.len() != j.num_edges() {
            return Err(PreJigsawError::OverlappingGroups);
        }
        for (gi, group) in self.o.iter().enumerate() {
            for &e in group {
                if owner[e.idx()].is_some() {
                    return Err(PreJigsawError::OverlappingGroups);
                }
                owner[e.idx()] = Some(gi);
            }
        }
        if let Some(e) = owner.iter().position(Option::is_none) {
            return Err(PreJigsawError::UncoveredEdge(e as u32));
        }
        // (3) fixed paths inside each group, avoiding other π-images.
        let mut on_paths: BTreeSet<VertexId> = BTreeSet::new();
        if self.paths.len() != j.num_edges() {
            return Err(PreJigsawError::BadPath(0, 0, 0));
        }
        for (ei, pairs) in self.paths.iter().enumerate() {
            let group: BTreeSet<EdgeId> = self.o[ei].iter().copied().collect();
            // Every pair of jigsaw-edge vertices must have a path.
            let jverts = j.edge(cqd2_hypergraph::EdgeId(ei as u32));
            let mut required: BTreeSet<(usize, usize)> = BTreeSet::new();
            for a in 0..jverts.len() {
                for b in (a + 1)..jverts.len() {
                    required.insert((jverts[a].idx(), jverts[b].idx()));
                }
            }
            for &(u, v, ref path) in pairs {
                let key = (u.min(v), u.max(v));
                required.remove(&key);
                if !self.check_path(h, ei, u, v, path, &group, &pi_set) {
                    return Err(PreJigsawError::BadPath(ei, u, v));
                }
                for w in &path[1..path.len().saturating_sub(1)] {
                    on_paths.insert(*w);
                }
            }
            if !required.is_empty() {
                let (u, v) = required.iter().next().copied().expect("nonempty");
                return Err(PreJigsawError::BadPath(ei, u, v));
            }
        }
        // (4) every vertex covered.
        for v in h.vertices() {
            if !pi_set.contains(&v) && !on_paths.contains(&v) {
                return Err(PreJigsawError::UncoveredVertex(v.0));
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)] // the Lemma D.4 witness check naturally takes the whole context
    fn check_path(
        &self,
        h: &Hypergraph,
        _ei: usize,
        u: usize,
        v: usize,
        path: &[VertexId],
        group: &BTreeSet<EdgeId>,
        pi_set: &BTreeSet<VertexId>,
    ) -> bool {
        if path.is_empty() {
            return false;
        }
        if path[0] != self.pi[u] || *path.last().expect("nonempty") != self.pi[v] {
            return false;
        }
        // Consecutive vertices share an edge of the group; internal
        // vertices avoid the π-image.
        for w in path.windows(2) {
            let shared = h
                .incident_edges(w[0])
                .iter()
                .any(|e| group.contains(e) && h.edge_contains(*e, w[1]));
            if !shared {
                return false;
            }
        }
        for w in &path[1..path.len().saturating_sub(1)] {
            if pi_set.contains(w) {
                return false;
            }
        }
        true
    }
}

/// The identity witness: every jigsaw is a pre-jigsaw of itself.
pub fn identity_witness(n: usize, m: usize) -> PreJigsawWitness {
    let j = jigsaw(n, m);
    let pi: Vec<VertexId> = j.vertices().collect();
    let o: Vec<Vec<EdgeId>> = j.edge_ids().map(|e| vec![e]).collect();
    let paths = j
        .edge_ids()
        .map(|e| {
            let vs = j.edge(e);
            let mut pairs = Vec::new();
            for a in 0..vs.len() {
                for b in (a + 1)..vs.len() {
                    pairs.push((vs[a].idx(), vs[b].idx(), vec![vs[a], vs[b]]));
                }
            }
            pairs
        })
        .collect();
    PreJigsawWitness { n, m, pi, o, paths }
}

/// **Lemma D.4**: from an expressive minor of the `n × m` grid in `H^d`
/// (for reduced `H`), produce the sub-hypergraph of `H` induced by the
/// π-image and connecting paths — an `n × m`-pre-jigsaw that `H` dilutes
/// to — together with its witness.
///
/// `expressive.pattern_edges` must describe the `n × m` grid with
/// row-major vertex ids (as produced by
/// `cqd2_hypergraph::generators::grid_graph`).
pub fn prejigsaw_from_expressive(
    h: &Hypergraph,
    n: usize,
    m: usize,
    expressive: &ExpressiveMinor,
) -> Result<(Hypergraph, PreJigsawWitness), JigsawError> {
    let (hd, _) = dual(h);
    // Dualize: jigsaw vertices = grid edges; π(x) = the H-vertex whose
    // incidence set is the dual edge ρ(x).
    let j = jigsaw(n, m);
    // Map grid edges to jigsaw vertices: both are "adjacent cell pairs".
    // grid vertex (i,j) = cell (i,j) = jigsaw edge (i,j). The jigsaw
    // constructor creates the vertex shared by cells (i,j)-(i,j+1) and
    // (i,j)-(i+1,j) in a fixed order; rebuild that order here.
    let mut grid_edge_to_jigsaw_vertex: std::collections::BTreeMap<(u32, u32), usize> =
        std::collections::BTreeMap::new();
    {
        let mut next = 0usize;
        let cell = |i: usize, jx: usize| (i * m + jx) as u32;
        for i in 0..n {
            for jx in 0..m {
                if jx + 1 < m {
                    grid_edge_to_jigsaw_vertex.insert((cell(i, jx), cell(i, jx + 1)), next);
                    next += 1;
                }
                if i + 1 < n {
                    grid_edge_to_jigsaw_vertex.insert((cell(i, jx), cell(i + 1, jx)), next);
                    next += 1;
                }
            }
        }
    }
    let mut pi: Vec<Option<VertexId>> = vec![None; j.num_vertices()];
    for (idx, &(a, b)) in expressive.pattern_edges.iter().enumerate() {
        let key = (a.min(b), a.max(b));
        let jv = *grid_edge_to_jigsaw_vertex.get(&key).ok_or_else(|| {
            JigsawError::Construction("pattern edges do not form the expected grid".to_string())
        })?;
        // ρ maps to an edge of H^d; edges of H^d are vertex types of H.
        let rho_edge = expressive.rho[idx];
        let hv = h
            .vertices()
            .find(|&v| {
                let iv: Vec<u32> = h.incident_edges(v).iter().map(|e| e.0).collect();
                let de: Vec<u32> = hd.edge(rho_edge).iter().map(|x| x.0).collect();
                iv == de
            })
            .ok_or_else(|| {
                JigsawError::Construction(
                    "dual edge has no source vertex (H not reduced?)".to_string(),
                )
            })?;
        pi[jv] = Some(hv);
    }
    let pi: Vec<VertexId> = pi
        .into_iter()
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| JigsawError::Construction("incomplete π".to_string()))?;

    // o: jigsaw edge (cell) -> μ(cell) ⊆ V(H^d) = E(H).
    let o: Vec<Vec<EdgeId>> = expressive
        .mu
        .branch_sets
        .iter()
        .map(|bs| bs.iter().map(|&e| EdgeId(e)).collect())
        .collect();

    // Fixed paths: BFS inside each group avoiding other π-images.
    let pi_set: BTreeSet<VertexId> = pi.iter().copied().collect();
    let mut paths: Vec<Vec<(usize, usize, Vec<VertexId>)>> = Vec::with_capacity(j.num_edges());
    let mut keep: BTreeSet<VertexId> = pi_set.clone();
    for e in j.edge_ids() {
        let group: BTreeSet<EdgeId> = o[e.idx()].iter().copied().collect();
        let vs = j.edge(e);
        let mut pairs = Vec::new();
        for a in 0..vs.len() {
            for b in (a + 1)..vs.len() {
                let (u, v) = (vs[a].idx(), vs[b].idx());
                let path = bfs_in_group(h, pi[u], pi[v], &group, &pi_set).ok_or_else(|| {
                    JigsawError::Construction(format!("no clean path for pair ({u},{v})"))
                })?;
                for w in &path {
                    keep.insert(*w);
                }
                pairs.push((u, v, path));
            }
        }
        paths.push(pairs);
    }

    // Trim: delete all vertices outside keep (a dilution), keeping edges
    // restricted to the kept vertices; drop edges that became empty or
    // subsumed... For the witness we work on the induced hypergraph.
    let keep_vec: Vec<VertexId> = keep.iter().copied().collect();
    let (trimmed, trace) = h.induced(&keep_vec)?;
    // Remap the witness into the trimmed hypergraph.
    let remap_v = |v: VertexId| trace.vertex_map[v.idx()].expect("kept");
    let pi2: Vec<VertexId> = pi.iter().map(|&v| remap_v(v)).collect();
    let mut o2: Vec<Vec<EdgeId>> = vec![Vec::new(); o.len()];
    for (gi, group) in o.iter().enumerate() {
        for &e in group {
            if let Some(ne) = trace.edge_map[e.idx()] {
                if !o2[gi].contains(&ne) && !trimmed.edge(ne).is_empty() {
                    o2[gi].push(ne);
                }
            }
        }
    }
    let paths2: Vec<Vec<(usize, usize, Vec<VertexId>)>> = paths
        .iter()
        .map(|pairs| {
            pairs
                .iter()
                .map(|(u, v, p)| (*u, *v, p.iter().map(|&w| remap_v(w)).collect()))
                .collect()
        })
        .collect();
    let witness = PreJigsawWitness {
        n,
        m,
        pi: pi2,
        o: o2,
        paths: paths2,
    };
    witness.validate(&trimmed)?;
    Ok((trimmed, witness))
}

fn bfs_in_group(
    h: &Hypergraph,
    from: VertexId,
    to: VertexId,
    group: &BTreeSet<EdgeId>,
    pi_set: &BTreeSet<VertexId>,
) -> Option<Vec<VertexId>> {
    if from == to {
        return Some(vec![from]);
    }
    let mut prev: std::collections::BTreeMap<VertexId, VertexId> =
        std::collections::BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    prev.insert(from, from);
    while let Some(v) = queue.pop_front() {
        for &e in h.incident_edges(v) {
            if !group.contains(&e) {
                continue;
            }
            for &w in h.edge(e) {
                if prev.contains_key(&w) {
                    continue;
                }
                // Internal vertices must avoid the π-image.
                if w != to && pi_set.contains(&w) {
                    continue;
                }
                prev.insert(w, v);
                if w == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while cur != from {
                        cur = prev[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(w);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_hypergraph::generators::grid_graph;
    use cqd2_minors::expressive::build_expressive;
    use cqd2_minors::MinorMap;

    #[test]
    fn jigsaw_is_a_prejigsaw_of_itself() {
        let w = identity_witness(2, 3);
        w.validate(&jigsaw(2, 3)).unwrap();
        let w2 = identity_witness(3, 3);
        w2.validate(&jigsaw(3, 3)).unwrap();
    }

    #[test]
    fn validation_rejects_broken_witnesses() {
        let mut w = identity_witness(2, 2);
        let h = jigsaw(2, 2);
        // Break π injectivity.
        w.pi[1] = w.pi[0];
        assert_eq!(w.validate(&h), Err(PreJigsawError::BadPi));
        // Break coverage: drop a group's edge.
        let mut w3 = identity_witness(2, 2);
        w3.o[0].clear();
        assert!(matches!(
            w3.validate(&h),
            Err(PreJigsawError::UncoveredEdge(_))
        ));
    }

    #[test]
    fn lemma_d4_on_degree_two_grid_dual() {
        // H = J_2 (dual of 2x2 grid, reduced). H^d = 2x2 grid. The
        // identity expressive minor of the 2x2 grid in H^d dualizes to the
        // identity pre-jigsaw structure on H.
        let h = crate::jigsaw::jigsaw_via_dual(2, 2);
        let (hd, _) = dual(&h);
        // hd is the 2x2 grid as hypergraph (rank 2).
        let pattern = grid_graph(2, 2);
        assert_eq!(hd.num_vertices(), 4);
        let mu = MinorMap::identity(4);
        let expressive =
            build_expressive(&hd, &pattern, &mu, 1_000_000).expect("2-uniform: always");
        let (trimmed, witness) = prejigsaw_from_expressive(&h, 2, 2, &expressive).unwrap();
        witness.validate(&trimmed).unwrap();
        // Nothing to trim: the jigsaw IS the pre-jigsaw.
        assert_eq!(trimmed.num_vertices(), h.num_vertices());
    }

    #[test]
    fn lemma_d4_with_subdivided_dual() {
        // H = dual of the subdivided 2x2 grid: a degree-2 hypergraph whose
        // dual is the subdivided grid. The grid minor in H^d uses branch
        // sets of size 2 (vertex + subdivision); Lemma D.4 yields a
        // 2x2-pre-jigsaw.
        let g = grid_graph(2, 2);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut next = 4u32;
        for (u, v) in g.edges() {
            edges.push((u, next));
            edges.push((next, v));
            next += 1;
        }
        let sub = cqd2_hypergraph::Graph::from_edges(next as usize, &edges);
        let (d, _) = dual(&sub.to_hypergraph());
        let (h, _) = cqd2_hypergraph::reduce(&d);
        assert!(h.max_degree() <= 2);
        let (hd, _) = dual(&h);
        // Model of the 2x2 grid in hd: original vertices as roots, each
        // absorbing one subdivision vertex per... find via search.
        let pattern = grid_graph(2, 2);
        let hd_graph = cqd2_dilution::duality::dual_as_graph(&h);
        let model = cqd2_minors::finder::find_minor_capped(&pattern, &hd_graph, 2_000_000, 2)
            .model()
            .expect("grid survives subdivision");
        let mut model = model;
        model.make_onto(&hd_graph);
        let expressive =
            build_expressive(&hd, &pattern, &model, 2_000_000).expect("expressive marking exists");
        let (trimmed, witness) = prejigsaw_from_expressive(&h, 2, 2, &expressive).unwrap();
        witness.validate(&trimmed).unwrap();
    }
}
