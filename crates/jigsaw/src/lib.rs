//! Jigsaw hypergraphs and the excluded-grid analogue for degree 2
//! (Section 4 of the paper).
//!
//! - [`mod@jigsaw`]: the `n × m` jigsaw (Definition 4.2) — the hypergraph dual
//!   of the grid graph — with construction, recognition, and the
//!   jigsaw-to-smaller-jigsaw dilutions.
//! - [`prejigsaw`]: pre-jigsaws (Definition 5.1) with witness validation
//!   and the Lemma D.4 construction from expressive minors.
//! - [`extract`]: the **Theorem 4.7** pipeline — given a degree-2
//!   hypergraph with large ghw, reduce it (Lemma 3.6), find a grid minor
//!   in its dual, and produce a *verified* dilution sequence to a jigsaw
//!   via Lemma 4.4. Also generators for "decorated" degree-2 families that
//!   hide jigsaws, used by the experiments.

pub mod error;
pub mod extract;
pub mod jigsaw;
pub mod prejigsaw;

pub use error::JigsawError;
pub use extract::{extract_jigsaw, JigsawExtraction};
pub use jigsaw::{jigsaw, jigsaw_dimension};
pub use prejigsaw::PreJigsawWitness;
