//! Shared helpers for the benchmark harness. The benches themselves live
//! in `benches/`; each regenerates one table or figure of the paper (see
//! DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
//! paper-vs-measured record).

use std::time::Duration;

/// Criterion configuration tuned so the full suite finishes in minutes:
/// the benches exist to show *shape* (who wins, by what factor), not to
/// squeeze nanosecond precision.
pub fn quick_criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}
