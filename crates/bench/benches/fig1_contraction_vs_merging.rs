//! **Experiment F1 — Figure 1**: contraction (hypergraph minors,
//! Def. 3.3) vs merging (dilutions, Def. 3.1) on the figure's example:
//! contraction raises the degree, merging raises the rank, and neither
//! framework simulates the other.

use cqd2::dilution::adler::{figure1_example, AdlerOp};
use cqd2::dilution::DilutionOp;
use cqd2::hypergraph::VertexId;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let h = figure1_example();
    let (contracted, _) = AdlerOp::Contract(VertexId(0), VertexId(1))
        .apply(&h)
        .unwrap();
    let (merged, _) = DilutionOp::MergeOnVertex(VertexId(1)).apply(&h).unwrap();
    println!("\n=== F1: Figure 1 — contraction vs merging ===");
    println!(
        "H:            degree = {}, rank = {}  ({} edges)",
        h.max_degree(),
        h.rank(),
        h.num_edges()
    );
    println!(
        "contraction:  degree = {}, rank = {}  (degree increased: {})",
        contracted.max_degree(),
        contracted.rank(),
        contracted.max_degree() > h.max_degree()
    );
    println!(
        "merging:      degree = {}, rank = {}  (rank increased: {})",
        merged.max_degree(),
        merged.rank(),
        merged.rank() > h.rank()
    );
    assert!(contracted.max_degree() > h.max_degree());
    assert!(merged.rank() > h.rank());
    assert!(merged.max_degree() <= h.max_degree());

    c.bench_function("fig1/contraction", |b| {
        b.iter(|| {
            black_box(
                AdlerOp::Contract(VertexId(0), VertexId(1))
                    .apply(black_box(&h))
                    .unwrap(),
            )
        })
    });
    c.bench_function("fig1/merging", |b| {
        b.iter(|| {
            black_box(
                DilutionOp::MergeOnVertex(VertexId(1))
                    .apply(black_box(&h))
                    .unwrap(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = cqd2_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
