//! **Experiment F4 — Figure 4**: the Lemma D.2 block construction — a
//! fine grid model grouped into blocks yielding an *expressive* minor
//! (Definition D.1) with marked connector edges and clean in-block paths.

use cqd2::hypergraph::generators::grid_graph;
use cqd2::minors::expressive::{build_expressive, coarsen_grid_model};
use cqd2::minors::MinorMap;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n=== F4: Figure 4 — Lemma D.2 block coarsening ===");
    // Fine host: 6×6 grid; coarse pattern: 2×2 and 3×3 (Figure 4a shows a
    // 2×3 block structure).
    let host = grid_graph(6, 6);
    let h = host.to_hypergraph();
    let mu36 = MinorMap::identity(36);
    for n in [2usize, 3] {
        let coarse = coarsen_grid_model(&mu36, 6, 6, n, n);
        let pattern = grid_graph(n, n);
        coarse.validate(&pattern, &host).unwrap();
        let witness =
            build_expressive(&h, &pattern, &coarse, 2_000_000).expect("marking exists on grids");
        println!(
            "6×6 grid → {n}×{n} blocks: block sizes = {:?}, marked edges = {}",
            coarse.branch_sets.iter().map(Vec::len).collect::<Vec<_>>(),
            witness.rho.len()
        );
        witness.validate(&pattern, &h).unwrap();
    }
    println!("(validated per Definition D.1: disjoint images, endpoint touching, clean paths)");

    let coarse22 = coarsen_grid_model(&mu36, 6, 6, 2, 2);
    let pattern22 = grid_graph(2, 2);
    c.bench_function("fig4/coarsen_6x6_to_2x2", |b| {
        b.iter(|| black_box(coarsen_grid_model(black_box(&mu36), 6, 6, 2, 2)))
    });
    c.bench_function("fig4/build_expressive_2x2", |b| {
        b.iter(|| black_box(build_expressive(&h, &pattern22, &coarse22, 2_000_000).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = cqd2_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
