//! **Experiment E8 — the incremental update plane**, two gates:
//!
//! - **E8a, small-delta publish**: applying a dozen-fact delta to a
//!   ≥ 10⁵-row database through [`Catalog::apply_delta`] (merge only
//!   the touched relation, stitch its statistics, publish the next
//!   epoch with every untouched relation `Arc`-shared) must beat a
//!   full text reload ([`Catalog::swap_str`]: re-parse every fact,
//!   rebuild every relation, rerun the whole statistics pass) by
//!   **≥ 5×**. The delta's cost is `O(‖Δ‖ + |touched|)`, the reload's
//!   is `O(‖D‖)` — the gate pins that asymmetry down as a floor.
//! - **E8b, warm maintenance**: re-executing a prepared handle after a
//!   delta via [`PreparedQuery::rebase`] (re-materialize only the
//!   dirty bags, carry clean bags and their probe caches by `Arc`)
//!   must beat a full re-prepare (fresh bag tree for every bag) by
//!   **≥ 2×** on a long chain where the delta dirties a minority of
//!   the spine.
//!
//! Both sides of each gate are checked to agree on the data (E8a) or
//! the answer (E8b) before any timing. Headline ratios are interleaved
//! min-of-rounds so slow drift cancels.

use cqd2::cq::generate::canonical_query;
use cqd2::cq::{Database, DatabaseDelta};
use cqd2::engine::textio::{parse_database, render_database};
use cqd2::engine::{Catalog, Engine, MaintenanceClass, Workload};
use cqd2::hypergraph::generators::hyperchain;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

const ROUNDS: usize = 10;
/// 8 chain relations × 20k rows = 160k facts (the ≥ 1e5 floor). The
/// chain is long so E8b's delta dirties a small minority of the bag
/// spine — the regime the warm-maintenance gate is about.
const RELATIONS: usize = 8;
const ROWS_PER_RELATION: usize = 20_000;
const DOMAIN: u64 = 30_000;

/// xorshift64* — deterministic fixture data without a rand dependency.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(2685821657736338717)
}

/// The fixture: the 8-edge binary hyperchain's canonical relations
/// R0..R7, each 20k sorted-distinct random pairs.
fn fixture() -> Database {
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut db = Database::new();
    for r in 0..RELATIONS {
        let mut tuples: Vec<Vec<u64>> = (0..ROWS_PER_RELATION)
            .map(|_| (0..2).map(|_| xorshift(&mut state) % DOMAIN).collect())
            .collect();
        tuples.sort_unstable();
        tuples.dedup();
        db.insert_sorted_relation(&format!("R{r}"), 2, tuples)
            .expect("fresh relation");
    }
    assert!(db.size() >= 100_000, "fixture must have >= 1e5 rows");
    db
}

/// A dozen-fact delta on the chain's last relation (fresh inserts above
/// the domain, deletes of existing tuples) and its exact inverse, for
/// drift-free rounds.
fn delta_and_inverse(db: &Database) -> (DatabaseDelta, DatabaseDelta) {
    let last = format!("R{}", RELATIONS - 1);
    let existing = &db.relation(&last).expect("fixture has the last relation").tuples;
    let mut delta = DatabaseDelta::new();
    let mut inverse = DatabaseDelta::new();
    for i in 0..8u64 {
        let fresh = vec![1_000_000 + i, 2_000_000 + i];
        delta.insert(&last, fresh.clone());
        inverse.delete(&last, fresh);
    }
    for tuple in existing.iter().take(4) {
        delta.delete(&last, tuple.clone());
        inverse.insert(&last, tuple.clone());
    }
    (delta, inverse)
}

fn gate_line(name: &str, ratio: f64, floor: f64) {
    println!("GATE {name} ratio={ratio:.3} floor={floor} cmp=ge status=PASS");
}

fn bench(c: &mut Criterion) {
    println!("\n=== E8: incremental update plane — delta publish + warm maintenance ===");
    let db = fixture();
    let total_rows = db.size();
    let (delta, inverse) = delta_and_inverse(&db);

    // -------- E8a: small-delta publish vs text full reload ----------
    let catalog = Catalog::new();
    catalog.publish("live", db.clone()).expect("publish fixture");

    // Correctness first: the delta'd snapshot must equal the database
    // the text route rebuilds from scratch, statistics included, with
    // every untouched relation carried as the same Arc.
    let out = catalog.apply_delta("live", &delta).expect("delta applies");
    assert_eq!(out.touched, vec![format!("R{}", RELATIONS - 1)]);
    let text_after = render_database(out.snapshot.db());
    let reparsed = parse_database(&text_after).expect("render round-trips");
    assert_eq!(out.snapshot.db(), &reparsed, "routes must agree on the data");
    assert_eq!(
        out.snapshot.stats(),
        &reparsed.stats(),
        "stitched stats must match a full pass"
    );
    for r in 0..RELATIONS - 1 {
        let name = format!("R{r}");
        assert!(
            std::sync::Arc::ptr_eq(
                out.previous.db().relation_arc(&name).unwrap(),
                out.snapshot.db().relation_arc(&name).unwrap(),
            ),
            "untouched {name} must be Arc-shared across the delta"
        );
    }
    catalog.apply_delta("live", &inverse).expect("restore fixture");
    println!(
        "  fixture: {total_rows} rows in {RELATIONS} relations, delta = 8 inserts + 4 deletes \
         ({} text bytes to reload)",
        text_after.len()
    );

    let mut delta_best = Duration::MAX;
    let mut reload_best = Duration::MAX;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        black_box(catalog.apply_delta("live", &delta).expect("delta applies"));
        delta_best = delta_best.min(t.elapsed());
        catalog.apply_delta("live", &inverse).expect("restore");

        let t = Instant::now();
        black_box(catalog.swap_str("live", &text_after).expect("text reload"));
        reload_best = reload_best.min(t.elapsed());
        catalog.swap("live", db.clone()).expect("restore");
    }
    let publish_speedup = reload_best.as_secs_f64() / delta_best.as_secs_f64().max(1e-12);
    println!(
        "  delta publish (best of {ROUNDS}):   {delta_best:?}\n  \
         text full reload (best of {ROUNDS}): {reload_best:?}\n  \
         reload / delta: {publish_speedup:.1}×"
    );
    assert!(
        publish_speedup >= 5.0,
        "small-delta publish must be >= 5x faster than a text full reload \
         (got {publish_speedup:.2}x: {delta_best:?} vs {reload_best:?})"
    );
    gate_line("engine_delta/publish", publish_speedup, 5.0);

    // -------- E8b: warm rebase vs full re-prepare -------------------
    let q = canonical_query(&hyperchain(RELATIONS, 2));
    let engine = Engine::default();
    let prepared = engine
        .session_in(&catalog, "live")
        .expect("live is published")
        .prepare(&q)
        .expect("chain plans");
    let out = catalog.apply_delta("live", &delta).expect("delta applies");

    // Correctness gate: the warm-rebased handle answers exactly like a
    // fresh prepare on the post-delta snapshot, and says it crossed the
    // epoch warm.
    let (warm, pass) = prepared
        .rebase(&out.snapshot, &out.touched)
        .expect("GHD handle rebases warm");
    assert_eq!(warm.maintenance(), Some(MaintenanceClass::WarmOverlay));
    assert!(
        pass.rewritten >= 1 && pass.rewritten < pass.total,
        "delta must dirty a strict minority of the spine \
         (rewrote {} of {} bags)",
        pass.rewritten,
        pass.total
    );
    let reprepared = engine
        .session_in(&catalog, "live")
        .expect("live is published")
        .prepare(&q)
        .expect("chain plans");
    let expected = reprepared.run(Workload::Count).answer.as_count();
    assert_eq!(warm.run(Workload::Count).answer.as_count(), expected);
    println!(
        "  warm rebase rewrote {} of {} bags; count = {:?}",
        pass.rewritten, pass.total, expected
    );

    // Timed comparison: end-to-end from "a delta just published" to "a
    // warm handle served an answer at the new epoch". The served
    // workload is Boolean — cheap relative to the maintenance work, so
    // the ratio measures the maintenance (rebase vs re-materialize
    // every bag), which is what the update plane changes; the count
    // equality above already proved the rebased handle's answers.
    let mut warm_best = Duration::MAX;
    let mut reprepare_best = Duration::MAX;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        let (warm, _) = prepared
            .rebase(&out.snapshot, &out.touched)
            .expect("rebases warm");
        assert_eq!(warm.run(Workload::Boolean).answer.as_bool(), Some(true));
        warm_best = warm_best.min(t.elapsed());
        black_box(warm);

        let t = Instant::now();
        let fresh = engine
            .session_in(&catalog, "live")
            .expect("live is published")
            .prepare(&q)
            .expect("chain plans");
        assert_eq!(fresh.run(Workload::Boolean).answer.as_bool(), Some(true));
        reprepare_best = reprepare_best.min(t.elapsed());
        black_box(fresh);
    }
    let warm_speedup = reprepare_best.as_secs_f64() / warm_best.as_secs_f64().max(1e-12);
    println!(
        "  warm rebase + run (best of {ROUNDS}): {warm_best:?}\n  \
         re-prepare + run  (best of {ROUNDS}): {reprepare_best:?}\n  \
         re-prepare / warm: {warm_speedup:.1}×"
    );
    assert!(
        warm_speedup >= 2.0,
        "warm prepared re-execution after a delta must be >= 2x over a \
         full re-prepare (got {warm_speedup:.2}x: {warm_best:?} vs {reprepare_best:?})"
    );
    gate_line("engine_delta/warm_maintenance", warm_speedup, 2.0);

    // Criterion group: the same four routes under its sampler.
    let mut g = c.benchmark_group("engine_delta");
    g.sample_size(10);
    g.bench_function("publish/delta", |b| {
        b.iter(|| {
            black_box(catalog.apply_delta("live", &delta).expect("applies"));
            catalog.apply_delta("live", &inverse).expect("restore");
        });
    });
    g.bench_function("publish/text_reload", |b| {
        b.iter(|| black_box(catalog.swap_str("live", &text_after).expect("reload")));
    });
    catalog.swap("live", db.clone()).expect("restore");
    let out = catalog.apply_delta("live", &delta).expect("applies");
    g.bench_function("maintenance/warm_rebase", |b| {
        b.iter(|| black_box(prepared.rebase(&out.snapshot, &out.touched).expect("warm")));
    });
    g.bench_function("maintenance/re_prepare", |b| {
        b.iter(|| {
            black_box(
                engine
                    .session_in(&catalog, "live")
                    .expect("published")
                    .prepare(&q)
                    .expect("plans"),
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
