//! **Experiment F3 — Figure 3**: the jigsaw family (Definition 4.2),
//! including the 3×4 jigsaw of the figure. Prints the structural series
//! (counts and certified ghw brackets — `ghw(J_{n,n}) ∈ [n, n+1]`) and
//! benches construction, recognition, and exact ghw.

use cqd2::decomp::widths::ghw_exact;
use cqd2::hyperbench::recognize::recognize_jigsaw;
use cqd2::jigsaw::jigsaw;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n=== F3: Figure 3 — the jigsaw family ===");
    let j34 = jigsaw(3, 4);
    println!(
        "3×4 jigsaw (the figure): |E| = {}, |V| = {}, degree = {}",
        j34.num_edges(),
        j34.num_vertices(),
        j34.max_degree()
    );
    println!("  n | edges | vertices | ghw bracket");
    for n in 1..=6 {
        if n == 1 {
            println!("  1 |     2 |        1 | [1, 1] (1×2 jigsaw)");
            continue;
        }
        let j = jigsaw(n, n);
        let bracket = if n <= 3 {
            let w = ghw_exact(&j).expect("small");
            format!("[{w}, {w}] (exact)")
        } else {
            format!("[{n}, {}] (separator lb / Lemma 4.6 ub)", n + 1)
        };
        println!(
            "  {n} | {:>5} | {:>8} | {bracket}",
            j.num_edges(),
            j.num_vertices()
        );
    }

    let mut g = c.benchmark_group("fig3");
    for n in [3usize, 6, 10] {
        g.bench_with_input(BenchmarkId::new("construct", n), &n, |b, &n| {
            b.iter(|| black_box(jigsaw(n, n)))
        });
        let j = jigsaw(n, n);
        g.bench_with_input(BenchmarkId::new("recognize", n), &j, |b, j| {
            b.iter(|| black_box(recognize_jigsaw(black_box(j))))
        });
    }
    let j3 = jigsaw(3, 3);
    g.bench_function("ghw_exact_J3", |b| {
        b.iter(|| black_box(ghw_exact(black_box(&j3))))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = cqd2_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
