//! **Experiment V3 — Prop. 4.14 / Theorem 4.16**: #CQ for full degree-2
//! CQs — junction-tree counting DP vs naive enumeration. The DP's cost is
//! polynomial in `‖D‖` for bounded ghw; enumeration pays for every answer.

use cqd2::cq::eval::{count_naive, count_via_ghd};
use cqd2::cq::generate::{canonical_query, planted_database};
use cqd2::decomp::widths::ghw_decomposition;
use cqd2::hypergraph::generators::hypercycle;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n=== V3: #CQ counting — DP vs enumeration on degree-2 cycles ===");
    let mut g = c.benchmark_group("counting");
    println!("  cycle len | answers | ghw");
    for k in [4usize, 6, 8] {
        let h = hypercycle(k, 2);
        let q = canonical_query(&h);
        let db = planted_database(&q, 8, 80, k as u64);
        let ghd = ghw_decomposition(&h).expect("small");
        let naive = count_naive(&q, &db);
        let via = count_via_ghd(&q, &db, &ghd).unwrap();
        assert_eq!(naive, via);
        println!("  {k:>9} | {naive:>7} | {}", ghd.width());
        g.bench_with_input(BenchmarkId::new("naive", k), &db, |b, db| {
            b.iter(|| black_box(count_naive(black_box(&q), black_box(db))))
        });
        g.bench_with_input(BenchmarkId::new("ghd_dp", k), &db, |b, db| {
            b.iter(|| black_box(count_via_ghd(black_box(&q), black_box(db), &ghd).unwrap()))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = cqd2_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
