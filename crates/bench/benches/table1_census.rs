//! **Experiment T1 — Table 1**: the degree-2 ghw census over the
//! HyperBench-like corpus. Prints the regenerated table next to the
//! paper's numbers and benches the census itself.

use cqd2::hyperbench::census::census;
use cqd2::hyperbench::corpus::generate_corpus;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let corpus = generate_corpus();
    let report = census(&corpus);
    println!("\n=== T1: Table 1 — degree-2 hypergraphs with ghw > k ===");
    println!("{}", report.render());
    println!("paper:  k=1: 649, k=2: 575, k=3: 506, k=4: 452, k=5: 389");
    let paper = [649, 575, 506, 452, 389];
    for (row, want) in report.rows.iter().zip(paper) {
        assert_eq!(row.amount, want, "Table 1 row k={} diverged", row.k);
    }

    // Bench the census classifier on the degree-2 slice.
    let degree2: Vec<_> = corpus
        .iter()
        .filter(|e| e.hypergraph.max_degree() <= 2)
        .cloned()
        .collect();
    c.bench_function("table1/census_degree2_slice", |b| {
        b.iter(|| black_box(census(black_box(&degree2))))
    });
    // And corpus generation.
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("generate_corpus", |b| {
        b.iter(|| black_box(generate_corpus()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = cqd2_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
