//! **Experiment V1 — Theorems 3.4 / 4.15**: the fpt-reduction along
//! dilution sequences. Measures the database blowup per step (the proof
//! bounds it by `c · degree(H)` per operation) and benches the reduction.

use cqd2::cq::generate::planted_database;
use cqd2::cq::Database;
use cqd2::dilution::decide::decide_dilution_to_graph_dual;
use cqd2::hypergraph::generators::grid_graph;
use cqd2::jigsaw::jigsaw;
use cqd2::reduction::reverse::max_step_growth;
use cqd2::reduction::{reduce_along, Instance};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n=== V1: reduction blowup along dilution sequences ===");
    println!("  host    | ops ℓ | ‖D_q‖ | ‖D_p‖ | total × | max step × | deg(H)");
    let mut cases = Vec::new();
    for (n, m, tn, tm) in [(3usize, 3usize, 2usize, 2usize), (3, 4, 2, 2), (4, 4, 3, 3)] {
        let host = jigsaw(n, m);
        let seq = decide_dilution_to_graph_dual(&host, &grid_graph(tn, tm), 5_000_000)
            .expect("degree-2 host")
            .sequence()
            .expect("smaller jigsaw is a dilution");
        let target = seq.apply(&host).unwrap();
        let proto = Instance::canonical(&target, Database::new(), "Q");
        let db = planted_database(&proto.query, 8, 40, 7);
        let instance = Instance::canonical(&target, db, "Q");
        let report = reduce_along(&host, &seq, &instance).unwrap();
        let dq = report.step_weights[0] as f64;
        let dp = *report.step_weights.last().unwrap() as f64;
        println!(
            "  J({n},{m})  | {:>5} | {:>5} | {:>5} | {:>7.2} | {:>10.2} | {}",
            seq.len(),
            dq,
            dp,
            dp / dq,
            max_step_growth(&report),
            host.max_degree()
        );
        cases.push((host, seq, instance));
    }
    println!("paper bound: ‖D_p‖ ≤ (c·degree(H))^ℓ · ‖D_q‖ with degree(H) = 2");

    let mut g = c.benchmark_group("reduction");
    for (i, (host, seq, instance)) in cases.iter().enumerate() {
        g.bench_with_input(BenchmarkId::new("reduce_along", i), &i, |b, _| {
            b.iter(|| black_box(reduce_along(host, seq, instance).unwrap()))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = cqd2_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
