//! **Experiment E7 — cold start from a `.cqds` snapshot**: publishing a
//! database from a binary snapshot (one read, checksum-verified decode,
//! persisted statistics — `cqd2::engine::store`, layout in
//! `docs/SNAPSHOT.md`) must beat the text path (parse the facts file,
//! rebuild the relations, rerun the statistics pass) by **≥ 2×** on a
//! ≥ 10⁵-row database. That is the acceptance bound the store was built
//! against: startup cost proportional to reading the file, not to
//! re-deriving what the writer already knew.
//!
//! Both sides run end-to-end through the catalog publish the server
//! performs at startup — file bytes → published, stats-ready snapshot —
//! and both are checked to publish the *same* database before any
//! timing. The headline ratio is min-of-rounds on both sides,
//! interleaved so slow drift cancels.

use cqd2::cq::Database;
use cqd2::engine::textio::{parse_database, render_database};
use cqd2::engine::{store, Catalog};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

const ROUNDS: usize = 10;
/// ≥ 10⁵ rows across the fixture's relations (the acceptance floor).
const ROWS_PER_RELATION: usize = 35_000;
const RELATIONS: usize = 3;

/// xorshift64* — deterministic fixture data without a rand dependency.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(2685821657736338717)
}

/// Build the fixture database: 3 relations × 35k rows of arity 3 —
/// 105k tuples, bulk-loaded in sorted order so setup is O(n log n).
fn fixture() -> Database {
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut db = Database::new();
    for r in 0..RELATIONS {
        let mut tuples: Vec<Vec<u64>> = (0..ROWS_PER_RELATION)
            .map(|_| (0..3).map(|_| xorshift(&mut state) % 50_000).collect())
            .collect();
        tuples.sort_unstable();
        tuples.dedup();
        db.insert_sorted_relation(&format!("R{r}"), 3, tuples)
            .expect("fresh relation");
    }
    assert!(db.size() >= 100_000, "fixture must have >= 1e5 rows");
    db
}

fn bench(c: &mut Criterion) {
    println!("\n=== E7: snapshot cold start vs text re-parse + re-stats ===");
    let db = fixture();
    let total_rows = db.size();

    // Persist both representations to real files: the comparison is
    // file-on-disk to published-database, the server's startup path.
    let dir = std::env::temp_dir();
    let snap_path = dir.join(format!("cqd2-bench-snapshot-{}.cqds", std::process::id()));
    let text_path = dir.join(format!("cqd2-bench-snapshot-{}.txt", std::process::id()));
    let snap_bytes = store::write_snapshot(snap_path.to_str().expect("utf-8 path"), &db)
        .expect("write snapshot");
    let text = render_database(&db);
    std::fs::write(&text_path, &text).expect("write text");
    println!(
        "  fixture: {total_rows} rows in {RELATIONS} relations \
         ({snap_bytes} snapshot bytes, {} text bytes)",
        text.len()
    );

    // Correctness first: both cold-start routes publish the same
    // database with the same statistics.
    let from_snap =
        store::read_snapshot(snap_path.to_str().expect("utf-8 path")).expect("read snapshot");
    let from_text = parse_database(&std::fs::read_to_string(&text_path).expect("read text"))
        .expect("parse text");
    assert_eq!(from_snap.db, from_text, "routes must agree on the data");
    assert_eq!(
        from_snap.stats,
        from_text.stats(),
        "persisted stats must match"
    );

    // Interleaved min-of-rounds over the full cold-start sequence:
    // read the file, build the database, end with a stats-ready
    // published catalog entry.
    let mut snap_best = Duration::MAX;
    let mut text_best = Duration::MAX;
    for round in 0..ROUNDS {
        let t = Instant::now();
        let catalog = Catalog::new();
        let bytes = std::fs::read(&snap_path).expect("read snapshot file");
        let file = store::decode_snapshot(&bytes).expect("decode");
        let snapshot = catalog
            .publish_with_stats("cold", file.db, file.stats)
            .expect("publish from snapshot");
        assert_eq!(snapshot.db().size(), total_rows);
        snap_best = snap_best.min(t.elapsed());
        black_box(catalog);

        let t = Instant::now();
        let catalog = Catalog::new();
        let text = std::fs::read_to_string(&text_path).expect("read text file");
        let snapshot = catalog
            .publish_str("cold", &text)
            .expect("publish from text");
        assert_eq!(snapshot.db().size(), total_rows);
        text_best = text_best.min(t.elapsed());
        black_box(catalog);
        black_box(round);
    }
    let speedup = text_best.as_secs_f64() / snap_best.as_secs_f64().max(1e-12);
    println!(
        "  snapshot cold start (best of {ROUNDS}): {snap_best:?}\n  \
         text cold start     (best of {ROUNDS}): {text_best:?}\n  \
         text / snapshot: {speedup:.2}×"
    );
    assert!(
        speedup >= 2.0,
        "snapshot load must be >= 2x faster than text re-parse + re-stats \
         (got {speedup:.2}x: {snap_best:?} vs {text_best:?})"
    );
    println!("GATE engine_snapshot/cold_start ratio={speedup:.3} floor=2.0 cmp=ge status=PASS");

    // Criterion group: the two cold-start routes, file to published.
    let mut g = c.benchmark_group("engine_snapshot");
    g.sample_size(10);
    g.bench_function("cold_start/snapshot", |b| {
        b.iter(|| {
            let catalog = Catalog::new();
            let bytes = std::fs::read(&snap_path).expect("read");
            let file = store::decode_snapshot(&bytes).expect("decode");
            black_box(
                catalog
                    .publish_with_stats("cold", file.db, file.stats)
                    .expect("publish"),
            );
        });
    });
    g.bench_function("cold_start/text", |b| {
        b.iter(|| {
            let catalog = Catalog::new();
            let text = std::fs::read_to_string(&text_path).expect("read");
            black_box(catalog.publish_str("cold", &text).expect("publish"));
        });
    });
    g.finish();

    std::fs::remove_file(&snap_path).ok();
    std::fs::remove_file(&text_path).ok();
}

criterion_group!(benches, bench);
criterion_main!(benches);
