//! **Experiment V5 — Lemma 4.6**: the dual-treewidth route to GHDs.
//! Compares the exact ghw solver against the constructive
//! `tw(H^d) + 1` upper bound — the gap is at most 1 on reduced degree-2
//! instances, at a fraction of the cost.

use cqd2::decomp::dual_bound::ghd_via_dual;
use cqd2::decomp::widths::{ghw_exact, ghw_upper_bound};
use cqd2::hypergraph::generators::random_degree_bounded;
use cqd2::hypergraph::reduce;
use cqd2::jigsaw::jigsaw;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n=== V5: exact ghw vs the Lemma 4.6 dual bound ===");
    println!("  instance | exact ghw | dual-route width | gap");
    let mut samples = Vec::new();
    for seed in 0..4u64 {
        let h = random_degree_bounded(7, 3, 2, 0.65, seed);
        let (h, _) = reduce::reduce(&h);
        if h.num_edges() == 0 {
            continue;
        }
        samples.push((format!("rand-{seed}"), h));
    }
    samples.push(("J(3,3)".into(), jigsaw(3, 3)));
    for (name, h) in &samples {
        let exact = ghw_exact(h);
        let via_dual = ghd_via_dual(h).width();
        let gap = exact.map(|e| via_dual as i64 - e as i64);
        println!(
            "  {name:>8} | {:>9} | {via_dual:>16} | {:?}",
            exact.map_or("-".into(), |e| e.to_string()),
            gap
        );
        if let Some(g) = gap {
            assert!((0..=1).contains(&g), "Lemma 4.6 gap must be in [0, 1]");
        }
    }

    let mut g = c.benchmark_group("ghw");
    for (name, h) in &samples {
        g.bench_with_input(BenchmarkId::new("exact", name), h, |b, h| {
            b.iter(|| black_box(ghw_exact(black_box(h))))
        });
        g.bench_with_input(BenchmarkId::new("dual_route", name), h, |b, h| {
            b.iter(|| black_box(ghd_via_dual(black_box(h)).width()))
        });
        g.bench_with_input(BenchmarkId::new("heuristic_ub", name), h, |b, h| {
            b.iter(|| black_box(ghw_upper_bound(black_box(h))))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = cqd2_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
