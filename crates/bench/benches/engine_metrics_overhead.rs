//! **Observability overhead gate**: re-executing a warm
//! [`PreparedQuery`] with the serving path's full per-query
//! instrumentation — a [`QueryTrace`] span recorder plus a latency
//! [`Histogram`] record — must stay within 5% of the bare
//! [`PreparedQuery::run`] hot path.
//!
//! The fixture is the prepared-query bench's rank-3 hypercycle on 16
//! vertices: the warm re-execution is microseconds-scale, which is the
//! *worst* case for instrumentation overhead (any fixed cost is the
//! largest fraction of total time). The headline ratio is measured
//! outside the criterion sampling loop, min-of-passes on both sides to
//! shed scheduler noise, and gated with an assert.

use cqd2::cq::generate::{canonical_query, planted_database};
use cqd2::engine::{Engine, EngineConfig, Histogram, QueryTrace, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn bench(c: &mut Criterion) {
    println!("\n=== observability: instrumented vs bare warm re-execution ===");
    let q = canonical_query(&cqd2::hypergraph::generators::hypercycle(8, 3));
    let db = planted_database(&q, 6, 10, 17);
    let batch = 500usize;
    let passes = 7usize;

    let engine = Engine::new(EngineConfig::default());
    let session = engine.session(&db);
    let prepared = session.prepare(&q).expect("planning cannot fail");
    let expected = prepared.run(Workload::Boolean).answer.as_bool();
    assert_eq!(expected, Some(true), "planted instance must be satisfiable");
    let histogram = Histogram::new();

    // Min-of-passes, interleaved: each pass times one bare batch and
    // one instrumented batch back to back so both sides see the same
    // machine conditions; the minimum is the least-disturbed pass.
    let mut bare_best = Duration::MAX;
    let mut traced_best = Duration::MAX;
    for _ in 0..passes {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(prepared.run(Workload::Boolean));
        }
        bare_best = bare_best.min(t.elapsed());

        let t = Instant::now();
        for _ in 0..batch {
            let started = Instant::now();
            let mut trace = QueryTrace::new();
            black_box(prepared.run_traced(Workload::Boolean, &mut trace));
            black_box(&trace);
            histogram.record_duration(started.elapsed());
        }
        traced_best = traced_best.min(t.elapsed());
    }
    let ratio = traced_best.as_secs_f64() / bare_best.as_secs_f64().max(1e-12);
    println!(
        "  bare       ({batch} × run):        {bare_best:?}\n  \
         instrumented ({batch} × run_traced + histogram): {traced_best:?}\n  \
         overhead: {:.2}%",
        (ratio - 1.0) * 100.0
    );
    let snap = histogram.snapshot();
    assert_eq!(
        snap.count(),
        (batch * passes) as u64,
        "histogram must have recorded every instrumented run"
    );
    assert!(
        ratio <= 1.05,
        "per-query instrumentation must stay within 5% of the bare warm path \
         (got {:.2}%: {traced_best:?} vs {bare_best:?})",
        (ratio - 1.0) * 100.0
    );
    println!(
        "GATE engine_metrics_overhead/instrumentation ratio={ratio:.3} floor=1.05 cmp=le status=PASS"
    );

    let mut g = c.benchmark_group("engine_metrics_overhead");
    g.bench_function("bare/prepared_run", |b| {
        b.iter(|| black_box(prepared.run(Workload::Boolean)));
    });
    g.bench_function("instrumented/run_traced_plus_histogram", |b| {
        b.iter(|| {
            let started = Instant::now();
            let mut trace = QueryTrace::new();
            black_box(prepared.run_traced(Workload::Boolean, &mut trace));
            black_box(&trace);
            histogram.record_duration(started.elapsed());
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
