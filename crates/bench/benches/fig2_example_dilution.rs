//! **Experiment F2 — Figure 2**: the example dilution of a degree-2
//! hypergraph to the 3×2 jigsaw — mergings followed by vertex deletions,
//! exactly the figure's two phases. Prints the sequence and benches the
//! extraction pipeline.

use cqd2::dilution::decide::{decide_dilution_to_graph_dual, verify_dilution};
use cqd2::dilution::DilutionOp;
use cqd2::hypergraph::generators::grid_graph;
use cqd2::jigsaw::extract::figure2_hypergraph;
use cqd2::jigsaw::jigsaw;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let h = figure2_hypergraph();
    let seq = decide_dilution_to_graph_dual(&h, &grid_graph(3, 2), 3_000_000)
        .expect("degree-2 host")
        .sequence()
        .expect("Figure 2's jigsaw is a dilution");
    verify_dilution(&h, &jigsaw(3, 2), &seq).unwrap();
    let merges = seq
        .ops
        .iter()
        .filter(|op| matches!(op, DilutionOp::MergeOnVertex(_)))
        .count();
    let deletions = seq.len() - merges;
    println!("\n=== F2: Figure 2 — example dilution to the 3×2 jigsaw ===");
    println!(
        "host: |V| = {}, |E| = {}, degree = {}",
        h.num_vertices(),
        h.num_edges(),
        h.max_degree()
    );
    println!(
        "sequence: {} operations ({merges} mergings, {deletions} vertex/subedge deletions)",
        seq.len()
    );
    println!("paper figure: 3 mergings, then vertex deletions — same two-phase shape");

    c.bench_function("fig2/find_and_verify_dilution", |b| {
        b.iter(|| {
            let s = decide_dilution_to_graph_dual(black_box(&h), &grid_graph(3, 2), 3_000_000)
                .unwrap()
                .sequence()
                .unwrap();
            black_box(s)
        })
    });
}

criterion_group! {
    name = benches;
    config = cqd2_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
