//! **Relation-operator micro-benchmarks**: the columnar [`FlatRelation`]
//! kernel against the reference row store [`VRelation`] on join,
//! semijoin, and construct+dedup — the three operators every evaluation
//! path in the repo bottoms out in.
//!
//! The headline numbers are measured outside the criterion sampling loop
//! (best of three single passes each way) and gated: the columnar join
//! must be at least 2× faster than the row-store baseline, and both
//! implementations must produce identical tuple sets.

use cqd2::cq::{FlatRelation, VRelation, Var};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Deterministic pseudo-random tuples (xorshift64*; the bench crate has
/// no rand dependency).
fn make_tuples(n: usize, arity: usize, domain: u64, seed: u64) -> Vec<Vec<u64>> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    (0..n)
        .map(|_| (0..arity).map(|_| next() % domain).collect())
        .collect()
}

fn best_of<R>(runs: usize, mut f: impl FnMut() -> R) -> Duration {
    (0..runs)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed()
        })
        .min()
        .expect("at least one run")
}

fn sorted(mut tuples: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
    tuples.sort_unstable();
    tuples
}

fn bench(c: &mut Criterion) {
    println!("\n=== relation ops: columnar kernel vs row store ===");
    // R(x, y): 80k rows; S(y, z): 40k rows; y-domain 20k, so a probe
    // finds ~2 matches and the join output is ~160k rows.
    let r_tuples = make_tuples(80_000, 2, 20_000, 7);
    let s_tuples = make_tuples(40_000, 2, 20_000, 8);
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let mut vr = VRelation {
        vars: vec![x, y],
        tuples: r_tuples.clone(),
    };
    vr.dedup();
    let mut vs = VRelation {
        vars: vec![y, z],
        tuples: s_tuples.clone(),
    };
    vs.dedup();
    let fr = FlatRelation::from_rows(vec![x, y], &r_tuples);
    let fs = FlatRelation::from_rows(vec![y, z], &s_tuples);

    // Correctness gate: identical tuple sets on every measured operator.
    assert_eq!(
        sorted(fr.join(&fs).to_tuples()),
        sorted(vr.join(&vs).tuples.clone()),
        "join diverged"
    );
    assert_eq!(
        sorted(fr.semijoin(&fs).to_tuples()),
        sorted(vr.semijoin(&vs).tuples.clone()),
        "semijoin diverged"
    );

    // The chunked mask-based filter must keep exactly the reference
    // semijoin's rows (same order: both preserve self's row order).
    let filtered = fr
        .semijoin_filter(&fs)
        .expect("the random fixture drops some rows");
    assert_eq!(
        filtered,
        fr.semijoin_reference(&fs),
        "chunked filter diverged"
    );

    let old_join = best_of(3, || vr.join(&vs));
    let new_join = best_of(3, || fr.join(&fs));
    let old_semi = best_of(3, || vr.semijoin(&vs));
    let new_semi = best_of(3, || fr.semijoin(&fs));
    let ref_filter = best_of(3, || fr.semijoin_reference(&fs));
    let chunked_filter = best_of(3, || fr.semijoin_filter(&fs));
    // Construct + sort-dedup from raw (duplicate-carrying) tuples: the
    // row store clones one Vec per tuple, the kernel packs one buffer.
    let dup_tuples = make_tuples(120_000, 2, 300, 9);
    let old_dedup = best_of(3, || {
        let mut rel = VRelation {
            vars: vec![x, y],
            tuples: dup_tuples.clone(),
        };
        rel.dedup();
        rel
    });
    let new_dedup = best_of(3, || FlatRelation::from_rows(vec![x, y], &dup_tuples));

    let ratio = |old: Duration, new: Duration| old.as_secs_f64() / new.as_secs_f64().max(1e-9);
    println!(
        "  join     80k ⋈ 40k : row-store {old_join:?}  columnar {new_join:?}  ({:.1}×)",
        ratio(old_join, new_join)
    );
    println!(
        "  semijoin 80k ⋉ 40k : row-store {old_semi:?}  columnar {new_semi:?}  ({:.1}×)",
        ratio(old_semi, new_semi)
    );
    println!(
        "  dedup    120k rows : row-store {old_dedup:?}  columnar {new_dedup:?}  ({:.1}×)",
        ratio(old_dedup, new_dedup)
    );
    println!(
        "  filter   80k ⋉ 40k : reference {ref_filter:?}  chunked  {chunked_filter:?}  ({:.1}×)",
        ratio(ref_filter, chunked_filter)
    );
    assert!(
        new_join * 2 <= old_join,
        "columnar join ({new_join:?}) must be ≥ 2× faster than the row store ({old_join:?})"
    );
    // The chunked gather/hash/mask path vs the HashSet reference on the
    // same columnar inputs: the floor is deliberately below the typical
    // ~2× so scheduling noise cannot flake CI, while still catching a
    // real regression to scalar per-row probing.
    assert!(
        chunked_filter.as_secs_f64() * 1.3 <= ref_filter.as_secs_f64(),
        "chunked semijoin filter ({chunked_filter:?}) must be ≥ 1.3× over the \
         HashSet reference ({ref_filter:?})"
    );
    println!(
        "GATE relation_ops/columnar_join ratio={:.3} floor=2.0 cmp=ge status=PASS",
        ratio(old_join, new_join)
    );
    println!(
        "GATE relation_ops/chunked_filter ratio={:.3} floor=1.3 cmp=ge status=PASS",
        ratio(ref_filter, chunked_filter)
    );

    let mut g = c.benchmark_group("relation_ops");
    g.bench_function("join/row_store_80k_40k", |b| {
        b.iter(|| black_box(black_box(&vr).join(black_box(&vs))))
    });
    g.bench_function("join/columnar_80k_40k", |b| {
        b.iter(|| black_box(black_box(&fr).join(black_box(&fs))))
    });
    g.bench_function("semijoin/row_store_80k_40k", |b| {
        b.iter(|| black_box(black_box(&vr).semijoin(black_box(&vs))))
    });
    g.bench_function("semijoin/columnar_80k_40k", |b| {
        b.iter(|| black_box(black_box(&fr).semijoin(black_box(&fs))))
    });
    g.bench_function("dedup/row_store_120k", |b| {
        b.iter(|| {
            let mut rel = VRelation {
                vars: vec![x, y],
                tuples: dup_tuples.clone(),
            };
            rel.dedup();
            black_box(rel)
        })
    });
    g.bench_function("dedup/columnar_120k", |b| {
        b.iter(|| black_box(FlatRelation::from_rows(vec![x, y], &dup_tuples)))
    });
    g.bench_function("filter/reference_80k_40k", |b| {
        b.iter(|| black_box(black_box(&fr).semijoin_reference(black_box(&fs))))
    });
    g.bench_function("filter/chunked_80k_40k", |b| {
        b.iter(|| black_box(black_box(&fr).semijoin_filter(black_box(&fs))))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = cqd2_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
