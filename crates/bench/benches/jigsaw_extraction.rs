//! **Experiment V6 — Theorem 4.7**: the excluded-grid pipeline for
//! degree-2 hypergraphs. Larger hidden structure ⇒ larger extracted
//! jigsaw (the executable shape of the `f(n)` relationship between ghw
//! and jigsaw dimension).

use cqd2::jigsaw::extract::decorated_jigsaw_dual;
use cqd2::jigsaw::extract_jigsaw;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n=== V6: Theorem 4.7 — jigsaw extraction from degree-2 hosts ===");
    println!("  hidden grid | host |V|/|E| | extracted n | sequence ops");
    let mut cases = Vec::new();
    for n in 2..=4usize {
        let h = decorated_jigsaw_dual(n, n, 1, 2);
        let e = extract_jigsaw(&h, n, 4_000_000)
            .expect("degree-2")
            .expect("hidden jigsaw found");
        println!(
            "     {n}x{n}      | {:>4}/{:<4}   |     {}       | {}",
            h.num_vertices(),
            h.num_edges(),
            e.n,
            e.sequence.len()
        );
        assert_eq!(e.n, n, "pipeline must recover the planted dimension");
        cases.push((n, h));
    }
    println!("monotone: extracted dimension tracks the hidden structure (and hence ghw).");

    let mut g = c.benchmark_group("extract");
    for (n, h) in &cases {
        g.bench_with_input(BenchmarkId::new("decorated", n), h, |b, h| {
            b.iter(|| {
                black_box(
                    extract_jigsaw(black_box(h), *n, 4_000_000)
                        .unwrap()
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = cqd2_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
