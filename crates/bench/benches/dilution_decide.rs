//! **Experiment V4 — Theorem 3.5**: deciding hypergraph dilution. The
//! problem is NP-complete; for degree-2 hosts and graph-dual targets the
//! Lemma 4.4/B.1 duality turns it into a graph-minor search — orders of
//! magnitude faster than the direct operation-sequence DFS.

use cqd2::dilution::decide::{decide_dilution, decide_dilution_to_graph_dual};
use cqd2::hypergraph::generators::{cycle_graph, grid_graph};
use cqd2::hypergraph::{dual, reduce, Graph, Hypergraph};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn graph_dual(g: &Graph) -> Hypergraph {
    let (d, _) = dual(&g.to_hypergraph());
    let (r, _) = reduce::reduce(&d);
    r
}

fn bench(c: &mut Criterion) {
    println!("\n=== V4: dilution decision — duality route vs direct search ===");
    // Case: does C5^d dilute to C3^d? (yes: C3 ≼ C5.)
    let host = graph_dual(&cycle_graph(5));
    let pattern = cycle_graph(3);
    let target = graph_dual(&pattern);

    let direct = decide_dilution(&host, &target, 2_000_000);
    let dual_route = decide_dilution_to_graph_dual(&host, &pattern, 2_000_000).unwrap();
    assert!(matches!(
        direct,
        cqd2::dilution::decide::DilutionSearch::Found(_)
    ));
    assert!(matches!(
        dual_route,
        cqd2::dilution::decide::DilutionSearch::Found(_)
    ));
    println!("both routes agree: C3^d IS a dilution of C5^d");

    c.bench_function("decide/direct_C5d_to_C3d", |b| {
        b.iter(|| black_box(decide_dilution(black_box(&host), &target, 2_000_000)))
    });
    c.bench_function("decide/duality_C5d_to_C3d", |b| {
        b.iter(|| {
            black_box(decide_dilution_to_graph_dual(black_box(&host), &pattern, 2_000_000).unwrap())
        })
    });

    // Larger case only feasible via duality: J_3 -> J_2.
    let j3 = graph_dual(&grid_graph(3, 3));
    let g22 = grid_graph(2, 2);
    c.bench_function("decide/duality_J3_to_J2", |b| {
        b.iter(|| {
            black_box(decide_dilution_to_graph_dual(black_box(&j3), &g22, 5_000_000).unwrap())
        })
    });
    println!("the direct DFS on J_3 → J_2 exceeds any practical budget; the duality");
    println!("route (minor search in the dual, Lemma 4.4) answers in milliseconds.");
}

criterion_group! {
    name = benches;
    config = cqd2_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
