//! **Experiment V2 — Prop. 2.2 vs the lower-bound intuition**: BCQ on
//! degree-2 cycle queries — naive backtracking join vs GHD-guided
//! evaluation on *join-adversarial* databases.
//!
//! Workload: the canonical CQ of a rank-2 hypercycle of length 6 with
//! "increasing chain" relations `R_i = {(a, b) : a < b}`. No assignment
//! closes the cycle (values would have to strictly increase around it), so
//! the answer is NO — but naive backtracking must explore `Θ(C(s, 5))`
//! increasing partial chains before concluding that, while the width-2 GHD
//! route materializes `O(s³)` bag tuples and semijoins them away:
//! polynomial in the database, per Prop. 2.2.

use cqd2::cq::eval::{bcq_naive, bcq_via_ghd};
use cqd2::cq::generate::canonical_query;
use cqd2::cq::Database;
use cqd2::decomp::widths::ghw_decomposition;
use cqd2::hypergraph::generators::hypercycle;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Strictly-increasing pairs over `[0, s)` for the chain relations, and
/// strictly-*decreasing* pairs for the cycle-closing relation (whose atom
/// has variables `(v_0, v_{k-1})` in sorted order), so that values must
/// strictly increase all the way around the cycle — unsatisfiable, with
/// maximal partial-join fan-out.
fn increasing_chain_database(q: &cqd2::cq::ConjunctiveQuery, s: u64) -> Database {
    let mut db = Database::new();
    for atom in &q.atoms {
        let vars = atom.vars();
        let wrap = vars.len() == 2 && vars[1].0 != vars[0].0 + 1;
        for a in 0..s {
            for b in (a + 1)..s {
                if wrap {
                    db.insert(&atom.relation, &[b, a]);
                } else {
                    db.insert(&atom.relation, &[a, b]);
                }
            }
        }
    }
    db
}

fn bench(c: &mut Criterion) {
    println!("\n=== V2: BCQ evaluation — naive vs GHD on adversarial cycles ===");
    let h = hypercycle(6, 2);
    let q = canonical_query(&h);
    let ghd = ghw_decomposition(&h).expect("small degree-2 hypergraph");
    println!(
        "query: canonical CQ of the 6-cycle ({} atoms, ghw = {})",
        q.atoms.len(),
        ghd.width()
    );

    let mut g = c.benchmark_group("bcq");
    for s in [8u64, 16, 24] {
        let db = increasing_chain_database(&q, s);
        assert!(!bcq_naive(&q, &db), "cycle of strict increases is UNSAT");
        assert!(!bcq_via_ghd(&q, &db, &ghd).unwrap());
        g.bench_with_input(BenchmarkId::new("naive", s), &db, |b, db| {
            b.iter(|| black_box(bcq_naive(black_box(&q), black_box(db))))
        });
        g.bench_with_input(BenchmarkId::new("ghd", s), &db, |b, db| {
            b.iter(|| black_box(bcq_via_ghd(black_box(&q), black_box(db), &ghd).unwrap()))
        });
    }
    g.finish();
    println!("shape: naive cost explodes combinatorially in the domain size s");
    println!("(≈ C(s,5) partial chains); GHD evaluation stays polynomial (Prop. 2.2).");
}

criterion_group! {
    name = benches;
    config = cqd2_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
