//! **Experiment E3 — copy-free prepared re-execution**: warm runs
//! through the bag-tree overlay ([`cqd2::cq::eval::BagOverlay`]) vs the
//! clone-based execution baseline (`deep_clone().into_bcq()`: deep-copy
//! the materialized tree, then run the consuming semijoin passes on the
//! copy — exactly what every prepared re-execution paid before the
//! overlay).
//!
//! The fixture is a **bushy** bag tree (root, two mid nodes, four
//! leaves) over join-consistent data: every join-column value appears on
//! both sides of every tree edge, so the bottom-up semijoin pass drops
//! nothing and rewrites **zero** nodes. That is the warm prepared-query
//! serving shape: the overlay run is pure probing against cached tables,
//! while the clone baseline still deep-copies ~280k rows and rebuilds
//! every probe table per run.
//!
//! Gated (outside the criterion sampling loop, best of five):
//! - cq level: `MaterializedBags::bcq` with overlays ≥ 2× over
//!   `deep_clone().into_bcq()` on the same tree;
//! - engine level: warm `PreparedQuery::run(Boolean)` ≥ 2× over the
//!   clone baseline, with provenance reporting `overlay` mode and zero
//!   rewritten bags.

use cqd2::cq::{with_sequential_bags, ConjunctiveQuery, Database, MaterializedBags};
use cqd2::decomp::{Ghd, TreeDecomposition};
use cqd2::engine::{BagMode, Engine, Planner, PlannerConfig, Workload};
use cqd2::hypergraph::VertexId;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Join-column domain. Every relation's join columns cover all of
/// `[0, DOMAIN)` (the first `DOMAIN` rows pin value `i`, the rest draw
/// uniformly), so semijoins along every tree edge keep everything.
const DOMAIN: u64 = 4_096;
/// Rows in the three upper relations — what a warm overlay pass probes.
const UPPER_ROWS: usize = 8_192;
/// Rows in the four leaf relations — what the clone baseline deep-copies
/// and rebuilds probe tables over on every run. The asymmetry is the
/// serving shape the overlay exists for: warm work proportional to the
/// (small) filtered frontier, not the (large) materialization.
const LEAF_ROWS: usize = 98_304;

fn best_of<R>(runs: usize, mut f: impl FnMut() -> R) -> Duration {
    (0..runs)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed()
        })
        .min()
        .expect("at least one run")
}

/// Deterministic xorshift64* (the bench crate has no rand dependency).
fn rng(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// `n` rows of `arity` join columns, all covering `[0, DOMAIN)`, plus
/// `free` extra columns of unconstrained values (distinct rows for the
/// leaves).
fn covered_rows(n: usize, arity: usize, free: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut next = rng(seed);
    (0..n)
        .map(|i| {
            let mut row: Vec<u64> = (0..arity)
                .map(|_| {
                    if (i as u64) < DOMAIN {
                        i as u64
                    } else {
                        next() % DOMAIN
                    }
                })
                .collect();
            row.extend((0..free).map(|_| next()));
            row
        })
        .collect()
}

/// The bushy fixture: a 7-atom acyclic query (degree ≤ 2) whose
/// hand-built GHD is the tree
///
/// ```text
///            A(a,b)            bag 0
///           /       \
///     B0(a,c,d)   B1(b,e,f)    bags 1, 2  (both have children: bushy)
///      /    \       /    \
///  C0(c,g) C1(d,h) C2(e,i) C3(f,j)   bags 3..6
/// ```
fn fixture() -> (ConjunctiveQuery, Database, Ghd) {
    let q = ConjunctiveQuery::parse(&[
        ("A", &["?a", "?b"]),
        ("B0", &["?a", "?c", "?d"]),
        ("B1", &["?b", "?e", "?f"]),
        ("C0", &["?c", "?g"]),
        ("C1", &["?d", "?h"]),
        ("C2", &["?e", "?i"]),
        ("C3", &["?f", "?j"]),
    ]);
    let mut db = Database::new();
    db.insert_all("A", &covered_rows(UPPER_ROWS, 2, 0, 11));
    db.insert_all("B0", &covered_rows(UPPER_ROWS, 3, 0, 12));
    db.insert_all("B1", &covered_rows(UPPER_ROWS, 3, 0, 13));
    db.insert_all("C0", &covered_rows(LEAF_ROWS, 1, 1, 14));
    db.insert_all("C1", &covered_rows(LEAF_ROWS, 1, 1, 15));
    db.insert_all("C2", &covered_rows(LEAF_ROWS, 1, 1, 16));
    db.insert_all("C3", &covered_rows(LEAF_ROWS, 1, 1, 17));

    // One bag per atom; vertex ids follow first appearance in the query
    // (a=0, b=1, c=2, d=3, e=4, f=5, g=6, h=7, i=8, j=9).
    let bags: Vec<Vec<VertexId>> = [
        vec![0u32, 1],
        vec![0, 2, 3],
        vec![1, 4, 5],
        vec![2, 6],
        vec![3, 7],
        vec![4, 8],
        vec![5, 9],
    ]
    .into_iter()
    .map(|b| b.into_iter().map(VertexId).collect())
    .collect();
    let tree = vec![(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)];
    let ghd = Ghd::from_td_exact(&q.hypergraph(), TreeDecomposition { bags, tree });
    ghd.validate(&q.hypergraph())
        .expect("hand-built GHD is valid");
    (q, db, ghd)
}

/// The engine-level fixture: a degree-2 star — one small hub over six
/// join variables, six big satellite relations hanging off it. Join
/// columns cover the domain on both sides, so warm passes rewrite
/// nothing here either.
fn star_fixture() -> (ConjunctiveQuery, Database) {
    let q = ConjunctiveQuery::parse(&[
        ("Hub", &["?a1", "?a2", "?a3", "?a4", "?a5", "?a6"]),
        ("L1", &["?a1", "?b1"]),
        ("L2", &["?a2", "?b2"]),
        ("L3", &["?a3", "?b3"]),
        ("L4", &["?a4", "?b4"]),
        ("L5", &["?a5", "?b5"]),
        ("L6", &["?a6", "?b6"]),
    ]);
    let mut db = Database::new();
    db.insert_all("Hub", &covered_rows(UPPER_ROWS, 6, 0, 21));
    for (i, name) in ["L1", "L2", "L3", "L4", "L5", "L6"].iter().enumerate() {
        db.insert_all(name, &covered_rows(LEAF_ROWS, 1, 1, 22 + i as u64));
    }
    (q, db)
}

fn bench(c: &mut Criterion) {
    println!("\n=== E3: overlay re-execution vs clone-based baseline ===");
    let (q, db, ghd) = fixture();
    let bags = MaterializedBags::build(&q, &db, &ghd).expect("bag tree materializes");
    println!(
        "  fixture: {} bags, {} total rows (bushy tree, join-consistent)",
        bags.num_bags(),
        bags.total_rows()
    );

    // Correctness + sparsity gate: the join-consistent fixture must
    // answer true with ZERO rewritten nodes — warm runs are pure probes.
    let (ans, stats) = bags.bcq_with_stats();
    assert!(ans, "join-consistent fixture must be satisfiable");
    assert_eq!(
        stats.rewritten, 0,
        "join-consistent data must rewrite no bag (got {}/{})",
        stats.rewritten, stats.total
    );
    // Differential gate: the clone-based consuming pass agrees.
    assert!(bags.deep_clone().into_bcq(), "clone baseline diverged");

    // cq-level headline: warm overlay pass vs deep-clone + consuming
    // pass on the same tree (caches warmed by the run above).
    let overlay = best_of(5, || bags.bcq());
    let seq_overlay = best_of(5, || with_sequential_bags(|| bags.bcq()));
    let cloned = best_of(5, || bags.deep_clone().into_bcq());
    let ratio = |old: Duration, new: Duration| old.as_secs_f64() / new.as_secs_f64().max(1e-9);
    println!(
        "  bags.bcq() overlay:              {overlay:?}  (sequential passes: {seq_overlay:?})\n  deep_clone().into_bcq() baseline: {cloned:?}\n  speedup: {:.1}×",
        ratio(cloned, overlay)
    );
    assert!(
        overlay * 2 <= cloned,
        "overlay bcq ({overlay:?}) must be ≥ 2× over the clone baseline ({cloned:?})"
    );
    println!(
        "GATE engine_overlay/cq_tree ratio={:.3} floor=2.0 cmp=ge status=PASS",
        ratio(cloned, overlay)
    );

    // Engine level: a warm PreparedQuery::run must hit the same overlay
    // path — provenance says so — and beat a clone-based baseline over
    // the engine's OWN execution tree (the planner's heuristic GHD need
    // not match a hand-built one, so the baseline is rebuilt from it to
    // keep the comparison shape-for-shape fair). The fixture is a star
    // query (small hub, six big satellites) so the big relations land at
    // the leaves of whatever tree the planner picks.
    let (q, db) = star_fixture();
    let engine = Engine::default();
    let session = engine.session(&db);
    let prepared = session.prepare(&q).expect("planning cannot fail");
    let resp = prepared.run(Workload::Boolean);
    assert_eq!(resp.answer.as_bool(), Some(true));
    let exec = resp
        .provenance
        .bags
        .expect("large join-consistent data must keep the GHD plan");
    assert_eq!(
        exec.mode,
        BagMode::Overlay,
        "prepared runs execute overlays"
    );
    assert_eq!(
        exec.bags_rewritten, 0,
        "warm prepared run must rewrite no bag (got {}/{})",
        exec.bags_rewritten, exec.bags_total
    );
    let planner_ghd = Planner::new(PlannerConfig::default())
        .plan_structure(&q.hypergraph())
        .ghd
        .expect("default planner finds a GHD for the acyclic fixture");
    let engine_bags =
        MaterializedBags::build(&q, &db, &planner_ghd).expect("planner tree materializes");
    assert_eq!(
        engine_bags.num_bags(),
        exec.bags_total,
        "rebuilt baseline must execute the same tree as the prepared handle"
    );
    // Warm the rebuilt baseline's caches too, and check it agrees.
    let (eb, es) = engine_bags.bcq_with_stats();
    assert!(eb, "engine-tree baseline diverged");
    assert_eq!(es.rewritten, 0, "engine tree must also rewrite nothing");
    let warm = best_of(7, || prepared.run(Workload::Boolean));
    let engine_cloned = best_of(7, || engine_bags.deep_clone().into_bcq());
    println!(
        "  warm PreparedQuery::run(Boolean): {warm:?}  ({} bags, {} rows)\n  clone baseline on the engine tree: {engine_cloned:?}\n  speedup: {:.1}×",
        exec.bags_total,
        engine_bags.total_rows(),
        ratio(engine_cloned, warm)
    );
    assert!(
        warm * 2 <= engine_cloned,
        "warm prepared run ({warm:?}) must be ≥ 2× over the clone baseline ({engine_cloned:?})"
    );
    println!(
        "GATE engine_overlay/prepared_run ratio={:.3} floor=2.0 cmp=ge status=PASS",
        ratio(engine_cloned, warm)
    );

    let mut g = c.benchmark_group("engine_overlay");
    g.bench_function("bcq/overlay_warm", |b| b.iter(|| black_box(bags.bcq())));
    g.bench_function("bcq/clone_baseline", |b| {
        b.iter(|| black_box(bags.deep_clone().into_bcq()))
    });
    g.bench_function("prepared/run_warm_boolean", |b| {
        b.iter(|| black_box(prepared.run(Workload::Boolean)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = cqd2_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
