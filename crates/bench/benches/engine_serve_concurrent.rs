//! **Experiment E3 — concurrent socket serving vs sequential batches**:
//! N clients drive the same repeated-structure workload through a live
//! `cqd2-serve` loopback server (catalog-pinned owned sessions + shared
//! epoch-keyed prepared cache, so bag materialization is paid once per
//! query text) and are compared against `Engine::execute_batch` on a
//! single-worker engine, which re-prepares — statistics scan,
//! isomorphism translation, bag materialization — on every request.
//!
//! The fixture is the prepared-query bench's rank-3 hypercycle on a
//! small planted database: per-request planning work dominates
//! execution, which is exactly the regime a serving front-end amortizes.
//! The headline wall-clock ratio is measured outside the criterion
//! sampling loop and gated at ≥ 1.5× (measured well above; the gate
//! leaves slack for loaded CI machines).

use cqd2::cq::generate::{canonical_query, planted_database};
use cqd2::engine::server::client::Client;
use cqd2::engine::server::{Server, ServerConfig};
use cqd2::engine::{textio, Catalog, Engine, EngineConfig, Request, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

const CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: usize = 50;

fn bench(c: &mut Criterion) {
    println!("\n=== E3: concurrent socket serving — repeated-structure workload ===");
    let q = canonical_query(&cqd2::hypergraph::generators::hypercycle(8, 3));
    let db = planted_database(&q, 6, 10, 17);
    let total = CLIENTS * QUERIES_PER_CLIENT;

    // --- Sequential baseline: one worker, one prepare per request. ---
    let engine_seq = Engine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let requests: Vec<Request<'_>> = (0..total)
        .map(|_| Request {
            query: &q,
            db: &db,
            workload: Workload::Boolean,
        })
        .collect();
    // Warm the structure cache so the baseline pays translation, never
    // fresh decomposition — the comparison isolates per-request costs.
    let expected = engine_seq.serve(&requests[0]).answer.as_bool().unwrap();
    assert!(expected, "planted instance must be satisfiable");
    let t = Instant::now();
    let responses = engine_seq.execute_batch(&requests);
    let sequential = t.elapsed();
    assert!(responses.iter().all(|r| r.answer.as_bool() == Some(true)));

    // --- Concurrent serving through the socket front-end. ---
    let catalog = Catalog::new();
    catalog
        .publish_str("bench", &textio::render_database(&db))
        .expect("publish bench db");
    let engine_srv = Engine::default();
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            queue_capacity: CLIENTS * 2,
            poll_interval: Duration::from_millis(2),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let batch_text = {
        let mut text = String::from("@boolean\n");
        for _ in 0..QUERIES_PER_CLIENT {
            text.push_str("Q: ");
            text.push_str(&q.display());
            text.push('\n');
        }
        text
    };
    let mut concurrent = Duration::ZERO;
    let mut warm_client_latency = Duration::ZERO;
    std::thread::scope(|s| {
        let run = s.spawn(|| server.run(&engine_srv, &catalog).expect("server run"));
        // Connect and warm each client (and the server's prepared
        // cache) before the timed window, mirroring the baseline's
        // warmed structure cache.
        let mut clients: Vec<Client> = (0..CLIENTS)
            .map(|_| {
                let mut client = Client::connect(addr).expect("connect");
                client.bind_db("bench").expect("bind");
                let warm = client.query(&q.display(), Workload::Boolean).expect("warm");
                assert_eq!(warm.answer.as_bool(), Some(true));
                client
            })
            .collect();
        let t = Instant::now();
        std::thread::scope(|inner| {
            for client in &mut clients {
                let batch_text = &batch_text;
                inner.spawn(move || {
                    let reply = client.request(batch_text).expect("batch");
                    assert_eq!(reply.results.len(), QUERIES_PER_CLIENT);
                    assert!(reply
                        .results
                        .iter()
                        .all(|r| r.answer.as_bool() == Some(true)));
                });
            }
        });
        concurrent = t.elapsed();
        // Warm single-query round-trip latency for the criterion group.
        let t = Instant::now();
        let one = clients[0]
            .query(&q.display(), Workload::Boolean)
            .expect("warm single");
        warm_client_latency = t.elapsed();
        assert!(one.prepared_hit, "steady state must hit the prepared cache");
        handle.shutdown();
        drop(clients);
        let stats = run.join().expect("server thread");
        assert!(
            stats.prepared_hits >= (total - CLIENTS) as u64,
            "repeated texts must reuse warm handles: {stats:?}"
        );
    });

    let speedup = sequential.as_secs_f64() / concurrent.as_secs_f64().max(1e-9);
    println!(
        "  sequential  ({total} × execute_batch, 1 worker): {sequential:?}\n  \
         concurrent  ({CLIENTS} clients × {QUERIES_PER_CLIENT} over TCP): {concurrent:?}\n  \
         warm single round-trip: {warm_client_latency:?}\n  speedup: {speedup:.1}×"
    );
    assert!(
        speedup >= 1.5,
        "concurrent serving must beat sequential execute_batch by ≥ 1.5× \
         on a repeated-structure batch (got {speedup:.2}×: {concurrent:?} vs {sequential:?})"
    );

    // Criterion group: per-request latency both ways (the server side
    // measured at the client, socket + framing included).
    let mut g = c.benchmark_group("engine_serve_concurrent");
    let req = Request {
        query: &q,
        db: &db,
        workload: Workload::Boolean,
    };
    g.bench_function("sequential/serve_per_request", |b| {
        b.iter(|| black_box(engine_seq.serve(&req)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
