//! **Experiment E4 — the owned catalog API is free**: warm prepared
//! re-execution through an owned, epoch-pinned catalog session
//! ([`Engine::session_in`] on a published [`Catalog`] snapshot) must
//! cost the same as through the `&Database` convenience shim
//! ([`Engine::session`]) — the redesign moved the database behind an
//! `Arc` pin, and an `Arc` deref on the run path is not allowed to show
//! up. Gated at ≤ 10% overhead (the acceptance bound; measured ≈ 1.0×,
//! both paths execute the identical per-run tree pass).
//!
//! The fixture matches `engine_prepared.rs`: a rank-3 hypercycle whose
//! planning dominates execution, so if pinning had added per-run cost,
//! the warm-run loop is where it would be visible. The headline ratio
//! is min-of-rounds on both sides — warm loops are tight, so the min
//! is the noise-free estimate.
//!
//! A second section reports (not gates) the hot-reload control plane:
//! `Catalog::swap` latency — the full statistics rescan plus the
//! pointer swap — and the post-swap re-prepare, i.e. what a reload
//! actually costs the serving path.

use cqd2::cq::generate::{canonical_query, planted_database};
use cqd2::engine::{Catalog, Engine, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

const WARM_RUNS: usize = 200;
const ROUNDS: usize = 15;

fn bench(c: &mut Criterion) {
    println!("\n=== E4: owned catalog sessions vs the borrowed-API shim ===");
    let q = canonical_query(&cqd2::hypergraph::generators::hypercycle(8, 3));
    let db = planted_database(&q, 6, 10, 17);
    let engine = Engine::default();

    // The `&Database` shim: what pre-catalog embedders called (and the
    // borrowed-API baseline the acceptance bound names) — one detached
    // snapshot, prepared once, re-run warm.
    let shim_session = engine.session(&db);
    let shim_prepared = shim_session.prepare(&q).expect("shim prepare");

    // The owned path: the snapshot is published once in the catalog and
    // pinned, epoch and all, by the session and the prepared handle.
    let catalog = Catalog::new();
    catalog.publish("bench", db.clone()).expect("publish");
    let owned_session = engine.session_in(&catalog, "bench").expect("session_in");
    let owned_prepared = owned_session.prepare(&q).expect("owned prepare");

    // Same machinery, same answers.
    let expected = shim_prepared.run(Workload::Boolean).answer.as_bool();
    assert_eq!(
        owned_prepared.run(Workload::Boolean).answer.as_bool(),
        expected
    );
    assert_eq!(owned_prepared.epoch(), 0);

    // Interleaved min-of-rounds: alternating the two paths inside each
    // round cancels slow drift (thermal, scheduler) between them.
    let mut shim_best = Duration::MAX;
    let mut owned_best = Duration::MAX;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        for _ in 0..WARM_RUNS {
            black_box(shim_prepared.run(Workload::Boolean));
        }
        shim_best = shim_best.min(t.elapsed());
        let t = Instant::now();
        for _ in 0..WARM_RUNS {
            black_box(owned_prepared.run(Workload::Boolean));
        }
        owned_best = owned_best.min(t.elapsed());
    }
    let ratio = owned_best.as_secs_f64() / shim_best.as_secs_f64().max(1e-12);
    println!(
        "  borrowed-API shim ({WARM_RUNS} warm runs, best of {ROUNDS}): {shim_best:?}\n  \
         owned catalog     ({WARM_RUNS} warm runs, best of {ROUNDS}): {owned_best:?}\n  \
         owned / shim: {ratio:.3}×"
    );
    assert!(
        ratio <= 1.10,
        "owned epoch-pinned re-execution must stay within 10% of the \
         borrowed-API baseline (got {ratio:.3}×: {owned_best:?} vs {shim_best:?})"
    );
    println!("GATE engine_catalog/owned_overhead ratio={ratio:.3} floor=1.10 cmp=le status=PASS");

    // Control plane, reported for the record: what a hot reload costs.
    let t = Instant::now();
    let swapped = catalog.swap("bench", db.clone()).expect("swap");
    let swap_latency = t.elapsed();
    assert_eq!(swapped.epoch(), 1);
    let new_session = engine.session_in(&catalog, "bench").expect("session_in");
    let t = Instant::now();
    let reprepared = new_session.prepare(&q).expect("re-prepare");
    let reprepare_latency = t.elapsed();
    assert!(reprepared.cache_hit(), "same structure hits the plan cache");
    // The pre-swap handle still answers — pinning, not locking.
    assert_eq!(
        owned_prepared.run(Workload::Boolean).answer.as_bool(),
        expected
    );
    println!(
        "  hot reload: swap (stats rescan + publish) {swap_latency:?}, \
         post-swap re-prepare (plan-cache hit + bag rebuild) {reprepare_latency:?}"
    );

    // Criterion group: per-run latency of both paths.
    let mut g = c.benchmark_group("engine_catalog");
    g.bench_function("warm_run/borrowed_shim", |b| {
        b.iter(|| black_box(shim_prepared.run(Workload::Boolean)));
    });
    g.bench_function("warm_run/owned_catalog", |b| {
        b.iter(|| black_box(owned_prepared.run(Workload::Boolean)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
